"""Integration tests asserting the paper's headline claims hold.

These are the qualitative *shapes* of the evaluation figures, run at
test-scale (the full sweeps live in ``benchmarks/``).
"""

import numpy as np
import pytest

from repro.core.kertbn import build_continuous_kertbn
from repro.core.nrtbn import build_continuous_nrtbn
from repro.simulator.scenarios.random_env import random_environment


@pytest.fixture(scope="module")
def comparison_30():
    """One Fig-3-style point: 30 services, 300 training rows."""
    env = random_environment(30, rng=1001)
    train, test = env.train_test(300, 150, rng=1002)
    kert = build_continuous_kertbn(env.workflow, train)
    nrt = build_continuous_nrtbn(train, rng=1003)
    return env, train, test, kert, nrt


def test_claim_kertbn_builds_faster(comparison_30):
    """Fig. 3/4 (left): KERT-BN construction time below NRT-BN."""
    _, _, _, kert, nrt = comparison_30
    assert (
        kert.report.construction_seconds < nrt.report.construction_seconds
    )
    # And the win comes from skipping structure learning.
    assert kert.report.structure_seconds < nrt.report.structure_seconds


def test_claim_kertbn_at_least_as_accurate(comparison_30):
    """Fig. 3/4 (right): KERT-BN accuracy >= NRT-BN accuracy."""
    _, _, test, kert, nrt = comparison_30
    assert kert.log10_likelihood(test) >= nrt.log10_likelihood(test)


def test_claim_kertbn_tolerates_tiny_training_sets():
    """Fig. 3 (right): with 36 points KERT-BN is already close to its
    large-data accuracy, while NRT-BN is far from its own."""
    env = random_environment(30, rng=2001)
    test = env.simulate(150, rng=2003)
    small = env.simulate(36, rng=2004)
    large = env.simulate(1080, rng=2005)

    kert_small = build_continuous_kertbn(env.workflow, small).log10_likelihood(test)
    kert_large = build_continuous_kertbn(env.workflow, large).log10_likelihood(test)
    nrt_small = build_continuous_nrtbn(small, rng=1).log10_likelihood(test)
    nrt_large = build_continuous_nrtbn(large, rng=2).log10_likelihood(test)

    kert_gap = kert_large - kert_small
    nrt_gap = nrt_large - nrt_small
    assert kert_gap < nrt_gap  # KERT converges faster
    assert kert_small > nrt_small  # and dominates in the small-data regime


def test_claim_nrtbn_construction_superlinear_kert_flat():
    """Fig. 4 (left): NRT-BN time grows superlinearly with service count;
    KERT-BN time stays nearly flat."""
    sizes = (10, 40)
    kert_times, nrt_times = [], []
    for i, n in enumerate(sizes):
        env = random_environment(n, rng=3000 + i)
        train = env.simulate(36, rng=3100 + i)
        kert_times.append(
            build_continuous_kertbn(env.workflow, train).report.construction_seconds
        )
        nrt_times.append(
            build_continuous_nrtbn(train, rng=3200 + i).report.construction_seconds
        )
    n_ratio = sizes[1] / sizes[0]
    assert nrt_times[1] / nrt_times[0] > n_ratio  # superlinear
    assert kert_times[1] < nrt_times[1] / 5  # KERT far cheaper at 40 services


def test_claim_decentralized_learning_faster(comparison_30):
    """Fig. 5: max-per-CPD (decentralized) < sum (centralized)."""
    _, _, _, kert, _ = comparison_30
    rep = kert.report
    assert rep.decentralized_parameter_seconds < rep.centralized_parameter_seconds
    # With ~31 CPDs there must be a real gap even at sub-millisecond fit
    # times (the full-scale sweep is benchmarks/test_fig5_decentralized.py,
    # where the ratio grows with environment size).
    assert rep.centralized_parameter_seconds / max(
        rep.decentralized_parameter_seconds, 1e-9
    ) > 1.5


def test_claim_violation_error_kert_beats_nrt():
    """Fig. 8's shape at test scale: ε(KERT) <= ε(NRT) on average."""
    from repro.apps.paccel import PAccel
    from repro.apps.violation import default_thresholds, violation_curve
    from repro.core.kertbn import build_discrete_kertbn
    from repro.core.nrtbn import build_discrete_nrtbn
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    kert_all, nrt_all = [], []
    for seed in range(3):
        env = ediamond_scenario()
        train = env.simulate(1200, rng=4001 + seed)
        kert = build_discrete_kertbn(env.workflow, train, n_bins=5)
        nrt = build_discrete_nrtbn(train, rng=4100 + seed, n_restarts=5,
                                   max_parents=3)

        # Physically accelerate only X4 to ~90 % (the Sec-5.2 action),
        # observe reality, ask both models.
        faster = ediamond_scenario(service_speedups={"X4": 0.9})
        observed = faster.simulate(1200, rng=4200 + seed)
        new_x4 = float(np.mean(observed["X4"]))
        real_d = np.asarray(observed["D"])
        thresholds = default_thresholds(real_d)

        def project(model):
            pa = PAccel(model)
            res = pa.project({"X4": new_x4})
            return res.violation_probability

        kert_rows = violation_curve(project(kert), real_d, thresholds)
        nrt_rows = violation_curve(project(nrt), real_d, thresholds)
        kert_all.append(np.mean([r["epsilon"] for r in kert_rows]))
        nrt_all.append(np.mean([r["epsilon"] for r in nrt_rows]))
    # Average over seeds: KERT's ε at or below NRT's (small tolerance for
    # run-to-run noise on an inherently statistical comparison).
    assert np.mean(kert_all) <= np.mean(nrt_all) + 0.02
