"""End-to-end monitoring pipeline: agents → server → learners.

Exercises the full Fig.-1 path including reporting loss, then feeds the
lossy dataset to EM and to dComp — the two missing-data consumers the
paper describes.
"""

import numpy as np
import pytest

from repro.simulator.scenarios.ediamond import ediamond_scenario


@pytest.fixture(scope="module")
def env():
    return ediamond_scenario()


def test_lossless_pipeline_matches_direct_simulation_scale(env):
    direct = env.simulate(300, rng=10)
    via_agents = env.simulate_via_agents(300, rng=10)
    assert via_agents.n_rows == 300
    assert set(via_agents.columns) == set(direct.columns)
    # Same generative process: means agree within sampling noise.
    for c in direct.columns:
        assert float(np.mean(via_agents[c])) == pytest.approx(
            float(np.mean(direct[c])), rel=0.25
        )
    assert not np.isnan(via_agents.to_array()).any()


def test_reporting_loss_creates_nans(env):
    lossy = env.simulate_via_agents(300, rng=11, reporting_loss=0.2)
    nan_frac = float(np.isnan(lossy.to_array(env.service_names)).mean())
    assert 0.1 < nan_frac < 0.3
    # Response times are measured at the client and never lost.
    assert not np.isnan(lossy["D"]).any()


def test_require_complete_drops_lossy_rows(env):
    strict = env.simulate_via_agents(
        300, rng=12, reporting_loss=0.1, require_complete=True
    )
    assert strict.n_rows < 300
    assert not np.isnan(strict.to_array()).any()


def test_em_fits_lossy_pipeline_output(env):
    lossy = env.simulate_via_agents(400, rng=13, reporting_loss=0.15)
    from repro.bn.learning.em import em_gaussian

    dag = env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])
    net, trace = em_gaussian(
        service_dag, lossy.select(env.service_names), max_iter=25
    )
    assert trace  # EM actually ran (there were NaNs)
    clean = env.simulate(300, rng=14)
    assert np.isfinite(net.log10_likelihood(clean.select(env.service_names)))


def test_dcomp_compensates_pipeline_blackout(env):
    """One host's agent goes completely dark; dComp estimates its service
    from the remaining reports — Section 5.1's use case, end to end."""
    from repro.apps.dcomp import DComp
    from repro.core.kertbn import build_continuous_kertbn

    train = env.simulate_via_agents(500, rng=15)
    model = build_continuous_kertbn(env.workflow, train)

    current = env.simulate_via_agents(300, rng=16)
    actual_x5 = float(np.mean(current["X5"]))
    observed = {
        c: float(np.mean(current[c]))
        for c in current.columns
        if c not in ("X5",)
    }
    result = DComp(model).posterior("X5", observed, rng=17)
    assert result.posterior_mean == pytest.approx(actual_x5, rel=0.25)
    assert result.posterior_std <= result.prior_std + 1e-9
