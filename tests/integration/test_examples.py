"""Every example script must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
SCRIPTS = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_examples_directory_has_enough_scripts():
    assert len(SCRIPTS) >= 4


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} printed nothing"
