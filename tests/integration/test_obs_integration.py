"""End-to-end observability acceptance (the ISSUE's headline scenario).

Enable obs, serve a batch through :class:`ModelServer`, run one
decentralized learning round, then check the snapshot shows: nonzero
per-tier answer counts, a per-agent fit-time histogram, and a
``decentralized.round`` span whose duration is exactly the Sec.-3.4
max-over-agents time.  Finally the ``repro obs`` CLI must render the
same state from inside the process.
"""

import json

import pytest

from repro import obs
from repro.obs import runtime


@pytest.fixture
def obs_active():
    was_enabled = runtime.OBS.enabled
    obs.enable()
    obs.reset()
    yield obs
    obs.reset()
    runtime.OBS.enabled = was_enabled


def _serve_batch(model):
    from repro.serving.server import ModelServer

    srv = ModelServer(model, rng=0)
    svc = [n for n in model.network.nodes if n != model.response][0]
    rows = [{svc: 0}, {svc: 1}, {svc: 2}]
    results = srv.query_batch([model.response], rows, binned=True)
    assert all(r.ok for r in results)
    return results


def _learn_round(ediamond_env, train):
    from repro.decentralized.agent import linear_gaussian_fitter
    from repro.decentralized.coordinator import Coordinator

    dag = ediamond_env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])
    coord = Coordinator(service_dag, linear_gaussian_fitter())
    return coord.learn_round(train)


def test_snapshot_after_serving_and_learning(
    obs_active, ediamond_env, ediamond_data, ediamond_discrete_model
):
    train, _ = ediamond_data
    results = _serve_batch(ediamond_discrete_model)
    round_result = _learn_round(ediamond_env, train)

    snap = obs.snapshot()
    counters = snap["metrics"]["counters"]

    # Serving answered through a tier and counted every row.
    tier_counts = {
        name: v for name, v in counters.items()
        if name.startswith("serving.tier.")
    }
    assert sum(tier_counts.values()) == len(results)
    assert counters["serving.queries"] == len(results)

    # Learning produced the per-agent fit-time histogram.
    fit_hist = snap["metrics"]["histograms"]["decentralized.agent_fit_seconds"]
    assert fit_hist["count"] == len(round_result.fresh) > 0
    assert counters["decentralized.rounds"] == 1

    # The round span carries the paper's max-over-agents time: with no
    # response CPD in this round, its duration equals the slowest
    # agent-span duration exactly.
    round_span = obs.OBS.tracer.find("decentralized.round")
    assert round_span is not None
    agent_spans = [
        c for c in round_span.children if c.name.startswith("agent:")
    ]
    assert len(agent_spans) == len(round_result.per_agent_seconds)
    assert round_span.duration == max(c.duration for c in agent_spans)
    assert round_span.duration == round_result.decentralized_seconds

    # The span tree is present in the JSON snapshot too.
    names = {sp["name"] for sp in snap["trace"]}
    assert "decentralized.round" in names


def test_cli_obs_snapshot_renders_live_state(
    obs_active, ediamond_discrete_model, capsys
):
    from repro.cli import main

    _serve_batch(ediamond_discrete_model)
    assert main(["obs", "snapshot"]) == 0
    out = capsys.readouterr().out
    assert "serving.queries" in out
    assert main(["obs", "snapshot", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"]["counters"]["serving.queries"] >= 3


def test_cli_trace_out_writes_snapshot(obs_active, tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "trace.json"
    code = main(["--trace-out", str(out_path), "obs", "snapshot"])
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["enabled"] is True
    span_names = {sp["name"] for sp in payload["trace"]}
    assert "cli.obs" in span_names
