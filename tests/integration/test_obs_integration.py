"""End-to-end observability acceptance (the ISSUE's headline scenario).

Enable obs, serve a batch through :class:`ModelServer`, run one
decentralized learning round, then check the snapshot shows: nonzero
per-tier answer counts, a per-agent fit-time histogram, and a
``decentralized.round`` span whose duration is exactly the Sec.-3.4
max-over-agents time.  Finally the ``repro obs`` CLI must render the
same state from inside the process.
"""

import json

import pytest

from repro import obs
from repro.obs import runtime


@pytest.fixture
def obs_active():
    was_enabled = runtime.OBS.enabled
    obs.enable()
    obs.reset()
    yield obs
    obs.reset()
    runtime.OBS.enabled = was_enabled


def _serve_batch(model):
    from repro.serving.server import ModelServer

    srv = ModelServer(model, rng=0)
    svc = [n for n in model.network.nodes if n != model.response][0]
    rows = [{svc: 0}, {svc: 1}, {svc: 2}]
    results = srv.query_batch([model.response], rows, binned=True)
    assert all(r.ok for r in results)
    return results


def _learn_round(ediamond_env, train):
    from repro.decentralized.agent import linear_gaussian_fitter
    from repro.decentralized.coordinator import Coordinator

    dag = ediamond_env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])
    coord = Coordinator(service_dag, linear_gaussian_fitter())
    return coord.learn_round(train)


def test_snapshot_after_serving_and_learning(
    obs_active, ediamond_env, ediamond_data, ediamond_discrete_model
):
    train, _ = ediamond_data
    results = _serve_batch(ediamond_discrete_model)
    round_result = _learn_round(ediamond_env, train)

    snap = obs.snapshot()
    counters = snap["metrics"]["counters"]

    # Serving answered through a tier and counted every row.
    tier_counts = {
        name: v for name, v in counters.items()
        if name.startswith("serving.tier.")
    }
    assert sum(tier_counts.values()) == len(results)
    assert counters["serving.queries"] == len(results)

    # Learning produced the per-agent fit-time histogram.
    fit_hist = snap["metrics"]["histograms"]["decentralized.agent_fit_seconds"]
    assert fit_hist["count"] == len(round_result.fresh) > 0
    assert counters["decentralized.rounds"] == 1

    # The round span carries the paper's max-over-agents time: with no
    # response CPD in this round, its duration equals the slowest
    # agent-span duration exactly.
    round_span = obs.OBS.tracer.find("decentralized.round")
    assert round_span is not None
    agent_spans = [
        c for c in round_span.children if c.name.startswith("agent:")
    ]
    assert len(agent_spans) == len(round_result.per_agent_seconds)
    assert round_span.duration == max(c.duration for c in agent_spans)
    assert round_span.duration == round_result.decentralized_seconds

    # The span tree is present in the JSON snapshot too.
    names = {sp["name"] for sp in snap["trace"]}
    assert "decentralized.round" in names


def test_cli_obs_snapshot_renders_live_state(
    obs_active, ediamond_discrete_model, capsys
):
    from repro.cli import main

    _serve_batch(ediamond_discrete_model)
    assert main(["obs", "snapshot"]) == 0
    out = capsys.readouterr().out
    assert "serving.queries" in out
    assert main(["obs", "snapshot", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"]["counters"]["serving.queries"] >= 3


def test_cli_trace_out_writes_snapshot(obs_active, tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "trace.json"
    code = main(["--trace-out", str(out_path), "obs", "snapshot"])
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["enabled"] is True
    span_names = {sp["name"] for sp in payload["trace"]}
    assert "cli.obs" in span_names


def test_multiprocessing_round_with_live_exporter(obs_active, ediamond_env,
                                                  ediamond_data):
    """PR 5 acceptance, part 1: a decentralized learn round through the
    *multiprocessing* path with the exporter live.  The merged trace
    tree must show worker-side fit spans under ``decentralized.round``
    (one trace id), and ``/metrics`` must serve valid Prometheus text
    containing the round's instruments.
    """
    import urllib.request

    from repro.decentralized.parallel import parallel_parameter_learning
    from repro.obs.export import ExportServer

    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    service_nodes = [n for n in dag.nodes if n != "D"]
    service_dag = dag.subgraph(service_nodes)

    with ExportServer() as srv:
        fitted = parallel_parameter_learning(
            service_dag, train, processes=2
        )
        with urllib.request.urlopen(srv.url + "/metrics", timeout=5.0) as r:
            assert r.status == 200
            assert r.headers.get("Content-Type").startswith("text/plain")
            scrape = r.read().decode()

    assert set(fitted) == set(map(str, service_nodes))

    # Worker fit spans reattached under the coordinator-side round span.
    round_span = obs.OBS.tracer.find("decentralized.round")
    assert round_span is not None
    agent_spans = [
        c for c in round_span.children if c.name.startswith("agent:")
    ]
    assert {sp.name for sp in agent_spans} == {
        f"agent:{n}" for n in fitted
    }
    assert all(sp.trace_id == round_span.trace_id for sp in agent_spans)
    assert round_span.duration == max(sp.duration for sp in agent_spans)

    # The scrape is parseable exposition text with the round's counters.
    from tests.obs.test_obs_export import parse_prometheus

    samples = parse_prometheus(scrape)
    assert samples["repro_decentralized_parallel_fits_total"] == len(fitted)
    inf_key = 'repro_decentralized_parallel_fit_seconds_bucket{le="+Inf"}'
    assert samples[inf_key] == samples[
        "repro_decentralized_parallel_fit_seconds_count"
    ] == len(fitted)


def test_degraded_service_trips_slo_into_action(obs_active, tmp_path):
    """PR 5 acceptance, part 2: synthetically degrade a service until the
    *measured* stream breaches its SLO; the manager must act within one
    cycle on the SLO trigger even though the model's predicted violation
    probability stays inside policy.  The dashboard renders the
    aftermath (breach visible) from the live endpoint.
    """
    from repro.core.manager import (
        AutonomicManager,
        SLAPolicy,
        inject_degradation,
    )
    from repro.obs.dashboard import load_snapshot, render_html
    from repro.obs.export import ExportServer
    from repro.obs.slo import LatencyObjective, SLOMonitor
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    env = ediamond_scenario()
    # Park the model trigger (sky-high SLA threshold -> predicted
    # violation probability ~0) so the action is attributable to the
    # measured-SLO path alone.  Baseline eDiaMoND p95 sits near 3.5s;
    # an 8s objective stays green until the degradation lands.
    policy = SLAPolicy(threshold=1e6, max_violation_prob=0.99)
    monitor = SLOMonitor(
        [
            LatencyObjective(
                name="response_p95",
                histogram="manager.window.response_seconds",
                threshold_seconds=8.0,
            )
        ],
        window=3,
        min_points=30,
    )
    manager = AutonomicManager(
        env, policy, window_points=120, rng=0, slo_monitor=monitor
    )

    healthy = manager.run_cycle()
    assert healthy.slo_breaches == []
    assert not healthy.acted

    inject_degradation(env, "X5", 25.0)  # the measured stream now overruns
    with ExportServer(slo_monitor=monitor) as srv:
        degraded = manager.run_cycle()
        snap = load_snapshot(srv.url)

    assert degraded.slo_breaches, "degradation must trip the SLO monitor"
    assert degraded.trigger == "slo"
    assert degraded.acted, "the SLO breach must drive plan/execute in-cycle"
    assert degraded.violation_prob <= policy.max_violation_prob

    # The endpoint's snapshot carries SLO status; the dashboard shows it.
    assert snap["slo"]["objectives"], "exporter must attach SLO status"
    breached = [o for o in snap["slo"]["objectives"] if o["breached"]]
    assert breached
    html = render_html(snap)
    (tmp_path / "report.html").write_text(html)
    assert "BREACHED" in html
