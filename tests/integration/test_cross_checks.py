"""Cross-subsystem consistency: independent implementations must agree.

Each test pits two independently-coded paths at the same quantity —
exact Gaussian algebra vs ancestral sampling, variable elimination vs
likelihood weighting vs junction tree, engine execution vs workflow
reduction — over randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bn.cpd import LinearGaussianCPD
from repro.bn.dag import DAG
from repro.bn.network import GaussianBayesianNetwork


@st.composite
def random_gaussian_nets(draw, max_nodes=5):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    dag = DAG.random([f"v{i}" for i in range(n)], 0.5, rng, max_parents=2)
    cpds = []
    for node in dag.nodes:
        parents = tuple(map(str, dag.parents(node)))
        cpds.append(
            LinearGaussianCPD(
                str(node),
                float(rng.normal(0, 1)),
                rng.normal(0, 1, size=len(parents)),
                float(rng.uniform(0.2, 1.5)),
                parents,
            )
        )
    return GaussianBayesianNetwork(dag, cpds)


@given(random_gaussian_nets())
@settings(max_examples=25, deadline=None)
def test_joint_gaussian_matches_sampling_moments(net):
    from repro.bn.inference.gaussian import joint_gaussian

    names, mean, cov = joint_gaussian(net)
    data = net.sample(60_000, rng=0)
    for i, n in enumerate(names):
        emp = float(np.mean(data[n]))
        tol = 4.5 * np.sqrt(cov[i, i] / 60_000) + 1e-3
        assert abs(emp - mean[i]) < tol
    # Spot-check one covariance entry.
    if len(names) >= 2:
        emp_cov = float(np.cov(data[names[0]], data[names[1]])[0, 1])
        assert emp_cov == pytest.approx(cov[0, 1], abs=0.12 * max(1.0, abs(cov[0, 1])) + 0.05)


@given(random_gaussian_nets())
@settings(max_examples=15, deadline=None)
def test_network_loglik_equals_joint_mvn_density(net):
    """Per-node factorized log-density must equal the joint MVN density."""
    from scipy.stats import multivariate_normal

    from repro.bn.inference.gaussian import joint_gaussian

    names, mean, cov = joint_gaussian(net)
    data = net.sample(50, rng=1)
    factorized = net.per_row_log_likelihood(data)
    x = data.to_array(names)
    joint = multivariate_normal(mean=mean, cov=cov, allow_singular=True).logpdf(x)
    np.testing.assert_allclose(factorized, joint, rtol=1e-6, atol=1e-8)


def test_lw_matches_ve_on_discrete_net():
    from tests.bn.test_inference_ve import random_discrete_net
    from repro.bn.inference.sampling import likelihood_weighting
    from repro.bn.inference.variable_elimination import query

    rng = np.random.default_rng(7)
    net = random_discrete_net(rng, n_nodes=5, cards=(2,))
    nodes = [str(n) for n in net.nodes]
    evidence = {nodes[-1]: 0}
    target = nodes[0]
    exact = query(net, [target], evidence).values
    samples, weights = likelihood_weighting(net, evidence, n=200_000, rng=8)
    values = np.asarray(samples[target])
    total = weights.sum()
    approx = np.array(
        [weights[values == k].sum() / total for k in range(len(exact))]
    )
    np.testing.assert_allclose(approx, exact, atol=0.01)


def test_junction_tree_matches_ve_on_ediamond(ediamond_discrete_model):
    from repro.bn.inference.junction_tree import JunctionTree

    net = ediamond_discrete_model.network
    jt = JunctionTree(net)
    for node in map(str, net.nodes):
        np.testing.assert_allclose(
            jt.marginal(node).values, net.query([node]).values, atol=1e-9
        )


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=20, deadline=None)
def test_engine_response_equals_reduction_for_random_workflows(n, seed):
    """Property: for ANY generated workflow (incl. choice/loop), the
    engine's measured D equals f(measured X) in measurement mode."""
    from repro.simulator.delays import LogNormal
    from repro.simulator.engine import Engine
    from repro.simulator.service import ServiceSpec
    from repro.workflow.generator import random_workflow
    from repro.workflow.response_time import response_time_function

    from repro.workflow.response_time import has_parallel_under_loop

    rng = np.random.default_rng(seed)
    wf = random_workflow(n, rng, p_choice=0.2, p_loop=0.15)
    services = [
        ServiceSpec(s, LogNormal(0.1, 0.4), upstream_coupling=0.1)
        for s in wf.services()
    ]
    engine = Engine(wf, services, demand_sigma=0.2, rng=seed + 1)
    arrivals = np.cumsum(rng.exponential(3.0, size=10))
    records = engine.run(arrivals)
    f = response_time_function(wf)
    exact = not has_parallel_under_loop(wf)
    for r in records:
        x = {s: np.array([r.elapsed.get(s, 0.0)]) for s in wf.services()}
        fx = float(f(x)[0])
        if exact:
            assert r.response_time == pytest.approx(fx, rel=1e-9)
        else:
            # Documented exception: f lower-bounds D for parallel-in-loop.
            assert r.response_time >= fx - 1e-9


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=20, deadline=None)
def test_kert_structure_valid_for_any_workflow(n, seed):
    """Property: the knowledge-derived structure is a DAG whose response
    node is a sink with all services as parents, for any workflow."""
    from repro.workflow.generator import random_workflow
    from repro.workflow.structure import kert_bn_structure

    rng = np.random.default_rng(seed)
    wf = random_workflow(n, rng, p_choice=0.25, p_loop=0.2)
    dag = kert_bn_structure(wf)
    assert len(dag.topological_order()) == n + 1
    assert set(dag.parents("D")) == set(wf.services())
    assert dag.children("D") == ()


def test_decentralized_equals_centralized_equals_multiprocessing(
    ediamond_env, ediamond_data
):
    """Three learning paths, identical parameters."""
    from repro.bn.learning.mle import fit_linear_gaussian
    from repro.decentralized.agent import linear_gaussian_fitter
    from repro.decentralized.coordinator import Coordinator
    from repro.decentralized.parallel import parallel_parameter_learning

    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])

    central = {
        str(n): fit_linear_gaussian(
            train, str(n), tuple(map(str, service_dag.parents(n)))
        )
        for n in service_dag.nodes
    }
    decentralized = Coordinator(service_dag, linear_gaussian_fitter()).learn_round(
        train
    ).cpds
    parallel = parallel_parameter_learning(service_dag, train, processes=2)
    for node in central:
        assert central[node] == decentralized[node] == parallel[node]
