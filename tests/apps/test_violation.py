"""Threshold-violation probabilities and ε (Eq. 5 / Figure 8)."""

import numpy as np
import pytest

from repro.apps.violation import (
    default_thresholds,
    relative_violation_error,
    tail_probability_from_pmf,
    violation_curve,
)
from repro.exceptions import InferenceError


def test_tail_probability_exact_cases():
    pmf = np.array([0.25, 0.25, 0.5])
    edges = np.array([0.0, 1.0, 2.0, 3.0])
    assert tail_probability_from_pmf(pmf, edges, -1.0) == pytest.approx(1.0)
    assert tail_probability_from_pmf(pmf, edges, 3.5) == 0.0
    assert tail_probability_from_pmf(pmf, edges, 1.0) == pytest.approx(0.75)
    # Mid-bin interpolation: half of bin 0's mass remains above 0.5.
    assert tail_probability_from_pmf(pmf, edges, 0.5) == pytest.approx(0.875)


def test_tail_probability_validation():
    with pytest.raises(InferenceError):
        tail_probability_from_pmf(np.ones(3) / 3, np.array([0.0, 1.0]), 0.5)


def test_tail_probability_matches_sampling():
    rng = np.random.default_rng(0)
    samples = rng.normal(5, 2, size=200_000)
    edges = np.linspace(samples.min(), samples.max() + 1e-9, 60)
    counts, _ = np.histogram(samples, bins=edges)
    pmf = counts / counts.sum()
    for h in (3.0, 5.0, 7.5):
        approx = tail_probability_from_pmf(pmf, edges, h)
        empirical = np.mean(samples > h)
        assert approx == pytest.approx(empirical, abs=0.01)


def test_relative_violation_error_eq5():
    assert relative_violation_error(0.2, 0.1) == pytest.approx(1.0)
    assert relative_violation_error(0.1, 0.1) == 0.0
    assert relative_violation_error(0.1, 0.0) == float("inf")
    assert relative_violation_error(0.0, 0.0) == 0.0
    with pytest.raises(InferenceError):
        relative_violation_error(-0.1, 0.5)


def test_violation_curve_rows():
    rng = np.random.default_rng(1)
    samples = rng.exponential(2.0, size=10_000)
    rows = violation_curve(
        lambda h: float(np.exp(-h / 2.0)),  # true exponential tail
        samples,
        thresholds=[0.5, 1.0, 2.0],
    )
    assert len(rows) == 3
    for r in rows:
        assert set(r) == {"threshold", "p_real", "p_model", "epsilon"}
        assert r["epsilon"] < 0.1  # exact model vs empirical


def test_default_thresholds_properties():
    rng = np.random.default_rng(2)
    samples = rng.normal(10, 1, size=5000)
    hs = default_thresholds(samples)
    assert len(hs) == 6
    assert hs == sorted(hs)
    # Every threshold keeps P_real strictly positive and below 1.
    for h in hs:
        p = np.mean(samples > h)
        assert 0.05 < p < 0.95
