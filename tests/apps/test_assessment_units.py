"""Unit tests for the moment-propagation internals of RapidAssessor."""

import numpy as np
import pytest

from repro.apps.assessment import _MomentState, _propagate
from repro.exceptions import InferenceError
from repro.workflow.expressions import (
    Const,
    Max,
    Scale,
    Sum,
    Var,
    WeightedSum,
)


def state_2d(m1=1.0, m2=2.0, v1=1.0, v2=4.0, c=0.5):
    return _MomentState(
        ["a", "b"], np.array([m1, m2]), np.array([[v1, c], [c, v2]])
    )


def moments(expr, state):
    idx = _propagate(expr, state)
    return state.get(idx)


def test_var_lookup():
    s = state_2d()
    m, v = moments(Var("a"), s)
    assert (m, v) == (1.0, 1.0)
    with pytest.raises(InferenceError):
        _propagate(Var("ghost"), s)


def test_const_has_zero_variance():
    s = state_2d()
    m, v = moments(Const(7.5), s)
    assert m == 7.5
    assert v == 0.0


def test_sum_moments_include_covariance():
    s = state_2d()
    m, v = moments(Sum([Var("a"), Var("b")]), s)
    assert m == pytest.approx(3.0)
    assert v == pytest.approx(1.0 + 4.0 + 2 * 0.5)


def test_scale_moments():
    s = state_2d()
    m, v = moments(Scale(3.0, Var("b")), s)
    assert m == pytest.approx(6.0)
    assert v == pytest.approx(9 * 4.0)


def test_weighted_sum_moments():
    s = state_2d()
    expr = WeightedSum([(0.25, Var("a")), (0.75, Var("b"))])
    m, v = moments(expr, s)
    assert m == pytest.approx(0.25 * 1 + 0.75 * 2)
    expected_v = (
        0.0625 * 1.0 + 0.5625 * 4.0 + 2 * 0.25 * 0.75 * 0.5
    )
    assert v == pytest.approx(expected_v)


def test_sum_of_scaled_var_tracks_covariance_with_itself():
    """a + 2a must have variance (3σ_a)² = 9, not 1 + 4 = 5."""
    s = state_2d()
    expr = Sum([Var("a"), Scale(2.0, Var("a"))])
    m, v = moments(expr, s)
    assert m == pytest.approx(3.0)
    assert v == pytest.approx(9.0)


def test_nested_max_in_sum_against_monte_carlo():
    rng = np.random.default_rng(0)
    mean = np.array([1.0, 2.0, 0.5])
    cov = np.array([[1.0, 0.3, 0.0], [0.3, 2.0, 0.1], [0.0, 0.1, 0.5]])
    expr = Sum([Var("a"), Max([Var("b"), Scale(2.0, Var("c"))])])
    s = _MomentState(["a", "b", "c"], mean, cov)
    m, v = moments(expr, s)
    draws = rng.multivariate_normal(mean, cov, size=400_000)
    mc = draws[:, 0] + np.maximum(draws[:, 1], 2.0 * draws[:, 2])
    assert m == pytest.approx(float(mc.mean()), abs=0.01)
    assert np.sqrt(v) == pytest.approx(float(mc.std()), rel=0.03)


def test_expectation_mode_expression_supported_end_to_end():
    """Choice/Loop expectation-mode expressions propagate too."""
    expr = Sum(
        [
            WeightedSum([(0.3, Var("a")), (0.7, Var("b"))]),
            Scale(2.5, Var("a")),
            Const(0.1),
        ]
    )
    s = state_2d()
    m, v = moments(expr, s)
    assert np.isfinite(m) and v >= 0
    # Mean is linear, so exact: 0.3*1 + 0.7*2 + 2.5*1 + 0.1
    assert m == pytest.approx(0.3 + 1.4 + 2.5 + 0.1)
