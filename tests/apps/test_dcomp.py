"""dComp: missing-data compensation (Section 5.1 / Figure 6)."""

import numpy as np
import pytest

from repro.apps.dcomp import DComp
from repro.exceptions import InferenceError


def observed_means(data, exclude, include_response=True):
    cols = [c for c in data.columns if c != exclude]
    if not include_response:
        cols = [c for c in cols if c != "D"]
    return {c: float(np.mean(data[c])) for c in cols}


def test_discrete_posterior_is_pmf(ediamond_discrete_model, ediamond_data):
    _, test = ediamond_data
    dc = DComp(ediamond_discrete_model)
    res = dc.posterior("X4", observed_means(test, "X4"))
    assert res.posterior.sum() == pytest.approx(1.0)
    assert res.prior.sum() == pytest.approx(1.0)
    assert np.all(res.posterior >= 0)
    assert len(res.centers) == len(res.posterior)


def test_discrete_posterior_more_deterministic_than_prior(
    ediamond_discrete_model, ediamond_data
):
    """Figure 6's visual: the posterior is 'more deterministic and
    precise'.  With quantile bins the prior is near-uniform over bins, so
    the right formalization is Shannon entropy over bins decreasing."""
    _, test = ediamond_data
    dc = DComp(ediamond_discrete_model)
    res = dc.posterior("X4", observed_means(test, "X4"))

    def entropy(pmf):
        p = pmf[pmf > 0]
        return float(-(p * np.log(p)).sum())

    assert entropy(res.posterior) < entropy(res.prior)


def test_observed_variable_rejected(ediamond_discrete_model, ediamond_data):
    _, test = ediamond_data
    dc = DComp(ediamond_discrete_model)
    with pytest.raises(InferenceError):
        dc.posterior("X4", {"X4": 1.0})


def test_hybrid_posterior_without_response(ediamond_continuous_model, ediamond_data):
    _, test = ediamond_data
    dc = DComp(ediamond_continuous_model)
    res = dc.posterior("X4", observed_means(test, "X4", include_response=False))
    assert np.isfinite(res.posterior_mean)
    assert res.posterior_std <= res.prior_std + 1e-9
    assert res.posterior.sum() == pytest.approx(1.0)


def test_hybrid_posterior_with_response_narrows_sharply(
    ediamond_continuous_model, ediamond_data
):
    _, test = ediamond_data
    dc = DComp(ediamond_continuous_model)
    without = dc.posterior("X4", observed_means(test, "X4", include_response=False))
    with_d = dc.posterior("X4", observed_means(test, "X4"), rng=0)
    # Conditioning additionally on D must not lose information.
    assert with_d.posterior_std <= without.posterior_std * 1.5
    assert np.isfinite(with_d.posterior_mean)


def test_posterior_tracks_environment_drift(ediamond_continuous_model):
    """The Figure-6 story: prior is stale, observations are current.

    Degrade the remote WAN (X4 and X6 grow); the posterior for X4 given
    current observations of everything else must move from the stale
    prior toward the new actual mean.
    """
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    drifted = ediamond_scenario(wan_delay=0.8)
    new = drifted.simulate(400, rng=17)
    actual = float(np.mean(new["X4"]))
    obs = {c: float(np.mean(new[c])) for c in new.columns if c != "X4"}
    dc = DComp(ediamond_continuous_model)
    res = dc.posterior("X4", obs, rng=1)
    assert res.shift_toward(actual) > 0
    assert abs(res.posterior_mean - actual) < abs(res.prior_mean - actual)


def test_dcomp_requires_supported_network(ediamond_data):
    class FakeModel:
        network = object()
        response = "D"
        discretizer = None

    dc = DComp(FakeModel())
    with pytest.raises(InferenceError):
        dc.posterior("X4", {"X1": 1.0})
