"""pAccel: acceleration-impact projection (Section 5.2 / Figure 7)."""

import numpy as np
import pytest

from repro.apps.paccel import PAccel
from repro.exceptions import InferenceError


def test_discrete_projection_pmf(ediamond_discrete_model, ediamond_data):
    _, test = ediamond_data
    pa = PAccel(ediamond_discrete_model)
    x4 = float(np.mean(test["X4"]))
    res = pa.project({"X4": 0.9 * x4})
    assert res.pmf.sum() == pytest.approx(1.0)
    assert np.isfinite(res.mean)
    assert res.edges.size == res.pmf.size + 1


def test_projection_empty_evidence_rejected(ediamond_discrete_model):
    pa = PAccel(ediamond_discrete_model)
    with pytest.raises(InferenceError):
        pa.project({})
    with pytest.raises(InferenceError):
        pa.project({"D": 1.0})


def test_hybrid_projection_matches_observed_mean(ediamond_env):
    """Figure 7: projected response ≈ actually-observed response after the
    acceleration is physically applied."""
    from repro.core.kertbn import build_continuous_kertbn
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    base_env = ediamond_scenario()
    train = base_env.simulate(800, rng=21)
    model = build_continuous_kertbn(base_env.workflow, train)
    pa = PAccel(model)

    # Physically accelerate X4: cut the WAN delay so its mean drops.
    faster = ediamond_scenario(wan_delay=0.05)
    observed = faster.simulate(800, rng=22)
    new_x4_mean = float(np.mean(observed["X4"]))

    proj = pa.project({"X4": new_x4_mean}, rng=23)
    observed_d = float(np.mean(observed["D"]))
    assert proj.mean == pytest.approx(observed_d, rel=0.1)


def test_acceleration_of_slow_parallel_sibling_matters_more(
    ediamond_continuous_model, ediamond_data
):
    """The Section-5.2 motivation: accelerating the slower parallel branch
    improves D more than accelerating the faster one."""
    train, _ = ediamond_data
    pa = PAccel(ediamond_continuous_model)
    base = pa.baseline(rng=3)
    x3 = float(np.mean(train["X3"]))  # local locator (fast branch)
    x4 = float(np.mean(train["X4"]))  # remote locator (slow branch)
    fast_branch = pa.project({"X3": 0.5 * x3}, rng=4)
    slow_branch = pa.project({"X4": 0.5 * x4}, rng=5)
    gain_fast = base.mean - fast_branch.mean
    gain_slow = base.mean - slow_branch.mean
    assert gain_slow > gain_fast


def test_baseline_discrete(ediamond_discrete_model, ediamond_data):
    _, test = ediamond_data
    pa = PAccel(ediamond_discrete_model)
    base = pa.baseline()
    assert base.pmf.sum() == pytest.approx(1.0)
    # Model baseline mean tracks the empirical response mean.
    assert base.mean == pytest.approx(float(np.mean(test["D"])), rel=0.15)


def test_violation_probability_monotone_in_threshold(
    ediamond_discrete_model, ediamond_data
):
    _, test = ediamond_data
    pa = PAccel(ediamond_discrete_model)
    x4 = float(np.mean(test["X4"]))
    res = pa.project({"X4": x4})
    hs = np.linspace(float(test["D"].min()), float(test["D"].max()), 10)
    probs = [res.violation_probability(h) for h in hs]
    assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))
    assert all(0 <= p <= 1 for p in probs)
