"""Problem localization on the eDiaMoND scenario."""

import numpy as np
import pytest

from repro.apps.localization import ProblemLocalizer
from repro.core.kertbn import build_continuous_kertbn
from repro.exceptions import InferenceError
from repro.simulator.scenarios.ediamond import ediamond_scenario


@pytest.fixture(scope="module")
def localizer():
    env = ediamond_scenario()
    train = env.simulate(800, rng=55)
    model = build_continuous_kertbn(env.workflow, train)
    return ProblemLocalizer(model), env


def observed_means(data):
    return {c: float(np.mean(data[c])) for c in data.columns if c != "D"}


def test_validation(localizer):
    loc, _ = localizer
    with pytest.raises(InferenceError):
        loc.localize({})
    with pytest.raises(InferenceError):
        loc.localize({"ghost": 1.0})


def test_degraded_service_ranks_first(localizer):
    loc, _ = localizer
    # Degrade X5 (the local OGSA-DAI database) hard.
    degraded = ediamond_scenario(service_speedups={"X5": 3.0})
    current = degraded.simulate(400, rng=56)
    suspects = loc.localize(observed_means(current))
    assert suspects[0].service == "X5"
    assert suspects[0].z_score > 2  # clearly anomalous
    assert suspects[0].projected_d_shift > 0  # explains the slowdown


def test_healthy_environment_low_blame(localizer):
    loc, env = localizer
    healthy = env.simulate(400, rng=57)
    suspects = loc.localize(observed_means(healthy))
    degraded = ediamond_scenario(service_speedups={"X4": 4.0})
    bad = loc.localize(observed_means(degraded.simulate(400, rng=58)))
    assert bad[0].blame > 5 * suspects[0].blame


def test_parallel_shadowing(localizer):
    """Degrading the *fast* parallel branch barely moves D — the blame
    score must reflect end-to-end impact, not just local anomaly."""
    loc, _ = localizer
    # X3/X5 (local branch) is the FAST branch; X4/X6 the slow one.
    light = ediamond_scenario(service_speedups={"X3": 1.8})
    heavy = ediamond_scenario(service_speedups={"X4": 1.8})
    s_light = loc.localize(observed_means(light.simulate(500, rng=59)))
    s_heavy = loc.localize(observed_means(heavy.simulate(500, rng=60)))
    light_x3 = next(s for s in s_light if s.service == "X3")
    heavy_x4 = next(s for s in s_heavy if s.service == "X4")
    # Similar local anomaly, very different end-to-end impact.
    assert heavy_x4.projected_d_shift > light_x3.projected_d_shift


def test_top_k_and_rows(localizer):
    loc, env = localizer
    current = env.simulate(200, rng=61)
    suspects = loc.localize(observed_means(current), top=3)
    assert len(suspects) == 3
    row = suspects[0].row()
    assert {"service", "z", "blame"} <= set(row)
    blames = [s.blame for s in suspects]
    assert blames == sorted(blames, reverse=True)
