"""RapidAssessor: analytic moment propagation vs Monte Carlo."""

import numpy as np
import pytest

from repro.apps.assessment import RapidAssessor, _clark_max, _MomentState
from repro.apps.paccel import PAccel
from repro.exceptions import InferenceError


def test_requires_hybrid_model(ediamond_data):
    from repro.core.nrtbn import build_continuous_nrtbn

    train, _ = ediamond_data
    nrt = build_continuous_nrtbn(train, rng=0)
    with pytest.raises(InferenceError):
        RapidAssessor(nrt)


def test_clark_max_independent_standard_normals():
    # E[max(Z1, Z2)] = 1/sqrt(pi) for iid N(0,1); Var = 1 - 1/pi.
    state = _MomentState(["z1", "z2"], np.zeros(2), np.eye(2))
    mean, _, var = _clark_max(state, 0, 1)
    assert mean == pytest.approx(1 / np.sqrt(np.pi), abs=1e-9)
    assert var == pytest.approx(1 - 1 / np.pi, abs=1e-9)


def test_clark_max_degenerate_identical_terms():
    cov = np.array([[1.0, 1.0], [1.0, 1.0]])
    state = _MomentState(["z1", "z2"], np.array([3.0, 3.0]), cov)
    mean, _, var = _clark_max(state, 0, 1)
    assert mean == pytest.approx(3.0)
    assert var == pytest.approx(1.0)


def test_clark_max_dominant_branch():
    state = _MomentState(
        ["lo", "hi"], np.array([0.0, 100.0]), np.diag([1.0, 2.0])
    )
    mean, _, var = _clark_max(state, 0, 1)
    assert mean == pytest.approx(100.0, abs=1e-6)
    assert var == pytest.approx(2.0, abs=1e-6)


def test_assess_matches_monte_carlo(ediamond_continuous_model):
    ra = RapidAssessor(ediamond_continuous_model)
    m, v = ra.assess()
    mc = PAccel(ediamond_continuous_model).baseline(n_samples=150_000, rng=1)
    assert m == pytest.approx(mc.mean, rel=0.02)
    assert np.sqrt(v) == pytest.approx(mc.std, rel=0.05)


def test_assess_with_evidence_matches_monte_carlo(
    ediamond_continuous_model, ediamond_data
):
    train, _ = ediamond_data
    ra = RapidAssessor(ediamond_continuous_model)
    x4 = float(np.mean(train["X4"]))
    m, _ = ra.assess({"X4": 0.9 * x4})
    proj = PAccel(ediamond_continuous_model).project(
        {"X4": 0.9 * x4}, n_samples=150_000, rng=2
    )
    assert m == pytest.approx(proj.mean, rel=0.02)


def test_violation_probability_reasonable(ediamond_continuous_model):
    ra = RapidAssessor(ediamond_continuous_model)
    mc = PAccel(ediamond_continuous_model).baseline(n_samples=150_000, rng=3)
    m, v = ra.assess()
    for h in (m - 0.5, m, m + 0.5):
        analytic = ra.violation_probability(h)
        empirical = mc.violation_probability(h)
        assert analytic == pytest.approx(empirical, abs=0.06)
    # Monotone in the threshold.
    probs = [ra.violation_probability(h) for h in np.linspace(0.5, 4.0, 8)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))


def test_assessment_is_fast(ediamond_continuous_model):
    import time

    ra = RapidAssessor(ediamond_continuous_model)
    t0 = time.perf_counter()
    for _ in range(50):
        ra.assess()
    per_call = (time.perf_counter() - t0) / 50
    assert per_call < 0.05  # control-loop friendly


def test_pure_sequence_workflow_is_exact(rng):
    """Without max joins the propagation is exact Gaussian algebra."""
    from repro.core.kertbn import build_continuous_kertbn
    from repro.simulator.delays import LogNormal
    from repro.simulator.environment import SimulatedEnvironment
    from repro.simulator.service import ServiceSpec
    from repro.workflow.constructs import sequence_of

    wf = sequence_of("s1", "s2", "s3")
    env = SimulatedEnvironment(
        workflow=wf,
        services=tuple(
            ServiceSpec(s, LogNormal(0.2, 0.3)) for s in ("s1", "s2", "s3")
        ),
    )
    train = env.simulate(800, rng=4)
    model = build_continuous_kertbn(wf, train)
    ra = RapidAssessor(model)
    m, v = ra.assess()
    # E[D] under the fitted model = sum of the fitted means, exactly.
    names, mean, cov = model.network.service_subnetwork().to_joint_gaussian()
    assert m == pytest.approx(float(mean.sum()))
    assert v == pytest.approx(
        float(cov.sum()) + model.network.cpd("D").variance
    )
