"""Branch dominance and acceleration headroom."""

import numpy as np
import pytest

from repro.apps.capacity import acceleration_headroom, branch_dominance
from repro.exceptions import InferenceError


def test_remote_branch_dominates_ediamond(ediamond_continuous_model):
    results = branch_dominance(ediamond_continuous_model, rng=0)
    assert len(results) == 1  # one parallel join in the scenario
    join = results[0]
    assert set(join.operands) == {"X3 + X5", "X4 + X6"}
    remote = join.operands.index("X4 + X6")
    # The WAN-delayed remote branch wins most of the time.
    assert join.probabilities[remote] > 0.6
    assert sum(join.probabilities) == pytest.approx(1.0)
    assert join.dominant_branch() == remote


def test_headroom_ranks_services_sensibly(ediamond_continuous_model):
    headroom = acceleration_headroom(ediamond_continuous_model, rng=1)
    assert set(headroom) == {"X1", "X2", "X3", "X4", "X5", "X6"}
    # Sequential services: zeroing them saves ~their full mean.
    assert headroom["X1"] > 0
    # Dominant-branch services have more headroom than shadowed ones.
    assert headroom["X6"] > headroom["X5"]
    assert headroom["X4"] > headroom["X3"]
    # Shadowed-branch headroom can approach zero but never below.
    assert all(h >= -1e-9 for h in headroom.values())


def test_requires_parallel_join(rng):
    from repro.core.kertbn import build_continuous_kertbn
    from repro.simulator.delays import LogNormal
    from repro.simulator.environment import SimulatedEnvironment
    from repro.simulator.service import ServiceSpec
    from repro.workflow.constructs import sequence_of

    wf = sequence_of("s1", "s2")
    env = SimulatedEnvironment(
        workflow=wf,
        services=(
            ServiceSpec("s1", LogNormal(0.1, 0.3)),
            ServiceSpec("s2", LogNormal(0.1, 0.3)),
        ),
    )
    model = build_continuous_kertbn(wf, env.simulate(200, rng=2))
    with pytest.raises(InferenceError):
        branch_dominance(model)
    # Headroom still works without joins.
    hr = acceleration_headroom(model, rng=3)
    assert hr["s1"] > 0


def test_requires_hybrid_model(ediamond_data):
    from repro.core.nrtbn import build_continuous_nrtbn

    train, _ = ediamond_data
    with pytest.raises(InferenceError):
        branch_dominance(build_continuous_nrtbn(train, rng=4))
