"""Timeout-count metric (the second Eq.-4 metric of Section 3.3)."""

import numpy as np
import pytest

from repro.apps.timeouts import (
    default_thresholds_from_trace,
    timeout_count_dataset,
    verify_count_identity,
)
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def trace(ediamond_env):
    return ediamond_env.run_transactions(600, rng=71)


def test_thresholds_from_trace(trace, ediamond_env):
    ths = default_thresholds_from_trace(trace, ediamond_env.service_names, 0.9)
    assert set(ths) == set(ediamond_env.service_names)
    # ~10% of sub-transactions exceed a 0.9-quantile threshold.
    for s, h in ths.items():
        values = np.array([r.elapsed[s] for r in trace])
        assert np.mean(values > h) == pytest.approx(0.1, abs=0.02)
    with pytest.raises(DataError):
        default_thresholds_from_trace(trace, ediamond_env.service_names, 1.5)
    with pytest.raises(DataError):
        default_thresholds_from_trace(trace, ["ghost"])


def test_count_dataset_shapes(trace, ediamond_env):
    ths = default_thresholds_from_trace(trace, ediamond_env.service_names)
    data = timeout_count_dataset(trace, ths, window=20)
    assert data.n_rows == len(trace) // 20
    assert set(data.columns) == set(ediamond_env.service_names) | {"D"}
    # Counts are nonnegative integers bounded by the window size.
    for s in ediamond_env.service_names:
        col = data[s]
        assert np.all(col >= 0) and np.all(col <= 20)
        assert np.allclose(col, np.round(col))


def test_count_identity_d_equals_sum(trace, ediamond_env):
    """The paper's claim: for timeout counts, f is exactly D = sum X_i."""
    ths = default_thresholds_from_trace(trace, ediamond_env.service_names)
    data = timeout_count_dataset(trace, ths, window=10)
    assert verify_count_identity(data, ediamond_env.workflow)


def test_count_dataset_validation(trace):
    with pytest.raises(DataError):
        timeout_count_dataset([], {"X1": 1.0})
    with pytest.raises(DataError):
        timeout_count_dataset(trace, {"X1": 1.0}, window=0)
    with pytest.raises(DataError):
        timeout_count_dataset(trace[:5], {"X1": 1.0}, window=10)
    with pytest.raises(DataError):
        timeout_count_dataset(trace, {"D": 1.0})


def test_discrete_kertbn_on_counts(trace, ediamond_env):
    """A KERT-BN over timeout counts with the sum-form f is learnable and
    fits held-out count data."""
    from repro.bn.discretize import Discretizer
    from repro.core.kertbn import build_discrete_kertbn

    ths = default_thresholds_from_trace(trace, ediamond_env.service_names)
    data = timeout_count_dataset(trace, ths, window=10)
    train, test = data.split(40)
    model = build_discrete_kertbn(
        ediamond_env.workflow, train, n_bins=3
    )
    assert np.isfinite(model.log10_likelihood(test))
