"""ISSUE 10 acceptance: one slowed service → budgets, attribution, action.

The scripted story: an eDiaMoND manager runs healthy cycles (budgets
derive from the healthy published model and satisfy the composition
invariant), then X3 is artificially slowed.  The degraded service must
top the attribution everywhere it surfaces — exporter gauges, dashboard
renderings — and the manager must act on that *specific* service within
one cycle, recording the attribution in its CycleReport.
"""

import numpy as np
import pytest

from repro.obs.attribution import BudgetTracker
from repro.obs.slo import SLOMonitor, manager_objectives

SLA = 3.5
TARGET = 0.1
DEGRADED = "X3"
FACTOR = 3.0


@pytest.fixture()
def budget_manager(obs_active):
    from repro.core.manager import AutonomicManager, SLAPolicy
    from repro.obs.runtime import OBS
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    env = ediamond_scenario()
    policy = SLAPolicy(threshold=SLA, max_violation_prob=TARGET)
    tracker = BudgetTracker(window=3)
    monitor = SLOMonitor(
        manager_objectives(policy),
        registry=OBS.metrics,
        window=3,
        budget_tracker=tracker,
    )
    manager = AutonomicManager(
        env, policy, window_points=60, rng=0, slo_monitor=monitor
    )
    return manager, monitor, tracker


def _run_healthy(manager, tracker, cycles=3):
    for _ in range(cycles):
        manager.run_cycle()
    assert tracker.allocation is not None, "healthy cycles must derive budgets"
    return tracker.allocation


def test_healthy_budgets_satisfy_the_composition_invariant(budget_manager):
    manager, _, tracker = budget_manager
    alloc = _run_healthy(manager, tracker)
    assert alloc.feasible
    assert alloc.sla == SLA and alloc.target == TARGET
    # Recomposition invariant: f at the budget vector meets the SLA...
    f = manager._reference_model.f.expression
    x = {sb.service: np.asarray([sb.budget]) for sb in alloc.budgets}
    assert float(f(x)[0]) <= SLA * (1 + 1e-9)
    # ...and the union-bound breach mass meets the probability target.
    assert alloc.tail_total <= TARGET + 1e-12
    # Spot-check against the measured stream: the healthy environment
    # really does run inside the objective the budgets encode.
    data = manager.env.simulate(2000, rng=42)
    measured = np.asarray(data[manager.env.response], dtype=float)
    assert float(np.mean(measured > SLA)) <= TARGET


def test_slowed_service_tops_attribution_and_is_acted_on(budget_manager):
    from repro.core.manager import inject_degradation

    manager, monitor, tracker = budget_manager
    _run_healthy(manager, tracker)
    inject_degradation(manager.env, DEGRADED, FACTOR)
    report = manager.run_cycle()

    budget_breaches = [b for b in report.slo_breaches if b.kind == "budget"]
    assert [b.service for b in budget_breaches] == [DEGRADED]
    assert budget_breaches[0].objective == f"budget.{DEGRADED}"
    assert budget_breaches[0].burn_rate > 1.0

    # Attribution recorded on the report, degraded service first.
    assert report.attribution, "acting cycle must record its attribution"
    top = report.attribution[0]
    assert top["service"] == DEGRADED and top["breached"]
    assert top["burn_rate"] > 1.0
    assert top["blame"] == max(r["blame"] for r in report.attribution)

    # The action within this very cycle targets the degraded service.
    assert report.acted
    assert report.action[0] == DEGRADED
    assert report.trigger in ("slo", "model+slo")


def test_exporter_ranks_the_degraded_service_first(budget_manager):
    from repro.core.manager import inject_degradation
    from repro.obs.export import ExportServer

    manager, monitor, tracker = budget_manager
    _run_healthy(manager, tracker)
    inject_degradation(manager.env, DEGRADED, FACTOR)
    manager.run_cycle()

    body = ExportServer(slo_monitor=monitor).metrics_body()
    burn = {}
    allocated = set()
    for line in body.splitlines():
        if line.startswith("repro_slo_budget_burn_rate{"):
            service = line.split('service="', 1)[1].split('"', 1)[0]
            burn[service] = float(line.rsplit(" ", 1)[1])
        elif line.startswith("repro_slo_budget_allocated{"):
            allocated.add(line.split('service="', 1)[1].split('"', 1)[0])
    # The process-global registry may carry series from other obs tests
    # (instrument names survive resets), so assert over *this* tracker's
    # services rather than exact set equality.
    assert set(tracker.services) <= set(burn)
    assert max(tracker.services, key=burn.get) == DEGRADED
    assert burn[DEGRADED] > 1.0
    assert f'repro_slo_budget_breached{{service="{DEGRADED}"}} 1' in body
    # Allocation gauges exported for every service as well.
    assert set(tracker.services) <= allocated


def test_dashboards_render_the_attribution_table(budget_manager):
    from repro.core.manager import inject_degradation
    from repro.obs import runtime
    from repro.obs.dashboard import render_html, render_terminal

    manager, monitor, tracker = budget_manager
    _run_healthy(manager, tracker)
    inject_degradation(manager.env, DEGRADED, FACTOR)
    manager.run_cycle()

    snap = runtime.snapshot()
    snap["slo"] = monitor.status()
    text = render_terminal(snap)
    assert "per-service budgets" in text
    lines = [ln for ln in text.splitlines() if ln.lstrip().startswith("X")]
    assert lines and lines[0].lstrip().startswith(DEGRADED)
    assert "OVER" in lines[0]

    html = render_html(snap, title="budget acceptance")
    assert "Per-service budgets" in html
    assert html.index(f"<td>{DEGRADED}</td>") < min(
        html.index(f"<td>{s}</td>")
        for s in tracker.services
        if s != DEGRADED
    )
    assert "OVER" in html
