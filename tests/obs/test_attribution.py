"""BudgetTracker: burn tracking, ranking, gauges, monitor integration."""

from dataclasses import dataclass

import pytest

from repro.obs.attribution import BUDGET_STREAM_BUCKETS, BudgetTracker
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class _Budget:
    service: str
    budget: float


@dataclass(frozen=True)
class _Alloc:
    """Duck-typed stand-in for repro.bn.budgets.BudgetAllocation."""

    budgets: tuple
    sla: float = 2.0
    target: float = 0.1
    slack: float = 1.5
    feasible: bool = True
    expression: str = "a + b"


def _alloc(**budgets):
    return _Alloc(
        budgets=tuple(_Budget(s, b) for s, b in sorted(budgets.items()))
    )


def _feed(registry, tracker, service, values):
    hist = registry.histogram(
        tracker.stream_name(service), buckets=BUDGET_STREAM_BUCKETS
    )
    for v in values:
        hist.observe(v)


def test_tracker_requires_allocation_before_tracking():
    tracker = BudgetTracker()
    assert tracker.allocation is None
    assert tracker.services == ()
    tracker.update_allocation(_alloc(a=0.5, b=1.0))
    assert tracker.services == ("a", "b")
    assert tracker.allocations_seen == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        BudgetTracker(percentile=0.0)
    with pytest.raises(ValueError):
        BudgetTracker(window=0)
    with pytest.raises(ValueError):
        BudgetTracker(burn_rate_threshold=0.0)
    with pytest.raises(ValueError):
        BudgetTracker(stream_pattern="no-placeholder")
    with pytest.raises(ValueError):
        BudgetTracker().update_allocation(_Alloc(budgets=()))


def test_observe_flags_only_the_over_budget_service():
    reg = MetricsRegistry()
    tracker = BudgetTracker(_alloc(a=0.5, b=1.0), window=3)
    _feed(reg, tracker, "a", [0.9] * 20)   # burn ~1.8
    _feed(reg, tracker, "b", [0.4] * 20)   # burn ~0.4
    breaches = tracker.observe(reg)
    assert [b["service"] for b in breaches] == ["a"]
    b = breaches[0]
    assert b["objective"] == "budget.a" and b["kind"] == "budget"
    # Within-bucket interpolation can push the p95 of a constant-0.9
    # stream to its bucket's upper bound (~0.99), so bound, not pin.
    assert 0.9 / 0.5 <= b["burn_rate"] <= 1.0 / 0.5
    ranking = tracker.ranking()
    assert ranking[0]["service"] == "a" and ranking[0]["breached"]
    assert not ranking[1]["breached"]


def test_windowing_uses_deltas_not_cumulative_counts():
    reg = MetricsRegistry()
    tracker = BudgetTracker(_alloc(a=1.0), window=2)
    _feed(reg, tracker, "a", [0.5] * 50)
    assert tracker.observe(reg) == []
    # A fast interval after a slow history: the slow points age out of
    # the 2-interval window even though cumulative counts keep them.
    _feed(reg, tracker, "a", [2.0] * 50)
    assert len(tracker.observe(reg)) == 1
    _feed(reg, tracker, "a", [0.1] * 500)
    tracker.observe(reg)
    _feed(reg, tracker, "a", [0.1] * 500)
    assert tracker.observe(reg) == []


def test_no_points_means_no_breach_and_zero_burn():
    reg = MetricsRegistry()
    tracker = BudgetTracker(_alloc(a=1.0))
    assert tracker.observe(reg) == []
    row = tracker.ranking()[0]
    assert row["consumed"] is None and row["burn_rate"] == 0.0


def test_reallocation_retires_dropped_services_but_keeps_windows():
    reg = MetricsRegistry()
    tracker = BudgetTracker(_alloc(a=0.5, b=1.0), window=4)
    _feed(reg, tracker, "a", [0.9] * 10)
    tracker.observe(reg)
    tracker.update_allocation(_alloc(a=10.0))
    assert tracker.services == ("a",)
    # The measured window survived the re-allocation; only the bound
    # changed, so the same stream now sits far inside budget.
    assert tracker.observe(reg) == []
    assert tracker.allocations_seen == 2


def test_reallocation_removes_retired_service_gauges():
    reg = MetricsRegistry()
    tracker = BudgetTracker(_alloc(a=0.5, b=1.0))
    _feed(reg, tracker, "a", [0.4] * 5)
    tracker.observe(reg)
    tracker.publish_gauges(reg)
    assert "slo.budget.allocated.b" in reg.snapshot()["gauges"]
    tracker.update_allocation(_alloc(a=0.5))
    tracker.publish_gauges(reg)
    gauges = reg.snapshot()["gauges"]
    # Dropped service leaves no stale series behind; survivor stays.
    assert not any(name.endswith(".b") for name in gauges)
    assert "slo.budget.allocated.a" in gauges


def test_blame_feeds_ranking_tiebreak():
    reg = MetricsRegistry()
    tracker = BudgetTracker(_alloc(a=1.0, b=1.0))
    _feed(reg, tracker, "a", [0.5] * 10)
    _feed(reg, tracker, "b", [0.5] * 10)
    tracker.observe(reg)
    tracker.update_blame({"a": 0.2, "b": 0.9, "ghost": 1.0})
    ranking = tracker.ranking()
    assert ranking[0]["service"] == "b"  # equal burn, higher blame first
    assert all(r["service"] != "ghost" for r in ranking)


def test_publish_gauges_writes_every_family():
    reg = MetricsRegistry()
    tracker = BudgetTracker(_alloc(a=0.5))
    _feed(reg, tracker, "a", [0.9] * 10)
    tracker.observe(reg)
    tracker.update_blame({"a": 0.7})
    tracker.publish_gauges(reg)
    snap = reg.snapshot()["gauges"]
    assert snap["slo.budget.allocated.a"] == 0.5
    assert snap["slo.budget.consumed.a"] > 0.5
    assert snap["slo.budget.burn_rate.a"] > 1.0
    assert snap["slo.budget.blame.a"] == 0.7
    assert snap["slo.budget.breached.a"] == 1.0


def test_status_carries_allocation_head_and_history():
    reg = MetricsRegistry()
    tracker = BudgetTracker(_alloc(a=0.5), window=2)
    for _ in range(3):
        _feed(reg, tracker, "a", [0.9] * 5)
        tracker.observe(reg)
    status = tracker.status()
    assert status["sla"] == 2.0 and status["target"] == 0.1
    assert status["feasible"] is True
    assert status["expression"] == "a + b"
    row = status["services"][0]
    assert row["service"] == "a"
    assert len(row["history"]) == 3  # one burn sample per observe call


def test_monitor_integration_routes_budget_breaches(obs_active):
    from repro.obs.runtime import OBS
    from repro.obs.slo import LatencyObjective, SLOBreach, SLOMonitor

    reg = OBS.metrics
    tracker = BudgetTracker(_alloc(a=0.5), window=2)
    mon = SLOMonitor(
        [
            LatencyObjective(
                name="p95", histogram="e2e.seconds", threshold_seconds=100.0
            )
        ],
        registry=reg,
        budget_tracker=tracker,
    )
    seen = []
    mon.subscribe(seen.append)
    reg.histogram("e2e.seconds").observe(0.1)
    _feed(reg, tracker, "a", [0.9] * 10)
    breaches = mon.evaluate()
    budget = [b for b in breaches if b.kind == "budget"]
    assert len(budget) == 1 and isinstance(budget[0], SLOBreach)
    assert budget[0].service == "a"
    assert budget[0] in seen
    assert reg.counter("slo.budget.a.breaches").value == 1
    # Gauges published through the monitor path too.
    assert reg.snapshot()["gauges"]["slo.budget.breached.a"] == 1.0
    assert mon.status()["budgets"]["services"][0]["service"] == "a"


def test_monitor_without_tracker_has_no_budget_block():
    from repro.obs.slo import LatencyObjective, SLOMonitor

    reg = MetricsRegistry()
    mon = SLOMonitor(
        [
            LatencyObjective(
                name="p95", histogram="e2e.seconds", threshold_seconds=1.0
            )
        ],
        registry=reg,
    )
    mon.evaluate()
    assert "budgets" not in mon.status()
