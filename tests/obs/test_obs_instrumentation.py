"""Hot-path instrumentation: the wired counters actually count.

Each test enables observability (via ``obs_active``), exercises one
instrumented subsystem, and checks the metric names documented in
docs/architecture.md.  The last test pins the disabled-mode contract:
with the flag off, instrumented code records nothing at all.
"""

import pytest

from repro.obs import runtime


def _counters(obs):
    return obs.snapshot()["metrics"]["counters"]


# --------------------------------------------------------------------- #
# Inference engine
# --------------------------------------------------------------------- #


def test_engine_query_counts_plan_compiles_and_cache_hits(
    obs_active, ediamond_discrete_model
):
    from repro.bn.inference.engine import CompiledDiscreteModel

    # A fresh engine (not the network's memoized one): its plan cache
    # must start cold for the compile/hit counts to be deterministic.
    net = ediamond_discrete_model.network
    engine = CompiledDiscreteModel(net)
    target = [ediamond_discrete_model.response]
    engine.query(target, {"X1": 0})
    engine.query(target, {"X1": 1})  # same signature: cached plan
    c = _counters(obs_active)
    assert c["engine.plan.compiles"] == 1
    assert c["engine.plan.cache_hits"] == 1
    assert c["engine.query.calls"] == 2
    h = obs_active.snapshot()["metrics"]["histograms"]
    assert h["engine.query.seconds"]["count"] == 2


def test_engine_query_batch_counts_rows(obs_active, ediamond_discrete_model):
    from repro.bn.inference.engine import CompiledDiscreteModel

    engine = CompiledDiscreteModel(ediamond_discrete_model.network)
    rows = [{"X1": 0}, {"X1": 1}, {"X1": 2}]
    engine.query_batch([ediamond_discrete_model.response], rows)
    c = _counters(obs_active)
    assert c["engine.query_batch.calls"] == 1
    assert c["engine.query_batch.rows"] == 3


# --------------------------------------------------------------------- #
# Junction tree
# --------------------------------------------------------------------- #


def test_junction_tree_absorb_retract_counters(
    obs_active, ediamond_discrete_model
):
    from repro.bn.inference.junction_tree import JunctionTree

    net = ediamond_discrete_model.network
    nodes = [str(n) for n in net.nodes]
    jt = JunctionTree(net)
    jt.marginal(nodes[0])
    jt.absorb({nodes[0]: 0})
    jt.marginal(nodes[1])
    jt.retract([nodes[0]])
    jt.marginal(nodes[1])
    c = _counters(obs_active)
    assert c["jtree.absorb.calls"] == 1
    assert c["jtree.retract.calls"] == 1
    assert c["jtree.recalibrations"] >= 1
    h = obs_active.snapshot()["metrics"]["histograms"]
    assert h["jtree.recalibrate.seconds"]["count"] == c["jtree.recalibrations"]


# --------------------------------------------------------------------- #
# Serving: ModelServer + CircuitBreaker
# --------------------------------------------------------------------- #


def test_server_records_tiers_and_rejections(
    obs_active, ediamond_discrete_model
):
    from repro.serving.server import ModelServer

    model = ediamond_discrete_model
    srv = ModelServer(model, rng=0)
    svc = [n for n in model.network.nodes if n != model.response][0]
    ok = srv.query([model.response], {svc: 2}, binned=True)
    assert ok.ok
    bad = srv.query([model.response], {"martian": 1.0})
    assert bad.status == "rejected"
    c = _counters(obs_active)
    assert c["serving.queries"] == 2
    assert c["serving.status.ok"] == 1
    assert c["serving.status.rejected"] == 1
    assert c["serving.rejection_reasons"] >= 1
    assert c[f"serving.tier.{ok.tier}"] == 1


def test_breaker_transitions_are_counted(obs_active):
    from repro.serving.breaker import CircuitBreaker

    br = CircuitBreaker(failure_threshold=2, cooldown=1, name="probe")
    br.record_failure()
    br.record_failure()  # -> open
    assert br.state == "open"
    assert not br.allow()  # cooldown burn
    assert br.allow()  # -> half-open probe
    br.record_success()  # -> closed
    c = _counters(obs_active)
    assert c["serving.breaker.transitions"] == 3
    assert c["serving.breaker.probe.to_open"] == 1
    assert c["serving.breaker.probe.to_half-open"] == 1
    assert c["serving.breaker.probe.to_closed"] == 1
    g = obs_active.snapshot()["metrics"]["gauges"]
    assert g["serving.breaker.probe.open"] == 0.0


# --------------------------------------------------------------------- #
# Decentralized learning
# --------------------------------------------------------------------- #


def test_coordinator_round_metrics_and_span(
    obs_active, ediamond_env, ediamond_data
):
    from repro.decentralized.agent import linear_gaussian_fitter
    from repro.decentralized.coordinator import Coordinator

    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])
    coord = Coordinator(service_dag, linear_gaussian_fitter())
    result = coord.learn_round(train)
    c = _counters(obs_active)
    assert c["decentralized.rounds"] == 1
    assert c["decentralized.agents.fresh"] == len(result.fresh)
    assert c["decentralized.agents.failed"] == 0
    h = obs_active.snapshot()["metrics"]["histograms"]
    assert h["decentralized.agent_fit_seconds"]["count"] == len(result.fresh)
    round_span = obs_active.OBS.tracer.find("decentralized.round")
    assert round_span is not None
    assert round_span.duration == pytest.approx(result.decentralized_seconds)
    assert len(round_span.children) == len(result.per_agent_seconds)


def test_parallel_learning_parent_side_counters(
    obs_active, ediamond_env, ediamond_data
):
    from repro.decentralized.parallel import parallel_parameter_learning

    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])
    fitted = parallel_parameter_learning(service_dag, train, processes=1)
    c = _counters(obs_active)
    assert c["decentralized.parallel.batches"] == 1
    assert c["decentralized.parallel.fits"] == len(fitted)


# --------------------------------------------------------------------- #
# Disabled mode
# --------------------------------------------------------------------- #


def test_disabled_mode_records_nothing(ediamond_discrete_model):
    from repro import obs
    from repro.serving.breaker import CircuitBreaker

    was_enabled = runtime.OBS.enabled
    runtime.OBS.enabled = False
    obs.reset()
    try:
        engine = ediamond_discrete_model.network.compiled()
        engine.query([ediamond_discrete_model.response], {"X1": 0})
        br = CircuitBreaker(failure_threshold=1, name="dark")
        br.record_failure()
        with obs.span("invisible") as sp:
            sp.annotate(k=1)  # the null span accepts and drops this
        snap = obs.snapshot()
        assert snap["enabled"] is False
        # reset() keeps previously created instruments registered (zeroed
        # in place), so the contract is: every value stayed at zero.
        assert all(v == 0 for v in snap["metrics"]["counters"].values())
        assert all(
            h["count"] == 0 for h in snap["metrics"]["histograms"].values()
        )
        assert snap["trace"] == []
    finally:
        obs.reset()
        runtime.OBS.enabled = was_enabled
