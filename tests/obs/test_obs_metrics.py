"""Unit coverage for repro.obs.metrics: instruments and the registry."""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# --------------------------------------------------------------------- #
# Counter / Gauge
# --------------------------------------------------------------------- #


def test_counter_increments_and_rejects_negatives():
    c = Counter("c")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 42  # rejected increment left no trace
    c.reset()
    assert c.value == 0


def test_counter_concurrent_increments_lose_nothing():
    """8 threads x 1000 increments must land exactly 8000 — this is the
    thread-safety contract parallel_parameter_learning's drain relies on."""
    c = Counter("hammered")
    n_threads, n_incs = 8, 1000

    def hammer(_):
        for _ in range(n_incs):
            c.inc()

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(hammer, range(n_threads)))
    assert c.value == n_threads * n_incs


def test_gauge_set_and_add():
    g = Gauge("g")
    g.set(2.5)
    g.add(-1.0)
    assert g.value == pytest.approx(1.5)
    g.reset()
    assert g.value == 0.0


# --------------------------------------------------------------------- #
# Histogram edge cases
# --------------------------------------------------------------------- #


def test_histogram_empty():
    h = Histogram("h")
    assert h.count == 0
    assert h.mean is None
    assert h.min is None and h.max is None
    assert h.percentile(50.0) is None
    assert h.summary()["count"] == 0
    assert h.summary()["p99"] is None


def test_histogram_single_sample():
    h = Histogram("h", buckets=(1.0, 2.0, 4.0))
    h.observe(1.7)
    assert h.count == 1
    for q in (0.0, 50.0, 99.0, 100.0):
        assert h.percentile(q) == pytest.approx(1.7)
    s = h.summary()
    assert s["min"] == s["max"] == s["mean"] == pytest.approx(1.7)


def test_histogram_overflow_bucket():
    h = Histogram("h", buckets=(1.0, 2.0))
    h.observe(100.0)
    h.observe(250.0)
    assert h.overflow_count == 2
    assert h.bucket_counts() == (0, 0, 2)
    # No finite upper bound above the last edge: percentiles report max.
    assert h.percentile(99.0) == pytest.approx(250.0)
    assert h.summary()["overflow"] == 2


def test_histogram_percentiles_clamped_to_observed_range():
    h = Histogram("h", buckets=(10.0, 20.0, 30.0))
    for v in (11.0, 12.0, 13.0, 14.0):
        h.observe(v)
    for q in (1.0, 50.0, 99.0):
        p = h.percentile(q)
        assert 11.0 <= p <= 14.0


def test_histogram_rejects_bad_inputs():
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(2.0, 1.0))
    h = Histogram("h")
    with pytest.raises(ValueError):
        h.percentile(101.0)


def test_histogram_empty_buckets_fall_back_to_defaults():
    assert Histogram("h", buckets=()).buckets == DEFAULT_TIME_BUCKETS


def test_default_time_buckets_are_increasing():
    assert all(
        b2 > b1
        for b1, b2 in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
    )
    assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-6)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    assert sorted(reg) == ["a", "b", "c"]


def test_registry_reset_keeps_cached_handles_valid():
    """Call sites cache instrument handles; reset must zero in place."""
    reg = MetricsRegistry()
    handle = reg.counter("cached")
    handle.inc(5)
    reg.reset()
    assert handle.value == 0
    handle.inc()  # the old handle still feeds the registry
    assert reg.snapshot()["counters"]["cached"] == 1


def test_registry_snapshot_and_exporters():
    reg = MetricsRegistry()
    reg.counter("hits").inc(3)
    reg.gauge("load").set(0.75)
    reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    snap = reg.snapshot()
    assert snap["counters"] == {"hits": 3}
    assert snap["gauges"]["load"] == pytest.approx(0.75)
    assert snap["histograms"]["lat"]["count"] == 1
    parsed = json.loads(reg.to_json())
    assert parsed["counters"]["hits"] == 3
    text = reg.render_text()
    assert "hits" in text and "load" in text and "lat" in text


def test_registry_empty_render():
    assert MetricsRegistry().render_text() == "(no metrics recorded)"


def test_registry_snapshot_is_atomic_against_reset():
    """A snapshot racing a reset must see all-or-nothing, never a mix.

    Both operations hold the registry lock for their whole sweep, so a
    concurrent snapshot observes either every counter at its pre-reset
    value or every counter zeroed.  To make the race window wide enough
    to catch a regression (per-instrument locking would interleave),
    every Counter.reset is slowed by a tiny sleep.
    """
    import threading
    import time as _time

    from repro.obs import metrics as metrics_mod

    reg = MetricsRegistry()
    n_counters, value = 12, 7
    for i in range(n_counters):
        reg.counter(f"c{i}").inc(value)

    original_reset = metrics_mod.Counter.reset

    def slow_reset(self):
        original_reset(self)
        _time.sleep(0.002)  # widen the sweep so a mixed view would show

    snapshots, stop = [], threading.Event()

    def snapshotter():
        while not stop.is_set():
            snapshots.append(reg.snapshot()["counters"])

    # Only the reset mutates during the snapshot storm, so every
    # snapshot must be uniform: all counters at `value`, or all at 0.
    thread = threading.Thread(target=snapshotter)
    metrics_mod.Counter.reset = slow_reset
    try:
        thread.start()
        _time.sleep(0.005)  # let some pre-reset snapshots accumulate
        reg.reset()
    finally:
        stop.set()
        thread.join()
        metrics_mod.Counter.reset = original_reset

    assert snapshots, "snapshotter thread never ran"
    mixed = [
        snap for snap in snapshots
        if len(set(snap.values())) > 1
    ]
    assert not mixed, (
        f"{len(mixed)} snapshot(s) saw a half-reset registry, e.g. "
        f"{mixed[0]}"
    )
    assert snapshots[-1] == {f"c{i}": 0 for i in range(n_counters)}
