"""Trace context across process/message boundaries.

The contract: a context captured inside an open span, shipped through a
worker payload or a :class:`~repro.decentralized.messaging.Message`,
lets the remote side build finished spans that
:meth:`~repro.obs.tracing.Tracer.adopt` grafts back under the exact
span that was open at capture time — one merged tree, one trace id.
"""

import numpy as np
import pytest

from repro.obs.propagation import (
    TraceContext,
    current_context,
    remote_span_payload,
)
from repro.obs.runtime import OBS


# --------------------------------------------------------------------- #
# TraceContext
# --------------------------------------------------------------------- #


def test_context_wire_round_trip():
    ctx = TraceContext(trace_id="t-1", span_id="s-9")
    assert TraceContext.from_wire(ctx.to_wire()) == ctx


@pytest.mark.parametrize("bad", [None, {}, {"trace_id": "t"}, {"span_id": "s"}])
def test_from_wire_tolerates_malformed_payloads(bad):
    assert TraceContext.from_wire(bad) is None


def test_current_context_is_none_when_disabled_or_idle(obs_active):
    assert current_context() is None  # enabled, but no span open
    OBS.enabled = False
    with OBS.tracer.span("ignored"):
        assert current_context() is None  # span open, but disabled


def test_current_context_matches_the_open_span(obs_active):
    with OBS.tracer.span("outer") as outer:
        ctx = current_context()
        assert ctx == TraceContext(
            trace_id=outer.trace_id, span_id=outer.span_id
        )
        with OBS.tracer.span("inner") as inner:
            assert current_context().span_id == inner.span_id
            assert current_context().trace_id == outer.trace_id


# --------------------------------------------------------------------- #
# Remote payloads + adoption
# --------------------------------------------------------------------- #


def test_remote_span_payload_shape():
    ctx = TraceContext(trace_id="t-1", span_id="s-1")
    payload = remote_span_payload("agent:X1", 0.25, ctx, node="X1")
    assert payload["name"] == "agent:X1"
    assert payload["duration_seconds"] == 0.25
    assert payload["trace_id"] == "t-1"
    assert payload["parent_span_id"] == "s-1"
    assert payload["extra"] == {"node": "X1"}
    # accepts the wire-dict form too (what actually crosses the pickle)
    assert remote_span_payload("a", 0.1, ctx.to_wire())["trace_id"] == "t-1"
    # and no context at all (tracing off at dispatch time)
    bare = remote_span_payload("a", 0.1, None)
    assert "parent_span_id" not in bare and "trace_id" not in bare


def test_adopt_grafts_under_the_context_span(obs_active):
    with OBS.tracer.span("decentralized.round") as round_span:
        ctx = current_context()
    payload = remote_span_payload("agent:X1", 0.5, ctx)
    adopted = OBS.tracer.adopt(payload)
    assert adopted.parent is round_span
    assert adopted in round_span.children
    assert adopted.trace_id == round_span.trace_id
    assert adopted.duration == 0.5


def test_adopt_without_resolvable_parent_falls_back_to_current(obs_active):
    payload = remote_span_payload(
        "agent:X1", 0.5, TraceContext("gone", "gone")
    )
    with OBS.tracer.span("other") as other:
        adopted = OBS.tracer.adopt(payload)
        assert adopted.parent is other
    orphan = OBS.tracer.adopt(
        remote_span_payload("agent:X2", 0.1, TraceContext("gone", "gone"))
    )
    assert orphan.parent is None
    assert orphan in OBS.tracer.roots


def test_adopt_preserves_remote_subtrees_and_ids(obs_active):
    with OBS.tracer.span("parent"):
        ctx = current_context()
    payload = remote_span_payload("remote", 1.0, ctx)
    payload["children"] = [
        {"name": "child", "span_id": "r-2", "duration_seconds": 0.25,
         "status": "error", "error": "ValueError: boom"},
    ]
    adopted = OBS.tracer.adopt(payload)
    child = adopted.children[0]
    assert child.span_id == "r-2"
    assert child.status == "error"
    assert child.error == "ValueError: boom"
    assert child.trace_id == adopted.trace_id


# --------------------------------------------------------------------- #
# Messaging piggyback (the paper's "extra SOAP segment")
# --------------------------------------------------------------------- #


def test_network_transmit_piggybacks_open_span_context(obs_active):
    from repro.decentralized.messaging import Network

    net = Network()
    with OBS.tracer.span("decentralized.round") as round_span:
        delivered = net.transmit("X1", "X2", "X1", np.ones(4))
    assert len(delivered) == 1
    ctx = TraceContext.from_wire(delivered[0].trace)
    assert ctx is not None
    assert ctx.span_id == round_span.span_id
    assert ctx.trace_id == round_span.trace_id


def test_network_transmit_carries_no_trace_when_disabled():
    from repro.decentralized.messaging import Network

    assert not OBS.enabled
    delivered = Network().transmit("X1", "X2", "X1", np.ones(4))
    assert delivered[0].trace is None


def test_transmit_outside_any_span_carries_no_trace(obs_active):
    from repro.decentralized.messaging import Network

    delivered = Network().transmit("X1", "X2", "X1", np.ones(4))
    assert delivered[0].trace is None


# --------------------------------------------------------------------- #
# Multiprocessing learn path: one merged tree
# --------------------------------------------------------------------- #


def _toy_problem():
    from repro.bn.dag import DAG
    from repro.bn.data import Dataset

    rng = np.random.default_rng(0)
    x1 = rng.normal(1.0, 0.1, size=200)
    x2 = 2.0 * x1 + rng.normal(0.0, 0.05, size=200)
    d = x1 + x2 + rng.normal(0.0, 0.05, size=200)
    dag = DAG(("X1", "X2", "D"), (("X1", "X2"), ("X1", "D"), ("X2", "D")))
    return dag, Dataset({"X1": x1, "X2": x2, "D": d})


def test_parallel_learning_merges_agent_spans_under_round(obs_active):
    from repro.decentralized.parallel import parallel_parameter_learning

    dag, data = _toy_problem()
    fitted = parallel_parameter_learning(dag, data, processes=2)
    assert set(fitted) == {"X1", "X2", "D"}

    round_span = OBS.tracer.find("decentralized.round")
    assert round_span is not None
    agents = {c.name: c for c in round_span.children}
    assert set(agents) == {"agent:X1", "agent:X2", "agent:D"}
    # every agent span is on the round's trace, with a real fit time
    for sp in agents.values():
        assert sp.trace_id == round_span.trace_id
        assert sp.duration > 0
    # Sec.-3.4 accounting: the round costs its slowest agent
    assert round_span.duration == pytest.approx(
        max(sp.duration for sp in agents.values())
    )
    hist = OBS.metrics.histogram("decentralized.parallel.fit_seconds")
    assert hist.count == 3
