"""Unit coverage for repro.obs.tracing: span trees, clocks, exporters."""

import json

import pytest

from repro.obs.tracing import Tracer


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


def test_spans_nest_into_a_tree():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("root"):
        with tracer.span("child-a"):
            with tracer.span("grandchild"):
                pass
        with tracer.span("child-b"):
            pass
    (root,) = tracer.roots
    assert [c.name for c in root.children] == ["child-a", "child-b"]
    assert root.children[0].children[0].name == "grandchild"
    assert tracer.current is None  # stack fully unwound


def test_injected_clock_makes_durations_deterministic():
    tracer = Tracer(clock=FakeClock(step=1.0))
    with tracer.span("timed"):
        pass
    (sp,) = tracer.roots
    # One read at open, one at close, step 1.0.
    assert sp.duration == pytest.approx(1.0)
    assert sp.finished


def test_exception_marks_span_error_and_reraises():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError, match="boom"):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    (outer,) = tracer.roots
    inner = outer.children[0]
    assert inner.status == "error"
    assert "RuntimeError: boom" in inner.error
    assert outer.status == "error"  # unwound through the parent too
    assert inner.finished and outer.finished
    assert tracer.current is None  # stack unwound despite the raise
    # The tracer is still usable after the exception.
    with tracer.span("next"):
        pass
    assert tracer.find("next") is not None


def test_record_span_and_override_duration():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("round") as round_span:
        sp = tracer.record_span("agent:X1", 0.25, status="ok", fit=0.25)
        round_span.override_duration(0.25)
    assert sp.parent is round_span
    assert sp.duration == pytest.approx(0.25)
    assert sp.extra["fit"] == 0.25
    # Accounted time wins over the measured wall clock.
    assert round_span.duration == pytest.approx(0.25)
    with pytest.raises(ValueError):
        sp.override_duration(-1.0)


def test_annotate_and_find():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a"):
        with tracer.span("b") as b:
            b.annotate(k=1, status="stale")
    found = tracer.find("b")
    assert found is not None and found.extra == {"k": 1, "status": "stale"}
    assert tracer.find("missing") is None


def test_json_and_text_exports():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("parent"):
        tracer.record_span("leaf", 0.001)
    payload = json.loads(tracer.to_json())
    assert payload[0]["name"] == "parent"
    assert payload[0]["children"][0]["name"] == "leaf"
    text = tracer.render_text()
    assert "parent" in text
    assert "`- leaf" in text
    assert "ms" in text


def test_clear_drops_spans():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("x"):
        pass
    tracer.clear()
    assert tracer.roots == []
    assert tracer.render_text() == "(no spans recorded)"


def test_memory_span_captures_tracemalloc_peak():
    tracer = Tracer()
    with tracer.span("alloc", memory=True):
        blob = [bytearray(64 * 1024) for _ in range(8)]
        del blob
    (sp,) = tracer.roots
    assert sp.peak_memory_bytes is not None
    assert sp.peak_memory_bytes >= 8 * 64 * 1024
    assert "peak" in tracer.render_text()
