"""Prometheus wire format, HTTP endpoint, and JSONL sink contracts.

The exposition rules checked here are the ones a real Prometheus server
parses by: ``_total``-suffixed counters, cumulative ``_bucket`` series
terminated by ``le="+Inf"``, ``_sum``/``_count`` pairs, and label-value
escaping.  A golden file pins the full rendering of a deterministic
registry, and a minimal text parser reads the scrape back so the test
asserts semantics (sample values) rather than just bytes.
"""

import json
import threading
import urllib.request

import pytest

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    ExportServer,
    JsonlEventSink,
    escape_label_value,
    render,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import OBS

from pathlib import Path

GOLDEN = Path(__file__).parent / "data" / "golden_metrics.prom"


def _deterministic_registry() -> MetricsRegistry:
    """The fixed registry the golden file renders (no clocks, no RNG)."""
    m = MetricsRegistry()
    m.counter("serving.queries").inc(42)
    m.counter("decentralized.rounds").inc(3)
    m.gauge("manager.last_violation_prob").set(0.125)
    h = m.histogram("inference.query_seconds", buckets=(0.001, 0.01, 0.1, 1.0))
    for v in (0.0005, 0.002, 0.002, 0.05, 0.5, 2.5):
        h.observe(v)
    return m


def parse_prometheus(text: str) -> dict:
    """Minimal exposition parser: ``{name{labels}: float}`` for samples,
    ignoring comment lines.  Enough to read our own scrape back."""
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


# --------------------------------------------------------------------- #
# Name / label escaping
# --------------------------------------------------------------------- #


def test_sanitize_metric_name():
    assert (
        sanitize_metric_name("serving.tier.compiled-einsum")
        == "repro_serving_tier_compiled_einsum"
    )
    assert sanitize_metric_name("9lives") == "repro_9lives"
    assert sanitize_metric_name("x", prefix="") == "x"
    # digits are only escaped at the start of the *bare* name
    assert sanitize_metric_name("0x", prefix="") == "_0x"


def test_escape_label_value_covers_the_three_specials():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"
    # combined, order-independent round trip of the escapes
    assert escape_label_value('\\"\n') == '\\\\\\"\\n'


def test_const_labels_are_escaped_in_rendered_output():
    m = MetricsRegistry()
    m.counter("c").inc()
    text = render_prometheus(
        m.snapshot(), const_labels={"instance": 'we"ird\\host\n'}
    )
    assert 'instance="we\\"ird\\\\host\\n"' in text


# --------------------------------------------------------------------- #
# Exposition-format conventions
# --------------------------------------------------------------------- #


def test_counter_gets_total_suffix_and_type_line():
    m = MetricsRegistry()
    m.counter("serving.queries").inc(7)
    text = render_prometheus(m.snapshot())
    assert "# TYPE repro_serving_queries_total counter" in text
    assert "repro_serving_queries_total 7" in text


def test_histogram_buckets_are_cumulative_and_inf_terminated():
    m = _deterministic_registry()
    samples = parse_prometheus(render_prometheus(m.snapshot()))
    prefix = "repro_inference_query_seconds"
    buckets = [
        samples[f'{prefix}_bucket{{le="{le}"}}']
        for le in ("0.001", "0.01", "0.1", "1", "+Inf")
    ]
    # 1 obs <= 1ms, 2 more <= 10ms, 1 more <= 100ms, 1 more <= 1s, 1 overflow
    assert buckets == [1.0, 3.0, 4.0, 5.0, 6.0]
    assert buckets == sorted(buckets), "bucket series must be cumulative"
    assert samples[f"{prefix}_count"] == 6.0
    assert samples[f"{prefix}_sum"] == pytest.approx(3.0545)


def test_render_prometheus_matches_golden_file():
    """Bytes-level pin of the full rendering, const labels included."""
    text = render_prometheus(
        _deterministic_registry().snapshot(),
        const_labels={"scenario": "ediamond"},
    )
    assert text == GOLDEN.read_text()


def test_golden_scrape_parses_back_to_the_registry_values():
    samples = parse_prometheus(GOLDEN.read_text())
    assert samples['repro_serving_queries_total{scenario="ediamond"}'] == 42.0
    assert samples['repro_decentralized_rounds_total{scenario="ediamond"}'] == 3.0
    assert samples[
        'repro_manager_last_violation_prob{scenario="ediamond"}'
    ] == 0.125
    inf_key = 'repro_inference_query_seconds_bucket{scenario="ediamond",le="+Inf"}'
    count_key = 'repro_inference_query_seconds_count{scenario="ediamond"}'
    assert samples[inf_key] == samples[count_key] == 6.0


def test_empty_registry_renders_a_comment_only():
    text = render_prometheus(MetricsRegistry().snapshot())
    assert text.startswith("#")
    assert parse_prometheus(text) == {}


def test_render_rejects_unknown_format():
    with pytest.raises(ValueError, match="unknown obs format"):
        render("yaml")


# --------------------------------------------------------------------- #
# HTTP endpoint
# --------------------------------------------------------------------- #


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


def test_export_server_serves_metrics_health_and_snapshot(obs_active):
    OBS.metrics.counter("serving.queries").inc(5)
    with ExportServer() as srv:
        status, ctype, body = _get(srv.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        samples = parse_prometheus(body)
        assert samples["repro_serving_queries_total"] == 5.0

        status, ctype, body = _get(srv.url + "/healthz")
        assert status == 200
        assert ctype == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["obs_enabled"] is True

        status, _, body = _get(srv.url + "/snapshot")
        snap = json.loads(body)
        assert snap["metrics"]["counters"]["serving.queries"] == 5

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(srv.url + "/nope")
        assert err.value.code == 404


def test_scrapes_are_metered(obs_active):
    with ExportServer() as srv:
        _get(srv.url + "/metrics")
        _get(srv.url + "/metrics")
    assert OBS.metrics.counter("obs.export.scrapes").value == 2
    assert OBS.metrics.histogram("obs.export.scrape_seconds").count == 2


def test_server_port_zero_picks_a_free_port_and_stop_is_idempotent():
    srv = ExportServer(port=0)
    with pytest.raises(RuntimeError):
        srv.port  # not started yet
    srv.start()
    assert srv.port > 0
    srv.stop()
    srv.stop()  # second stop is a no-op


# --------------------------------------------------------------------- #
# JSONL event sink
# --------------------------------------------------------------------- #


def _read_events(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_sink_writes_categorized_events(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlEventSink(str(path)) as sink:
        assert sink.emit("trace", {"name": "root"}) is True
        assert sink.emit("slo_breach", {"objective": "p95"}) is True
    events = _read_events(path)
    assert [e["category"] for e in events] == ["trace", "slo_breach"]
    assert events[0]["name"] == "root"
    assert events[0]["seq"] == 0


def test_sink_sampling_keeps_one_in_n_deterministically(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlEventSink(str(path), sample={"trace": 3}) as sink:
        written = [sink.emit("trace", {"i": i}) for i in range(9)]
        # unsampled categories are untouched
        assert sink.emit("slo_breach", {}) is True
    assert written == [True, False, False] * 3
    kept = [e["i"] for e in _read_events(path) if e["category"] == "trace"]
    assert kept == [0, 3, 6]
    assert sink.stats["sampled_out"] == 6
    assert sink.stats["per_category"]["trace"] == 9


def test_sink_rotation_bounds_disk(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlEventSink(str(path), max_bytes=200, max_files=2)
    for i in range(50):
        sink.emit("trace", {"i": i, "pad": "x" * 40})
    sink.close()
    rotated = sorted(p.name for p in tmp_path.iterdir())
    assert "events.jsonl" in rotated
    assert "events.jsonl.1" in rotated
    assert "events.jsonl.3" not in rotated  # max_files caps rotation depth
    # every surviving file stays parseable line-by-line
    for p in tmp_path.iterdir():
        _read_events(p)


def test_sink_never_raises_after_close(tmp_path):
    sink = JsonlEventSink(str(tmp_path / "e.jsonl"))
    sink.close()
    assert sink.emit("trace", {}) is False


def test_sink_is_thread_safe(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlEventSink(str(path), max_bytes=10_000_000)
    n_threads, per_thread = 8, 50

    def worker(tid):
        for i in range(per_thread):
            sink.emit("trace", {"tid": tid, "i": i})

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    sink.close()
    events = _read_events(path)
    assert len(events) == n_threads * per_thread
    assert sink.stats["emitted"] == n_threads * per_thread


def test_sink_validates_configuration(tmp_path):
    with pytest.raises(ValueError, match="max_bytes"):
        JsonlEventSink(str(tmp_path / "a"), max_bytes=0)
    with pytest.raises(ValueError, match="max_files"):
        JsonlEventSink(str(tmp_path / "b"), max_files=0)
    with pytest.raises(ValueError, match="sample rate"):
        JsonlEventSink(str(tmp_path / "c"), sample={"trace": 0})


def test_attached_sink_streams_finished_root_spans(obs_active, tmp_path):
    from repro import obs
    from repro.obs import runtime

    path = tmp_path / "spans.jsonl"
    sink = JsonlEventSink(str(path))
    runtime.attach_sink(sink)
    try:
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        with obs.span("second"):
            pass
    finally:
        runtime.detach_sink()
        sink.close()
    events = _read_events(path)
    assert [e["name"] for e in events] == ["outer", "second"]
    assert events[0]["children"][0]["name"] == "inner"
    assert runtime.OBS.tracer.on_close is None
