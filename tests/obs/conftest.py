"""Obs-suite fixture: enable observability for one test, leave no trace.

The obs state is process-global, so every test that turns it on must
restore the previous enable flag and zero the registry/tracer on the
way out — otherwise later (unrelated) tests would see leaked counters.
"""

import pytest

from repro import obs
from repro.obs import runtime


@pytest.fixture
def obs_active():
    was_enabled = runtime.OBS.enabled
    obs.enable()
    obs.reset()
    yield obs
    obs.reset()
    runtime.OBS.enabled = was_enabled
