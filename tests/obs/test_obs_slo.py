"""Windowed SLO monitoring: deltas, burn rates, breach plumbing.

These tests drive :class:`SLOMonitor` against a private registry with
hand-fed instruments so every delta and percentile is exact, then check
the manager-facing surface: objective derivation from an
:class:`~repro.core.manager.SLAPolicy` and the breach-triggered action
inside :meth:`AutonomicManager.run_cycle`.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    ErrorRateObjective,
    LatencyObjective,
    SLOBreach,
    SLOMonitor,
    manager_objectives,
)

BUCKETS = (0.1, 0.5, 1.0, 5.0)


def _latency_monitor(registry, threshold=1.0, **kwargs):
    obj = LatencyObjective(
        name="p95", histogram="lat_seconds", threshold_seconds=threshold
    )
    registry.histogram("lat_seconds", buckets=BUCKETS)
    return SLOMonitor([obj], registry=registry, **kwargs)


def _observe(registry, values):
    h = registry.histogram("lat_seconds", buckets=BUCKETS)
    for v in values:
        h.observe(v)


# --------------------------------------------------------------------- #
# Construction contracts
# --------------------------------------------------------------------- #


def test_objective_validation():
    with pytest.raises(ValueError, match="threshold_seconds"):
        LatencyObjective("x", "h", threshold_seconds=0.0)
    with pytest.raises(ValueError, match="percentile"):
        LatencyObjective("x", "h", threshold_seconds=1.0, percentile=0.0)
    with pytest.raises(ValueError, match="max_ratio"):
        ErrorRateObjective("x", "e", "t", max_ratio=1.0)


def test_monitor_validation():
    reg = MetricsRegistry()
    obj = LatencyObjective("p95", "h", threshold_seconds=1.0)
    with pytest.raises(ValueError, match="at least one objective"):
        SLOMonitor([], registry=reg)
    with pytest.raises(ValueError, match="window"):
        SLOMonitor([obj], registry=reg, window=0)
    with pytest.raises(ValueError, match="burn_rate_threshold"):
        SLOMonitor([obj], registry=reg, burn_rate_threshold=0.0)
    with pytest.raises(ValueError, match="unique"):
        SLOMonitor([obj, obj], registry=reg)


# --------------------------------------------------------------------- #
# Latency objectives
# --------------------------------------------------------------------- #


def test_healthy_stream_never_breaches():
    reg = MetricsRegistry()
    mon = _latency_monitor(reg, threshold=1.0)
    for _ in range(4):
        _observe(reg, [0.05] * 20)
        assert mon.evaluate() == []
    assert reg.counter("slo.evaluations").value == 4
    assert reg.counter("slo.breaches").value == 0


def test_slow_stream_breaches_with_burn_rate():
    reg = MetricsRegistry()
    mon = _latency_monitor(reg, threshold=0.5)
    _observe(reg, [4.0] * 20)  # p95 lands in the (1.0, 5.0] bucket
    breaches = mon.evaluate()
    assert len(breaches) == 1
    b = breaches[0]
    assert isinstance(b, SLOBreach)
    assert b.objective == "p95"
    assert b.kind == "latency"
    assert b.observed > 1.0
    assert b.burn_rate == pytest.approx(b.observed / 0.5)
    assert b.burn_rate >= 1.0
    assert reg.counter("slo.breaches").value == 1
    assert reg.counter("slo.p95.breaches").value == 1
    assert reg.gauge("slo.p95.breached").value == 1.0
    assert b.to_dict()["burn_rate"] == b.burn_rate


def test_windowing_judges_the_aggregate_not_the_interval():
    """One slow interval inside a healthy window need not breach, and
    the breach clears once healthy intervals push the bad one out."""
    reg = MetricsRegistry()
    mon = _latency_monitor(reg, threshold=1.0, window=3)
    # Interval 1: overwhelmingly fast with a few slow points.
    _observe(reg, [0.05] * 95 + [4.0] * 5)
    assert mon.evaluate() == []  # p95 of the window is still fast
    # Interval 2: all slow — the window aggregate tips over.
    _observe(reg, [4.0] * 100)
    assert len(mon.evaluate()) == 1
    # Healthy intervals push the slow one out of the 3-wide window.
    for _ in range(3):
        _observe(reg, [0.05] * 200)
        breaches = mon.evaluate()
    assert breaches == []


def test_registry_reset_is_detected_not_mistaken_for_regression():
    reg = MetricsRegistry()
    mon = _latency_monitor(reg, threshold=0.5, window=1)
    _observe(reg, [0.05] * 10)
    assert mon.evaluate() == []
    reg.reset()  # cumulative counts drop — the monitor must re-base
    _observe(reg, [4.0] * 10)
    breaches = mon.evaluate()
    assert len(breaches) == 1
    # the delta was the 10 post-reset points, not a negative artifact
    assert "10 point(s)" in breaches[0].detail


def test_min_points_suppresses_judgement_on_thin_windows():
    reg = MetricsRegistry()
    mon = _latency_monitor(reg, threshold=0.5, min_points=50)
    _observe(reg, [4.0] * 10)  # all slow, but too few points to judge
    assert mon.evaluate() == []
    _observe(reg, [4.0] * 60)
    assert len(mon.evaluate()) == 1


# --------------------------------------------------------------------- #
# Error-rate objectives
# --------------------------------------------------------------------- #


def _error_monitor(reg, max_ratio=0.1, **kwargs):
    obj = ErrorRateObjective(
        name="err", errors="fails", total="calls", max_ratio=max_ratio
    )
    return SLOMonitor([obj], registry=reg, **kwargs)


def test_error_rate_breach_on_window_ratio():
    reg = MetricsRegistry()
    mon = _error_monitor(reg, max_ratio=0.1, window=2)
    reg.counter("calls").inc(100)
    reg.counter("fails").inc(2)
    assert mon.evaluate() == []  # 2%
    reg.counter("calls").inc(100)
    reg.counter("fails").inc(38)
    breaches = mon.evaluate()  # window: 40/200 = 20%
    assert len(breaches) == 1
    assert breaches[0].kind == "error_rate"
    assert breaches[0].observed == pytest.approx(0.2)
    assert breaches[0].burn_rate == pytest.approx(2.0)


def test_error_rate_with_no_traffic_is_not_judged():
    reg = MetricsRegistry()
    mon = _error_monitor(reg)
    assert mon.evaluate() == []
    status = mon.status()["objectives"][0]
    assert status["observed"] is None
    assert status["breached"] is False


# --------------------------------------------------------------------- #
# Plumbing: gauges, subscribers, events, status
# --------------------------------------------------------------------- #


def test_publish_gauges_is_scrape_safe():
    """A scrape between evaluations must not consume a window interval."""
    reg = MetricsRegistry()
    mon = _latency_monitor(reg, threshold=0.5, window=2)
    _observe(reg, [4.0] * 10)
    mon.evaluate()
    state = mon._states["p95"]
    intervals_before = len(state.window)
    for _ in range(5):
        mon.publish_gauges()
    assert len(state.window) == intervals_before
    assert mon.evaluations == 1
    assert reg.gauge("slo.p95.breached").value == 1.0


def test_subscribers_receive_breaches():
    reg = MetricsRegistry()
    mon = _latency_monitor(reg, threshold=0.5)
    seen = []
    mon.subscribe(seen.append)
    _observe(reg, [4.0] * 10)
    mon.evaluate()
    assert len(seen) == 1
    assert seen[0].objective == "p95"


def test_breaches_stream_to_the_attached_sink(obs_active, tmp_path):
    import json

    from repro.obs import runtime
    from repro.obs.export import JsonlEventSink

    reg = runtime.OBS.metrics
    mon = _latency_monitor(reg, threshold=0.5)
    sink = JsonlEventSink(str(tmp_path / "events.jsonl"))
    runtime.attach_sink(sink)
    try:
        _observe(reg, [4.0] * 10)
        mon.evaluate()
    finally:
        runtime.detach_sink()
        sink.close()
    events = [
        json.loads(line)
        for line in (tmp_path / "events.jsonl").read_text().splitlines()
    ]
    assert [e["category"] for e in events] == ["slo_breach"]
    assert events[0]["objective"] == "p95"


def test_status_is_json_ready():
    import json

    reg = MetricsRegistry()
    mon = _latency_monitor(reg, threshold=0.5, window=7)
    _observe(reg, [4.0] * 10)
    mon.evaluate()
    status = mon.status()
    json.dumps(status)  # must not raise
    assert status["window"] == 7
    assert status["evaluations"] == 1
    assert status["objectives"][0]["breached"] is True


# --------------------------------------------------------------------- #
# Manager integration
# --------------------------------------------------------------------- #


def test_manager_objectives_derive_from_policy():
    from repro.core.manager import SLAPolicy

    policy = SLAPolicy(threshold=2.0, max_violation_prob=0.2)
    latency, errors = manager_objectives(policy)
    assert latency.histogram == "manager.window.response_seconds"
    assert latency.threshold_seconds == 2.0
    assert errors.errors == "manager.window.violations"
    assert errors.total == "manager.window.points"
    assert errors.max_ratio == 0.2


def _lenient_manager(slo_monitor):
    """An eDiaMoND manager whose *model* trigger is parked out of reach
    (sky-high SLA threshold → predicted violation probability ~0), so
    any action taken is attributable to the SLO path alone."""
    from repro.core.manager import AutonomicManager, SLAPolicy
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    env = ediamond_scenario()
    policy = SLAPolicy(threshold=1e6, max_violation_prob=0.99)
    return AutonomicManager(
        env, policy, window_points=60, rng=0, slo_monitor=slo_monitor
    )


def test_slo_breach_triggers_manager_action_within_one_cycle(obs_active):
    from repro.obs.runtime import OBS

    # The measured stream (seconds-scale responses) overruns a
    # millisecond latency objective, while the model sees no risk at
    # all against its 1e6 SLA threshold.
    mon = SLOMonitor(
        [
            LatencyObjective(
                name="response_p95",
                histogram="manager.window.response_seconds",
                threshold_seconds=1e-3,
            )
        ],
        registry=OBS.metrics,
        window=3,
    )
    manager = _lenient_manager(mon)
    report = manager.run_cycle()
    assert report.slo_breaches, "measured overruns must surface as breaches"
    assert [b.objective for b in report.slo_breaches] == ["response_p95"]
    assert report.violation_prob <= manager.policy.max_violation_prob
    assert report.trigger == "slo"
    assert report.acted, "an SLO breach alone must drive plan/execute"
    assert OBS.metrics.counter("manager.slo_breach_cycles").value == 1
    assert OBS.metrics.counter("manager.actions").value == 1


def test_healthy_manager_with_monitor_takes_no_slo_action(obs_active):
    from repro.core.manager import AutonomicManager, SLAPolicy
    from repro.obs.runtime import OBS
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    env = ediamond_scenario()
    policy = SLAPolicy(threshold=1e6, max_violation_prob=0.99)
    mon = SLOMonitor(manager_objectives(policy), registry=OBS.metrics)
    manager = AutonomicManager(
        env, policy, window_points=60, rng=0, slo_monitor=mon
    )
    report = manager.run_cycle()
    assert report.slo_breaches == []
    assert report.trigger is None
    assert not report.acted


def test_window_metrics_feed_without_a_monitor_when_obs_enabled(obs_active):
    """Even monitor-less managers publish the measured stream, so an
    external scraper (or a later-attached monitor) can judge it."""
    from repro.core.manager import AutonomicManager, SLAPolicy
    from repro.obs.runtime import OBS
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    manager = AutonomicManager(
        ediamond_scenario(),
        SLAPolicy(threshold=1e-3, max_violation_prob=0.99),
        window_points=60,
        rng=0,
    )
    manager.run_cycle()
    assert OBS.metrics.histogram("manager.window.response_seconds").count > 0
    assert OBS.metrics.counter("manager.window.points").value > 0
    assert OBS.metrics.counter("manager.window.violations").value > 0


# --------------------------------------------------------------------- #
# Serialization contracts (ISSUE 10 satellites)
# --------------------------------------------------------------------- #


def test_slobreach_to_dict_round_trips():
    breach = SLOBreach(
        objective="budget.X3",
        kind="budget",
        observed=0.41,
        threshold=0.3,
        burn_rate=1.3667,
        window_intervals=3,
        detail="p95(stream) over 3 interval(s)",
        service="X3",
    )
    spec = breach.to_dict()
    assert spec["service"] == "X3"
    assert SLOBreach.from_dict(spec) == breach
    # Pre-PR-10 payloads carry no service key; it defaults to None.
    legacy = {k: v for k, v in spec.items() if k != "service"}
    assert SLOBreach.from_dict(legacy).service is None


def test_status_matches_golden_snapshot():
    """The status() dict is the dashboard/export contract — pin it."""
    import json
    import pathlib

    reg = MetricsRegistry()
    mon = SLOMonitor(
        [
            LatencyObjective(
                name="p95", histogram="lat_seconds", threshold_seconds=1.0
            ),
            ErrorRateObjective(
                name="err", errors="errs", total="total", max_ratio=0.25
            ),
        ],
        registry=reg,
        window=3,
    )
    _observe(reg, [0.2] * 10 + [2.0] * 10)
    reg.counter("errs").inc(2)
    reg.counter("total").inc(20)
    mon.evaluate()
    golden_path = (
        pathlib.Path(__file__).parent / "data" / "slo_status_golden.json"
    )
    golden = json.loads(golden_path.read_text())
    assert json.loads(json.dumps(mon.status())) == golden


# --------------------------------------------------------------------- #
# manager_objectives / _percentile_from_buckets edge cases
# --------------------------------------------------------------------- #


def test_manager_objectives_percentile_variants():
    from repro.core.manager import SLAPolicy

    policy = SLAPolicy(threshold=2.0, max_violation_prob=0.2)
    p50, _ = manager_objectives(policy, percentile=50.0)
    assert p50.name == "response_p50" and p50.percentile == 50.0
    p99, _ = manager_objectives(policy, percentile=99.0)
    assert p99.name == "response_p99" and p99.percentile == 99.0
    # The default keeps the historical name the dashboards key on.
    default, _ = manager_objectives(policy)
    assert default.name == "response_p95"


def test_manager_objectives_reject_missing_policy():
    with pytest.raises(ValueError, match="SLAPolicy"):
        manager_objectives(None)


def test_percentile_from_buckets_zero_observations():
    from repro.obs.slo import _percentile_from_buckets

    assert _percentile_from_buckets(BUCKETS, [0] * 5, 95.0) is None


def test_percentile_from_buckets_at_bucket_boundaries():
    from repro.obs.slo import _percentile_from_buckets

    # All mass in the first bucket: p100 interpolates to its upper
    # bound, and the lower edge of bucket 0 is implicitly zero.
    assert _percentile_from_buckets(BUCKETS, [10, 0, 0, 0, 0], 100.0) == (
        pytest.approx(0.1)
    )
    assert _percentile_from_buckets(BUCKETS, [10, 0, 0, 0, 0], 10.0) == (
        pytest.approx(0.01)
    )
    # Rank landing exactly on a cumulative boundary stays in that bucket.
    assert _percentile_from_buckets(BUCKETS, [5, 5, 0, 0, 0], 50.0) == (
        pytest.approx(0.1)
    )
    # Overflow mass (beyond the last bound) clamps to the last bound.
    assert _percentile_from_buckets(BUCKETS, [0, 0, 0, 0, 7], 95.0) == (
        pytest.approx(5.0)
    )
    assert _percentile_from_buckets(BUCKETS, [1, 0, 0, 0, 1], 99.0) == (
        pytest.approx(5.0)
    )
