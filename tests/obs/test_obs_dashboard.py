"""Dashboard rendering: terminal summary, HTML report, snapshot sources."""

import json

import pytest

from repro.obs.dashboard import load_snapshot, render_html, render_terminal

SNAP = {
    "enabled": True,
    "metrics": {
        "counters": {"serving.queries": 42, "slo.breaches": 1},
        "gauges": {"manager.last_violation_prob": 0.25},
        "histograms": {
            "inference.query_seconds": {
                "count": 6, "sum": 3.0, "mean": 0.5, "min": 0.001,
                "max": 2.5, "p50": 0.01, "p95": 1.2, "p99": 2.0,
                "overflow": 1,
                "bucket_bounds": [0.01, 1.0], "bucket_counts": [3, 2, 1],
            },
            "empty.hist": {
                "count": 0, "sum": 0.0, "mean": None, "min": None,
                "max": None, "p50": None, "p95": None, "p99": None,
                "overflow": 0, "bucket_bounds": [1.0], "bucket_counts": [0, 0],
            },
        },
    },
    "trace": [
        {
            "name": "manager.cycle",
            "duration_seconds": 0.125,
            "status": "ok",
            "children": [
                {"name": "manager.monitor", "duration_seconds": 0.025,
                 "status": "ok"},
                {"name": "manager.analyze", "duration_seconds": 0.1,
                 "status": "error"},
            ],
        }
    ],
    "slo": {
        "evaluations": 4,
        "window": 5,
        "burn_rate_threshold": 1.0,
        "objectives": [
            {"objective": "response_p95", "kind": "latency", "observed": 2.4,
             "threshold": 2.0, "burn_rate": 1.2, "breached": True,
             "window_intervals": 4},
            {"objective": "violation_rate", "kind": "error_rate",
             "observed": 0.01, "threshold": 0.2, "burn_rate": 0.05,
             "breached": False, "window_intervals": 4},
        ],
        "budgets": {
            "allocations_seen": 2,
            "percentile": 95.0,
            "window": 5,
            "burn_rate_threshold": 1.0,
            "sla": 3.5,
            "target": 0.1,
            "slack": 2.2,
            "feasible": True,
            "expression": "X1 + max(X3, X6)",
            "services": [
                {"service": "X3", "allocated": 0.9, "consumed": 1.4,
                 "burn_rate": 1.56, "blame": 0.94, "breached": True,
                 "points": 60, "history": [0.5, 0.7, 1.56]},
                {"service": "X6", "allocated": 1.1, "consumed": 0.8,
                 "burn_rate": 0.73, "blame": 0.2, "breached": False,
                 "points": 60, "history": [0.7, 0.73]},
            ],
        },
    },
}


def test_terminal_summary_covers_every_section():
    text = render_terminal(SNAP)
    assert "obs enabled: True" in text
    assert "serving.queries" in text and "42" in text
    assert "manager.last_violation_prob" in text
    assert "inference.query_seconds" in text and "p95=1.2" in text
    assert "empty.hist  count=0" in text
    # SLO block states breach vs ok per objective
    assert "response_p95" in text and "BREACHED" in text
    assert "violation_rate" in text
    # span tree with nesting and error marker
    assert "manager.cycle" in text
    assert "manager.analyze" in text and "[!error]" in text


def test_terminal_summary_of_an_empty_snapshot():
    text = render_terminal({"enabled": False, "metrics": {}, "trace": []})
    assert "(no spans recorded)" in text


def test_html_report_is_self_contained_and_escaped():
    evil = {
        "enabled": True,
        "metrics": {"counters": {"<script>alert(1)</script>": 1},
                    "gauges": {}, "histograms": {}},
        "trace": [],
    }
    html = render_html(evil, title="<b>title</b>")
    assert html.startswith("<!doctype html>")
    assert "<script>alert(1)</script>" not in html
    assert "&lt;script&gt;" in html
    assert "<b>title</b>" not in html
    # single file, no external fetches
    assert "http" not in html.split("</style>")[1]
    assert "<link" not in html and "src=" not in html


def test_html_report_renders_the_full_snapshot():
    html = render_html(SNAP)
    assert "repro observability report" in html
    assert "serving.queries" in html
    assert "response_p95" in html and "BREACHED" in html
    assert "inference.query_seconds" in html
    assert "manager.cycle" in html
    # the p95 bar scales against the largest histogram p95
    assert 'class=bar style="width:120px"' in html


def test_load_snapshot_from_file_and_live_state(tmp_path, obs_active):
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(SNAP))
    assert load_snapshot(str(path)) == SNAP

    from repro.obs.runtime import OBS

    OBS.metrics.counter("live.counter").inc(7)
    live = load_snapshot(None)
    assert live["metrics"]["counters"]["live.counter"] == 7


def test_load_snapshot_from_export_url(obs_active):
    from repro.obs.export import ExportServer
    from repro.obs.runtime import OBS

    OBS.metrics.counter("served.counter").inc(3)
    with ExportServer() as srv:
        # both the bare endpoint and the explicit /snapshot path work
        snap = load_snapshot(srv.url)
        snap2 = load_snapshot(srv.url + "/snapshot")
    assert snap["metrics"]["counters"]["served.counter"] == 3
    assert snap2["metrics"]["counters"]["served.counter"] == 3


def test_terminal_renders_budget_attribution_table():
    text = render_terminal(SNAP)
    assert "per-service budgets (sla=3.5 target=0.1 slack=2.2)" in text
    x3 = next(ln for ln in text.splitlines() if ln.lstrip().startswith("X3"))
    assert "OVER" in x3 and "burn=1.56" in x3 and "blame=0.94" in x3
    # burn history renders as a sparkline, highest sample tallest
    assert x3.rstrip().endswith("▃▄█")
    x6 = next(ln for ln in text.splitlines() if ln.lstrip().startswith("X6"))
    assert "ok" in x6 and "OVER" not in x6


def test_terminal_flags_infeasible_allocations():
    snap = json.loads(json.dumps(SNAP))
    snap["slo"]["budgets"]["feasible"] = False
    assert "INFEASIBLE" in render_terminal(snap)


def test_html_renders_budget_attribution_table():
    html = render_html(SNAP)
    assert "Per-service budgets" in html
    assert "<td>X3</td>" in html and "OVER" in html
    assert '<td class=spark>▃▄█</td>' in html
    assert "td.spark" in html  # sparkline styling ships with the page


# --------------------------------------------------------------------- #
# load_snapshot error reporting
# --------------------------------------------------------------------- #


def test_load_snapshot_unreachable_url_is_a_one_liner():
    from repro.exceptions import ReproError

    # Port 9 (discard) is firewalled/closed on any sane CI host.
    with pytest.raises(ReproError, match="cannot reach exporter at"):
        load_snapshot("http://127.0.0.1:9/snapshot")


def test_load_snapshot_non_json_body_names_the_culprit():
    import http.server
    import threading

    from repro.exceptions import ReproError

    class _HtmlHandler(http.server.BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (stdlib handler naming)
            body = b"<html>not metrics</html>"
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    srv = http.server.HTTPServer(("127.0.0.1", 0), _HtmlHandler)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{srv.server_address[1]}/snapshot"
        with pytest.raises(ReproError, match="non-JSON body") as err:
            load_snapshot(url)
        assert "<html>" in str(err.value)
    finally:
        srv.shutdown()
        thread.join()


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #


def test_cli_dashboard_renders_snapshot_file(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "snap.json"
    path.write_text(json.dumps(SNAP))
    assert main(["dashboard", "--snapshot", str(path)]) == 0
    out = capsys.readouterr().out
    assert "repro observability dashboard" in out
    assert "serving.queries" in out


def test_cli_dashboard_writes_html(tmp_path, capsys):
    from repro.cli import main

    snap_path = tmp_path / "snap.json"
    snap_path.write_text(json.dumps(SNAP))
    html_path = tmp_path / "report.html"
    code = main(
        ["dashboard", "--snapshot", str(snap_path), "--html", str(html_path)]
    )
    assert code == 0
    html = html_path.read_text()
    assert html.startswith("<!doctype html>")
    assert "response_p95" in html
    # without --print the terminal summary stays off stdout
    assert "repro observability dashboard" not in capsys.readouterr().out


def test_cli_obs_snapshot_format_prom(obs_active, capsys):
    from repro.cli import main
    from repro.obs.runtime import OBS

    OBS.metrics.counter("serving.queries").inc(9)
    assert main(["obs", "snapshot", "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_serving_queries_total counter" in out
    assert "repro_serving_queries_total 9" in out


def test_cli_obs_snapshot_format_json_matches_json_flag(obs_active, capsys):
    from repro.cli import main

    assert main(["obs", "snapshot", "--format", "json"]) == 0
    via_format = json.loads(capsys.readouterr().out)
    assert main(["obs", "snapshot", "--json"]) == 0
    via_flag = json.loads(capsys.readouterr().out)
    assert via_format["enabled"] == via_flag["enabled"] is True
    assert via_format["metrics"].keys() == via_flag["metrics"].keys()


def test_cli_serve_metrics_flag_serves_during_command(tmp_path, capsys):
    """--serve-metrics enables obs and exposes /metrics for the run; the
    dashboard subcommand itself is the long-running command here."""
    from repro.cli import main
    from repro.obs import runtime

    was_enabled = runtime.OBS.enabled
    try:
        code = main(["--serve-metrics", "0", "obs", "snapshot", "--format",
                     "prom"])
        assert code == 0
        err = capsys.readouterr().err
        assert "serving metrics at http://127.0.0.1:" in err
    finally:
        runtime.OBS.enabled = was_enabled
        runtime.reset()
