"""The contraction planner must match plain einsum — and beat it on cost.

:mod:`repro.bn.inference.contraction` is pure planning: given factor
scopes, cardinalities, and an output scope, it emits a replayable
pairwise schedule.  Correctness here is checked against the one source
of truth available without any new dependency — a single monolithic
``np.einsum`` over the same operands — across greedy, optimal, and
batch-axis schedules.
"""

import string

import numpy as np
import pytest

from repro.bn.inference.contraction import (
    OPTIMAL_MAX_FACTORS,
    execute_schedule,
    plan_contraction,
)
from repro.exceptions import InferenceError


def _reference(scopes, cards, output, arrays):
    """Monolithic einsum over a global label alphabet (≤52 vars)."""
    labels = {}
    for scope in scopes:
        for v in scope:
            labels.setdefault(v, string.ascii_letters[len(labels)])
    lhs = ",".join("".join(labels[v] for v in s) for s in scopes)
    rhs = "".join(labels[v] for v in output)
    return np.einsum(f"{lhs}->{rhs}", *arrays)


def _random_problem(rng, n_factors, n_vars, output_k):
    names = [f"x{i}" for i in range(n_vars)]
    cards = {v: int(rng.integers(2, 5)) for v in names}
    scopes = []
    for _ in range(n_factors):
        k = int(rng.integers(1, min(4, n_vars) + 1))
        idx = rng.choice(n_vars, size=k, replace=False)
        scopes.append(tuple(names[i] for i in sorted(idx)))
    used = sorted({v for s in scopes for v in s})
    out = tuple(
        used[i]
        for i in sorted(
            rng.choice(len(used), size=min(output_k, len(used)), replace=False)
        )
    )
    arrays = [
        rng.random([cards[v] for v in s]) for s in scopes
    ]
    return scopes, cards, out, arrays


@pytest.mark.parametrize("optimize", ["greedy", "optimal"])
@pytest.mark.parametrize("seed", range(8))
def test_schedule_matches_monolithic_einsum(seed, optimize):
    rng = np.random.default_rng(seed)
    scopes, cards, out, arrays = _random_problem(
        rng, n_factors=int(rng.integers(2, 6)), n_vars=6, output_k=2
    )
    schedule = plan_contraction(scopes, cards, out, optimize=optimize)
    got = execute_schedule(schedule, arrays)
    np.testing.assert_allclose(
        got, _reference(scopes, cards, out, arrays), atol=1e-12
    )


def test_single_factor_projection():
    cards = {"a": 2, "b": 3, "c": 4}
    scopes = [("a", "b", "c")]
    arr = np.random.default_rng(0).random((2, 3, 4))
    schedule = plan_contraction(scopes, cards, ("c", "a"))
    got = execute_schedule(schedule, [arr])
    np.testing.assert_allclose(got, np.einsum("abc->ca", arr), atol=1e-14)


def test_empty_output_scalar():
    cards = {"a": 2, "b": 3}
    rng = np.random.default_rng(1)
    arrays = [rng.random((2, 3)), rng.random((3,))]
    schedule = plan_contraction([("a", "b"), ("b",)], cards, ())
    got = execute_schedule(schedule, arrays)
    np.testing.assert_allclose(
        got, np.einsum("ab,b->", *arrays), atol=1e-13
    )


def test_optimal_never_costlier_than_greedy():
    rng = np.random.default_rng(42)
    for _ in range(10):
        scopes, cards, out, _ = _random_problem(
            rng, n_factors=5, n_vars=7, output_k=2
        )
        g = plan_contraction(scopes, cards, out, optimize="greedy")
        o = plan_contraction(scopes, cards, out, optimize="optimal")
        assert o.cost <= g.cost + 1e-9


def test_auto_switches_to_greedy_above_threshold():
    cards = {f"x{i}": 2 for i in range(OPTIMAL_MAX_FACTORS + 2)}
    # A chain x0-x1, x1-x2, ... with one factor too many for exact DP.
    scopes = [
        (f"x{i}", f"x{i + 1}")
        for i in range(OPTIMAL_MAX_FACTORS + 1)
    ]
    rng = np.random.default_rng(3)
    arrays = [rng.random((2, 2)) for _ in scopes]
    schedule = plan_contraction(scopes, cards, ("x0",), optimize="auto")
    got = execute_schedule(schedule, arrays)
    np.testing.assert_allclose(
        got, _reference(scopes, cards, ("x0",), arrays), atol=1e-12
    )


def test_more_than_52_variables_supported():
    """Per-step local alphabets remove einsum's global label cap."""
    n = 60
    cards = {f"x{i}": 2 for i in range(n)}
    scopes = [(f"x{i}", f"x{i + 1}") for i in range(n - 1)]
    rng = np.random.default_rng(7)
    arrays = [rng.random((2, 2)) for _ in scopes]
    schedule = plan_contraction(scopes, cards, (f"x{n - 1}",))
    got = execute_schedule(schedule, arrays)
    # Reference by sequential matrix products along the chain.
    acc = arrays[0]
    for m in arrays[1:]:
        acc = acc @ m
    np.testing.assert_allclose(got, acc.sum(axis=0), rtol=1e-10)


def test_batch_axis_survives_to_output():
    """A leading batch variable is planned like any other kept var."""
    cards = {"B": 5, "a": 2, "b": 3}
    rng = np.random.default_rng(9)
    arrays = [rng.random((5, 2)), rng.random((2, 3))]
    schedule = plan_contraction(
        [("B", "a"), ("a", "b")], cards, ("B", "b")
    )
    got = execute_schedule(schedule, arrays)
    np.testing.assert_allclose(
        got, np.einsum("Ba,ab->Bb", *arrays), atol=1e-13
    )


def test_dtype_preserved_through_execution():
    cards = {"a": 2, "b": 3}
    rng = np.random.default_rng(11)
    arrays = [
        rng.random((2, 3)).astype(np.float32),
        rng.random((3,)).astype(np.float32),
    ]
    schedule = plan_contraction([("a", "b"), ("b",)], cards, ("a",))
    assert execute_schedule(schedule, arrays).dtype == np.float32


def test_error_paths():
    with pytest.raises(InferenceError, match="zero factors"):
        plan_contraction([], {}, ())
    with pytest.raises(InferenceError, match="not in any scope"):
        plan_contraction([("a",)], {"a": 2}, ("z",))
    with pytest.raises(InferenceError, match="unknown optimize"):
        plan_contraction([("a",)], {"a": 2}, ("a",), optimize="nope")
    schedule = plan_contraction([("a",), ("a",)], {"a": 2}, ("a",))
    with pytest.raises(InferenceError, match="operands"):
        execute_schedule(schedule, [np.ones(2)])


def test_cost_accounting_is_positive_and_bounded():
    cards = {"a": 4, "b": 4, "c": 4}
    schedule = plan_contraction(
        [("a", "b"), ("b", "c")], cards, ("a", "c")
    )
    assert schedule.cost >= 4 * 4 * 4  # one abc-sized step at minimum
    assert schedule.max_intermediate >= 4 * 4
