"""Structure-comparison metrics."""

import numpy as np
import pytest

from repro.bn.dag import DAG
from repro.bn.structure_metrics import compare_structures, knowledge_recovery
from repro.exceptions import GraphError


def test_identical_structures():
    dag = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])
    cmp = compare_structures(dag, dag.copy())
    assert cmp.shd == 0
    assert cmp.skeleton_f1 == 1.0
    assert cmp.directed_precision == 1.0
    assert cmp.directed_recall == 1.0


def test_reversed_edge_counts_as_misorientation():
    ref = DAG(nodes=["a", "b"], edges=[("a", "b")])
    rev = DAG(nodes=["a", "b"], edges=[("b", "a")])
    cmp = compare_structures(rev, ref)
    assert cmp.shd == 1
    assert cmp.skeleton_f1 == 1.0  # skeleton agrees
    assert cmp.directed_tp == 0


def test_missing_and_extra_edges():
    ref = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])
    learned = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("a", "c")])
    cmp = compare_structures(learned, ref)
    assert cmp.shd == 2  # one missing (b-c), one extra (a-c)
    assert cmp.skeleton_tp == 1
    assert cmp.skeleton_precision == pytest.approx(0.5)
    assert cmp.skeleton_recall == pytest.approx(0.5)


def test_empty_learned_structure():
    ref = DAG(nodes=["a", "b"], edges=[("a", "b")])
    empty = DAG(nodes=["a", "b"])
    cmp = compare_structures(empty, ref)
    assert cmp.shd == 1
    assert cmp.skeleton_precision == 1.0  # vacuous
    assert cmp.skeleton_recall == 0.0
    assert cmp.skeleton_f1 == 0.0


def test_node_set_mismatch_rejected():
    with pytest.raises(GraphError):
        compare_structures(DAG(nodes=["a"]), DAG(nodes=["b"]))


def test_knowledge_recovery_of_k2_improves_with_data():
    """More data -> K2's structure gets closer to the workflow truth."""
    from repro.core.nrtbn import build_continuous_nrtbn
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    env = ediamond_scenario()
    small = env.simulate(40, rng=5)
    large = env.simulate(1500, rng=6)
    k2_small = build_continuous_nrtbn(small, rng=7).network.dag
    k2_large = build_continuous_nrtbn(large, rng=8).network.dag
    r_small = knowledge_recovery(k2_small, env.workflow)
    r_large = knowledge_recovery(k2_large, env.workflow)
    assert r_large.skeleton_f1 >= r_small.skeleton_f1
    assert r_large.skeleton_f1 < 1.0  # and still not perfect — knowledge wins
