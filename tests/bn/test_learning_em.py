"""EM for incomplete Gaussian data."""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.bn.learning.em import em_gaussian
from repro.bn.learning.mle import fit_gaussian_network
from repro.exceptions import LearningError


def masked_chain_data(chain_gaussian_net, rng, frac=0.25, n=4000):
    data = chain_gaussian_net.sample(n, rng)
    arr = data.to_array(["a", "b", "c"]).copy()
    mask = rng.random(arr.shape) < frac
    # Never mask a full row's worth per column (keep identifiability).
    arr[mask] = np.nan
    return Dataset.from_array(arr, ["a", "b", "c"])


def test_em_complete_data_equals_mle(chain_gaussian_net, rng):
    data = chain_gaussian_net.sample(2000, rng)
    em_net, trace = em_gaussian(chain_gaussian_net.dag, data)
    assert trace == []
    mle_net = fit_gaussian_network(chain_gaussian_net.dag, data)
    for node in ("a", "b", "c"):
        assert em_net.cpd(node) == mle_net.cpd(node)


def test_em_loglik_monotone(chain_gaussian_net, rng):
    data = masked_chain_data(chain_gaussian_net, rng)
    _, trace = em_gaussian(chain_gaussian_net.dag, data, max_iter=30)
    assert len(trace) >= 2
    for prev, cur in zip(trace, trace[1:]):
        assert cur >= prev - 1e-6 * max(1.0, abs(prev))


def test_em_recovers_parameters_under_mcar(chain_gaussian_net, rng):
    data = masked_chain_data(chain_gaussian_net, rng, frac=0.3, n=8000)
    em_net, _ = em_gaussian(chain_gaussian_net.dag, data, max_iter=60)
    truth = chain_gaussian_net
    for node in ("a", "b", "c"):
        t, e = truth.cpd(node), em_net.cpd(node)
        assert e.intercept == pytest.approx(t.intercept, abs=0.1)
        np.testing.assert_allclose(e.coefficients, t.coefficients, atol=0.1)


def test_em_beats_mean_imputation(chain_gaussian_net, rng):
    data = masked_chain_data(chain_gaussian_net, rng, frac=0.35, n=5000)
    em_net, trace = em_gaussian(chain_gaussian_net.dag, data, max_iter=50)
    # Mean imputation = EM's own initialization, so the final observed-data
    # log-likelihood must be at least the first iteration's.
    assert trace[-1] >= trace[0] - 1e-9


def test_em_fully_missing_column_rejected(chain_gaussian_net):
    arr = np.column_stack([np.full(10, np.nan), np.ones(10), np.ones(10)])
    data = Dataset.from_array(arr, ["a", "b", "c"])
    with pytest.raises(LearningError):
        em_gaussian(chain_gaussian_net.dag, data)


def test_em_handles_fully_missing_rows(chain_gaussian_net, rng):
    data = chain_gaussian_net.sample(500, rng)
    arr = data.to_array(["a", "b", "c"]).copy()
    arr[:20, :] = np.nan
    em_net, trace = em_gaussian(
        chain_gaussian_net.dag, Dataset.from_array(arr, ["a", "b", "c"])
    )
    assert np.isfinite(trace[-1])
