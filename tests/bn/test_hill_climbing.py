"""Hill-climbing structure search."""

import numpy as np
import pytest

from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.learning.hill_climbing import hill_climb
from repro.bn.learning.k2 import k2_search
from repro.bn.learning.scores import ScoreCache, gaussian_bic_local
from repro.exceptions import LearningError


def chain_data(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=n)
    b = 2 * a + rng.normal(0, 0.5, size=n)
    c = -b + rng.normal(0, 0.5, size=n)
    return Dataset({"a": a, "b": b, "c": c})


def test_recovers_chain_skeleton():
    data = chain_data()
    score = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    result = hill_climb(["a", "b", "c"], score)
    und = {frozenset(e) for e in result.dag.edges}
    assert frozenset(("a", "b")) in und
    assert frozenset(("b", "c")) in und
    assert frozenset(("a", "c")) not in und
    assert result.n_iterations >= 2
    assert result.n_score_evaluations > 0


def test_score_never_decreases_from_start():
    data = chain_data(800, seed=1)
    score = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    empty_score = sum(score(v, ()) for v in ("a", "b", "c"))
    result = hill_climb(["a", "b", "c"], score)
    assert result.score >= empty_score


def test_matches_or_beats_k2_with_bad_order():
    data = chain_data(2000, seed=2)
    score = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    k2 = k2_search(["c", "b", "a"], score, order=["c", "b", "a"])
    hc = hill_climb(["a", "b", "c"], score)
    # Hill climbing is not ordering-constrained, so it cannot do worse
    # than the badly-ordered K2 on this easy problem.
    assert hc.score >= k2.score - 1e-9


def test_max_parents_respected():
    rng = np.random.default_rng(3)
    n = 2000
    cols = {f"p{i}": rng.normal(size=n) for i in range(4)}
    cols["x"] = sum(cols.values()) + rng.normal(0, 0.1, size=n)
    data = Dataset(cols)
    score = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    result = hill_climb(list(cols), score, max_parents=2)
    assert all(result.dag.in_degree(v) <= 2 for v in result.dag.nodes)


def test_start_dag_and_validation():
    data = chain_data(500, seed=4)
    score = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    start = DAG(nodes=["a", "b", "c"], edges=[("c", "a")])
    result = hill_climb(["a", "b", "c"], score, start=start)
    assert result.dag.n_nodes == 3
    with pytest.raises(LearningError):
        hill_climb(["a", "a"], score)
    with pytest.raises(LearningError):
        hill_climb(["a", "b"], score, start=DAG(nodes=["x"]))


def test_result_is_local_optimum():
    """No single add/delete move improves the final score."""
    data = chain_data(1500, seed=5)
    cache = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    result = hill_climb(["a", "b", "c"], cache)
    dag = result.dag

    def family(node, parents):
        return cache(node, parents)

    for u in ("a", "b", "c"):
        for v in ("a", "b", "c"):
            if u == v:
                continue
            if dag.has_edge(u, v):
                reduced = tuple(p for p in map(str, dag.parents(v)) if p != u)
                gain = family(v, reduced) - family(v, tuple(map(str, dag.parents(v))))
                assert gain <= 1e-9
            elif not dag.has_path(v, u):
                grown = tuple(map(str, dag.parents(v))) + (u,)
                gain = family(v, grown) - family(v, tuple(map(str, dag.parents(v))))
                assert gain <= 1e-9
