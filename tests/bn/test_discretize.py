"""Discretization: binning invariants and inverse maps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bn.data import Dataset
from repro.bn.discretize import Discretizer
from repro.exceptions import DataError


def test_constructor_validation():
    with pytest.raises(DataError):
        Discretizer(n_bins=1)
    with pytest.raises(DataError):
        Discretizer(strategy="kmeans")


def test_quantile_bins_roughly_balanced(rng):
    x = rng.normal(size=10_000)
    d = Discretizer(n_bins=4).fit(Dataset({"x": x}))
    t = d.transform(Dataset({"x": x}))
    counts = np.bincount(t["x"], minlength=4)
    np.testing.assert_allclose(counts / 10_000, 0.25, atol=0.02)


def test_uniform_bins_equal_width(rng):
    x = rng.uniform(0, 10, size=1000)
    d = Discretizer(n_bins=5, strategy="uniform").fit(Dataset({"x": x}))
    widths = np.diff(d.edges("x"))
    np.testing.assert_allclose(widths, widths[0], rtol=1e-6)


def test_transform_unfitted_column_raises(rng):
    d = Discretizer().fit(Dataset({"x": rng.normal(size=100)}))
    with pytest.raises(DataError):
        d.transform(Dataset({"y": rng.normal(size=100)}), ["y"])


def test_out_of_range_values_clip_to_edge_bins(rng):
    x = rng.normal(size=1000)
    d = Discretizer(n_bins=3).fit(Dataset({"x": x}))
    t = d.transform(Dataset({"x": np.array([-100.0, 100.0])}))
    assert t["x"][0] == 0
    assert t["x"][1] == d.cardinality("x") - 1


def test_centers_are_within_edges(rng):
    x = rng.exponential(size=5000)
    d = Discretizer(n_bins=5).fit(Dataset({"x": x}))
    edges = d.edges("x")
    centers = d.centers("x")
    for b in range(len(centers)):
        assert edges[b] <= centers[b] <= edges[b + 1]


def test_constant_column_still_yields_two_bins():
    d = Discretizer(n_bins=5).fit(Dataset({"x": np.full(100, 3.0)}))
    assert d.cardinality("x") >= 2
    t = d.transform(Dataset({"x": np.full(10, 3.0)}))
    assert np.all((0 <= t["x"]) & (t["x"] < d.cardinality("x")))


def test_heavy_ties_deduplicate_edges():
    x = np.concatenate([np.zeros(900), np.linspace(1, 2, 100)])
    d = Discretizer(n_bins=5).fit(Dataset({"x": x}))
    assert np.all(np.diff(d.edges("x")) > 0)


def test_expectation_and_inverse_value(rng):
    x = rng.normal(size=2000)
    d = Discretizer(n_bins=4).fit(Dataset({"x": x}))
    pmf = np.array([0.25, 0.25, 0.25, 0.25])[: d.cardinality("x")]
    pmf = pmf / pmf.sum()
    e = d.expectation("x", pmf)
    assert d.edges("x")[0] <= e <= d.edges("x")[-1]
    assert d.inverse_value("x", 0) == d.centers("x")[0]
    with pytest.raises(DataError):
        d.inverse_value("x", 99)
    with pytest.raises(DataError):
        d.expectation("x", np.ones(17))


def test_state_of_matches_transform(rng):
    x = rng.normal(size=500)
    d = Discretizer(n_bins=6).fit(Dataset({"x": x}))
    t = d.transform(Dataset({"x": x}))["x"]
    for i in [0, 100, 499]:
        assert d.state_of("x", float(x[i])) == t[i]


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=10,
        max_size=300,
    ),
    st.integers(min_value=2, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_property_bins_always_in_range(values, n_bins):
    x = np.asarray(values)
    d = Discretizer(n_bins=n_bins).fit(Dataset({"x": x}))
    t = d.transform(Dataset({"x": x}))["x"]
    assert t.min() >= 0
    assert t.max() < d.cardinality("x")
    # Round trip through centers stays inside the observed range (loosely).
    centers = d.centers("x")
    assert centers.min() >= x.min() - 1e-6
    assert centers.max() <= x.max() + 1e-6
