"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.exceptions import DataError


def make(n=5):
    return Dataset({"x": np.arange(n, dtype=float), "y": np.arange(n) * 2.0})


def test_basic_accessors():
    d = make()
    assert d.columns == ("x", "y")
    assert d.n_rows == 5
    assert len(d) == 5
    assert "x" in d and "z" not in d
    assert list(d) == ["x", "y"]
    np.testing.assert_array_equal(d["y"], [0, 2, 4, 6, 8])


def test_empty_and_mismatched_columns_rejected():
    with pytest.raises(DataError):
        Dataset({})
    with pytest.raises(DataError):
        Dataset({"a": np.zeros(3), "b": np.zeros(4)})
    with pytest.raises(DataError):
        Dataset({"a": np.zeros((2, 2))})


def test_missing_column_raises():
    with pytest.raises(DataError):
        make()["nope"]


def test_from_array_roundtrip():
    arr = np.arange(12, dtype=float).reshape(4, 3)
    d = Dataset.from_array(arr, ["a", "b", "c"])
    np.testing.assert_array_equal(d.to_array(["a", "b", "c"]), arr)
    np.testing.assert_array_equal(d.to_array(["c", "a"]), arr[:, [2, 0]])


def test_from_array_shape_mismatch():
    with pytest.raises(DataError):
        Dataset.from_array(np.zeros((3, 2)), ["a", "b", "c"])


def test_select_and_rows():
    d = make()
    s = d.select(["y"])
    assert s.columns == ("y",)
    r = d.rows(np.array([0, 2]))
    np.testing.assert_array_equal(r["x"], [0, 2])
    m = d.rows(d["x"] > 2)
    np.testing.assert_array_equal(m["x"], [3, 4])


def test_head_tail():
    d = make()
    np.testing.assert_array_equal(d.head(2)["x"], [0, 1])
    np.testing.assert_array_equal(d.tail(2)["x"], [3, 4])
    assert d.tail(100).n_rows == 5


def test_split():
    d = make()
    tr, te = d.split(3)
    assert tr.n_rows == 3 and te.n_rows == 2
    with pytest.raises(DataError):
        d.split(0)
    with pytest.raises(DataError):
        d.split(5)


def test_shuffled_preserves_multiset(rng):
    d = make(50)
    s = d.shuffled(rng)
    assert sorted(s["x"]) == sorted(d["x"])
    # Row alignment preserved: y must stay 2*x.
    np.testing.assert_array_equal(s["y"], s["x"] * 2)


def test_concat():
    d = make(3)
    c = Dataset.concat([d, d])
    assert c.n_rows == 6
    with pytest.raises(DataError):
        Dataset.concat([])
    with pytest.raises(DataError):
        Dataset.concat([d, Dataset({"x": np.zeros(2)})])


def test_equality():
    assert make() == make()
    assert make() != make(4)
