"""Serialization round-trips for expressions, CPDs and networks."""

import json

import numpy as np
import pytest

from repro.bn.io import (
    cpd_from_dict,
    cpd_to_dict,
    expression_from_dict,
    expression_to_dict,
    network_from_dict,
    network_to_dict,
)
from repro.exceptions import DataError
from repro.workflow.expressions import Const, Max, Scale, Sum, Var, WeightedSum


def test_expression_roundtrip_all_kinds():
    expr = Sum(
        [
            Var("a"),
            Scale(2.0, Max([Var("b"), Const(1.5)])),
            WeightedSum([(0.3, Var("c")), (0.7, Var("d"))]),
        ]
    )
    loaded = expression_from_dict(json.loads(json.dumps(expression_to_dict(expr))))
    vals = {k: np.array([2.0]) for k in "abcd"}
    np.testing.assert_allclose(loaded(vals), expr(vals))
    assert loaded.to_string() == expr.to_string()


def test_expression_unknown_spec():
    with pytest.raises(DataError):
        expression_from_dict({"bogus": 1})


def test_tabular_cpd_roundtrip(rng):
    from repro.bn.cpd import TabularCPD

    cpd = TabularCPD.random("x", 3, rng, ("p",), (2,))
    loaded = cpd_from_dict(json.loads(json.dumps(cpd_to_dict(cpd))))
    np.testing.assert_allclose(loaded.values, cpd.values)
    assert loaded.parents == cpd.parents


def test_linear_gaussian_cpd_roundtrip():
    from repro.bn.cpd import LinearGaussianCPD

    cpd = LinearGaussianCPD("x", 1.5, [2.0, -0.5], 0.7, ("a", "b"))
    loaded = cpd_from_dict(cpd_to_dict(cpd))
    assert loaded == cpd


def test_unknown_cpd_kind():
    with pytest.raises(DataError):
        cpd_from_dict({"kind": "martian"})


def test_gaussian_network_roundtrip(chain_gaussian_net, rng):
    spec = json.loads(json.dumps(network_to_dict(chain_gaussian_net)))
    loaded = network_from_dict(spec)
    data = chain_gaussian_net.sample(200, rng)
    assert loaded.log10_likelihood(data) == pytest.approx(
        chain_gaussian_net.log10_likelihood(data)
    )
    assert type(loaded).__name__ == "GaussianBayesianNetwork"


def test_discrete_kertbn_network_roundtrip(ediamond_discrete_model, ediamond_data):
    _, test = ediamond_data
    net = ediamond_discrete_model.network
    spec = json.loads(json.dumps(network_to_dict(net)))
    loaded = network_from_dict(spec)
    binned = ediamond_discrete_model.discretizer.transform(test)
    assert loaded.log10_likelihood(binned) == pytest.approx(
        net.log10_likelihood(binned)
    )


def test_hybrid_kertbn_network_roundtrip(ediamond_continuous_model, ediamond_data):
    _, test = ediamond_data
    net = ediamond_continuous_model.network
    spec = json.loads(json.dumps(network_to_dict(net)))
    loaded = network_from_dict(spec)
    assert spec["kind"] == "hybrid"
    assert loaded.response == "D"
    assert loaded.log10_likelihood(test) == pytest.approx(
        net.log10_likelihood(test)
    )
    # The reloaded f still evaluates (max survives the round trip).
    samples = loaded.response_distribution(n_samples=2000, rng=0)
    assert np.isfinite(samples).all()


def test_unknown_network_kind():
    with pytest.raises(DataError):
        network_from_dict({"kind": "quantum", "nodes": [], "edges": [], "cpds": []})
