"""Incremental evidence on the junction tree: absorb/retract round-trips.

The tree structure (triangulation, spanning tree, factor assignment) is
built once; these tests pin down that changing the observed set through
:meth:`JunctionTree.absorb` / :meth:`JunctionTree.retract` is exactly
equivalent to rebuilding with the combined evidence — including the
zero-probability error paths, after which the tree must stay usable.
"""

import numpy as np
import pytest

from repro.bn.cpd import TabularCPD
from repro.bn.dag import DAG
from repro.bn.inference.junction_tree import JunctionTree
from repro.bn.inference.variable_elimination import query
from repro.bn.network import DiscreteBayesianNetwork
from repro.exceptions import InferenceError

from tests.bn.test_inference_ve import random_discrete_net


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_absorb_matches_fresh_build(seed):
    rng = np.random.default_rng(seed)
    net = random_discrete_net(rng, n_nodes=6)
    nodes = [str(n) for n in net.nodes]
    evidence = {nodes[0]: 0, nodes[-1]: 1 % net.cardinalities[nodes[-1]]}

    incremental = JunctionTree(net)
    for var, state in evidence.items():  # absorb one variable at a time
        incremental.absorb({var: state})
    fresh = JunctionTree(net, evidence)

    assert incremental.evidence == fresh.evidence == evidence
    for v in nodes:
        if v in evidence:
            continue
        np.testing.assert_allclose(
            incremental.marginal(v).values, fresh.marginal(v).values, atol=1e-10
        )
        np.testing.assert_allclose(
            incremental.marginal(v).values, query(net, [v], evidence).values, atol=1e-10
        )
    assert incremental.log_probability_of_evidence() == pytest.approx(
        fresh.log_probability_of_evidence()
    )


@pytest.mark.parametrize("seed", [3, 4])
def test_retract_restores_prior_state(seed):
    rng = np.random.default_rng(seed)
    net = random_discrete_net(rng, n_nodes=5)
    nodes = [str(n) for n in net.nodes]
    jt = JunctionTree(net)
    priors = {v: jt.marginal(v).values.copy() for v in nodes}

    jt.absorb({nodes[0]: 0}).absorb({nodes[1]: 0})
    jt.retract([nodes[1]])
    partial = JunctionTree(net, {nodes[0]: 0})
    for v in nodes[1:]:
        np.testing.assert_allclose(
            jt.marginal(v).values, partial.marginal(v).values, atol=1e-10
        )

    jt.retract([nodes[0]])
    assert jt.evidence == {}
    for v in nodes:
        np.testing.assert_allclose(jt.marginal(v).values, priors[v], atol=1e-10)


def test_absorb_validation():
    rng = np.random.default_rng(5)
    net = random_discrete_net(rng, n_nodes=4)
    nodes = [str(n) for n in net.nodes]
    jt = JunctionTree(net, {nodes[0]: 0})
    with pytest.raises(InferenceError):
        jt.absorb({"ghost": 0})
    with pytest.raises(InferenceError):
        jt.absorb({nodes[0]: 1})  # already observed: retract first
    with pytest.raises(InferenceError):
        jt.absorb({nodes[1]: 99})  # state out of range
    with pytest.raises(InferenceError):
        jt.retract([nodes[1]])  # not observed
    # None of the rejected calls may have altered the observed set.
    assert jt.evidence == {nodes[0]: 0}


def test_zero_probability_absorb_rolls_back():
    # a is deterministically 0 and P(b=1 | a=0) = 0.
    dag = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])
    net = DiscreteBayesianNetwork(
        dag,
        [
            TabularCPD("a", 2, np.array([1.0, 0.0])),
            TabularCPD("b", 2, np.array([[1.0, 0.5], [0.0, 0.5]]), ("a",), (2,)),
            TabularCPD("c", 2, np.array([[0.9, 0.2], [0.1, 0.8]]), ("b",), (2,)),
        ],
    )
    with pytest.raises(InferenceError):
        JunctionTree(net, {"b": 1})  # fresh build rejects it too

    jt = JunctionTree(net)
    before = {v: jt.marginal(v).values.copy() for v in ("a", "b", "c")}
    with pytest.raises(InferenceError, match="zero probability"):
        jt.absorb({"b": 1})
    # The failed absorb must leave the tree fully usable and unchanged.
    assert jt.evidence == {}
    for v, ref in before.items():
        np.testing.assert_allclose(jt.marginal(v).values, ref, atol=1e-12)
    # And a valid absorb afterwards still works.
    jt.absorb({"b": 0})
    np.testing.assert_allclose(
        jt.marginal("c").values, query(net, ["c"], {"b": 0}).values, atol=1e-10
    )


def test_zero_probability_rollback_with_prior_evidence():
    # With c already observed, absorbing the impossible b=1 must restore
    # the c-only calibration, not wipe the earlier evidence.
    dag = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])
    net = DiscreteBayesianNetwork(
        dag,
        [
            TabularCPD("a", 2, np.array([1.0, 0.0])),
            TabularCPD("b", 2, np.array([[1.0, 0.5], [0.0, 0.5]]), ("a",), (2,)),
            TabularCPD("c", 2, np.array([[0.9, 0.2], [0.1, 0.8]]), ("b",), (2,)),
        ],
    )
    jt = JunctionTree(net, {"c": 1})
    with pytest.raises(InferenceError):
        jt.absorb({"b": 1})
    assert jt.evidence == {"c": 1}
    np.testing.assert_allclose(
        jt.marginal("b").values, query(net, ["b"], {"c": 1}).values, atol=1e-10
    )


def test_all_marginals_tracks_current_evidence():
    rng = np.random.default_rng(6)
    net = random_discrete_net(rng, n_nodes=5)
    nodes = [str(n) for n in net.nodes]
    jt = JunctionTree(net)
    assert set(jt.all_marginals()) == set(nodes)
    jt.absorb({nodes[0]: 0})
    assert set(jt.all_marginals()) == set(nodes[1:])
    jt.retract([nodes[0]])
    assert set(jt.all_marginals()) == set(nodes)
