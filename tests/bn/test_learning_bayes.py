"""Bayesian linear-Gaussian learning."""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.bn.learning.bayes import (
    fit_gaussian_network_bayes,
    fit_linear_gaussian_bayes,
)
from repro.bn.learning.mle import fit_gaussian_network, fit_linear_gaussian
from repro.exceptions import LearningError


def test_reduces_to_mle_with_vanishing_prior(rng):
    a = rng.normal(size=5000)
    x = 1.0 + 2.0 * a + rng.normal(0, 0.5, size=5000)
    data = Dataset({"x": x, "a": a})
    bayes = fit_linear_gaussian_bayes(data, "x", ("a",), prior_strength=1e-10,
                                      prior_a=1.0 + 1e-9 + 1, prior_b=1e-9)
    mle = fit_linear_gaussian(data, "x", ("a",))
    assert bayes.intercept == pytest.approx(mle.intercept, abs=1e-3)
    np.testing.assert_allclose(bayes.coefficients, mle.coefficients, atol=1e-3)
    assert bayes.variance == pytest.approx(mle.variance, rel=0.01)


def test_shrinks_coefficients(rng):
    a = rng.normal(size=30)
    x = 0.5 * a + rng.normal(0, 1.0, size=30)
    data = Dataset({"x": x, "a": a})
    weak = fit_linear_gaussian_bayes(data, "x", ("a",), prior_strength=0.01)
    strong = fit_linear_gaussian_bayes(data, "x", ("a",), prior_strength=100.0)
    assert abs(strong.coefficients[0]) < abs(weak.coefficients[0])


def test_validation(rng):
    data = Dataset({"x": rng.normal(size=10)})
    with pytest.raises(LearningError):
        fit_linear_gaussian_bayes(data, "x", prior_strength=-1.0)
    with pytest.raises(LearningError):
        fit_linear_gaussian_bayes(data, "x", prior_a=0.5)
    with pytest.raises(LearningError):
        fit_linear_gaussian_bayes(Dataset({"x": np.array([])}), "x")


def test_small_sample_generalization(chain_gaussian_net):
    """With tiny windows the Bayesian fit should generalize at least as
    well as MLE on average — the small-data regime the paper targets."""
    wins = 0
    trials = 12
    for seed in range(trials):
        train = chain_gaussian_net.sample(15, rng=1000 + seed)
        test = chain_gaussian_net.sample(500, rng=2000 + seed)
        mle = fit_gaussian_network(chain_gaussian_net.dag, train)
        bayes = fit_gaussian_network_bayes(
            chain_gaussian_net.dag, train, prior_strength=0.5
        )
        if bayes.log10_likelihood(test) >= mle.log10_likelihood(test):
            wins += 1
    assert wins >= trials // 2


def test_network_fit_consistency(chain_gaussian_net, rng):
    data = chain_gaussian_net.sample(20_000, rng)
    net = fit_gaussian_network_bayes(chain_gaussian_net.dag, data,
                                     prior_strength=1.0)
    # Large-sample: prior washes out; recover the truth.
    assert net.cpd("b").coefficients[0] == pytest.approx(2.0, abs=0.05)
    assert net.cpd("b").variance == pytest.approx(0.3, rel=0.1)
