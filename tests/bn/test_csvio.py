"""CSV dataset interchange."""

import numpy as np
import pytest

from repro.bn.csvio import (
    dataset_from_csv,
    dataset_from_csv_string,
    dataset_to_csv,
    dataset_to_csv_string,
)
from repro.bn.data import Dataset
from repro.exceptions import DataError


def test_roundtrip_exact(tmp_path, rng):
    data = Dataset({"x": rng.normal(size=50), "D": rng.exponential(size=50)})
    path = str(tmp_path / "d.csv")
    dataset_to_csv(data, path)
    loaded = dataset_from_csv(path)
    assert loaded.columns == data.columns
    np.testing.assert_array_equal(loaded["x"], data["x"])  # repr() is lossless
    np.testing.assert_array_equal(loaded["D"], data["D"])


def test_nan_cells_roundtrip(rng):
    col = rng.normal(size=10)
    col[3] = np.nan
    text = dataset_to_csv_string(Dataset({"x": col}))
    assert "nan" in text  # NaN written as a literal, never an empty cell
    loaded = dataset_from_csv_string(text)
    assert np.isnan(loaded["x"][3])
    assert not np.isnan(loaded["x"][[0, 1, 2, 4]]).any()


def test_empty_file_rejected():
    with pytest.raises(DataError):
        dataset_from_csv_string("")
    with pytest.raises(DataError):
        dataset_from_csv_string("a,b\n")  # header only


def test_bad_header_rejected():
    with pytest.raises(DataError):
        dataset_from_csv_string("a,,c\n1,2,3\n")


def test_ragged_row_rejected():
    with pytest.raises(DataError):
        dataset_from_csv_string("a,b\n1,2\n3\n")


def test_non_numeric_cell_rejected():
    with pytest.raises(DataError):
        dataset_from_csv_string("a\nbanana\n")


def test_blank_lines_skipped():
    loaded = dataset_from_csv_string("a,b\n1,2\n\n3,4\n")
    assert loaded.n_rows == 2
