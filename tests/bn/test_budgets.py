"""SLO budget decomposition: composition bound, allocation, blame."""

import numpy as np
import pytest

from repro.bn.budgets import (
    BudgetAllocation,
    allocate_budgets,
    budget_composition,
    derive_budgets,
    discrete_blame,
    model_marginals,
    normal_blame,
)
from repro.exceptions import ReproError
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
)
from repro.workflow.expressions import Max, Sum, Var


# --------------------------------------------------------------------- #
# budget_composition: the structural bound g
# --------------------------------------------------------------------- #


def test_sequence_composes_as_sum():
    wf = Sequence([Activity("a"), Activity("b")])
    g = budget_composition(wf)
    assert g.to_string() == Sum([Var("a"), Var("b")]).to_string()


def test_parallel_composes_as_max():
    wf = Parallel([Activity("a"), Activity("b")])
    assert (
        budget_composition(wf).to_string()
        == Max([Var("a"), Var("b")]).to_string()
    )


def test_choice_composes_as_max_not_sum():
    # Measurement mode reduces a choice to a sum over its (all-but-one
    # zero) branch columns; a *budget* bound covers the single branch
    # that actually runs, so the recomposition takes the max instead.
    wf = Choice([Activity("a"), Activity("b")], probabilities=[0.3, 0.7])
    assert (
        budget_composition(wf).to_string()
        == Max([Var("a"), Var("b")]).to_string()
    )


def test_loop_composes_as_its_body():
    # Measured per-service totals already accumulate loop iterations,
    # so the budget bound for the loop is the bound of its body.
    wf = Loop(Sequence([Activity("a"), Activity("b")]), continue_prob=0.5)
    assert (
        budget_composition(wf).to_string()
        == Sum([Var("a"), Var("b")]).to_string()
    )


def test_ediamond_composition_matches_f():
    from repro.simulator.scenarios.ediamond import ediamond_workflow

    g = budget_composition(ediamond_workflow())
    assert set(g.inputs) == {"X1", "X2", "X3", "X4", "X5", "X6"}
    x = {n: np.asarray([0.1 * i]) for i, n in enumerate(sorted(g.inputs), 1)}
    # D = X1 + X2 + max(X3 + X5, X4 + X6)
    assert float(g(x)[0]) == pytest.approx(0.1 + 0.2 + max(0.3 + 0.5, 0.4 + 0.6))


# --------------------------------------------------------------------- #
# allocate_budgets: maximal budgets under the composition invariant
# --------------------------------------------------------------------- #

MARGINALS = {"a": (1.0, 0.2), "b": (2.0, 0.4), "c": (0.5, 0.1)}


def _g():
    return Sum([Var("a"), Max([Var("b"), Var("c")])])


def test_allocation_pins_the_recomposition_to_the_sla():
    alloc = allocate_budgets(_g(), MARGINALS, sla=5.0, target=0.1)
    assert alloc.feasible
    # Maximal slack: the recomposed bound g(b) sits on the SLA.
    assert alloc.composed == pytest.approx(5.0, rel=1e-9)
    x = {sb.service: np.asarray([sb.budget]) for sb in alloc.budgets}
    assert float(_g()(x)[0]) == pytest.approx(5.0, rel=1e-9)


def test_budgets_are_monotone_in_the_sla():
    tight = allocate_budgets(_g(), MARGINALS, sla=4.0, target=0.2)
    loose = allocate_budgets(_g(), MARGINALS, sla=6.0, target=0.2)
    for t, lo in zip(tight.budgets, loose.budgets):
        assert t.service == lo.service
        assert t.budget < lo.budget


def test_union_bound_holds_empirically():
    # Simulate the marginals independently: honoring every budget
    # forces D <= sla (monotonicity), so P(D > sla) <= sum of the
    # per-service tail masses — the allocation's advertised guarantee.
    alloc = allocate_budgets(_g(), MARGINALS, sla=5.0, target=0.2)
    assert alloc.feasible
    rng = np.random.default_rng(11)
    n = 200_000
    draws = {
        s: rng.normal(m, sd, size=n) for s, (m, sd) in MARGINALS.items()
    }
    d = draws["a"] + np.maximum(draws["b"], draws["c"])
    assert np.mean(d > 5.0) <= alloc.tail_total * 1.05 + 1e-4


def test_infeasible_when_means_already_exceed_sla():
    alloc = allocate_budgets(_g(), MARGINALS, sla=2.0, target=0.1)
    assert not alloc.feasible
    assert alloc.slack == 0.0


def test_infeasible_when_tail_budget_cannot_be_met():
    # Feasible composition but the target is stricter than the union
    # bound at the maximal slack allows.
    alloc = allocate_budgets(_g(), MARGINALS, sla=3.5, target=1e-6)
    assert alloc.composed <= 3.5 * (1 + 1e-9)
    assert not alloc.feasible
    assert alloc.tail_total > 1e-6


def test_unreachably_large_sla_is_feasible_with_huge_slack():
    # A parked policy (threshold=1e6) must not break budget derivation;
    # budgets become enormous and never breach.
    alloc = allocate_budgets(_g(), MARGINALS, sla=1e6, target=0.1)
    assert alloc.feasible
    assert all(sb.budget > 1e3 for sb in alloc.budgets)


def test_validation_errors():
    with pytest.raises(ReproError):
        allocate_budgets(_g(), MARGINALS, sla=-1.0, target=0.1)
    with pytest.raises(ReproError):
        allocate_budgets(_g(), MARGINALS, sla=5.0, target=0.0)
    with pytest.raises(ReproError):
        allocate_budgets(_g(), {"a": (1.0, 0.1)}, sla=5.0, target=0.1)


def test_allocation_round_trips_through_dict():
    alloc = allocate_budgets(_g(), MARGINALS, sla=5.0, target=0.1)
    assert BudgetAllocation.from_dict(alloc.to_dict()) == alloc
    mapping = alloc.as_mapping()
    assert set(mapping) == set(MARGINALS)
    assert alloc.budget_for("a").budget == mapping["a"]
    with pytest.raises(ReproError):
        alloc.budget_for("nope")


# --------------------------------------------------------------------- #
# model-facing derivation + blame
# --------------------------------------------------------------------- #


def test_derive_budgets_continuous(ediamond_continuous_model):
    alloc = derive_budgets(ediamond_continuous_model, sla=3.5, target=0.1)
    assert alloc.feasible
    assert set(alloc.as_mapping()) == set(
        ediamond_continuous_model.f.expression.inputs
    )
    # Composition invariant against the model's own f: honoring every
    # budget keeps the recomposed response at or under the SLA.
    f = ediamond_continuous_model.f.expression
    x = {sb.service: np.asarray([sb.budget]) for sb in alloc.budgets}
    assert float(f(x)[0]) <= 3.5 * (1 + 1e-9)
    assert alloc.tail_total <= 0.1 + 1e-9


def test_derive_budgets_discrete_matches_continuous_scale(
    ediamond_discrete_model, ediamond_continuous_model
):
    alloc_d = derive_budgets(ediamond_discrete_model, sla=3.5, target=0.1)
    alloc_c = derive_budgets(ediamond_continuous_model, sla=3.5, target=0.1)
    for sb_d in alloc_d.budgets:
        sb_c = alloc_c.budget_for(sb_d.service)
        # Same data, two discretizations of the same marginals: means
        # agree closely, budgets within a coarse-binning tolerance.
        assert sb_d.mean == pytest.approx(sb_c.mean, rel=0.15)
        assert sb_d.budget == pytest.approx(sb_c.budget, rel=0.5)


def test_model_marginals_continuous_match_training_data(
    ediamond_continuous_model, ediamond_data
):
    train, _ = ediamond_data
    marg = model_marginals(ediamond_continuous_model)
    for name, (mean, std) in marg.items():
        col = np.asarray(train[name], dtype=float)
        assert mean == pytest.approx(float(col.mean()), rel=0.05)
        assert std == pytest.approx(float(col.std()), rel=0.25)


def test_derive_budgets_rejects_models_without_f():
    class NoF:
        f = None

    with pytest.raises(ReproError):
        derive_budgets(NoF(), sla=1.0, target=0.1)


def test_normal_blame_ranks_the_dominant_service(ediamond_continuous_model):
    from repro.apps.assessment import RapidAssessor

    assessor = RapidAssessor(ediamond_continuous_model)
    d_mean, d_var, moments = assessor.response_moments()
    alloc = derive_budgets(ediamond_continuous_model, sla=3.5, target=0.1)
    blame = normal_blame(moments, d_mean, d_var, alloc.as_mapping(), 2.5)
    assert set(blame) == set(alloc.as_mapping())
    assert all(0.0 <= v <= 1.0 for v in blame.values())
    # X6 dominates eDiaMoND's critical path; it must carry the most blame.
    assert max(blame, key=blame.get) == "X6"


def test_response_moments_match_assess(ediamond_continuous_model):
    from repro.apps.assessment import RapidAssessor

    assessor = RapidAssessor(ediamond_continuous_model)
    d_mean, d_var, moments = assessor.response_moments()
    m, v = assessor.assess()
    assert d_mean == pytest.approx(m)
    assert d_var == pytest.approx(v)
    # cov(X_i, D) <= sqrt(var_i * var_D) (Cauchy-Schwarz, post-Clark).
    for mean, var, cov in moments.values():
        assert abs(cov) <= np.sqrt(var * d_var) * (1 + 1e-9)


def test_discrete_blame_ranks_the_dominant_service(ediamond_discrete_model):
    model = ediamond_discrete_model
    alloc = derive_budgets(model, sla=3.5, target=0.1)
    engine = model.network.compiled()
    blame = discrete_blame(
        engine, model.discretizer, model.response, alloc.as_mapping(), 2.0
    )
    assert all(0.0 <= v <= 1.0 for v in blame.values())
    assert max(blame, key=blame.get) == "X6"


def test_discrete_blame_zero_when_no_breach_mass(ediamond_discrete_model):
    model = ediamond_discrete_model
    alloc = derive_budgets(model, sla=3.5, target=0.1)
    engine = model.network.compiled()
    top_edge = float(model.discretizer.edges(model.response)[-1])
    blame = discrete_blame(
        engine,
        model.discretizer,
        model.response,
        alloc.as_mapping(),
        top_edge + 1.0,
    )
    assert all(v == 0.0 for v in blame.values())
