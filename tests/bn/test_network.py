"""Unit tests for the network containers."""

import numpy as np
import pytest

from repro.bn.cpd import (
    LinearGaussianCPD,
    NoisyDeterministicCPD,
    TabularCPD,
)
from repro.bn.dag import DAG
from repro.bn.network import (
    BayesianNetwork,
    DiscreteBayesianNetwork,
    GaussianBayesianNetwork,
    HybridResponseNetwork,
)
from repro.exceptions import CPDError, InferenceError
from repro.workflow.expressions import Sum, Var


def test_network_validation_missing_cpd():
    dag = DAG(nodes=["a", "b"], edges=[("a", "b")])
    with pytest.raises(CPDError):
        BayesianNetwork(dag, [LinearGaussianCPD("a", 0.0, (), 1.0)])


def test_network_validation_extra_cpd():
    dag = DAG(nodes=["a"])
    with pytest.raises(CPDError):
        BayesianNetwork(
            dag,
            [LinearGaussianCPD("a", 0.0, (), 1.0), LinearGaussianCPD("z", 0.0, (), 1.0)],
        )


def test_network_validation_parent_mismatch():
    dag = DAG(nodes=["a", "b"], edges=[("a", "b")])
    with pytest.raises(CPDError):
        BayesianNetwork(
            dag,
            [
                LinearGaussianCPD("a", 0.0, (), 1.0),
                LinearGaussianCPD("b", 0.0, (), 1.0),  # should have parent a
            ],
        )


def test_network_duplicate_cpd():
    dag = DAG(nodes=["a"])
    with pytest.raises(CPDError):
        BayesianNetwork(
            dag,
            [LinearGaussianCPD("a", 0.0, (), 1.0), LinearGaussianCPD("a", 1.0, (), 1.0)],
        )


def test_log10_likelihood_is_natural_over_ln10(chain_gaussian_net, rng):
    data = chain_gaussian_net.sample(100, rng)
    assert chain_gaussian_net.log10_likelihood(data) == pytest.approx(
        chain_gaussian_net.log_likelihood(data) / np.log(10)
    )


def test_sample_reproducible(chain_gaussian_net):
    d1 = chain_gaussian_net.sample(50, rng=42)
    d2 = chain_gaussian_net.sample(50, rng=42)
    assert d1 == d2


def test_sample_respects_structure(chain_gaussian_net):
    data = chain_gaussian_net.sample(30000, rng=1)
    # b ≈ 0.5 + 2a
    coeff = np.polyfit(data["a"], data["b"], 1)
    assert coeff[0] == pytest.approx(2.0, abs=0.05)


def test_sample_size_validation(chain_gaussian_net):
    with pytest.raises(InferenceError):
        chain_gaussian_net.sample(0)


def test_n_parameters_sums_cpds(chain_gaussian_net):
    assert chain_gaussian_net.n_parameters == 2 + 3 + 3


def test_gaussian_network_rejects_discrete_cpd():
    dag = DAG(nodes=["a"])
    with pytest.raises(CPDError):
        GaussianBayesianNetwork(dag, [TabularCPD("a", 2, np.array([0.5, 0.5]))])


def test_discrete_network_rejects_gaussian_cpd():
    dag = DAG(nodes=["a"])
    with pytest.raises(CPDError):
        DiscreteBayesianNetwork(dag, [LinearGaussianCPD("a", 0.0, (), 1.0)])


def test_discrete_network_cardinality_mismatch():
    dag = DAG(nodes=["a", "b"], edges=[("a", "b")])
    with pytest.raises(CPDError):
        DiscreteBayesianNetwork(
            dag,
            [
                TabularCPD("a", 3, np.ones(3) / 3),
                TabularCPD("b", 2, np.full((2, 2), 0.5), ("a",), (2,)),  # a has card 3
            ],
        )


def test_discrete_posterior_mean():
    dag = DAG(nodes=["a"])
    net = DiscreteBayesianNetwork(dag, [TabularCPD("a", 2, np.array([0.25, 0.75]))])
    assert net.posterior_mean("a", np.array([0.0, 1.0])) == pytest.approx(0.75)
    with pytest.raises(InferenceError):
        net.posterior_mean("a", np.array([0.0, 1.0, 2.0]))


def hybrid_net():
    dag = DAG(nodes=["a", "b", "D"], edges=[("a", "b"), ("a", "D"), ("b", "D")])
    f = Sum([Var("a"), Var("b")])
    return HybridResponseNetwork(
        dag,
        [
            LinearGaussianCPD("a", 1.0, (), 0.2),
            LinearGaussianCPD("b", 0.0, [1.0], 0.1, ("a",)),
            NoisyDeterministicCPD("D", f, ("a", "b"), variance=0.01),
        ],
        response="D",
    )


def test_hybrid_requires_noisy_response():
    dag = DAG(nodes=["a", "D"], edges=[("a", "D")])
    with pytest.raises(CPDError):
        HybridResponseNetwork(
            dag,
            [LinearGaussianCPD("a", 0.0, (), 1.0),
             LinearGaussianCPD("D", 0.0, [1.0], 1.0, ("a",))],
            response="D",
        )


def test_hybrid_service_subnetwork():
    net = hybrid_net()
    sub = net.service_subnetwork()
    assert set(sub.nodes) == {"a", "b"}
    assert isinstance(sub, GaussianBayesianNetwork)


def test_hybrid_response_distribution_mean():
    net = hybrid_net()
    samples = net.response_distribution(n_samples=30000, rng=5)
    # E[D] = E[a] + E[b] = 1 + 1 = 2
    assert samples.mean() == pytest.approx(2.0, abs=0.03)


def test_hybrid_response_distribution_with_evidence():
    net = hybrid_net()
    samples = net.response_distribution(n_samples=30000, rng=6, evidence={"a": 2.0})
    # a=2 -> b ~ N(2, .1) -> D ≈ 4
    assert samples.mean() == pytest.approx(4.0, abs=0.03)


def test_hybrid_loglik_uses_all_nodes(chain_gaussian_net):
    net = hybrid_net()
    data = net.sample(500, rng=7)
    total = net.log_likelihood(data)
    manual = sum(net.cpd(n).log_likelihood(data).sum() for n in net.nodes)
    assert total == pytest.approx(manual)
