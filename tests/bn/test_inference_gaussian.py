"""Exact Gaussian inference: joint construction and conditioning.

Cross-checked against hand computations and empirical moments of forward
samples; conditioning is checked against the standard bivariate-normal
formulas and scipy.
"""

import numpy as np
import pytest

from repro.bn.cpd import LinearGaussianCPD
from repro.bn.dag import DAG
from repro.bn.inference.gaussian import (
    condition_gaussian,
    conditional_of,
    joint_gaussian,
    marginal_gaussian,
)
from repro.bn.network import GaussianBayesianNetwork
from repro.exceptions import InferenceError


def test_joint_gaussian_chain(chain_gaussian_net):
    names, mean, cov = joint_gaussian(chain_gaussian_net)
    i = {n: k for k, n in enumerate(names)}
    # E[a]=1; E[b]=0.5+2*1=2.5; E[c]=-1+1.5*2.5=2.75
    assert mean[i["a"]] == pytest.approx(1.0)
    assert mean[i["b"]] == pytest.approx(2.5)
    assert mean[i["c"]] == pytest.approx(2.75)
    # var(a)=0.5; var(b)=0.3+4*0.5=2.3; var(c)=0.2+2.25*2.3=5.375
    assert cov[i["a"], i["a"]] == pytest.approx(0.5)
    assert cov[i["b"], i["b"]] == pytest.approx(2.3)
    assert cov[i["c"], i["c"]] == pytest.approx(5.375)
    # cov(a,b)=2*0.5=1; cov(a,c)=1.5*cov(a,b)=1.5; cov(b,c)=1.5*var(b)=3.45
    assert cov[i["a"], i["b"]] == pytest.approx(1.0)
    assert cov[i["a"], i["c"]] == pytest.approx(1.5)
    assert cov[i["b"], i["c"]] == pytest.approx(3.45)


def test_joint_matches_empirical_moments(chain_gaussian_net):
    names, mean, cov = joint_gaussian(chain_gaussian_net)
    data = chain_gaussian_net.sample(200_000, rng=11)
    emp = np.cov(np.vstack([data[n] for n in names]))
    np.testing.assert_allclose(emp, cov, atol=0.06)
    for k, n in enumerate(names):
        assert data[n].mean() == pytest.approx(mean[k], abs=0.02)


def test_joint_with_multiple_parents():
    dag = DAG(nodes=["a", "b", "c"], edges=[("a", "c"), ("b", "c")])
    net = GaussianBayesianNetwork(
        dag,
        [
            LinearGaussianCPD("a", 0.0, (), 1.0),
            LinearGaussianCPD("b", 0.0, (), 4.0),
            LinearGaussianCPD("c", 0.0, [1.0, -2.0], 0.5, ("a", "b")),
        ],
    )
    names, mean, cov = joint_gaussian(net)
    i = {n: k for k, n in enumerate(names)}
    assert cov[i["c"], i["c"]] == pytest.approx(0.5 + 1.0 + 4 * 4.0)
    assert cov[i["a"], i["c"]] == pytest.approx(1.0)
    assert cov[i["b"], i["c"]] == pytest.approx(-8.0)
    assert cov[i["a"], i["b"]] == pytest.approx(0.0)


def test_joint_rejects_non_gaussian(ediamond_continuous_model):
    with pytest.raises(InferenceError):
        joint_gaussian(ediamond_continuous_model.network)


def test_condition_bivariate_formula():
    # X ~ N(0,1); Y = X + N(0,1). Conditioning Y | X=x: mean x, var 1.
    names = ["x", "y"]
    mean = np.array([0.0, 0.0])
    cov = np.array([[1.0, 1.0], [1.0, 2.0]])
    post_names, pm, pc = condition_gaussian(names, mean, cov, {"x": 2.0})
    assert post_names == ["y"]
    assert pm[0] == pytest.approx(2.0)
    assert pc[0, 0] == pytest.approx(1.0)
    # And X | Y=y: mean y/2, var 1/2.
    post_names, pm, pc = condition_gaussian(names, mean, cov, {"y": 3.0})
    assert pm[0] == pytest.approx(1.5)
    assert pc[0, 0] == pytest.approx(0.5)


def test_condition_validation():
    names = ["x", "y"]
    mean = np.zeros(2)
    cov = np.eye(2)
    with pytest.raises(InferenceError):
        condition_gaussian(names, mean, cov, {"zzz": 1.0})
    with pytest.raises(InferenceError):
        condition_gaussian(names, mean, cov, {"x": 0.0, "y": 0.0})
    nm, m, c = condition_gaussian(names, mean, cov, {})
    assert nm == names


def test_condition_reduces_variance(chain_gaussian_net):
    names, mean, cov = joint_gaussian(chain_gaussian_net)
    _, _, post_cov = condition_gaussian(names, mean, cov, {"b": 2.5})
    prior_vars = {n: cov[i, i] for i, n in enumerate(names)}
    post_names, _, _ = condition_gaussian(names, mean, cov, {"b": 2.5})
    for i, n in enumerate(post_names):
        assert post_cov[i, i] <= prior_vars[n] + 1e-12


def test_condition_agrees_with_lw_sampling(chain_gaussian_net):
    from repro.bn.inference.sampling import likelihood_weighting, weighted_mean

    names, mean, cov = joint_gaussian(chain_gaussian_net)
    m, v = conditional_of(names, mean, cov, "a", {"c": 4.0})
    samples, weights = likelihood_weighting(
        chain_gaussian_net, {"c": 4.0}, n=200_000, rng=3
    )
    lw_mean = weighted_mean(np.asarray(samples["a"]), weights)
    assert lw_mean == pytest.approx(m, abs=0.02)


def test_marginal_gaussian():
    names = ["x", "y", "z"]
    mean = np.array([1.0, 2.0, 3.0])
    cov = np.diag([1.0, 2.0, 3.0])
    sub_names, sm, sc = marginal_gaussian(names, mean, cov, ["z", "x"])
    assert sub_names == ["z", "x"]
    np.testing.assert_allclose(sm, [3.0, 1.0])
    np.testing.assert_allclose(sc, np.diag([3.0, 1.0]))
    with pytest.raises(InferenceError):
        marginal_gaussian(names, mean, cov, ["nope"])


def test_conditional_of_errors(chain_gaussian_net):
    names, mean, cov = joint_gaussian(chain_gaussian_net)
    with pytest.raises(InferenceError):
        conditional_of(names, mean, cov, "b", {"b": 1.0})
