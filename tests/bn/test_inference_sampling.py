"""Sampling-based inference: likelihood weighting and weighted summaries."""

import numpy as np
import pytest

from repro.bn.inference.sampling import (
    effective_sample_size,
    forward_sample,
    likelihood_weighting,
    weighted_mean,
    weighted_quantile,
)
from repro.exceptions import InferenceError


def test_forward_sample_shape(chain_gaussian_net):
    data = forward_sample(chain_gaussian_net, 100, rng=0)
    assert data.n_rows == 100
    assert set(data.columns) == {"a", "b", "c"}


def test_lw_no_evidence_behaves_like_forward(chain_gaussian_net):
    samples, weights = likelihood_weighting(chain_gaussian_net, {}, n=5000, rng=1)
    np.testing.assert_allclose(weights, weights[0])
    assert abs(np.mean(samples["a"]) - 1.0) < 0.05


def test_lw_validation(chain_gaussian_net):
    with pytest.raises(InferenceError):
        likelihood_weighting(chain_gaussian_net, {"zzz": 1.0})
    with pytest.raises(InferenceError):
        likelihood_weighting(chain_gaussian_net, {}, n=0)


def test_lw_evidence_clamps_column(chain_gaussian_net):
    samples, _ = likelihood_weighting(chain_gaussian_net, {"b": 7.0}, n=100, rng=2)
    np.testing.assert_allclose(samples["b"], 7.0)


def test_lw_posterior_matches_exact(chain_gaussian_net):
    from repro.bn.inference.gaussian import conditional_of, joint_gaussian

    names, mean, cov = joint_gaussian(chain_gaussian_net)
    exact_m, exact_v = conditional_of(names, mean, cov, "b", {"c": 5.0})
    samples, weights = likelihood_weighting(
        chain_gaussian_net, {"c": 5.0}, n=300_000, rng=3
    )
    b = np.asarray(samples["b"])
    m = weighted_mean(b, weights)
    v = weighted_mean((b - m) ** 2, weights)
    assert m == pytest.approx(exact_m, abs=0.02)
    assert v == pytest.approx(exact_v, rel=0.1)


def test_weighted_mean_and_quantile():
    values = np.array([1.0, 2.0, 3.0])
    weights = np.array([1.0, 0.0, 1.0])
    assert weighted_mean(values, weights) == pytest.approx(2.0)
    assert weighted_quantile(values, weights, 0.5) == pytest.approx(2.0, abs=1.0)
    with pytest.raises(InferenceError):
        weighted_mean(values, np.zeros(3))
    with pytest.raises(InferenceError):
        weighted_quantile(values, weights, 1.5)


def test_effective_sample_size():
    assert effective_sample_size(np.ones(100)) == pytest.approx(100.0)
    degenerate = np.zeros(100)
    degenerate[0] = 1.0
    assert effective_sample_size(degenerate) == pytest.approx(1.0)
    assert effective_sample_size(np.zeros(10)) == 0.0
