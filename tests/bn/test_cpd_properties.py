"""Property-based tests on CPD invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bn.cpd import DeterministicCPD, LinearGaussianCPD, TabularCPD
from repro.bn.data import Dataset
from repro.bn.learning.mle import fit_linear_gaussian, fit_tabular
from repro.workflow.expressions import Sum, Var


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_random_tabular_cpd_always_normalized(card, seed):
    rng = np.random.default_rng(seed)
    cpd = TabularCPD.random("x", card, rng, ("p",), (3,))
    np.testing.assert_allclose(cpd.values.sum(axis=0), 1.0, atol=1e-12)
    assert np.all(cpd.values >= 0)


@given(
    st.floats(min_value=0.0, max_value=0.9),
    st.floats(min_value=0.05, max_value=1.0),
    st.integers(min_value=2, max_value=9),
)
@settings(max_examples=50, deadline=None)
def test_deterministic_cpd_transition_row_stochastic(leak, decay, n_bins):
    edges = np.linspace(-0.5, n_bins - 0.5, n_bins + 1)
    cpd = DeterministicCPD(
        "d",
        Sum([Var("a"), Var("b")]),
        ("a", "b"),
        {"a": np.array([0.0, 1.0]), "b": np.array([0.0, 1.0])},
        edges,
        leak=leak,
        leak_decay=decay,
    )
    t = cpd._transition
    np.testing.assert_allclose(t.sum(axis=1), 1.0, atol=1e-12)
    assert np.all(t >= 0)
    # The hit bin always carries the most mass for leak < 0.5.
    if leak < 0.5:
        assert np.all(np.argmax(t, axis=1) == np.arange(n_bins))


@given(
    st.lists(st.integers(min_value=0, max_value=3), min_size=5, max_size=200),
    st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=50, deadline=None)
def test_fit_tabular_always_valid(states, alpha):
    data = Dataset({"x": np.asarray(states)})
    cpd = fit_tabular(data, "x", 4, alpha=alpha)
    np.testing.assert_allclose(cpd.values.sum(), 1.0, atol=1e-9)
    assert np.all(cpd.values >= 0)
    # With non-degenerate alpha every state keeps support.  (Subnormal
    # alphas — hypothesis found 1e-323 — underflow to exactly zero after
    # normalization; that is float arithmetic, not a smoothing bug.)
    if alpha > 1e-9:
        assert np.all(cpd.values > 0)


@given(
    st.integers(min_value=2, max_value=400),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_fit_linear_gaussian_never_degenerate(n, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    data = Dataset({"x": x, "p": x + rng.normal(0, 1e-12, size=n)})
    cpd = fit_linear_gaussian(data, "x", ("p",))
    assert cpd.variance > 0
    assert np.isfinite(cpd.coefficients).all()
    assert np.isfinite(cpd.log_likelihood(data)).all()


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_tabular_sampling_matches_pmf(seed):
    rng = np.random.default_rng(seed)
    cpd = TabularCPD.random("x", 4, rng)
    draws = cpd.sample({}, 30_000, rng)
    freq = np.bincount(draws, minlength=4) / 30_000
    np.testing.assert_allclose(freq, cpd.values, atol=0.02)


@given(
    st.floats(min_value=-5, max_value=5),
    st.floats(min_value=0.1, max_value=4.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_linear_gaussian_sampling_matches_moments(mu, std, seed):
    rng = np.random.default_rng(seed)
    cpd = LinearGaussianCPD("x", mu, (), std * std)
    draws = cpd.sample({}, 40_000, rng)
    assert abs(draws.mean() - mu) < 5 * std / np.sqrt(40_000) + 1e-3
    assert draws.std() == pytest.approx(std, rel=0.05)
