"""Property test: every inference path agrees with variable elimination.

~50 seeded random networks sweep width 4–20 and n_bins 3–8
(``max_parents=2`` keeps the exact cross-check cheap).  On each net the
compiled engine (fresh plan, pattern-cache hit, and batched gather), and
the incremental junction tree (through absorb → retract → absorb churn)
must reproduce ``VariableElimination`` posteriors to within 1e-9 — the
same bound the benchmark gate enforces on the eDiaMoND cell.  A
deterministic zero-probability case exercises the junction tree's
rollback on the same random-net family.
"""

import numpy as np
import pytest

from repro.bn.cpd import TabularCPD
from repro.bn.inference.engine import CompiledDiscreteModel
from repro.bn.inference.junction_tree import JunctionTree
from repro.bn.inference.variable_elimination import query as ve_query
from repro.bn.network import DiscreteBayesianNetwork
from repro.bn.random_nets import random_discrete_network
from repro.exceptions import InferenceError

# 50 (seed, width, n_bins) cells sweeping the ISSUE's ranges.
CASES = [(s, 4 + (s * 3) % 17, 3 + s % 6) for s in range(50)]


def _pick(rng, net):
    """A query variable, and evidence on two other variables."""
    nodes = [str(n) for n in net.nodes]
    order = [nodes[i] for i in rng.permutation(len(nodes))]
    q, e1, e2 = order[0], order[1], order[2]
    cards = net.cardinalities
    ev = {
        e1: int(rng.integers(cards[e1])),
        e2: int(rng.integers(cards[e2])),
    }
    return q, ev


@pytest.mark.parametrize("seed,width,n_bins", CASES)
def test_all_paths_match_variable_elimination(seed, width, n_bins):
    rng = np.random.default_rng(seed)
    net = random_discrete_network(rng, width=width, n_bins=n_bins)
    q, ev = _pick(rng, net)
    expected = ve_query(net, [q], ev).values

    engine = CompiledDiscreteModel(net)
    # Fresh plan compile.
    np.testing.assert_allclose(
        engine.query([q], ev).values, expected, atol=1e-9
    )
    # Same pattern, other values → cached-plan path.
    ev2 = {
        v: (s + 1) % net.cardinalities[v] for v, s in ev.items()
    }
    expected2 = ve_query(net, [q], ev2).values
    hits_before = engine.cache_stats()["hits"]
    np.testing.assert_allclose(
        engine.query([q], ev2).values, expected2, atol=1e-9
    )
    assert engine.cache_stats()["hits"] == hits_before + 1

    # Batched gather over both evidence rows at once.
    cols = {
        v: np.array([ev[v], ev2[v]], dtype=np.intp) for v in ev
    }
    batch = engine.query_batch([q], cols)
    np.testing.assert_allclose(batch[0], expected, atol=1e-9)
    np.testing.assert_allclose(batch[1], expected2, atol=1e-9)


@pytest.mark.parametrize(
    "seed,width,n_bins", [c for c in CASES if c[0] % 5 == 0]
)
def test_junction_tree_churn_matches_ve(seed, width, n_bins):
    """absorb → query → retract → absorb again, incrementally."""
    rng = np.random.default_rng(seed)
    net = random_discrete_network(rng, width=width, n_bins=n_bins)
    q, ev = _pick(rng, net)
    jt = JunctionTree(net)

    # Prior marginal before any evidence.
    np.testing.assert_allclose(
        jt.marginal(q).values, ve_query(net, [q]).values, atol=1e-9
    )
    jt.absorb(ev)
    np.testing.assert_allclose(
        jt.marginal(q).values, ve_query(net, [q], ev).values, atol=1e-9
    )
    # Retract one variable; the other stays observed.
    keep, gone = sorted(ev)[0], sorted(ev)[1]
    jt.retract([gone])
    np.testing.assert_allclose(
        jt.marginal(q).values,
        ve_query(net, [q], {keep: ev[keep]}).values,
        atol=1e-9,
    )
    # Absorb fresh evidence on the retracted variable.
    new_state = (ev[gone] + 1) % net.cardinalities[gone]
    jt.absorb({gone: new_state})
    np.testing.assert_allclose(
        jt.marginal(q).values,
        ve_query(net, [q], {keep: ev[keep], gone: new_state}).values,
        atol=1e-9,
    )


def _with_impossible_state(net, variable):
    """Rebuild ``net`` so ``variable`` has zero mass on state 0."""
    cpds = []
    for n in net.nodes:
        cpd = net.cpd(n)
        if str(n) == variable:
            table = cpd.values.copy()
            table[0] = 0.0
            table = table / table.sum(axis=0, keepdims=True)
            cpd = TabularCPD(
                str(n),
                cpd.cardinality,
                table,
                cpd.parents,
                cpd.parent_cardinalities,
            )
        cpds.append(cpd)
    return DiscreteBayesianNetwork(net.dag, cpds)


@pytest.mark.parametrize("seed", [0, 7, 21, 33, 45])
def test_zero_probability_rollback_leaves_tree_consistent(seed):
    rng = np.random.default_rng(seed)
    width, n_bins = 4 + (seed * 3) % 17, 3 + seed % 6
    net = random_discrete_network(rng, width=width, n_bins=n_bins)
    q, ev = _pick(rng, net)
    dead = sorted(ev)[0]
    net = _with_impossible_state(net, dead)

    jt = JunctionTree(net)
    with pytest.raises(InferenceError, match="zero probability"):
        jt.absorb({dead: 0})
    assert jt.evidence == {}

    # The rolled-back tree must still answer — and still match VE —
    # through a full absorb → retract → absorb cycle afterwards.
    good = {dead: 1, **{k: v for k, v in ev.items() if k != dead}}
    jt.absorb(good)
    np.testing.assert_allclose(
        jt.marginal(q).values, ve_query(net, [q], good).values, atol=1e-9
    )
    jt.retract(list(good))
    with pytest.raises(InferenceError, match="zero probability"):
        jt.absorb({dead: 0})
    jt.absorb({dead: 1})
    np.testing.assert_allclose(
        jt.marginal(q).values,
        ve_query(net, [q], {dead: 1}).values,
        atol=1e-9,
    )
