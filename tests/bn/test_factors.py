"""Unit and property tests for discrete factor algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bn.factors import DiscreteFactor
from repro.exceptions import InferenceError


def phi_ab():
    return DiscreteFactor(["a", "b"], [2, 3], np.arange(6, dtype=float).reshape(2, 3))


def test_constructor_validation():
    with pytest.raises(InferenceError):
        DiscreteFactor(["a", "a"], [2, 2], np.ones((2, 2)))
    with pytest.raises(InferenceError):
        DiscreteFactor(["a"], [2, 3], np.ones(6))
    with pytest.raises(InferenceError):
        DiscreteFactor(["a"], [2], np.array([1.0, -0.5]))
    with pytest.raises(InferenceError):
        DiscreteFactor(["a"], [0], np.ones(0))


def test_reshape_from_flat():
    f = DiscreteFactor(["a", "b"], [2, 2], np.arange(4, dtype=float))
    assert f.values.shape == (2, 2)


def test_marginalize():
    f = phi_ab()
    m = f.marginalize(["b"])
    assert m.variables == ("a",)
    np.testing.assert_allclose(m.values, [0 + 1 + 2, 3 + 4 + 5])
    with pytest.raises(InferenceError):
        f.marginalize(["zzz"])
    with pytest.raises(InferenceError):
        f.marginalize(["a", "b"])


def test_reduce():
    f = phi_ab()
    r = f.reduce({"b": 1})
    assert r.variables == ("a",)
    np.testing.assert_allclose(r.values, [1, 4])
    with pytest.raises(InferenceError):
        f.reduce({"b": 5})
    with pytest.raises(InferenceError):
        f.reduce({"a": 0, "b": 0})
    # Irrelevant evidence leaves the factor unchanged.
    assert f.reduce({"zzz": 0}) is f


def test_value_at():
    f = phi_ab()
    assert f.value_at({"a": 1, "b": 2}) == 5
    with pytest.raises(InferenceError):
        f.value_at({"a": 1})


def test_product_disjoint_scopes():
    fa = DiscreteFactor(["a"], [2], np.array([1.0, 2.0]))
    fb = DiscreteFactor(["b"], [3], np.array([1.0, 10.0, 100.0]))
    p = fa.product(fb)
    assert p.variables == ("a", "b")
    np.testing.assert_allclose(p.values, [[1, 10, 100], [2, 20, 200]])


def test_product_shared_scope_alignment():
    f1 = phi_ab()
    f2 = DiscreteFactor(["b", "a"], [3, 2], np.ones((3, 2)) * 2.0)
    p = f1.product(f2)
    np.testing.assert_allclose(p.values, f1.values * 2.0)


def test_product_cardinality_conflict():
    f1 = DiscreteFactor(["a"], [2], np.ones(2))
    f2 = DiscreteFactor(["a"], [3], np.ones(3))
    with pytest.raises(InferenceError):
        f1.product(f2)


def test_normalize():
    f = phi_ab()
    n = f.normalize()
    assert np.isclose(n.values.sum(), 1.0)
    zero = DiscreteFactor(["a"], [2], np.zeros(2))
    with pytest.raises(InferenceError):
        zero.normalize()


def test_permute_roundtrip():
    f = phi_ab()
    p = f.permute(["b", "a"])
    assert p.variables == ("b", "a")
    assert p.permute(["a", "b"]) == f
    with pytest.raises(InferenceError):
        f.permute(["a"])


def test_uniform():
    u = DiscreteFactor.uniform(["a", "b"], [2, 5])
    assert np.isclose(u.values.sum(), 1.0)
    assert np.allclose(u.values, u.values.flat[0])


# --------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------- #


@st.composite
def small_factors(draw, variables):
    cards = [draw(st.integers(min_value=1, max_value=3)) for _ in variables]
    size = int(np.prod(cards))
    vals = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    return DiscreteFactor(variables, cards, np.asarray(vals).reshape(cards))


@given(small_factors(["a", "b"]), st.data())
@settings(max_examples=50, deadline=None)
def test_product_commutes(f, data):
    g = data.draw(small_factors(["b", "c"]))
    try:
        left = f.product(g)
        right = g.product(f)
    except InferenceError:
        return  # cardinality conflict on the shared variable
    assert left == right


@given(small_factors(["a", "b", "c"]))
@settings(max_examples=50, deadline=None)
def test_marginalization_order_irrelevant(f):
    one = f.marginalize(["a"]).marginalize(["b"])
    both = f.marginalize(["a", "b"])
    assert one == both


@given(small_factors(["a", "b"]))
@settings(max_examples=50, deadline=None)
def test_total_mass_preserved_by_marginalization(f):
    m = f.marginalize(["a"])
    assert np.isclose(m.values.sum(), f.values.sum())


@given(small_factors(["a", "b"]), st.data())
@settings(max_examples=50, deadline=None)
def test_reduce_then_marginalize_commute(f, data):
    state = data.draw(st.integers(min_value=0, max_value=f.cardinality("a") - 1))
    path1 = f.reduce({"a": state}).values
    path2 = f.permute(["a", "b"]).values[state]
    np.testing.assert_allclose(path1, path2)
