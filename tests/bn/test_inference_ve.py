"""Variable elimination cross-checked against brute-force enumeration."""

import itertools

import numpy as np
import pytest

from repro.bn.cpd import TabularCPD
from repro.bn.dag import DAG
from repro.bn.network import DiscreteBayesianNetwork
from repro.bn.inference.variable_elimination import query
from repro.exceptions import InferenceError


def brute_force(net, variables, evidence):
    """Enumerate the full joint and marginalize by hand."""
    cards = net.cardinalities
    nodes = list(net.nodes)
    target_cards = [cards[v] for v in variables]
    out = np.zeros(target_cards)
    for assignment in itertools.product(*[range(cards[n]) for n in nodes]):
        full = dict(zip(nodes, assignment))
        if any(full[k] != v for k, v in evidence.items()):
            continue
        p = 1.0
        for n in nodes:
            cpd = net.cpd(n)
            p *= cpd.prob(full[n], {pa: full[pa] for pa in cpd.parents})
        out[tuple(full[v] for v in variables)] += p
    return out / out.sum()


def random_discrete_net(rng, n_nodes=5, cards=(2, 3)):
    dag = DAG.random([f"v{i}" for i in range(n_nodes)], 0.4, rng, max_parents=2)
    cpds = []
    card_map = {n: int(rng.choice(cards)) for n in dag.nodes}
    for n in dag.nodes:
        parents = dag.parents(n)
        cpds.append(
            TabularCPD.random(
                n, card_map[n], rng, parents, tuple(card_map[p] for p in parents)
            )
        )
    return DiscreteBayesianNetwork(dag, cpds)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_ve_matches_brute_force_marginals(seed):
    rng = np.random.default_rng(seed)
    net = random_discrete_net(rng)
    target = str(net.nodes[int(rng.integers(len(net.nodes)))])
    factor = query(net, [target])
    np.testing.assert_allclose(factor.values, brute_force(net, [target], {}), atol=1e-10)


@pytest.mark.parametrize("seed", [5, 6, 7, 8])
def test_ve_matches_brute_force_with_evidence(seed):
    rng = np.random.default_rng(seed)
    net = random_discrete_net(rng)
    nodes = list(net.nodes)
    target, ev = nodes[0], nodes[-1]
    state = int(rng.integers(net.cardinalities[ev]))
    factor = query(net, [target], {ev: state})
    np.testing.assert_allclose(
        factor.values, brute_force(net, [target], {ev: state}), atol=1e-10
    )


def test_ve_joint_query_two_variables():
    rng = np.random.default_rng(9)
    net = random_discrete_net(rng, n_nodes=4)
    a, b = str(net.nodes[0]), str(net.nodes[1])
    factor = query(net, [a, b])
    assert factor.variables[:2] == (a, b)
    np.testing.assert_allclose(factor.values, brute_force(net, [a, b], {}), atol=1e-10)


def test_ve_validation():
    rng = np.random.default_rng(10)
    net = random_discrete_net(rng)
    with pytest.raises(InferenceError):
        query(net, ["nope"])
    with pytest.raises(InferenceError):
        query(net, [])
    a = str(net.nodes[0])
    with pytest.raises(InferenceError):
        query(net, [a], {a: 0})


def test_ve_zero_probability_evidence():
    dag = DAG(nodes=["a", "b"], edges=[("a", "b")])
    net = DiscreteBayesianNetwork(
        dag,
        [
            TabularCPD("a", 2, np.array([1.0, 0.0])),
            TabularCPD("b", 2, np.array([[1.0, 0.0], [0.0, 1.0]]), ("a",), (2,)),
        ],
    )
    with pytest.raises(InferenceError):
        query(net, ["a"], {"b": 1})  # b=1 requires a=1 which has P=0


def test_ve_evidence_on_all_but_query():
    rng = np.random.default_rng(11)
    net = random_discrete_net(rng, n_nodes=4)
    nodes = [str(n) for n in net.nodes]
    target = nodes[1]
    evidence = {n: 0 for n in nodes if n != target}
    factor = query(net, [target], evidence)
    np.testing.assert_allclose(
        factor.values, brute_force(net, [target], evidence), atol=1e-10
    )
