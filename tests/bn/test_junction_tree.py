"""Junction-tree inference cross-checked against variable elimination."""

import numpy as np
import pytest

from repro.bn.inference.junction_tree import JunctionTree
from repro.bn.inference.variable_elimination import query
from repro.exceptions import InferenceError

from tests.bn.test_inference_ve import random_discrete_net


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_marginals_match_ve(seed):
    rng = np.random.default_rng(seed)
    net = random_discrete_net(rng, n_nodes=6)
    jt = JunctionTree(net)
    for node in map(str, net.nodes):
        np.testing.assert_allclose(
            jt.marginal(node).values,
            query(net, [node]).values,
            atol=1e-10,
        )


@pytest.mark.parametrize("seed", [6, 7, 8])
def test_marginals_with_evidence_match_ve(seed):
    rng = np.random.default_rng(seed)
    net = random_discrete_net(rng, n_nodes=6)
    nodes = [str(n) for n in net.nodes]
    ev_node = nodes[-1]
    evidence = {ev_node: 0}
    jt = JunctionTree(net, evidence)
    for node in nodes[:-1]:
        np.testing.assert_allclose(
            jt.marginal(node).values,
            query(net, [node], evidence).values,
            atol=1e-10,
        )


def test_all_marginals_covers_unobserved():
    rng = np.random.default_rng(9)
    net = random_discrete_net(rng, n_nodes=5)
    nodes = [str(n) for n in net.nodes]
    jt = JunctionTree(net, {nodes[0]: 0})
    marg = jt.all_marginals()
    assert set(marg) == set(nodes[1:])
    for f in marg.values():
        assert f.values.sum() == pytest.approx(1.0)


def test_probability_of_evidence_matches_brute_force():
    rng = np.random.default_rng(10)
    net = random_discrete_net(rng, n_nodes=5)
    nodes = [str(n) for n in net.nodes]
    evidence = {nodes[0]: 0, nodes[-1]: 1}
    # Brute force P(evidence) by enumerating the joint.
    import itertools

    cards = net.cardinalities
    p_ev = 0.0
    for assignment in itertools.product(*[range(cards[n]) for n in nodes]):
        full = dict(zip(nodes, assignment))
        if any(full[k] != v for k, v in evidence.items()):
            continue
        p = 1.0
        for n in nodes:
            cpd = net.cpd(n)
            p *= cpd.prob(full[n], {pa: full[pa] for pa in cpd.parents})
        p_ev += p
    jt = JunctionTree(net, evidence)
    assert jt.log_probability_of_evidence() == pytest.approx(np.log(p_ev))


def test_validation():
    rng = np.random.default_rng(11)
    net = random_discrete_net(rng, n_nodes=4)
    nodes = [str(n) for n in net.nodes]
    with pytest.raises(InferenceError):
        JunctionTree(net, {"ghost": 0})
    jt = JunctionTree(net, {nodes[0]: 0})
    with pytest.raises(InferenceError):
        jt.marginal(nodes[0])  # observed
    with pytest.raises(InferenceError):
        jt.marginal("ghost")


def test_impossible_evidence_rejected():
    from repro.bn.cpd import TabularCPD
    from repro.bn.dag import DAG
    from repro.bn.network import DiscreteBayesianNetwork

    dag = DAG(nodes=["a", "b"], edges=[("a", "b")])
    net = DiscreteBayesianNetwork(
        dag,
        [
            TabularCPD("a", 2, np.array([1.0, 0.0])),
            TabularCPD("b", 2, np.array([[1.0, 0.5], [0.0, 0.5]]), ("a",), (2,)),
        ],
    )
    with pytest.raises(InferenceError):
        JunctionTree(net, {"b": 1})


def test_ediamond_dcomp_all_marginals(ediamond_discrete_model, ediamond_data):
    """dComp-style bulk query: all service posteriors in one calibration."""
    _, test = ediamond_data
    disc = ediamond_discrete_model.discretizer
    net = ediamond_discrete_model.network
    evidence = {
        "D": disc.state_of("D", float(np.mean(test["D"]))),
        "X1": disc.state_of("X1", float(np.mean(test["X1"]))),
    }
    jt = JunctionTree(net, evidence)
    marginals = jt.all_marginals()
    assert set(marginals) == {"X2", "X3", "X4", "X5", "X6"}
    for node, f in marginals.items():
        np.testing.assert_allclose(
            f.values, net.query([node], evidence).values, atol=1e-9
        )
