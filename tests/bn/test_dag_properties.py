"""Property-based tests for DAG invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bn.dag import DAG
from repro.exceptions import GraphError


@st.composite
def random_dags(draw, max_nodes=8):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = np.random.default_rng(seed)
    return DAG.random([f"v{i}" for i in range(n)], p, rng)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_topological_order_is_consistent(dag):
    order = dag.topological_order()
    assert sorted(map(str, order)) == sorted(map(str, dag.nodes))
    pos = {n: i for i, n in enumerate(order)}
    for u, v in dag.edges:
        assert pos[u] < pos[v]


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_parent_child_duality(dag):
    for node in dag.nodes:
        for p in dag.parents(node):
            assert node in dag.children(p)
        for c in dag.children(node):
            assert node in dag.parents(c)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_edge_count_consistency(dag):
    assert dag.n_edges == sum(dag.in_degree(n) for n in dag.nodes)
    assert dag.n_edges == sum(dag.out_degree(n) for n in dag.nodes)


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_ancestor_descendant_duality(dag):
    for node in dag.nodes:
        for anc in dag.ancestors(node):
            assert node in dag.descendants(anc)


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_reversing_any_edge_never_leaves_cycles_undetected(dag):
    # Removing an edge and adding its reverse either succeeds (still a DAG,
    # so a topological order exists) or raises GraphError — never corrupts.
    for u, v in list(dag.edges)[:3]:
        clone = dag.copy()
        clone.remove_edge(u, v)
        try:
            clone.add_edge(v, u)
        except GraphError:
            continue
        order = clone.topological_order()
        assert len(order) == clone.n_nodes


@given(random_dags(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_dsep_symmetry(dag, seed):
    rng = np.random.default_rng(seed)
    nodes = list(dag.nodes)
    if len(nodes) < 2:
        return
    i, j = rng.choice(len(nodes), size=2, replace=False)
    z = [n for k, n in enumerate(nodes) if rng.random() < 0.3 and k not in (i, j)]
    assert dag.d_separated(nodes[i], nodes[j], z) == dag.d_separated(
        nodes[j], nodes[i], z
    )


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_moral_neighbors_symmetric_and_marries_parents(dag):
    adj = dag.moral_neighbors()
    for u, nbrs in adj.items():
        for v in nbrs:
            assert u in adj[v]
    for node in dag.nodes:
        ps = dag.parents(node)
        for i in range(len(ps)):
            for j in range(i + 1, len(ps)):
                assert ps[j] in adj[ps[i]]
