"""Unit tests for the CPD families."""

import math

import numpy as np
import pytest

from repro.bn.cpd import (
    DeterministicCPD,
    LinearGaussianCPD,
    NoisyDeterministicCPD,
    TabularCPD,
)
from repro.bn.data import Dataset
from repro.exceptions import CPDError
from repro.workflow.expressions import Max, Sum, Var


# --------------------------------------------------------------------- #
# TabularCPD
# --------------------------------------------------------------------- #


def test_tabular_normalization_enforced():
    with pytest.raises(CPDError):
        TabularCPD("x", 2, np.array([0.9, 0.3]))
    with pytest.raises(CPDError):
        TabularCPD("x", 2, np.array([-0.1, 1.1]))


def test_tabular_shape_validation():
    with pytest.raises(CPDError):
        TabularCPD("x", 2, np.ones((3, 2)) / 3, ("p",), (2,))
    with pytest.raises(CPDError):
        TabularCPD("x", 2, np.full((2, 2), 0.5), ("p",), ())  # card mismatch


def test_tabular_own_parent_rejected():
    with pytest.raises(ValueError):
        TabularCPD("x", 2, np.full((2, 2), 0.5), ("x",), (2,))


def test_tabular_prob_lookup():
    cpd = TabularCPD(
        "x", 2, np.array([[0.2, 0.7], [0.8, 0.3]]), ("p",), (2,)
    )
    assert cpd.prob(0, {"p": 0}) == pytest.approx(0.2)
    assert cpd.prob(1, {"p": 1}) == pytest.approx(0.3)
    with pytest.raises(CPDError):
        cpd.prob(0, {})
    with pytest.raises(CPDError):
        cpd.prob(5, {"p": 0})
    with pytest.raises(CPDError):
        cpd.prob(0, {"p": 9})


def test_tabular_log_likelihood_matches_manual():
    cpd = TabularCPD("x", 2, np.array([[0.25, 0.5], [0.75, 0.5]]), ("p",), (2,))
    data = Dataset({"x": np.array([0, 1, 1]), "p": np.array([0, 0, 1])})
    ll = cpd.log_likelihood(data)
    np.testing.assert_allclose(ll, np.log([0.25, 0.75, 0.5]))


def test_tabular_sampling_frequencies(rng):
    cpd = TabularCPD("x", 3, np.array([0.1, 0.3, 0.6]))
    draws = cpd.sample({}, 20000, rng)
    freq = np.bincount(draws, minlength=3) / 20000
    np.testing.assert_allclose(freq, [0.1, 0.3, 0.6], atol=0.02)


def test_tabular_conditional_sampling(rng):
    cpd = TabularCPD("x", 2, np.array([[0.9, 0.1], [0.1, 0.9]]), ("p",), (2,))
    p = np.array([0] * 5000 + [1] * 5000)
    draws = cpd.sample({"p": p}, 10000, rng)
    assert np.mean(draws[:5000]) == pytest.approx(0.1, abs=0.02)
    assert np.mean(draws[5000:]) == pytest.approx(0.9, abs=0.02)


def test_tabular_to_factor_roundtrip():
    cpd = TabularCPD.random("x", 3, np.random.default_rng(1), ("p",), (2,))
    f = cpd.to_factor()
    assert f.variables == ("x", "p")
    np.testing.assert_allclose(f.values, cpd.values)


def test_tabular_uniform_and_random_are_normalized(rng):
    u = TabularCPD.uniform("x", 4, ("p", "q"), (2, 3))
    assert u.values.shape == (4, 2, 3)
    np.testing.assert_allclose(u.values.sum(axis=0), 1.0)
    r = TabularCPD.random("x", 4, rng, ("p",), (5,))
    np.testing.assert_allclose(r.values.sum(axis=0), 1.0)


def test_tabular_n_parameters():
    cpd = TabularCPD.uniform("x", 4, ("p", "q"), (2, 3))
    assert cpd.n_parameters == 3 * 6


# --------------------------------------------------------------------- #
# LinearGaussianCPD
# --------------------------------------------------------------------- #


def test_lg_validation():
    with pytest.raises(CPDError):
        LinearGaussianCPD("x", 0.0, [1.0], 1.0, ())  # coeff/parent mismatch
    with pytest.raises(CPDError):
        LinearGaussianCPD("x", 0.0, (), 0.0)  # zero variance


def test_lg_mean_given():
    cpd = LinearGaussianCPD("x", 1.0, [2.0, -1.0], 1.0, ("a", "b"))
    assert cpd.mean_given({"a": 3.0, "b": 1.0}) == pytest.approx(6.0)
    with pytest.raises(CPDError):
        cpd.mean_given({"a": 3.0})


def test_lg_log_likelihood_is_gaussian_density():
    cpd = LinearGaussianCPD("x", 0.0, (), 2.0)
    data = Dataset({"x": np.array([0.0, 1.0])})
    ll = cpd.log_likelihood(data)
    expected = -0.5 * (np.log(2 * np.pi) + math.log(2.0) + np.array([0.0, 0.5]))
    np.testing.assert_allclose(ll, expected)


def test_lg_log_likelihood_with_parents_matches_scipy():
    from scipy.stats import norm

    cpd = LinearGaussianCPD("x", 1.0, [0.5], 0.7, ("p",))
    data = Dataset({"x": np.array([1.2, 0.3]), "p": np.array([2.0, -1.0])})
    ll = cpd.log_likelihood(data)
    mu = 1.0 + 0.5 * data["p"]
    np.testing.assert_allclose(ll, norm.logpdf(data["x"], mu, math.sqrt(0.7)))


def test_lg_sampling_moments(rng):
    cpd = LinearGaussianCPD("x", 2.0, [3.0], 0.25, ("p",))
    p = np.full(50000, 1.5)
    draws = cpd.sample({"p": p}, 50000, rng)
    assert draws.mean() == pytest.approx(2.0 + 4.5, abs=0.02)
    assert draws.std() == pytest.approx(0.5, abs=0.02)


def test_lg_n_parameters():
    assert LinearGaussianCPD("x", 0.0, (), 1.0).n_parameters == 2
    assert LinearGaussianCPD("x", 0.0, [1, 2], 1.0, ("a", "b")).n_parameters == 4


# --------------------------------------------------------------------- #
# DeterministicCPD (Eq. 4)
# --------------------------------------------------------------------- #


def det_cpd(leak=0.1, decay=1.0, edges=None):
    f = Sum([Var("a"), Var("b")])
    return DeterministicCPD(
        "d",
        f,
        ("a", "b"),
        {"a": np.array([0.0, 1.0]), "b": np.array([0.0, 1.0])},
        np.array([-0.5, 0.5, 1.5, 2.5]) if edges is None else edges,
        leak=leak,
        leak_decay=decay,
    )


def test_det_validation():
    f = Var("a")
    with pytest.raises(CPDError):
        DeterministicCPD("d", f, (), {}, np.array([0, 1]))
    with pytest.raises(CPDError):
        det_cpd(leak=1.0)
    with pytest.raises(CPDError):
        det_cpd(edges=np.array([1.0, 0.5]))  # not increasing
    with pytest.raises(CPDError):
        DeterministicCPD(
            "d", f, ("a",), {}, np.array([0.0, 1.0])
        )  # missing centers


def test_det_prob_vector_eq4():
    cpd = det_cpd(leak=0.1, decay=1.0)
    # a=1, b=1 -> f=2 -> bin 2; uniform leak over the other two bins.
    pmf = cpd.prob_vector({"a": 1, "b": 1})
    np.testing.assert_allclose(pmf, [0.05, 0.05, 0.9])
    assert pmf.sum() == pytest.approx(1.0)


def test_det_geometric_leak_prefers_neighbors():
    cpd = det_cpd(leak=0.2, decay=0.5, edges=np.linspace(-0.5, 4.5, 6))
    pmf = cpd.prob_vector({"a": 0, "b": 0})  # f=0 -> bin 0
    assert pmf[0] == pytest.approx(0.8)
    assert pmf[1] > pmf[2] > pmf[3] > pmf[4]
    assert pmf.sum() == pytest.approx(1.0)


def test_det_explicit_transition():
    t = np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1], [0.1, 0.2, 0.7]])
    f = Sum([Var("a"), Var("b")])
    cpd = DeterministicCPD(
        "d", f, ("a", "b"),
        {"a": np.array([0.0, 1.0]), "b": np.array([0.0, 1.0])},
        np.array([-0.5, 0.5, 1.5, 2.5]),
        transition=t,
    )
    np.testing.assert_allclose(cpd.prob_vector({"a": 1, "b": 1}), t[2])
    with pytest.raises(CPDError):
        DeterministicCPD(
            "d", f, ("a", "b"),
            {"a": np.array([0.0, 1.0]), "b": np.array([0.0, 1.0])},
            np.array([-0.5, 0.5, 1.5, 2.5]),
            transition=np.ones((3, 3)),
        )


def test_det_log_likelihood_hits_and_misses():
    cpd = det_cpd(leak=0.1, decay=1.0)
    data = Dataset({"d": np.array([2, 0]), "a": np.array([1, 1]), "b": np.array([1, 1])})
    ll = cpd.log_likelihood(data)
    np.testing.assert_allclose(ll, np.log([0.9, 0.05]))


def test_det_zero_leak_sampling_is_deterministic(rng):
    cpd = det_cpd(leak=0.0)
    a = np.array([0, 1, 1])
    b = np.array([0, 0, 1])
    draws = cpd.sample({"a": a, "b": b}, 3, rng)
    np.testing.assert_array_equal(draws, [0, 1, 2])


def test_det_to_factor_columns_normalized():
    cpd = det_cpd(leak=0.15, decay=0.5)
    f = cpd.to_factor()
    assert f.variables == ("d", "a", "b")
    np.testing.assert_allclose(f.values.sum(axis=0), 1.0)


def test_det_to_factor_size_guard():
    cpd = det_cpd()
    with pytest.raises(CPDError):
        cpd.to_factor(max_size=2)


def test_det_max_expression():
    f = Max([Var("a"), Var("b")])
    cpd = DeterministicCPD(
        "d", f, ("a", "b"),
        {"a": np.array([0.0, 2.0]), "b": np.array([1.0, 3.0])},
        np.array([-0.5, 0.5, 1.5, 2.5, 3.5]),
        leak=0.0,
    )
    # a=1 (2.0), b=0 (1.0) -> max=2.0 -> bin 2
    assert cpd.prob_vector({"a": 1, "b": 0})[2] == 1.0


# --------------------------------------------------------------------- #
# NoisyDeterministicCPD
# --------------------------------------------------------------------- #


def test_noisy_det_loglik_and_sampling(rng):
    f = Sum([Var("a"), Var("b")])
    cpd = NoisyDeterministicCPD("d", f, ("a", "b"), variance=0.04)
    a = np.full(20000, 1.0)
    b = np.full(20000, 2.0)
    draws = cpd.sample({"a": a, "b": b}, 20000, rng)
    assert draws.mean() == pytest.approx(3.0, abs=0.01)
    assert draws.std() == pytest.approx(0.2, abs=0.01)

    data = Dataset({"d": np.array([3.0]), "a": np.array([1.0]), "b": np.array([2.0])})
    ll = cpd.log_likelihood(data)[0]
    assert ll == pytest.approx(-0.5 * (np.log(2 * np.pi) + np.log(0.04)))


def test_noisy_det_fit_variance():
    f = Sum([Var("a"), Var("b")])
    rng = np.random.default_rng(3)
    a = rng.normal(size=5000)
    b = rng.normal(size=5000)
    d = a + b + rng.normal(0, 0.3, size=5000)
    data = Dataset({"a": a, "b": b, "d": d})
    cpd = NoisyDeterministicCPD.fit_variance("d", f, ("a", "b"), data)
    assert cpd.variance == pytest.approx(0.09, rel=0.1)


def test_noisy_det_validation():
    f = Var("a")
    with pytest.raises(CPDError):
        NoisyDeterministicCPD("d", f, ("a",), variance=0.0)
    with pytest.raises(CPDError):
        NoisyDeterministicCPD("d", f, ())
