"""Compile-once engine cross-checked against VE, junction tree, brute force."""

import numpy as np
import pytest

from repro.bn.cpd import TabularCPD
from repro.bn.dag import DAG
from repro.bn.inference.engine import CompiledDiscreteModel
from repro.bn.inference.junction_tree import JunctionTree
from repro.bn.inference.variable_elimination import query as ve_query
from repro.bn.network import DiscreteBayesianNetwork
from repro.exceptions import InferenceError

from tests.bn.test_inference_ve import brute_force, random_discrete_net


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_single_queries_match_scratch_ve(seed):
    rng = np.random.default_rng(seed)
    net = random_discrete_net(rng, n_nodes=6)
    engine = CompiledDiscreteModel(net)
    nodes = [str(n) for n in net.nodes]
    evidence = {nodes[-1]: 0}
    for q in nodes[:-1]:
        ref = ve_query(net, [q], evidence)
        got = engine.query([q], evidence)
        assert got.variables == ref.variables
        np.testing.assert_allclose(got.values, ref.values, atol=1e-9)


@pytest.mark.parametrize("seed", [5, 6])
def test_joint_queries_match_brute_force(seed):
    rng = np.random.default_rng(seed)
    net = random_discrete_net(rng, n_nodes=5)
    engine = CompiledDiscreteModel(net)
    nodes = [str(n) for n in net.nodes]
    evidence = {nodes[0]: 0}
    got = engine.query(nodes[1:3], evidence)
    ref = brute_force(net, nodes[1:3], evidence)
    np.testing.assert_allclose(got.values, ref, atol=1e-9)


def test_matches_junction_tree_marginals():
    rng = np.random.default_rng(7)
    net = random_discrete_net(rng, n_nodes=6)
    nodes = [str(n) for n in net.nodes]
    evidence = {nodes[0]: 0}
    engine = CompiledDiscreteModel(net)
    jt = JunctionTree(net, evidence)
    for q in nodes[1:]:
        np.testing.assert_allclose(
            engine.query([q], evidence).values,
            jt.marginal(q).values,
            atol=1e-9,
        )


def test_query_batch_matches_per_row_queries():
    rng = np.random.default_rng(8)
    net = random_discrete_net(rng, n_nodes=6)
    engine = CompiledDiscreteModel(net)
    nodes = [str(n) for n in net.nodes]
    cards = net.cardinalities
    ev_vars = [nodes[0], nodes[-1]]
    n = 40
    columns = {v: rng.integers(0, cards[v], size=n) for v in ev_vars}
    batch = engine.query_batch([nodes[2], nodes[3]], columns)
    assert batch.shape == (n, cards[nodes[2]], cards[nodes[3]])
    for i in range(n):
        row_ev = {v: int(columns[v][i]) for v in ev_vars}
        ref = ve_query(net, [nodes[2], nodes[3]], row_ev)
        np.testing.assert_allclose(batch[i], ref.values, atol=1e-9)


def test_query_batch_accepts_row_mappings():
    rng = np.random.default_rng(9)
    net = random_discrete_net(rng, n_nodes=5)
    engine = CompiledDiscreteModel(net)
    nodes = [str(n) for n in net.nodes]
    rows = [{nodes[0]: 0}, {nodes[0]: 1}]
    batch = engine.query_batch([nodes[-1]], rows)
    for i, row in enumerate(rows):
        np.testing.assert_allclose(
            batch[i], ve_query(net, [nodes[-1]], row).values, atol=1e-9
        )


def test_plans_and_priors_are_cached():
    rng = np.random.default_rng(10)
    net = random_discrete_net(rng, n_nodes=5)
    engine = CompiledDiscreteModel(net)
    nodes = [str(n) for n in net.nodes]
    engine.query([nodes[1]], {nodes[0]: 0})
    engine.query([nodes[1]], {nodes[0]: 1})  # same signature, new values
    assert engine.n_cached_plans == 1
    engine.query([nodes[2]], {nodes[0]: 0})
    assert engine.n_cached_plans == 2
    p1 = engine.prior(nodes[1])
    p2 = engine.prior(nodes[1])
    assert p1 is p2
    np.testing.assert_allclose(p1.values, ve_query(net, [nodes[1]], {}).values, atol=1e-9)


def test_network_query_fast_path_uses_cached_engine():
    rng = np.random.default_rng(11)
    net = random_discrete_net(rng, n_nodes=5)
    nodes = [str(n) for n in net.nodes]
    assert net.compiled() is net.compiled()
    got = net.query([nodes[1]], {nodes[0]: 0})
    ref = ve_query(net, [nodes[1]], {nodes[0]: 0})
    np.testing.assert_allclose(got.values, ref.values, atol=1e-9)
    batch = net.query_batch([nodes[1]], {nodes[0]: [0, 1]})
    np.testing.assert_allclose(batch[0], got.values, atol=1e-9)


def test_posterior_mean_batch():
    rng = np.random.default_rng(12)
    net = random_discrete_net(rng, n_nodes=5)
    engine = CompiledDiscreteModel(net)
    nodes = [str(n) for n in net.nodes]
    card = net.cardinalities[nodes[1]]
    centers = np.linspace(1.0, 2.0, card)
    cols = {nodes[0]: rng.integers(0, net.cardinalities[nodes[0]], size=7)}
    means = engine.posterior_mean_batch(nodes[1], centers, cols)
    for i in range(7):
        expected = net.posterior_mean(
            nodes[1], centers, {nodes[0]: int(cols[nodes[0]][i])}
        )
        assert means[i] == pytest.approx(expected, abs=1e-12)


# --------------------------------------------------------------------- #
# Error paths
# --------------------------------------------------------------------- #


def test_engine_error_paths():
    rng = np.random.default_rng(13)
    net = random_discrete_net(rng, n_nodes=4)
    engine = CompiledDiscreteModel(net)
    nodes = [str(n) for n in net.nodes]
    with pytest.raises(InferenceError):
        engine.query(["nope"], {})
    with pytest.raises(InferenceError):
        engine.query([nodes[0]], {nodes[0]: 0})
    with pytest.raises(InferenceError):
        engine.query([], {nodes[0]: 0})
    with pytest.raises(InferenceError):
        engine.query([nodes[1]], {nodes[0]: 99})
    with pytest.raises(InferenceError):
        engine.query_batch([nodes[1]], {})
    with pytest.raises(InferenceError):
        engine.query_batch([nodes[1]], {nodes[0]: []})
    with pytest.raises(InferenceError):
        engine.query_batch([nodes[1]], {nodes[0]: [0], nodes[2]: [0, 0]})
    with pytest.raises(InferenceError):
        engine.query_batch([nodes[1]], {nodes[0]: [-1]})
    with pytest.raises(InferenceError):
        engine.query_batch([nodes[1]], [{nodes[0]: 0}, {nodes[2]: 0}])


def test_zero_probability_evidence_raises():
    # A is deterministically 0 and P(B=1 | A=0) = 0, so observing B=1 is
    # impossible; both the single and the batched path must say so.
    engine = CompiledDiscreteModel(
        DiscreteBayesianNetwork(
            DAG(nodes=["A", "B", "C"], edges=[("A", "B"), ("B", "C")]),
            [
                TabularCPD("A", 2, np.array([1.0, 0.0])),
                TabularCPD("B", 2, np.array([[1.0, 0.3], [0.0, 0.7]]), ("A",), (2,)),
                TabularCPD("C", 2, np.array([[0.5, 0.5], [0.5, 0.5]]), ("B",), (2,)),
            ],
        )
    )
    with pytest.raises(InferenceError, match="zero probability"):
        engine.query(["C"], {"B": 1})
    with pytest.raises(InferenceError, match="zero probability"):
        engine.query_batch(["C"], {"B": [0, 1]})
    # The possible row alone still works.
    np.testing.assert_allclose(engine.query_batch(["C"], {"B": [0]})[0].sum(), 1.0)


def test_plan_cache_lru_cap_holds():
    """Adversarial query mixes may not grow the plan cache past its cap."""
    rng = np.random.default_rng(12)
    net = random_discrete_net(rng, n_nodes=6)
    engine = CompiledDiscreteModel(net, plan_cache_size=4)
    assert engine.plan_cache_capacity == 4
    nodes = [str(n) for n in net.nodes]
    # 6 distinct signatures: vary the query variable with fixed evidence.
    for q in nodes[1:]:
        engine.query([q], {nodes[0]: 0})
    engine.query([nodes[0]], {nodes[1]: 0})
    stats = engine.cache_stats()
    assert engine.n_cached_plans <= 4
    assert stats["evictions"] >= 2
    assert stats["compiles"] == 6
    # Evicted signatures recompile — and still answer correctly.
    got = engine.query([nodes[1]], {nodes[0]: 0})
    np.testing.assert_allclose(
        got.values, ve_query(net, [nodes[1]], {nodes[0]: 0}).values, atol=1e-9
    )
    assert engine.n_cached_plans <= 4


def test_evidence_columns_intp_arrays_are_not_copied():
    """Columnar intp evidence must flow through zero-copy."""
    from repro.bn.inference.engine import _evidence_columns

    col = np.arange(16, dtype=np.intp)
    out = _evidence_columns({"A": col})
    assert np.shares_memory(out["A"], col)
    # Other integer dtypes of the same width are also zero-copy.
    if np.dtype(np.int64).itemsize == np.dtype(np.intp).itemsize:
        col64 = np.arange(16, dtype=np.int64)
        assert np.shares_memory(_evidence_columns({"A": col64})["A"], col64)
    # Floats must be converted (and hence copied), never reinterpreted.
    colf = np.zeros(4, dtype=np.float64)
    outf = _evidence_columns({"A": colf})
    assert outf["A"].dtype == np.intp
    assert not np.shares_memory(outf["A"], colf)


def test_query_batch_float32_path():
    """Single-precision batches stay within the documented deviation."""
    from repro.bn.inference.engine import FLOAT32_MAX_DEVIATION

    rng = np.random.default_rng(13)
    net = random_discrete_net(rng, n_nodes=6)
    engine = CompiledDiscreteModel(net)
    nodes = [str(n) for n in net.nodes]
    cards = net.cardinalities
    ev_vars = [nodes[0], nodes[-1]]
    n = 64
    columns = {
        v: rng.integers(0, cards[v], size=n).astype(np.intp) for v in ev_vars
    }
    exact = engine.query_batch([nodes[2]], columns)
    fast = engine.query_batch([nodes[2]], columns, dtype=np.float32)
    assert fast.dtype == np.float32
    assert np.max(np.abs(fast.astype(np.float64) - exact)) <= FLOAT32_MAX_DEVIATION
    with pytest.raises(InferenceError, match="dtype"):
        engine.query_batch([nodes[2]], columns, dtype=np.int32)
