"""Parameter learning: consistency, smoothing, degenerate inputs."""

import numpy as np
import pytest

from repro.bn.cpd import TabularCPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.learning.mle import (
    fit_discrete_network,
    fit_gaussian_network,
    fit_linear_gaussian,
    fit_tabular,
)
from repro.bn.network import DiscreteBayesianNetwork
from repro.exceptions import LearningError


def test_fit_lg_root_node(rng):
    x = rng.normal(3.0, 2.0, size=50_000)
    cpd = fit_linear_gaussian(Dataset({"x": x}), "x")
    assert cpd.intercept == pytest.approx(3.0, abs=0.05)
    assert cpd.variance == pytest.approx(4.0, rel=0.05)


def test_fit_lg_recovers_regression(rng):
    a = rng.normal(size=50_000)
    b = rng.normal(size=50_000)
    x = 1.0 + 2.0 * a - 3.0 * b + rng.normal(0, 0.5, size=50_000)
    cpd = fit_linear_gaussian(Dataset({"x": x, "a": a, "b": b}), "x", ("a", "b"))
    assert cpd.intercept == pytest.approx(1.0, abs=0.02)
    np.testing.assert_allclose(cpd.coefficients, [2.0, -3.0], atol=0.02)
    assert cpd.variance == pytest.approx(0.25, rel=0.05)


def test_fit_lg_collinear_parents_survives(rng):
    a = rng.normal(size=1000)
    data = Dataset({"x": 2 * a, "a": a, "b": a.copy()})  # b == a exactly
    cpd = fit_linear_gaussian(data, "x", ("a", "b"))
    # Ridge keeps it solvable; combined effect must still be ≈ 2.
    assert cpd.coefficients.sum() == pytest.approx(2.0, abs=1e-3)


def test_fit_lg_constant_column_gets_floor_variance():
    data = Dataset({"x": np.full(100, 5.0)})
    cpd = fit_linear_gaussian(data, "x")
    assert cpd.variance > 0


def test_fit_lg_empty_data_raises():
    with pytest.raises(LearningError):
        fit_linear_gaussian(Dataset({"x": np.array([])}), "x")


def test_fit_tabular_mle_counts():
    data = Dataset({"x": np.array([0, 0, 1, 1, 1, 1])})
    cpd = fit_tabular(data, "x", 2, alpha=0.0)
    np.testing.assert_allclose(cpd.values, [1 / 3, 2 / 3])


def test_fit_tabular_laplace_smoothing():
    data = Dataset({"x": np.array([0, 0])})
    cpd = fit_tabular(data, "x", 2, alpha=1.0)
    np.testing.assert_allclose(cpd.values, [3 / 4, 1 / 4])


def test_fit_tabular_with_parents_recovers_truth(rng):
    truth = TabularCPD(
        "x", 2, np.array([[0.8, 0.3], [0.2, 0.7]]), ("p",), (2,)
    )
    p = rng.integers(0, 2, size=100_000)
    x = truth.sample({"p": p}, 100_000, rng)
    cpd = fit_tabular(
        Dataset({"x": x, "p": p}), "x", 2, ("p",), (2,), alpha=0.0
    )
    np.testing.assert_allclose(cpd.values, truth.values, atol=0.01)


def test_fit_tabular_unseen_config_uniform():
    data = Dataset({"x": np.array([0, 1]), "p": np.array([0, 0])})
    cpd = fit_tabular(data, "x", 2, ("p",), (2,), alpha=0.0)
    np.testing.assert_allclose(cpd.values[:, 1], [0.5, 0.5])


def test_fit_tabular_out_of_range_state():
    with pytest.raises(LearningError):
        fit_tabular(Dataset({"x": np.array([0, 5])}), "x", 2)
    with pytest.raises(LearningError):
        fit_tabular(
            Dataset({"x": np.array([0]), "p": np.array([7])}), "x", 2, ("p",), (2,)
        )


def test_fit_gaussian_network_end_to_end(chain_gaussian_net, rng):
    data = chain_gaussian_net.sample(50_000, rng)
    fitted = fit_gaussian_network(chain_gaussian_net.dag, data)
    for node in ("a", "b", "c"):
        truth = chain_gaussian_net.cpd(node)
        est = fitted.cpd(node)
        assert est.intercept == pytest.approx(truth.intercept, abs=0.05)
        np.testing.assert_allclose(est.coefficients, truth.coefficients, atol=0.05)
        assert est.variance == pytest.approx(truth.variance, rel=0.1)


def test_fit_discrete_network_end_to_end(rng):
    dag = DAG(nodes=["a", "b"], edges=[("a", "b")])
    truth = DiscreteBayesianNetwork(
        dag,
        [
            TabularCPD("a", 2, np.array([0.3, 0.7])),
            TabularCPD("b", 3, np.array([[0.5, 0.1], [0.25, 0.2], [0.25, 0.7]]),
                       ("a",), (2,)),
        ],
    )
    data = truth.sample(100_000, rng)
    fitted = fit_discrete_network(dag, data, {"a": 2, "b": 3}, alpha=0.0)
    np.testing.assert_allclose(fitted.cpd("a").values, [0.3, 0.7], atol=0.01)
    np.testing.assert_allclose(
        fitted.cpd("b").values, truth.cpd("b").values, atol=0.02
    )


def test_mle_maximizes_likelihood_property(rng):
    """The MLE fit must out-score any perturbed parameterization."""
    x = rng.normal(1.0, 1.0, size=2000)
    data = Dataset({"x": x})
    mle = fit_linear_gaussian(data, "x")
    best = mle.log_likelihood(data).sum()
    for _ in range(10):
        from repro.bn.cpd import LinearGaussianCPD

        perturbed = LinearGaussianCPD(
            "x",
            mle.intercept + rng.normal(0, 0.2),
            (),
            mle.variance * np.exp(rng.normal(0, 0.3)),
        )
        assert perturbed.log_likelihood(data).sum() <= best + 1e-9
