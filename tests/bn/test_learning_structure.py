"""Structure learning: scores, K2, exhaustive search."""

import numpy as np
import pytest

from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.learning.exhaustive import exhaustive_search
from repro.bn.learning.k2 import k2_random_restarts, k2_search
from repro.bn.learning.scores import (
    ScoreCache,
    discrete_bic_local,
    discrete_k2_local,
    gaussian_bic_local,
)
from repro.exceptions import LearningError


def chain_data(n=3000, rng=None):
    rng = rng or np.random.default_rng(0)
    a = rng.normal(size=n)
    b = 2 * a + rng.normal(0, 0.5, size=n)
    c = -b + rng.normal(0, 0.5, size=n)
    return Dataset({"a": a, "b": b, "c": c})


def test_gaussian_bic_prefers_true_parent():
    data = chain_data()
    assert gaussian_bic_local(data, "b", ("a",)) > gaussian_bic_local(data, "b", ())
    assert gaussian_bic_local(data, "c", ("b",)) > gaussian_bic_local(data, "c", ("a",))


def test_gaussian_bic_penalizes_spurious_parent(rng):
    n = 5000
    x = rng.normal(size=n)
    noise = rng.normal(size=n)
    data = Dataset({"x": x, "z": noise})
    assert gaussian_bic_local(data, "x", ()) > gaussian_bic_local(data, "x", ("z",))


def test_gaussian_bic_needs_rows():
    with pytest.raises(LearningError):
        gaussian_bic_local(Dataset({"x": np.array([1.0])}), "x", ())


def test_discrete_scores_prefer_true_parent(rng):
    n = 5000
    p = rng.integers(0, 2, size=n)
    x = np.where(rng.random(n) < 0.9, p, 1 - p)
    z = rng.integers(0, 2, size=n)
    data = Dataset({"p": p, "x": x, "z": z})
    for score in (discrete_k2_local, discrete_bic_local):
        with_parent = score(data, "x", 2, ("p",), (2,))
        without = score(data, "x", 2, (), ())
        with_noise = score(data, "x", 2, ("z",), (2,))
        assert with_parent > without
        assert with_parent > with_noise


def test_score_cache_hits():
    data = chain_data(200)
    cache = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    s1 = cache("b", ("a",))
    s2 = cache("b", ("a",))
    assert s1 == s2
    assert cache.n_evaluations == 1
    assert cache.n_hits == 1
    cache.clear()
    assert cache.n_evaluations == 0


def test_k2_recovers_chain_with_good_order():
    data = chain_data()
    score = lambda v, ps: gaussian_bic_local(data, v, ps)
    result = k2_search(["a", "b", "c"], score, order=["a", "b", "c"])
    assert set(result.dag.edges) == {("a", "b"), ("b", "c")}
    assert result.n_score_evaluations > 0
    assert result.elapsed_seconds >= 0


def test_k2_bad_order_still_builds_valid_dag():
    data = chain_data()
    score = lambda v, ps: gaussian_bic_local(data, v, ps)
    result = k2_search(["a", "b", "c"], score, order=["c", "b", "a"])
    # Edges must respect the ordering: only later nodes get earlier parents.
    pos = {"c": 0, "b": 1, "a": 2}
    for u, v in result.dag.edges:
        assert pos[u] < pos[v]


def test_k2_max_parents_cap():
    rng = np.random.default_rng(4)
    n = 2000
    cols = {f"p{i}": rng.normal(size=n) for i in range(4)}
    cols["x"] = sum(cols.values()) + rng.normal(0, 0.1, size=n)
    data = Dataset(cols)
    score = lambda v, ps: gaussian_bic_local(data, v, ps)
    nodes = [f"p{i}" for i in range(4)] + ["x"]
    result = k2_search(nodes, score, order=nodes, max_parents=2)
    assert all(result.dag.in_degree(n) <= 2 for n in result.dag.nodes)


def test_k2_order_validation():
    data = chain_data(100)
    score = lambda v, ps: gaussian_bic_local(data, v, ps)
    with pytest.raises(LearningError):
        k2_search(["a", "b"], score, order=["a", "z"])


def test_k2_random_restarts_improves_or_matches_single():
    data = chain_data(800)
    score = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    single = k2_search(["c", "a", "b"], score, order=["c", "a", "b"])
    multi = k2_random_restarts(["a", "b", "c"], score, rng=0, n_restarts=10)
    assert multi.score >= single.score
    assert multi.n_restarts == 10


def test_k2_random_restarts_share_score_cache():
    # Restarts revisit overlapping (node, parent-set) families; the shared
    # cache must turn those into hits, and the raw function must never be
    # called twice for the same family.
    data = chain_data(500)
    calls: list[tuple[str, frozenset]] = []

    def counting_score(v, ps):
        calls.append((v, frozenset(ps)))
        return gaussian_bic_local(data, v, ps)

    result = k2_random_restarts(
        ["a", "b", "c"], counting_score, rng=0, n_restarts=10
    )
    assert result.n_restarts == 10
    assert result.n_cache_hits > 0
    assert len(calls) == len(set(calls))  # every family scored at most once
    # Calls + hits account for every score lookup the search made.
    assert len(calls) + result.n_cache_hits == result.n_score_evaluations
    # A caller-provided ScoreCache (the NRT-BN path) is reused, not rewrapped.
    cache = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    k2_random_restarts(["a", "b", "c"], cache, rng=0, n_restarts=5)
    assert cache.n_evaluations > 0 and cache.n_hits > 0


def test_k2_random_restarts_time_budget():
    data = chain_data(200)
    score = lambda v, ps: gaussian_bic_local(data, v, ps)
    result = k2_random_restarts(["a", "b", "c"], score, rng=1, time_budget=0.05)
    assert result.n_restarts >= 1
    with pytest.raises(LearningError):
        k2_random_restarts(["a", "b"], score, rng=1)


def test_exhaustive_matches_k2_on_easy_chain():
    data = chain_data()
    score = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    best_dag, best_score = exhaustive_search(["a", "b", "c"], score)
    k2 = k2_search(["a", "b", "c"], score, order=["a", "b", "c"])
    assert best_score >= k2.score - 1e-9
    # The optimum must contain the strong dependencies in some orientation.
    und = {frozenset(e) for e in best_dag.edges}
    assert frozenset(("a", "b")) in und
    assert frozenset(("b", "c")) in und


def test_exhaustive_refuses_large_problems():
    score = lambda v, ps: 0.0
    with pytest.raises(LearningError):
        exhaustive_search([f"n{i}" for i in range(9)], score)
    with pytest.raises(LearningError):
        exhaustive_search([], score)


def test_exhaustive_is_global_optimum_against_random_dags():
    rng = np.random.default_rng(8)
    data = chain_data(500, rng)
    score = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))
    _, best = exhaustive_search(["a", "b", "c"], score)

    def dag_score(dag):
        return sum(score(str(n), tuple(map(str, dag.parents(n)))) for n in dag.nodes)

    for _ in range(30):
        dag = DAG.random(["a", "b", "c"], rng.random(), rng)
        assert dag_score(dag) <= best + 1e-9


def test_bdeu_prefers_true_parent(rng):
    from repro.bn.learning.scores import discrete_bdeu_local

    n = 5000
    p = rng.integers(0, 2, size=n)
    x = np.where(rng.random(n) < 0.9, p, 1 - p)
    data = Dataset({"p": p, "x": x})
    assert discrete_bdeu_local(data, "x", 2, ("p",), (2,)) > discrete_bdeu_local(
        data, "x", 2, (), ()
    )
    with pytest.raises(LearningError):
        discrete_bdeu_local(data, "x", 2, (), (), ess=0.0)


def test_bdeu_likelihood_equivalence(rng):
    """Markov-equivalent DAGs (a->b vs b->a) score identically under
    BDeu; the K2 metric does not guarantee this."""
    from repro.bn.learning.scores import discrete_bdeu_local

    n = 777  # odd, unbalanced counts to expose any asymmetry
    a = rng.integers(0, 3, size=n)
    b = (a + rng.integers(0, 2, size=n)) % 3
    data = Dataset({"a": a, "b": b})

    def dag_score(edges):
        total = 0.0
        for child, parents in edges.items():
            pcards = tuple(3 for _ in parents)
            total += discrete_bdeu_local(data, child, 3, parents, pcards)
        return total

    forward = dag_score({"a": (), "b": ("a",)})
    backward = dag_score({"b": (), "a": ("b",)})
    assert forward == pytest.approx(backward, rel=1e-12)
