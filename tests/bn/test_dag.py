"""Unit tests for the DAG substrate."""

import numpy as np
import pytest

from repro.bn.dag import DAG
from repro.exceptions import GraphError


def test_add_nodes_and_edges_basic():
    dag = DAG(nodes=["a", "b"], edges=[("a", "b")])
    assert dag.n_nodes == 2
    assert dag.n_edges == 1
    assert dag.has_edge("a", "b")
    assert not dag.has_edge("b", "a")
    assert dag.parents("b") == ("a",)
    assert dag.children("a") == ("b",)


def test_add_edge_creates_endpoints():
    dag = DAG()
    dag.add_edge("x", "y")
    assert set(dag.nodes) == {"x", "y"}


def test_duplicate_edge_is_noop():
    dag = DAG(edges=[("a", "b")])
    dag.add_edge("a", "b")
    assert dag.n_edges == 1


def test_self_loop_rejected():
    dag = DAG()
    with pytest.raises(GraphError):
        dag.add_edge("a", "a")


def test_cycle_rejected():
    dag = DAG(edges=[("a", "b"), ("b", "c")])
    with pytest.raises(GraphError):
        dag.add_edge("c", "a")


def test_long_cycle_rejected():
    dag = DAG(edges=[(i, i + 1) for i in range(10)])
    with pytest.raises(GraphError):
        dag.add_edge(10, 0)


def test_remove_edge():
    dag = DAG(edges=[("a", "b")])
    dag.remove_edge("a", "b")
    assert dag.n_edges == 0
    with pytest.raises(GraphError):
        dag.remove_edge("a", "b")


def test_remove_node_detaches_edges():
    dag = DAG(edges=[("a", "b"), ("b", "c")])
    dag.remove_node("b")
    assert set(dag.nodes) == {"a", "c"}
    assert dag.n_edges == 0


def test_unknown_node_queries_raise():
    dag = DAG(nodes=["a"])
    with pytest.raises(GraphError):
        dag.parents("zzz")
    with pytest.raises(GraphError):
        dag.remove_node("zzz")


def test_roots_and_leaves():
    dag = DAG(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    assert dag.roots() == ("a",)
    assert dag.leaves() == ("d",)


def test_topological_order_respects_edges():
    dag = DAG(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
    order = dag.topological_order()
    pos = {n: i for i, n in enumerate(order)}
    for u, v in dag.edges:
        assert pos[u] < pos[v]


def test_ancestors_descendants():
    dag = DAG(edges=[("a", "b"), ("b", "c"), ("x", "c")])
    assert dag.ancestors("c") == {"a", "b", "x"}
    assert dag.descendants("a") == {"b", "c"}
    assert dag.ancestors("a") == set()


def test_has_path():
    dag = DAG(edges=[("a", "b"), ("b", "c")])
    assert dag.has_path("a", "c")
    assert not dag.has_path("c", "a")
    assert dag.has_path("a", "a")
    assert not dag.has_path("a", "nope")


def test_subgraph_induced():
    dag = DAG(edges=[("a", "b"), ("b", "c"), ("a", "c")])
    sub = dag.subgraph(["a", "c"])
    assert set(sub.nodes) == {"a", "c"}
    assert sub.edges == (("a", "c"),)


def test_adjacency_matrix():
    dag = DAG(edges=[("a", "b")])
    mat = dag.adjacency_matrix(order=["a", "b"])
    assert mat.tolist() == [[0, 1], [0, 0]]


def test_copy_is_independent():
    dag = DAG(edges=[("a", "b")])
    cp = dag.copy()
    cp.add_edge("b", "c")
    assert "c" not in dag
    assert dag == DAG(edges=[("a", "b")])


def test_equality_ignores_insertion_order():
    d1 = DAG(nodes=["a", "b"], edges=[("a", "b")])
    d2 = DAG(nodes=["b", "a"], edges=[("a", "b")])
    assert d1 == d2


# --------------------------------------------------------------------- #
# d-separation: the classic three-node patterns plus evidence effects.
# --------------------------------------------------------------------- #


def test_dsep_chain():
    dag = DAG(edges=[("a", "b"), ("b", "c")])
    assert not dag.d_separated("a", "c")
    assert dag.d_separated("a", "c", given=["b"])


def test_dsep_fork():
    dag = DAG(edges=[("b", "a"), ("b", "c")])
    assert not dag.d_separated("a", "c")
    assert dag.d_separated("a", "c", given=["b"])


def test_dsep_collider():
    dag = DAG(edges=[("a", "b"), ("c", "b")])
    assert dag.d_separated("a", "c")
    assert not dag.d_separated("a", "c", given=["b"])


def test_dsep_collider_descendant_opens_trail():
    dag = DAG(edges=[("a", "b"), ("c", "b"), ("b", "d")])
    assert dag.d_separated("a", "c")
    assert not dag.d_separated("a", "c", given=["d"])


def test_dsep_matches_networkx_on_random_graphs():
    import networkx as nx

    rng = np.random.default_rng(7)
    for trial in range(20):
        dag = DAG.random([f"n{i}" for i in range(6)], 0.35, rng)
        g = dag.to_networkx()
        nodes = list(dag.nodes)
        x, y = rng.choice(6, size=2, replace=False)
        z = [n for n in nodes if rng.random() < 0.3 and n not in (nodes[x], nodes[y])]
        ours = dag.d_separated(nodes[x], nodes[y], given=z)
        theirs = nx.is_d_separator(g, {nodes[x]}, {nodes[y]}, set(z))
        assert ours == theirs, (dag.edges, nodes[x], nodes[y], z)


def test_random_dag_respects_max_parents(rng):
    dag = DAG.random(range(30), 0.8, rng, max_parents=2)
    assert all(dag.in_degree(n) <= 2 for n in dag.nodes)


def test_random_dag_is_acyclic(rng):
    for _ in range(5):
        dag = DAG.random(range(15), 0.5, rng)
        order = dag.topological_order()
        assert len(order) == 15
