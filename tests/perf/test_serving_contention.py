"""Contention micro-checks for the serving substrate's locks.

The fine-grained locks added to :class:`CircuitBreaker`,
:class:`AdmissionController`, :class:`ServerStats`, and the engine's
plan cache must stay *fine-grained*: hot-path critical sections are a
few dict/int operations, so threaded throughput through the guards
should be within a small constant of the single-threaded rate, not
serialized behind one coarse lock held across kernel work.  Bounds are
generous (measured margins are several× above the floors) — they trip
on accidental coarsening (e.g. holding the cache lock during a plan
build), not on scheduler noise.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serving.breaker import AdmissionController, CircuitBreaker
from repro.serving.server import QueryResult, ServerStats

N_OPS = 20_000
N_THREADS = 4


def _rate(fn, n):
    t0 = time.perf_counter()
    fn(n)
    return n / (time.perf_counter() - t0)


def test_breaker_admission_stats_guard_overhead_stays_cheap():
    """One guarded decision (breaker + admission + stats count) must stay
    in the few-microsecond range — the locks add nanoseconds, not a
    syscall-shaped cliff."""
    breaker = CircuitBreaker(failure_threshold=3, cooldown=10)
    ac = AdmissionController(window=50, rng=np.random.default_rng(0))
    stats = ServerStats()
    ok = QueryResult(status="ok", tier="compiled-einsum")

    def loop(n):
        for _ in range(n):
            if breaker.allow() and ac.admit():
                breaker.record_success()
                ac.record(False)
                stats._count(ok)

    rate = _rate(loop, N_OPS)
    # Locked guard stack: comfortably >50k decisions/s on any hardware
    # this suite runs on (measured: several hundred k/s).
    assert rate > 50_000, f"guard stack too slow: {rate:,.0f} ops/s"


def test_guards_scale_under_contention():
    """4 threads hammering the same guard objects must retain at least
    ~half of the single-thread aggregate rate — a coarse lock held
    around anything expensive collapses this to ~1/N."""
    breaker = CircuitBreaker(failure_threshold=3, cooldown=10)
    ac = AdmissionController(window=50, rng=np.random.default_rng(0))
    stats = ServerStats()
    ok = QueryResult(status="ok", tier="compiled-einsum")

    def loop(n):
        for _ in range(n):
            if breaker.allow() and ac.admit():
                breaker.record_success()
                ac.record(False)
                stats._count(ok)

    single = _rate(loop, N_OPS)

    t0 = time.perf_counter()
    with ThreadPoolExecutor(N_THREADS) as ex:
        list(ex.map(loop, [N_OPS // N_THREADS] * N_THREADS))
    contended = N_OPS / (time.perf_counter() - t0)

    # Python threads serialize on the GIL anyway; the locks must not
    # make it materially worse than GIL-bound single-thread throughput.
    assert contended > single / 5.0, (
        f"lock contention collapse: {contended:,.0f} ops/s threaded vs "
        f"{single:,.0f} ops/s single"
    )


def test_plan_cache_lock_not_held_across_kernel_work(
    ediamond_discrete_model,
):
    """Cache-hit queries from 4 threads must sustain most of the
    single-thread rate: the cache lock covers only the OrderedDict
    bookkeeping, never the einsum/gather itself."""
    from repro.bn.inference.engine import CompiledDiscreteModel

    engine = CompiledDiscreteModel(ediamond_discrete_model.network)
    response = ediamond_discrete_model.response
    evidence = {"X1": 1}
    engine.query([response], evidence)  # compile outside the timing
    n = 2_000

    def loop(k):
        for _ in range(k):
            engine.query([response], evidence)

    single = _rate(loop, n)
    t0 = time.perf_counter()
    with ThreadPoolExecutor(N_THREADS) as ex:
        list(ex.map(loop, [n // N_THREADS] * N_THREADS))
    contended = n / (time.perf_counter() - t0)

    assert contended > single / 5.0, (
        f"plan-cache contention collapse: {contended:,.0f} q/s threaded "
        f"vs {single:,.0f} q/s single"
    )
    cs = engine.cache_stats()
    assert cs["hits"] >= 2 * n - 1
