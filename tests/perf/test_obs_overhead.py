"""Disabled-mode observability must cost (almost) nothing on hot paths.

The instrumented hot paths guard on a single ``OBS.enabled`` attribute
read, so the honest way to bound the disabled overhead is to price that
guard directly: time a loop of attribute reads, scale it by the number
of guard evaluations a ``query_batch`` call performs, and require the
total to be under 5% of the call's own cost.  A second, coarser check
compares enabled vs disabled wall clock on the same batch with a
generous bound — it would only trip if instrumentation grew grossly
beyond counter bumps.

The measured numbers (enabled/disabled latency ratio, ``/metrics``
render latency) are persisted to ``BENCH_obs.json`` (repo root and
``benchmarks/results/``) and gated by ``benchmarks/check_regression.py
--suite obs`` so the near-zero-overhead contract can't silently erode.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import runtime

N_ROWS = 1_000
N_SCRAPE_RENDERS = 50

_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
_BENCH_SECTIONS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _persist_bench_payload():
    """Write BENCH_obs.json once all sections have been measured.

    Partial runs (``-k``) record fewer sections and skip the write, so a
    filtered test invocation can never produce a payload the regression
    gate would misread as a full measurement.
    """
    yield
    if set(_BENCH_SECTIONS) != {"overhead", "scrape", "budgets"}:
        return
    payload = {"model": "ediamond/discrete-kertbn(n_bins=5)", **_BENCH_SECTIONS}
    for path in (
        os.path.join(_REPO_ROOT, "BENCH_obs.json"),
        os.path.join(_REPO_ROOT, "benchmarks", "results", "BENCH_obs.json"),
    ):
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")


@pytest.fixture(scope="module")
def batch_setup(ediamond_discrete_model):
    net = ediamond_discrete_model.network
    engine = net.compiled()
    rng = np.random.default_rng(0)
    cards = net.cardinalities
    rows = [
        {v: int(rng.integers(0, cards[v])) for v in ("X1", "X2", "D")}
        for _ in range(N_ROWS)
    ]
    target = [str(n) for n in net.nodes if str(n) not in ("X1", "X2", "D")][:1]
    engine.query_batch(target, rows)  # warm the plan cache
    return engine, target, rows


def _time_batch(engine, target, rows, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.query_batch(target, rows)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_batch_paired(engine, target, rows, repeats=7):
    """Best-of-N disabled and enabled timings, interleaved.

    Timing the two modes in separate blocks lets machine drift (cpufreq
    transitions, a background process) land entirely on one side and
    produce a physically impossible sub-1.0 enabled/disabled ratio.
    Alternating disabled/enabled within each repeat exposes both modes
    to the same drift, and best-of-N discards the outliers.
    """
    disabled = enabled = float("inf")
    for _ in range(repeats):
        runtime.OBS.enabled = False
        t0 = time.perf_counter()
        engine.query_batch(target, rows)
        disabled = min(disabled, time.perf_counter() - t0)
        obs.enable()
        t0 = time.perf_counter()
        engine.query_batch(target, rows)
        enabled = min(enabled, time.perf_counter() - t0)
    return disabled, enabled


def test_disabled_guard_cost_under_5_percent(batch_setup):
    engine, target, rows = batch_setup
    was_enabled = runtime.OBS.enabled
    runtime.OBS.enabled = False
    try:
        per_call = _time_batch(engine, target, rows)

        # Price one guard: a loop of OBS.enabled attribute reads.
        n = 100_000
        state = runtime.OBS
        t0 = time.perf_counter()
        for _ in range(n):
            if state.enabled:  # pragma: no cover - always false here
                raise AssertionError
        per_guard = (time.perf_counter() - t0) / n

        # query_batch evaluates a handful of guards per call (entry +
        # exit + plan lookup); 10 is a generous over-count.
        guard_cost = 10 * per_guard
        assert guard_cost < 0.05 * per_call, (
            f"disabled-mode guard cost {guard_cost * 1e9:.0f}ns is not "
            f"under 5% of a query_batch call ({per_call * 1e6:.0f}us)"
        )
    finally:
        runtime.OBS.enabled = was_enabled


def test_enabled_mode_stays_in_the_same_ballpark(batch_setup):
    """Coarse tripwire: enabling obs must not multiply batch latency.

    Per batch the enabled path adds a clock read, two counter bumps and
    one histogram observe — nanoseconds against a millisecond-scale
    call — so 1.5x is far beyond any legitimate instrumentation cost.
    """
    engine, target, rows = batch_setup
    was_enabled = runtime.OBS.enabled
    try:
        disabled, enabled = _time_batch_paired(engine, target, rows)
    finally:
        obs.reset()
        runtime.OBS.enabled = was_enabled
    # Enabled mode does strictly more work, so any measured ratio below
    # 1.0 is timing noise; clamp it so a noisy run can never persist a
    # sub-1.0 baseline that the one-sided regression gate (ceiling =
    # baseline * 1.3) would turn into guaranteed CI failures.
    _BENCH_SECTIONS["overhead"] = {
        "disabled_batch_seconds": disabled,
        "enabled_batch_seconds": enabled,
        "enabled_over_disabled_ratio": max(enabled / disabled, 1.0),
    }
    assert enabled < disabled * 1.5, (
        f"enabled obs slowed query_batch {enabled / disabled:.2f}x "
        f"(disabled {disabled * 1e3:.2f}ms, enabled {enabled * 1e3:.2f}ms)"
    )


def test_scrape_render_latency_is_bounded():
    """Price one /metrics render on a realistically populated registry.

    The exporter renders from a snapshot, so the number that matters for
    scrape latency is :meth:`ExportServer.metrics_body` — socket costs
    are the OS's business.  A registry shaped like a busy deployment
    (dozens of instruments) must render well under a millisecond-scale
    scrape interval; 50ms is a generous ceiling that only trips on a
    gross regression (e.g. accidental per-sample work).
    """
    from repro.obs.export import ExportServer

    was_enabled = runtime.OBS.enabled
    obs.enable()
    try:
        obs.reset()
        m = runtime.OBS.metrics
        for i in range(40):
            m.counter(f"bench.counter_{i}").inc(i)
            m.gauge(f"bench.gauge_{i}").set(i * 0.5)
        hist = m.histogram("bench.latency_seconds")
        for v in np.linspace(1e-4, 2.0, 500):
            hist.observe(float(v))
        server = ExportServer()  # metrics_body needs no running socket
        times = []
        for _ in range(N_SCRAPE_RENDERS):
            t0 = time.perf_counter()
            body = server.metrics_body()
            times.append(time.perf_counter() - t0)
        assert "repro_bench_latency_seconds_bucket" in body
        times.sort()
        mean_s = sum(times) / len(times)
        p95_s = times[int(0.95 * (len(times) - 1))]
        _BENCH_SECTIONS["scrape"] = {
            "n_renders": N_SCRAPE_RENDERS,
            "mean_seconds": mean_s,
            "p95_seconds": p95_s,
        }
        assert p95_s < 0.05, (
            f"/metrics render p95 {p95_s * 1e3:.2f}ms exceeds the 50ms "
            "gross-regression ceiling"
        )
    finally:
        obs.reset()
        runtime.OBS.enabled = was_enabled


def test_budget_derivation_amortizes_per_publish(ediamond_discrete_model):
    """Price the SLO-budget machinery on its two cadences.

    Budget *derivation* (inverting the KERT-BN into per-service budgets)
    runs once per model publish — a healthy manager cycle — so its cost
    amortizes over the whole monitoring interval.  Burn *tracking*
    (windowed percentile + burn classification per service) runs on
    every SLO evaluation and must therefore be far cheaper than the
    derivation it amortizes against.  Both numbers and their
    machine-independent ratio are persisted for the regression gate.
    """
    from repro.bn.budgets import derive_budgets
    from repro.obs.attribution import BUDGET_STREAM_BUCKETS, BudgetTracker
    from repro.obs.metrics import MetricsRegistry

    model = ediamond_discrete_model

    derive_s = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        alloc = derive_budgets(model, sla=3.5, target=0.1)
        derive_s = min(derive_s, time.perf_counter() - t0)
    assert alloc.feasible

    reg = MetricsRegistry()
    tracker = BudgetTracker(alloc, window=5)
    rng = np.random.default_rng(3)

    def _feed():
        for sb in alloc.budgets:
            hist = reg.histogram(
                tracker.stream_name(sb.service), buckets=BUDGET_STREAM_BUCKETS
            )
            for v in rng.normal(sb.mean, max(sb.std, 1e-3), size=60):
                hist.observe(max(float(v), 0.0))

    _feed()
    tracker.observe(reg)  # warm: windows populated, layouts cached
    track_s = float("inf")
    for _ in range(10):
        _feed()  # feeding simulates the interval; timed part is observe
        t0 = time.perf_counter()
        tracker.observe(reg)
        track_s = min(track_s, time.perf_counter() - t0)

    ratio = track_s / derive_s
    _BENCH_SECTIONS["budgets"] = {
        "n_services": len(alloc.budgets),
        "derive_seconds": derive_s,
        "track_seconds": track_s,
        "track_over_derive_ratio": ratio,
    }
    # Tracking is the hot path: it must stay cheaper than the
    # once-per-publish derivation it amortizes against (the regression
    # gate pins the measured ratio much tighter), and the derivation
    # itself must stay trivially cheap against a cadence of seconds.
    assert ratio < 1.0, (
        f"per-evaluation burn tracking ({track_s * 1e6:.0f}us) is not "
        f"cheap against budget derivation ({derive_s * 1e3:.2f}ms)"
    )
    assert derive_s < 1.0, (
        f"budget derivation took {derive_s:.2f}s — no longer amortizable "
        "against a per-cycle model publish"
    )
