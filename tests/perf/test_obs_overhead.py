"""Disabled-mode observability must cost (almost) nothing on hot paths.

The instrumented hot paths guard on a single ``OBS.enabled`` attribute
read, so the honest way to bound the disabled overhead is to price that
guard directly: time a loop of attribute reads, scale it by the number
of guard evaluations a ``query_batch`` call performs, and require the
total to be under 5% of the call's own cost.  A second, coarser check
compares enabled vs disabled wall clock on the same batch with a
generous bound — it would only trip if instrumentation grew grossly
beyond counter bumps.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.obs import runtime

N_ROWS = 1_000


@pytest.fixture(scope="module")
def batch_setup(ediamond_discrete_model):
    net = ediamond_discrete_model.network
    engine = net.compiled()
    rng = np.random.default_rng(0)
    cards = net.cardinalities
    rows = [
        {v: int(rng.integers(0, cards[v])) for v in ("X1", "X2", "D")}
        for _ in range(N_ROWS)
    ]
    target = [str(n) for n in net.nodes if str(n) not in ("X1", "X2", "D")][:1]
    engine.query_batch(target, rows)  # warm the plan cache
    return engine, target, rows


def _time_batch(engine, target, rows, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.query_batch(target, rows)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_guard_cost_under_5_percent(batch_setup):
    engine, target, rows = batch_setup
    was_enabled = runtime.OBS.enabled
    runtime.OBS.enabled = False
    try:
        per_call = _time_batch(engine, target, rows)

        # Price one guard: a loop of OBS.enabled attribute reads.
        n = 100_000
        state = runtime.OBS
        t0 = time.perf_counter()
        for _ in range(n):
            if state.enabled:  # pragma: no cover - always false here
                raise AssertionError
        per_guard = (time.perf_counter() - t0) / n

        # query_batch evaluates a handful of guards per call (entry +
        # exit + plan lookup); 10 is a generous over-count.
        guard_cost = 10 * per_guard
        assert guard_cost < 0.05 * per_call, (
            f"disabled-mode guard cost {guard_cost * 1e9:.0f}ns is not "
            f"under 5% of a query_batch call ({per_call * 1e6:.0f}us)"
        )
    finally:
        runtime.OBS.enabled = was_enabled


def test_enabled_mode_stays_in_the_same_ballpark(batch_setup):
    """Coarse tripwire: enabling obs must not multiply batch latency.

    Per batch the enabled path adds a clock read, two counter bumps and
    one histogram observe — nanoseconds against a millisecond-scale
    call — so 1.5x is far beyond any legitimate instrumentation cost.
    """
    engine, target, rows = batch_setup
    was_enabled = runtime.OBS.enabled
    try:
        runtime.OBS.enabled = False
        disabled = _time_batch(engine, target, rows)
        obs.enable()
        enabled = _time_batch(engine, target, rows)
    finally:
        obs.reset()
        runtime.OBS.enabled = was_enabled
    assert enabled < disabled * 1.5, (
        f"enabled obs slowed query_batch {enabled / disabled:.2f}x "
        f"(disabled {disabled * 1e3:.2f}ms, enabled {enabled * 1e3:.2f}ms)"
    )
