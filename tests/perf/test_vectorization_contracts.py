"""Performance contracts: the hot paths must stay vectorized.

These are not micro-benchmarks (see ``benchmarks/``) but regression
tripwires: each asserts a generous wall-clock bound that only a
vectorized NumPy implementation can meet on a single core — a per-row
Python loop would blow through it by an order of magnitude.
"""

import time

import numpy as np
import pytest

from repro.bn.data import Dataset


def timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


N_ROWS = 200_000


@pytest.fixture(scope="module")
def big_gaussian_data():
    from repro.bn.cpd import LinearGaussianCPD
    from repro.bn.dag import DAG
    from repro.bn.network import GaussianBayesianNetwork

    dag = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])
    net = GaussianBayesianNetwork(
        dag,
        [
            LinearGaussianCPD("a", 1.0, (), 0.5),
            LinearGaussianCPD("b", 0.5, [2.0], 0.3, ("a",)),
            LinearGaussianCPD("c", -1.0, [1.5], 0.2, ("b",)),
        ],
    )
    data, secs = timed(net.sample, N_ROWS, 0)
    assert secs < 2.0  # ancestral sampling is vectorized per node
    return net, data


def test_log_likelihood_vectorized(big_gaussian_data):
    net, data = big_gaussian_data
    _, secs = timed(net.log_likelihood, data)
    assert secs < 0.5


def test_linear_gaussian_fit_vectorized(big_gaussian_data):
    from repro.bn.learning.mle import fit_linear_gaussian

    _, data = big_gaussian_data
    _, secs = timed(fit_linear_gaussian, data, "c", ("a", "b"))
    assert secs < 0.5


def test_tabular_counting_vectorized(rng):
    from repro.bn.learning.mle import fit_tabular

    data = Dataset(
        {
            "x": rng.integers(0, 5, size=N_ROWS),
            "p": rng.integers(0, 5, size=N_ROWS),
            "q": rng.integers(0, 5, size=N_ROWS),
        }
    )
    _, secs = timed(fit_tabular, data, "x", 5, ("p", "q"), (5, 5))
    assert secs < 0.5


def test_workflow_expression_vectorized():
    from repro.simulator.scenarios.ediamond import ediamond_workflow
    from repro.workflow.response_time import response_time_function

    f = response_time_function(ediamond_workflow())
    rng = np.random.default_rng(0)
    cols = {s: rng.exponential(size=N_ROWS) for s in f.inputs}
    _, secs = timed(f, cols)
    assert secs < 0.2


def test_deterministic_cpd_loglik_vectorized(rng):
    from repro.bn.cpd import DeterministicCPD
    from repro.workflow.expressions import Sum, Var

    cpd = DeterministicCPD(
        "d",
        Sum([Var("a"), Var("b")]),
        ("a", "b"),
        {"a": np.linspace(0, 1, 8), "b": np.linspace(0, 1, 8)},
        np.linspace(-0.1, 2.1, 9),
        leak=0.1,
    )
    data = Dataset(
        {
            "d": rng.integers(0, 8, size=N_ROWS),
            "a": rng.integers(0, 8, size=N_ROWS),
            "b": rng.integers(0, 8, size=N_ROWS),
        }
    )
    _, secs = timed(cpd.log_likelihood, data)
    assert secs < 0.5


def test_discretizer_transform_vectorized(rng):
    from repro.bn.discretize import Discretizer

    data = Dataset({"x": rng.exponential(size=N_ROWS)})
    disc = Discretizer(n_bins=8).fit(data)
    _, secs = timed(disc.transform, data)
    assert secs < 0.3
