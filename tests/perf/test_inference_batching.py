"""Perf tripwires for the compile-once inference engine.

Generous wall-clock *ratio* bounds (measured margins are 3–10× above
the asserted floors) that only the intended implementation can meet:

- a compiled engine answering the same-signature query repeatedly must
  beat scratch variable elimination by ≥5× — if someone reintroduces
  per-query factor extraction or order computation, this trips;
- ``query_batch`` over 1k evidence rows must beat a per-row loop of
  *compiled* queries by ≥5× — if the batch path degenerates into a row
  loop, this trips.
"""

import time

import numpy as np
import pytest


N_ROWS = 1_000


@pytest.fixture(scope="module")
def discrete_net(ediamond_discrete_model):
    return ediamond_discrete_model.network


def test_compiled_repeated_queries_beat_scratch_ve(discrete_net):
    from repro.bn.inference.variable_elimination import query as ve_query

    net = discrete_net
    evidence = {"X1": 1, "X2": 2, "D": 3}
    engine = net.compiled()
    engine.query(["X3"], evidence)  # compile the plan outside the timing

    n = 50
    t0 = time.perf_counter()
    for _ in range(n):
        ve_query(net, ["X3"], evidence)
    scratch = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        engine.query(["X3"], evidence)
    compiled = time.perf_counter() - t0

    assert scratch / compiled >= 5.0, (
        f"compile-once speedup degraded: {scratch / compiled:.1f}x "
        f"(scratch {scratch:.3f}s vs compiled {compiled:.3f}s over {n} queries)"
    )


def test_query_batch_beats_per_row_loop(discrete_net):
    net = discrete_net
    engine = net.compiled()
    rng = np.random.default_rng(0)
    cards = net.cardinalities
    columns = {
        v: rng.integers(0, cards[v], size=N_ROWS) for v in ("X1", "X2", "D")
    }
    engine.query_batch(["X3"], columns)  # warm the batch plan

    t0 = time.perf_counter()
    batched = engine.query_batch(["X3"], columns)
    batch_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    for i in range(N_ROWS):
        row = {v: int(col[i]) for v, col in columns.items()}
        engine.query(["X3"], row)
    loop_seconds = time.perf_counter() - t0

    assert loop_seconds / batch_seconds >= 5.0, (
        f"batched speedup degraded: {loop_seconds / batch_seconds:.1f}x at "
        f"{N_ROWS} rows (loop {loop_seconds:.3f}s vs batch {batch_seconds:.3f}s)"
    )
    # And the vectorized pass must agree with the row loop exactly.
    sample = rng.integers(0, N_ROWS, size=8)
    for i in sample:
        row = {v: int(col[i]) for v, col in columns.items()}
        np.testing.assert_allclose(
            batched[i], engine.query(["X3"], row).values, atol=1e-9
        )
