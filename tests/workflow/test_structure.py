"""Workflow → KERT-BN structure derivation (Section 3.2 / Figure 2)."""

import numpy as np
import pytest

from repro.exceptions import WorkflowError
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
)
from repro.workflow.generator import random_workflow
from repro.workflow.structure import kert_bn_structure, workflow_edges


def ediamond_wf():
    return Sequence(
        [
            Activity("X1"),
            Activity("X2"),
            Parallel(
                [
                    Sequence([Activity("X3"), Activity("X5")]),
                    Sequence([Activity("X4"), Activity("X6")]),
                ]
            ),
        ]
    )


def test_ediamond_edges_match_figure_2():
    edges = set(workflow_edges(ediamond_wf()))
    assert edges == {
        ("X1", "X2"),
        ("X2", "X3"),
        ("X2", "X4"),
        ("X3", "X5"),
        ("X4", "X6"),
    }


def test_kert_structure_d_has_all_services_as_parents():
    dag = kert_bn_structure(ediamond_wf())
    assert set(dag.parents("D")) == {"X1", "X2", "X3", "X4", "X5", "X6"}
    # Plus the five workflow edges.
    assert dag.n_edges == 6 + 5


def test_kert_structure_resource_groups():
    dag = kert_bn_structure(
        ediamond_wf(), resource_groups={"R_cpu": ("X1", "X2")}
    )
    assert set(dag.parents("R_cpu")) == {"X1", "X2"}
    assert "R_cpu" not in dag.parents("D")


def test_resource_group_validation():
    with pytest.raises(WorkflowError):
        kert_bn_structure(ediamond_wf(), resource_groups={"R": ("X1",)})
    with pytest.raises(WorkflowError):
        kert_bn_structure(ediamond_wf(), resource_groups={"R": ("X1", "nope")})
    with pytest.raises(WorkflowError):
        kert_bn_structure(ediamond_wf(), resource_groups={"X1": ("X1", "X2")})


def test_response_name_collision():
    with pytest.raises(WorkflowError):
        kert_bn_structure(ediamond_wf(), response="X1")


def test_choice_branches_not_cross_linked():
    wf = Sequence(
        [Activity("s"), Choice([Activity("a"), Activity("b")], [0.5, 0.5])]
    )
    edges = set(workflow_edges(wf))
    assert edges == {("s", "a"), ("s", "b")}


def test_sequence_after_parallel_links_all_exits():
    wf = Sequence(
        [Parallel([Activity("a"), Activity("b")]), Activity("join")]
    )
    edges = set(workflow_edges(wf))
    assert edges == {("a", "join"), ("b", "join")}


def test_loop_has_no_back_edge():
    wf = Loop(Sequence([Activity("a"), Activity("b")]), 0.5)
    edges = set(workflow_edges(wf))
    assert edges == {("a", "b")}  # no b -> a back edge


def test_structure_is_acyclic_for_random_workflows():
    rng = np.random.default_rng(3)
    for _ in range(20):
        wf = random_workflow(int(rng.integers(1, 25)), rng,
                             p_choice=0.2, p_loop=0.15)
        dag = kert_bn_structure(wf)
        order = dag.topological_order()
        assert len(order) == dag.n_nodes
        # D is always a sink.
        assert dag.children("D") == ()


def test_structure_cost_linear_smoke():
    """Knowledge-derived structure must be cheap even for 200 services."""
    import time

    rng = np.random.default_rng(4)
    wf = random_workflow(200, rng)
    t0 = time.perf_counter()
    dag = kert_bn_structure(wf)
    assert time.perf_counter() - t0 < 1.0
    assert dag.n_nodes == 201
