"""Random workflow generation and JSON (de)serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import WorkflowError
from repro.workflow.constructs import Activity, Choice, Loop, Parallel, Sequence
from repro.workflow.generator import random_workflow
from repro.workflow.parser import (
    workflow_from_dict,
    workflow_from_json,
    workflow_to_dict,
    workflow_to_json,
)


def test_generator_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(WorkflowError):
        random_workflow(0, rng)
    with pytest.raises(WorkflowError):
        random_workflow(5, rng, p_parallel=0.8, p_choice=0.5)


def test_generator_exact_service_count():
    rng = np.random.default_rng(1)
    for n in (1, 2, 7, 30, 100):
        wf = random_workflow(n, rng)
        assert wf.n_services() == n
        assert len(set(wf.services())) == n


def test_generator_service_naming():
    rng = np.random.default_rng(2)
    wf = random_workflow(5, rng, service_prefix="S", start_index=10)
    assert set(wf.services()) == {f"S{i}" for i in range(10, 15)}


def test_generator_deterministic_given_seed():
    w1 = random_workflow(12, np.random.default_rng(9))
    w2 = random_workflow(12, np.random.default_rng(9))
    assert w1 == w2


def test_generator_produces_parallel_nodes_eventually():
    rng = np.random.default_rng(3)
    kinds = set()
    for _ in range(20):
        wf = random_workflow(10, rng, p_parallel=0.6)
        kinds |= {type(n).__name__ for n in wf.walk()}
    assert "Parallel" in kinds


def test_generator_choice_and_loop_constructs():
    rng = np.random.default_rng(4)
    kinds = set()
    for _ in range(30):
        wf = random_workflow(10, rng, p_choice=0.4, p_loop=0.3, p_parallel=0.2)
        kinds |= {type(n).__name__ for n in wf.walk()}
    assert "Choice" in kinds
    assert "Loop" in kinds


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #


def test_dict_roundtrip_all_constructs():
    wf = Sequence(
        [
            Activity("a"),
            Parallel([Activity("b"), Loop(Activity("c"), 0.3)]),
            Choice([Activity("d"), Activity("e")], [0.4, 0.6]),
        ]
    )
    assert workflow_from_dict(workflow_to_dict(wf)) == wf


def test_json_roundtrip():
    wf = Sequence([Activity("a"), Activity("b")])
    assert workflow_from_json(workflow_to_json(wf, indent=2)) == wf


def test_parser_validation():
    with pytest.raises(WorkflowError):
        workflow_from_dict("not-a-dict")
    with pytest.raises(WorkflowError):
        workflow_from_dict({})
    with pytest.raises(WorkflowError):
        workflow_from_dict({"activity": "a", "sequence": []})
    with pytest.raises(WorkflowError):
        workflow_from_dict({"choice": [{"activity": "a"}, {"activity": "b"}]})
    with pytest.raises(WorkflowError):
        workflow_from_dict({"loop": {"activity": "a"}})


@given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_property_roundtrip_random_workflows(n, seed):
    rng = np.random.default_rng(seed)
    wf = random_workflow(n, rng, p_choice=0.2, p_loop=0.1)
    assert workflow_from_json(workflow_to_json(wf)) == wf
