"""Random workflow generation and JSON (de)serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import WorkflowError
from repro.workflow.constructs import Activity, Choice, Loop, Parallel, Sequence
from repro.workflow.generator import random_workflow
from repro.workflow.parser import (
    workflow_from_dict,
    workflow_from_json,
    workflow_to_dict,
    workflow_to_json,
)


def test_generator_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(WorkflowError):
        random_workflow(0, rng)
    with pytest.raises(WorkflowError):
        random_workflow(5, rng, p_parallel=0.8, p_choice=0.5)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"p_parallel": -0.1},
        {"p_choice": -0.2},
        {"p_choice": 1.2},
        {"p_loop": 1.5},
        {"p_loop": float("nan")},
        {"max_branches": 1},
        {"p_loop": 0.2, "loop_continue_prob": -0.1},
        {"p_loop": 0.2, "loop_continue_prob": 1.0},
    ],
)
def test_generator_rejects_invalid_knobs(kwargs):
    with pytest.raises(WorkflowError):
        random_workflow(8, np.random.default_rng(0), **kwargs)


def test_generator_loop_termination_guard():
    """continue_prob near 1.0 means unbounded expected iterations; the
    generator must refuse rather than emit workflows that never finish."""
    rng = np.random.default_rng(0)
    with pytest.raises(WorkflowError, match="continue"):
        random_workflow(8, rng, p_loop=0.3, loop_continue_prob=0.95)
    # Harmless when loops are disabled: the knob is never exercised.
    wf = random_workflow(8, np.random.default_rng(1), p_loop=0.0,
                         loop_continue_prob=0.95)
    assert wf.n_services() == 8
    # At the guard boundary generation still works.
    wf = random_workflow(8, np.random.default_rng(2), p_loop=0.5,
                         loop_continue_prob=0.9)
    assert wf.n_services() == 8


def test_generator_choice_probabilities_normalized():
    """Every generated Choice carries non-negative branch probabilities
    summing to one (the construct validates; assert it explicitly)."""
    rng = np.random.default_rng(5)
    n_choices = 0
    for _ in range(30):
        wf = random_workflow(12, rng, p_choice=0.6)
        for node in wf.walk():
            if isinstance(node, Choice):
                n_choices += 1
                assert len(node.probabilities) == len(node.branches)
                assert all(p >= 0 for p in node.probabilities)
                assert sum(node.probabilities) == pytest.approx(1.0)
    assert n_choices > 0


def test_generator_loops_respect_guard():
    rng = np.random.default_rng(6)
    n_loops = 0
    for _ in range(30):
        wf = random_workflow(12, rng, p_loop=0.5, loop_continue_prob=0.7)
        for node in wf.walk():
            if isinstance(node, Loop):
                n_loops += 1
                assert 0.0 <= node.continue_prob <= 0.9
    assert n_loops > 0


def test_generator_exact_service_count():
    rng = np.random.default_rng(1)
    for n in (1, 2, 7, 30, 100):
        wf = random_workflow(n, rng)
        assert wf.n_services() == n
        assert len(set(wf.services())) == n


def test_generator_service_naming():
    rng = np.random.default_rng(2)
    wf = random_workflow(5, rng, service_prefix="S", start_index=10)
    assert set(wf.services()) == {f"S{i}" for i in range(10, 15)}


def test_generator_deterministic_given_seed():
    w1 = random_workflow(12, np.random.default_rng(9))
    w2 = random_workflow(12, np.random.default_rng(9))
    assert w1 == w2


def test_generator_produces_parallel_nodes_eventually():
    rng = np.random.default_rng(3)
    kinds = set()
    for _ in range(20):
        wf = random_workflow(10, rng, p_parallel=0.6)
        kinds |= {type(n).__name__ for n in wf.walk()}
    assert "Parallel" in kinds


def test_generator_choice_and_loop_constructs():
    rng = np.random.default_rng(4)
    kinds = set()
    for _ in range(30):
        wf = random_workflow(10, rng, p_choice=0.4, p_loop=0.3, p_parallel=0.2)
        kinds |= {type(n).__name__ for n in wf.walk()}
    assert "Choice" in kinds
    assert "Loop" in kinds


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #


def test_dict_roundtrip_all_constructs():
    wf = Sequence(
        [
            Activity("a"),
            Parallel([Activity("b"), Loop(Activity("c"), 0.3)]),
            Choice([Activity("d"), Activity("e")], [0.4, 0.6]),
        ]
    )
    assert workflow_from_dict(workflow_to_dict(wf)) == wf


def test_json_roundtrip():
    wf = Sequence([Activity("a"), Activity("b")])
    assert workflow_from_json(workflow_to_json(wf, indent=2)) == wf


def test_parser_validation():
    with pytest.raises(WorkflowError):
        workflow_from_dict("not-a-dict")
    with pytest.raises(WorkflowError):
        workflow_from_dict({})
    with pytest.raises(WorkflowError):
        workflow_from_dict({"activity": "a", "sequence": []})
    with pytest.raises(WorkflowError):
        workflow_from_dict({"choice": [{"activity": "a"}, {"activity": "b"}]})
    with pytest.raises(WorkflowError):
        workflow_from_dict({"loop": {"activity": "a"}})


@given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_property_roundtrip_random_workflows(n, seed):
    rng = np.random.default_rng(seed)
    wf = random_workflow(n, rng, p_choice=0.2, p_loop=0.1)
    assert workflow_from_json(workflow_to_json(wf)) == wf
