"""Cardoso reduction → f(X): the paper's Section 3.3 contract."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import WorkflowError
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
)
from repro.workflow.generator import random_workflow
from repro.workflow.response_time import response_time_function
from repro.workflow.timeout import timeout_count_function


def ediamond_wf():
    return Sequence(
        [
            Activity("X1"),
            Activity("X2"),
            Parallel(
                [
                    Sequence([Activity("X3"), Activity("X5")]),
                    Sequence([Activity("X4"), Activity("X6")]),
                ]
            ),
        ]
    )


def test_ediamond_function_matches_paper():
    f = response_time_function(ediamond_wf())
    assert f.to_string() == "X1 + X2 + max(X3 + X5, X4 + X6)"
    v = {f"X{i}": np.array([float(i)]) for i in range(1, 7)}
    # 1 + 2 + max(3+5, 4+6) = 13
    np.testing.assert_allclose(f(v), [13.0])


def test_inputs_cover_all_services():
    f = response_time_function(ediamond_wf())
    assert f.inputs == frozenset({"X1", "X2", "X3", "X4", "X5", "X6"})


def test_mode_validation():
    with pytest.raises(WorkflowError):
        response_time_function(ediamond_wf(), mode="nonsense")


def test_choice_measurement_mode_is_sum():
    wf = Choice([Activity("a"), Activity("b")], [0.5, 0.5])
    f = response_time_function(wf, mode="measurement")
    # Exactly one branch is nonzero per transaction.
    np.testing.assert_allclose(f({"a": np.array([3.0]), "b": np.array([0.0])}), [3.0])
    np.testing.assert_allclose(f({"a": np.array([0.0]), "b": np.array([5.0])}), [5.0])


def test_choice_expectation_mode_weights():
    wf = Choice([Activity("a"), Activity("b")], [0.25, 0.75])
    f = response_time_function(wf, mode="expectation")
    np.testing.assert_allclose(f({"a": np.array([4.0]), "b": np.array([8.0])}), [7.0])


def test_loop_measurement_mode_identity():
    wf = Loop(Activity("a"), 0.5)
    f = response_time_function(wf, mode="measurement")
    np.testing.assert_allclose(f({"a": np.array([6.0])}), [6.0])


def test_loop_expectation_mode_scales():
    wf = Loop(Activity("a"), 0.5)  # E[iters] = 2
    f = response_time_function(wf, mode="expectation")
    np.testing.assert_allclose(f({"a": np.array([6.0])}), [12.0])


def test_invalid_workflow_rejected():
    wf = Sequence([Activity("a"), Activity("a")])
    with pytest.raises(WorkflowError):
        response_time_function(wf)


def test_timeout_count_is_plain_sum():
    f = timeout_count_function(ediamond_wf())
    v = {f"X{i}": np.array([1.0]) for i in range(1, 7)}
    np.testing.assert_allclose(f(v), [6.0])
    assert f.mode == "count"


@given(st.integers(min_value=1, max_value=25), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_random_workflow_reduction_properties(n, seed):
    rng = np.random.default_rng(seed)
    wf = random_workflow(n, rng, p_choice=0.15, p_loop=0.1)
    f = response_time_function(wf)
    assert f.inputs == frozenset(wf.services())
    # Monotonicity: increasing any input cannot decrease f.
    base = {s: np.array([1.0]) for s in wf.services()}
    f0 = float(f(base)[0])
    for s in list(wf.services())[:3]:
        bumped = dict(base)
        bumped[s] = np.array([2.0])
        assert float(f(bumped)[0]) >= f0 - 1e-12
    # f of all-zeros is zero; f is positively homogeneous of degree 1
    # for sum/max trees (choice sums and loops preserve this too).
    zeros = {s: np.array([0.0]) for s in wf.services()}
    assert float(f(zeros)[0]) == pytest.approx(0.0)
    doubled = {s: np.array([2.0]) for s in wf.services()}
    assert float(f(doubled)[0]) == pytest.approx(2 * f0)


def test_vectorized_evaluation_matches_rowwise():
    f = response_time_function(ediamond_wf())
    rng = np.random.default_rng(5)
    cols = {s: rng.exponential(size=50) for s in f.inputs}
    vec = f(cols)
    for i in range(50):
        row = {s: np.array([cols[s][i]]) for s in f.inputs}
        assert vec[i] == pytest.approx(float(f(row)[0]))
