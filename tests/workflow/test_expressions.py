"""Expression-tree evaluation and simplification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import WorkflowError
from repro.workflow.expressions import (
    Const,
    Max,
    Scale,
    Sum,
    Var,
    WeightedSum,
    simplify,
)


def vals(**kw):
    return {k: np.asarray(v, dtype=float) for k, v in kw.items()}


def test_var_and_const():
    v = Var("x")
    np.testing.assert_allclose(v(vals(x=[1, 2])), [1, 2])
    with pytest.raises(WorkflowError):
        v(vals(y=[1]))
    c = Const(3.0)
    np.testing.assert_allclose(c(vals(x=[1, 2])), [3, 3])
    assert c.inputs == frozenset()


def test_sum_and_max():
    e = Sum([Var("a"), Var("b")])
    np.testing.assert_allclose(e(vals(a=[1, 2], b=[10, 20])), [11, 22])
    m = Max([Var("a"), Var("b")])
    np.testing.assert_allclose(m(vals(a=[1, 30], b=[10, 20])), [10, 30])
    assert e.inputs == {"a", "b"}
    with pytest.raises(WorkflowError):
        Sum([])
    with pytest.raises(WorkflowError):
        Max([Var("a")])


def test_weighted_sum():
    w = WeightedSum([(0.25, Var("a")), (0.75, Var("b"))])
    np.testing.assert_allclose(w(vals(a=[4], b=[0])), [1.0])
    with pytest.raises(WorkflowError):
        WeightedSum([(-0.1, Var("a"))])


def test_scale():
    s = Scale(2.5, Var("a"))
    np.testing.assert_allclose(s(vals(a=[2])), [5.0])
    with pytest.raises(WorkflowError):
        Scale(-1.0, Var("a"))


def test_operator_sugar():
    e = Var("a") + Var("b")
    assert isinstance(e, Sum)
    np.testing.assert_allclose(e(vals(a=[1], b=[2])), [3])


def test_to_string_readable():
    e = Sum([Var("X1"), Var("X2"), Max([Sum([Var("X3"), Var("X5")]),
                                        Sum([Var("X4"), Var("X6")])])])
    assert e.to_string() == "X1 + X2 + max(X3 + X5, X4 + X6)"


def test_simplify_flattens_nested_sums():
    e = Sum([Sum([Var("a"), Var("b")]), Sum([Var("c")])])
    s = simplify(e)
    assert s.to_string() == "a + b + c"


def test_simplify_flattens_nested_maxes():
    e = Max([Max([Var("a"), Var("b")]), Var("c")])
    s = simplify(e)
    assert s.to_string() == "max(a, b, c)"


def test_simplify_collapses_unit_scale():
    e = Scale(1.0, Var("a"))
    assert simplify(e).to_string() == "a"
    e2 = Scale(2.0, Scale(3.0, Var("a")))
    assert simplify(e2).to_string() == "6*(a)"


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
             min_size=3, max_size=3),
)
@settings(max_examples=100, deadline=None)
def test_simplify_preserves_semantics(xs):
    raw = Sum([Sum([Var("a"), Max([Var("b"), Var("c")])]), Scale(1.0, Var("a"))])
    simp = simplify(raw)
    v = vals(a=[xs[0]], b=[xs[1]], c=[xs[2]])
    np.testing.assert_allclose(raw(v), simp(v))
