"""Workflow AST construction and validation."""

import pytest

from repro.exceptions import WorkflowError
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    sequence_of,
)


def test_activity_basics():
    a = Activity("svc")
    assert a.services() == ("svc",)
    assert a.children() == ()
    assert a.depth() == 1
    with pytest.raises(WorkflowError):
        Activity("")


def test_sequence_services_in_order():
    s = sequence_of("a", "b", "c")
    assert s.services() == ("a", "b", "c")
    assert s.depth() == 2
    with pytest.raises(WorkflowError):
        Sequence([])


def test_parallel_arity():
    with pytest.raises(WorkflowError):
        Parallel([Activity("a")])
    p = Parallel([Activity("a"), Activity("b")])
    assert set(p.services()) == {"a", "b"}


def test_choice_probability_validation():
    branches = [Activity("a"), Activity("b")]
    with pytest.raises(WorkflowError):
        Choice(branches, [0.5])
    with pytest.raises(WorkflowError):
        Choice(branches, [0.7, 0.7])
    with pytest.raises(WorkflowError):
        Choice(branches, [-0.5, 1.5])
    c = Choice(branches, [0.3, 0.7])
    assert c.probabilities == (0.3, 0.7)


def test_loop_validation():
    with pytest.raises(WorkflowError):
        Loop(Activity("a"), 1.0)
    with pytest.raises(WorkflowError):
        Loop(Activity("a"), -0.1)
    loop = Loop(Activity("a"), 0.5)
    assert loop.expected_iterations == pytest.approx(2.0)


def test_non_workflow_child_rejected():
    with pytest.raises(WorkflowError):
        Sequence(["not-a-node"])
    with pytest.raises(WorkflowError):
        Loop("not-a-node", 0.1)


def test_duplicate_service_names_rejected():
    wf = Sequence([Activity("a"), Activity("a")])
    with pytest.raises(WorkflowError):
        wf.validate()


def test_walk_preorder():
    wf = Sequence([Activity("a"), Parallel([Activity("b"), Activity("c")])])
    kinds = [type(n).__name__ for n in wf.walk()]
    assert kinds == ["Sequence", "Activity", "Parallel", "Activity", "Activity"]


def test_structural_equality_and_hash():
    w1 = Sequence([Activity("a"), Activity("b")])
    w2 = Sequence([Activity("a"), Activity("b")])
    w3 = Sequence([Activity("b"), Activity("a")])
    assert w1 == w2
    assert hash(w1) == hash(w2)
    assert w1 != w3
    assert w1 != Parallel([Activity("a"), Activity("b")])
