"""ASCII rendering of workflows and DAGs."""

import numpy as np

from repro.bn.dag import DAG
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
)
from repro.workflow.generator import random_workflow
from repro.workflow.visualize import (
    render_dag,
    render_structure_summary,
    render_workflow,
)


def test_render_activity():
    assert render_workflow(Activity("svc")) == "svc"


def test_render_nested_tree():
    wf = Sequence(
        [
            Activity("a"),
            Parallel([Activity("b"), Loop(Activity("c"), 0.25)]),
            Choice([Activity("d"), Activity("e")], [0.3, 0.7]),
        ]
    )
    text = render_workflow(wf)
    lines = text.splitlines()
    assert lines[0] == "sequence"
    assert "parallel" in text
    assert "loop (continue=0.25)" in text
    assert "choice [0.3, 0.7]" in text
    # Every service appears exactly once.
    for s in "abcde":
        assert sum(s == token.strip("│├└── ") for token in lines) == 1


def test_render_all_services_for_random_workflows():
    rng = np.random.default_rng(1)
    for _ in range(10):
        wf = random_workflow(int(rng.integers(1, 15)), rng,
                             p_choice=0.2, p_loop=0.15)
        text = render_workflow(wf)
        for s in wf.services():
            assert s in text


def test_render_dag_layers():
    dag = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("a", "c"), ("b", "c")])
    text = render_dag(dag)
    lines = text.splitlines()
    assert lines[0] == "(root)  a"
    assert any("a -> b" in ln for ln in lines)
    assert any(set(ln.split(" -> ")[0].split(", ")) == {"a", "b"}
               for ln in lines if ln.endswith("c"))


def test_structure_summary():
    from repro.workflow.structure import kert_bn_structure
    from repro.simulator.scenarios.ediamond import ediamond_workflow

    dag = kert_bn_structure(ediamond_workflow())
    summary = render_structure_summary(dag, response="D")
    assert "7 nodes" in summary
    assert "11 edges" in summary
    assert "response 'D' with 6 parents" in summary
