"""The documented measurement-mode exception: Parallel inside Loop."""

import numpy as np
import pytest

from repro.workflow.constructs import (
    Activity,
    Loop,
    Parallel,
    Sequence,
)
from repro.workflow.response_time import (
    has_parallel_under_loop,
    response_time_function,
)


def test_predicate_positive_cases():
    assert has_parallel_under_loop(
        Loop(Parallel([Activity("a"), Activity("b")]), 0.3)
    )
    assert has_parallel_under_loop(
        Loop(Sequence([Activity("x"), Parallel([Activity("a"), Activity("b")])]), 0.3)
    )
    # Nested deeper: loop -> loop -> parallel.
    assert has_parallel_under_loop(
        Loop(Loop(Parallel([Activity("a"), Activity("b")]), 0.2), 0.2)
    )


def test_predicate_negative_cases():
    assert not has_parallel_under_loop(Activity("a"))
    assert not has_parallel_under_loop(
        Sequence([Loop(Activity("a"), 0.5), Parallel([Activity("b"), Activity("c")])])
    )
    assert not has_parallel_under_loop(
        Parallel([Loop(Activity("a"), 0.5), Activity("b")])
    )


def test_f_lower_bounds_d_for_parallel_in_loop():
    """Engine D >= f(X) with equality impossible in general: two loop
    iterations with alternating branch dominance force strict gap."""
    from repro.simulator.delays import Uniform
    from repro.simulator.engine import Engine
    from repro.simulator.service import ServiceSpec

    wf = Loop(Parallel([Activity("a"), Activity("b")]), 0.6)
    services = [
        ServiceSpec("a", Uniform(0.5, 1.5), queueing=False),
        ServiceSpec("b", Uniform(0.5, 1.5), queueing=False),
    ]
    engine = Engine(wf, services, rng=3)
    records = engine.run(np.arange(1, 301, dtype=float) * 10.0)
    f = response_time_function(wf)
    gaps = []
    for r in records:
        x = {s: np.array([r.elapsed.get(s, 0.0)]) for s in ("a", "b")}
        fx = float(f(x)[0])
        assert r.response_time >= fx - 1e-9
        gaps.append(r.response_time - fx)
    # Multi-iteration transactions exist and produce strict gaps.
    assert max(gaps) > 0.01


def test_single_iteration_loops_remain_exact():
    from repro.simulator.delays import Deterministic
    from repro.simulator.engine import Engine
    from repro.simulator.service import ServiceSpec

    wf = Loop(Parallel([Activity("a"), Activity("b")]), 0.0)  # never repeats
    services = [
        ServiceSpec("a", Deterministic(1.0)),
        ServiceSpec("b", Deterministic(2.0)),
    ]
    records = Engine(wf, services, rng=0).run([0.0])
    f = response_time_function(wf)
    x = {s: np.array([records[0].elapsed.get(s, 0.0)]) for s in ("a", "b")}
    assert records[0].response_time == pytest.approx(float(f(x)[0]))
