"""The CI benchmark-regression gate must catch real slowdowns.

Loads ``benchmarks/check_regression.py`` by path (benchmarks/ is not a
package) and drives ``compare``/``main`` with synthetic payloads: the
acceptance case here is that a 2x slowdown *fails* the gate while a
within-tolerance wobble passes.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_GATE = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


def _load_gate():
    spec = importlib.util.spec_from_file_location("check_regression", _GATE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = _load_gate()

BASELINE = {
    "single": {"compile_once_speedup": 10.0},
    "batched": {"batched_speedup_vs_loop": 20.0, "batched_qps": 100000.0},
}


def test_identical_payload_passes():
    failures, report = gate.compare(BASELINE, copy.deepcopy(BASELINE))
    assert failures == []
    assert len(report) == 2


def test_two_x_slowdown_fails():
    slow = copy.deepcopy(BASELINE)
    slow["single"]["compile_once_speedup"] /= 2.0
    slow["batched"]["batched_speedup_vs_loop"] /= 2.0
    failures, _ = gate.compare(BASELINE, slow)
    assert len(failures) == 2
    assert all("FAIL" in line for line in failures)


def test_drop_within_tolerance_passes():
    wobble = copy.deepcopy(BASELINE)
    wobble["single"]["compile_once_speedup"] *= 0.9  # -10% < 30% tolerance
    failures, _ = gate.compare(BASELINE, wobble)
    assert failures == []


def test_improvements_never_fail():
    better = copy.deepcopy(BASELINE)
    better["single"]["compile_once_speedup"] *= 3.0
    failures, _ = gate.compare(BASELINE, better)
    assert failures == []


def test_absolute_flag_gates_qps():
    slow = copy.deepcopy(BASELINE)
    slow["batched"]["batched_qps"] /= 2.0
    failures, _ = gate.compare(BASELINE, slow)
    assert failures == []  # ratio metrics untouched
    failures, _ = gate.compare(BASELINE, slow, absolute=True)
    assert len(failures) == 1
    assert "batched_qps" in failures[0]


def test_missing_key_is_a_hard_error():
    broken = {"single": {}}
    with pytest.raises(SystemExit, match="compile_once_speedup"):
        gate.compare(BASELINE, broken)


def test_bad_tolerance_rejected():
    with pytest.raises(SystemExit, match="tolerance"):
        gate.compare(BASELINE, BASELINE, tolerance=1.5)


def test_main_exit_codes(tmp_path):
    base_file = tmp_path / "base.json"
    base_file.write_text(json.dumps(BASELINE))
    slow = copy.deepcopy(BASELINE)
    slow["batched"]["batched_speedup_vs_loop"] /= 2.0
    slow_file = tmp_path / "slow.json"
    slow_file.write_text(json.dumps(slow))
    ok = gate.main(["--baseline", str(base_file), "--fresh", str(base_file)])
    assert ok == 0
    failed = gate.main(["--baseline", str(base_file), "--fresh", str(slow_file)])
    assert failed == 1


def test_gate_accepts_the_committed_baseline():
    """The real BENCH_inference.json must satisfy the gate's schema."""
    committed = _GATE.parent.parent / "BENCH_inference.json"
    payload = json.loads(committed.read_text())
    failures, _ = gate.compare(payload, payload, absolute=True)
    assert failures == []


OBS_BASELINE = {
    "overhead": {"enabled_over_disabled_ratio": 1.05},
    "scrape": {"p95_seconds": 0.0005},
}


def test_obs_suite_gates_on_a_ceiling():
    """Overhead metrics are lower-is-better: growth fails, shrink passes."""
    worse = copy.deepcopy(OBS_BASELINE)
    worse["overhead"]["enabled_over_disabled_ratio"] *= 2.0
    failures, _ = gate.compare(OBS_BASELINE, worse, suite="obs")
    assert len(failures) == 1
    assert "enabled_over_disabled_ratio" in failures[0]

    better = copy.deepcopy(OBS_BASELINE)
    better["overhead"]["enabled_over_disabled_ratio"] *= 0.5
    failures, _ = gate.compare(OBS_BASELINE, better, suite="obs")
    assert failures == []


def test_obs_suite_scrape_latency_needs_absolute_flag():
    slow = copy.deepcopy(OBS_BASELINE)
    slow["scrape"]["p95_seconds"] *= 10.0
    failures, _ = gate.compare(OBS_BASELINE, slow, suite="obs")
    assert failures == []  # machine-dependent, not gated by default
    failures, _ = gate.compare(OBS_BASELINE, slow, suite="obs", absolute=True)
    assert len(failures) == 1
    assert "p95_seconds" in failures[0]


def test_unknown_suite_rejected():
    with pytest.raises(SystemExit, match="unknown suite"):
        gate.compare(OBS_BASELINE, OBS_BASELINE, suite="nope")


def test_gate_accepts_the_committed_obs_baseline():
    """The real BENCH_obs.json must satisfy the obs suite's schema."""
    committed = _GATE.parent.parent / "BENCH_obs.json"
    payload = json.loads(committed.read_text())
    failures, _ = gate.compare(payload, payload, suite="obs", absolute=True)
    assert failures == []


def test_jtree_metric_only_gated_when_baseline_has_it():
    base = copy.deepcopy(BASELINE)
    base["jtree"] = {"incremental_speedup_vs_full": 2.0}
    slow = copy.deepcopy(base)
    slow["jtree"]["incremental_speedup_vs_full"] = 0.8
    failures, _ = gate.compare(base, slow)
    assert len(failures) == 1
    assert "incremental" in failures[0]
    # A baseline without the section ignores it entirely.
    failures, report = gate.compare(BASELINE, slow)
    assert failures == []
    assert len(report) == 2


def test_matrix_cells_gate_per_cell():
    base = copy.deepcopy(BASELINE)
    base["matrix"] = {
        "bins3_width6": {
            "batched_speedup_vs_loop": 50.0,
            "batched_qps": 1_000_000.0,
        },
        "bins6_width14": {
            "batched_speedup_vs_loop": 40.0,
            "batched_qps": 800_000.0,
        },
    }
    ok, _ = gate.compare(base, copy.deepcopy(base))
    assert ok == []
    slow = copy.deepcopy(base)
    slow["matrix"]["bins6_width14"]["batched_speedup_vs_loop"] = 10.0
    failures, _ = gate.compare(base, slow)
    assert len(failures) == 1
    assert "bins6_width14" in failures[0]
    # Raw cell qps only gates with --absolute (machine-dependent).
    slow_qps = copy.deepcopy(base)
    slow_qps["matrix"]["bins3_width6"]["batched_qps"] = 100_000.0
    failures, _ = gate.compare(base, slow_qps)
    assert failures == []
    failures, _ = gate.compare(base, slow_qps, absolute=True)
    assert len(failures) == 1
    assert "bins3_width6" in failures[0]


SERVING_BASELINE = {
    "coalesce": {
        "ratio": 30.0,
        "sustained_qps": 20000.0,
        "p95_seconds": 0.012,
        "p99_seconds": 0.034,
    },
    "batched": {
        "fabric_over_kernel": 0.85,
        "fabric_rows_per_s": 8_000_000.0,
    },
}


def test_serving_suite_floors_the_ratios():
    """Coalesce ratio and fabric/kernel fraction are higher-is-better."""
    worse = copy.deepcopy(SERVING_BASELINE)
    worse["coalesce"]["ratio"] = 1.5          # batching stopped coalescing
    worse["batched"]["fabric_over_kernel"] = 0.1  # guards got expensive
    failures, _ = gate.compare(SERVING_BASELINE, worse, suite="serving")
    assert len(failures) == 2
    assert any("ratio" in f for f in failures)
    assert any("fabric_over_kernel" in f for f in failures)

    better = copy.deepcopy(SERVING_BASELINE)
    better["coalesce"]["ratio"] *= 2.0
    failures, _ = gate.compare(SERVING_BASELINE, better, suite="serving")
    assert failures == []


def test_serving_suite_absolute_gates_qps_and_tail_latency():
    slow = copy.deepcopy(SERVING_BASELINE)
    slow["coalesce"]["sustained_qps"] /= 3.0
    slow["coalesce"]["p99_seconds"] *= 3.0
    # Machine-dependent numbers are ignored without --absolute.
    failures, _ = gate.compare(SERVING_BASELINE, slow, suite="serving")
    assert failures == []
    failures, _ = gate.compare(
        SERVING_BASELINE, slow, suite="serving", absolute=True
    )
    assert len(failures) == 2
    assert any("sustained_qps" in f for f in failures)
    assert any("p99_seconds" in f for f in failures)


DEGRADED = {
    "availability": 0.999,
    "p99_seconds": 0.05,
    "p99_over_healthy": 1.8,
}


def test_degraded_metrics_only_gate_when_baseline_has_them():
    # Pre-replication baselines ignore the degraded section entirely.
    fresh = copy.deepcopy(SERVING_BASELINE)
    fresh["degraded"] = copy.deepcopy(DEGRADED)
    failures, _ = gate.compare(
        SERVING_BASELINE, fresh, suite="serving", absolute=True
    )
    assert failures == []
    # Once the baseline carries them, a real availability drop fails.
    base = copy.deepcopy(fresh)
    worse = copy.deepcopy(base)
    worse["degraded"]["availability"] = 0.5
    failures, _ = gate.compare(base, worse, suite="serving")
    assert any("availability" in f for f in failures)


def test_degraded_tail_latency_needs_absolute_flag():
    base = copy.deepcopy(SERVING_BASELINE)
    base["degraded"] = copy.deepcopy(DEGRADED)
    slow = copy.deepcopy(base)
    slow["degraded"]["p99_seconds"] *= 5.0
    slow["degraded"]["p99_over_healthy"] *= 5.0
    failures, _ = gate.compare(base, slow, suite="serving")
    assert failures == []  # machine-dependent, not gated by default
    failures, _ = gate.compare(base, slow, suite="serving", absolute=True)
    assert len(failures) == 2
    assert any("p99_seconds" in f for f in failures)
    assert any("p99_over_healthy" in f for f in failures)


def test_availability_hard_floor_ignores_baseline_drift():
    """A baseline that itself slipped below 99% cannot launder a fresh
    sub-floor run through the relative tolerance."""
    base = copy.deepcopy(SERVING_BASELINE)
    base["degraded"] = copy.deepcopy(DEGRADED)
    base["degraded"]["availability"] = 0.90  # drifted baseline
    fresh = copy.deepcopy(base)
    fresh["degraded"]["availability"] = 0.95  # within 30% of baseline...
    failures, _ = gate.compare(base, fresh, suite="serving")
    assert len(failures) == 1  # ...but below the absolute 0.99 contract
    assert "hard-floor" in failures[0]

    ok_fresh = copy.deepcopy(base)
    ok_fresh["degraded"]["availability"] = 0.995
    failures, _ = gate.compare(base, ok_fresh, suite="serving")
    assert failures == []


def test_dropping_degraded_metrics_is_a_schema_error():
    base = copy.deepcopy(SERVING_BASELINE)
    base["degraded"] = copy.deepcopy(DEGRADED)
    with pytest.raises(SystemExit, match="degraded.availability"):
        gate.compare(base, SERVING_BASELINE, suite="serving")


def test_gate_accepts_the_committed_serving_baseline():
    """The real BENCH_serving.json must satisfy the serving suite."""
    committed = _GATE.parent.parent / "BENCH_serving.json"
    payload = json.loads(committed.read_text())
    failures, _ = gate.compare(
        payload, payload, suite="serving", absolute=True
    )
    assert failures == []


CORPUS_BASELINE = {
    "summary": {
        "n_cells": 27,
        "kert_win_fraction": 1.0,
        "median_log10_gap_per_row": 4.0,
        "mean_log10_gap_per_row": 2000.0,
        "nrt_over_kert_build_median": 30.0,
    }
}


def test_corpus_suite_passes_on_fresh_baseline():
    failures, report = gate.compare(
        CORPUS_BASELINE, copy.deepcopy(CORPUS_BASELINE), suite="corpus"
    )
    assert failures == []
    assert report


def test_corpus_suite_fails_on_degraded_summary():
    """A synthetically degraded corpus summary must fail the gate."""
    worse = copy.deepcopy(CORPUS_BASELINE)
    worse["summary"]["kert_win_fraction"] = 0.4       # below the 0.5 floor
    worse["summary"]["median_log10_gap_per_row"] = 1.0  # -75% accuracy gap
    worse["summary"]["nrt_over_kert_build_median"] = 1.2  # cost edge gone
    failures, _ = gate.compare(CORPUS_BASELINE, worse, suite="corpus")
    # win fraction fails twice: the relative gate and the hard floor.
    assert len(failures) == 4
    assert any("hard-floor" in f for f in failures)
    assert any("kert_win_fraction" in f for f in failures)
    assert any("median_log10_gap_per_row" in f for f in failures)
    assert any("nrt_over_kert_build_median" in f for f in failures)


def test_corpus_win_fraction_hard_floor():
    """Even a drifted baseline cannot launder a sub-0.5 win fraction."""
    base = copy.deepcopy(CORPUS_BASELINE)
    base["summary"]["kert_win_fraction"] = 0.45  # baseline itself slipped
    fresh = copy.deepcopy(base)
    failures, _ = gate.compare(base, fresh, suite="corpus")
    assert len(failures) == 1
    assert "hard-floor" in failures[0]


def test_corpus_build_ratio_wobble_within_wide_tolerance():
    """KERT builds are milliseconds, so CI runs the corpus gate with
    --tolerance 0.45; a 40% timer wobble on the ratio must pass there."""
    wobble = copy.deepcopy(CORPUS_BASELINE)
    wobble["summary"]["nrt_over_kert_build_median"] *= 0.6
    failures, _ = gate.compare(
        CORPUS_BASELINE, wobble, suite="corpus", tolerance=0.45
    )
    assert failures == []
    # The default 30% band would have caught the same drop.
    failures, _ = gate.compare(CORPUS_BASELINE, wobble, suite="corpus")
    assert len(failures) == 1


def test_gate_accepts_the_committed_corpus_baseline():
    """The real BENCH_corpus.json must satisfy the corpus suite."""
    committed = _GATE.parent.parent / "BENCH_corpus.json"
    payload = json.loads(committed.read_text())
    failures, _ = gate.compare(payload, payload, suite="corpus", absolute=True)
    assert failures == []
    # And its recorded cells must honour the headline claims the
    # benchmark asserts per run.
    assert len(payload["cells"]) >= 9
    for name, cell in payload["cells"].items():
        assert cell["kert"]["build_s"] > 0.0, name
        assert cell["nrt"]["build_s"] > 0.0, name
