"""NRT-BN baseline builders."""

import numpy as np
import pytest

from repro.core.nrtbn import (
    build_continuous_nrtbn,
    build_discrete_nrtbn,
    build_naive_continuous,
    naive_structure,
)
from repro.exceptions import LearningError


def test_continuous_nrtbn_learns_some_structure(ediamond_data):
    train, test = ediamond_data
    model = build_continuous_nrtbn(train, rng=0)
    assert model.network.dag.n_edges > 0
    assert np.isfinite(model.log10_likelihood(test))
    assert model.k2 is not None
    assert model.report.structure_seconds > 0
    assert model.report.extra["k2_evaluations"] > 0


def test_continuous_nrtbn_missing_response_rejected(ediamond_data):
    train, _ = ediamond_data
    from repro.bn.data import Dataset

    no_d = train.select([c for c in train.columns if c != "D"])
    with pytest.raises(LearningError):
        build_continuous_nrtbn(no_d)


def test_nrtbn_random_restarts_score_monotone(ediamond_data):
    train, _ = ediamond_data
    small = train.head(150)
    one = build_continuous_nrtbn(small, rng=1, n_restarts=1)
    many = build_continuous_nrtbn(small, rng=1, n_restarts=8)
    assert many.k2.score >= one.k2.score
    assert many.report.extra["k2_restarts"] == 8


def test_nrtbn_max_parents_respected(ediamond_data):
    train, _ = ediamond_data
    model = build_continuous_nrtbn(train, rng=2, max_parents=2)
    assert all(model.network.dag.in_degree(n) <= 2 for n in model.network.dag.nodes)


def test_discrete_nrtbn(ediamond_data):
    train, test = ediamond_data
    model = build_discrete_nrtbn(train, rng=3, n_bins=4, max_parents=3)
    assert model.discretizer is not None
    assert np.isfinite(model.log10_likelihood(test))
    assert model.report.model_kind == "nrt-bn/discrete"


def test_naive_structure_shape():
    dag = naive_structure(("a", "b", "c"), response="D")
    assert set(dag.children("D")) == {"a", "b", "c"}
    assert dag.parents("D") == ()


def test_naive_baseline_worse_than_k2(ediamond_data):
    """Section 4.2: the learning-free naive NRT-BN is even less accurate."""
    train, test = ediamond_data
    naive = build_naive_continuous(train)
    k2 = build_continuous_nrtbn(train, rng=4, n_restarts=3)
    assert k2.log10_likelihood(test) > naive.log10_likelihood(test)


def test_construction_time_split(ediamond_data):
    train, _ = ediamond_data
    model = build_continuous_nrtbn(train, rng=5)
    rep = model.report
    assert rep.construction_seconds == pytest.approx(
        rep.structure_seconds + rep.parameter_seconds
    )
    # Structure search dominates parameter learning for NRT-BN.
    assert rep.structure_seconds > rep.parameter_seconds
