"""Build reports and comparisons."""

import pytest

from repro.core.metrics import BuildReport, ModelComparison, mean_rows


def report(structure=1.0, params=0.5, per_cpd=None):
    return BuildReport(
        model_kind="test",
        structure_seconds=structure,
        parameter_seconds=params,
        per_cpd_seconds=per_cpd or {"a": 0.2, "b": 0.3},
        n_nodes=2,
        n_edges=1,
        n_parameters=5,
        n_training_rows=100,
    )


def test_construction_time_sum():
    r = report()
    assert r.construction_seconds == pytest.approx(1.5)


def test_decentralized_vs_centralized():
    r = report(per_cpd={"a": 0.2, "b": 0.3, "c": 0.1})
    assert r.decentralized_parameter_seconds == pytest.approx(0.3)
    assert r.centralized_parameter_seconds == pytest.approx(0.6)
    empty = report(per_cpd={})
    empty.per_cpd_seconds = {}
    assert empty.decentralized_parameter_seconds == 0.0


def test_summary_keys():
    s = report().summary()
    assert {"model", "construction_s", "n_parameters"} <= set(s)


def test_model_comparison():
    cmp = ModelComparison(
        n_services=30,
        n_training_rows=100,
        kert_report=report(structure=0.0, params=0.1),
        nrt_report=report(structure=2.0, params=0.4),
        kert_test_log10=-50.0,
        nrt_test_log10=-80.0,
    )
    assert cmp.construction_speedup == pytest.approx(2.4 / 0.1)
    assert cmp.accuracy_gap == pytest.approx(30.0)
    row = cmp.row()
    assert row["n_services"] == 30
    assert row["speedup"] == pytest.approx(24.0)


def test_mean_rows():
    rows = [{"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}]
    assert mean_rows(rows) == {"a": 2.0, "b": 3.0}
    with pytest.raises(ValueError):
        mean_rows([])
