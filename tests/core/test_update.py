"""Sequential updating vs reconstruction (the Section-2 argument)."""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.bn.learning.mle import fit_gaussian_network, fit_discrete_network
from repro.core.update import (
    SequentialGaussianUpdater,
    SequentialTabularUpdater,
    drift_experiment,
)
from repro.exceptions import LearningError


def test_gaussian_updater_matches_batch_mle(chain_gaussian_net, rng):
    data = chain_gaussian_net.sample(3000, rng)
    upd = SequentialGaussianUpdater(chain_gaussian_net.dag)
    third = data.n_rows // 3
    for k in range(3):
        upd.ingest(data.rows(np.arange(k * third, (k + 1) * third)))
    seq = upd.network()
    batch = fit_gaussian_network(chain_gaussian_net.dag, data)
    for node in ("a", "b", "c"):
        assert seq.cpd(node).intercept == pytest.approx(
            batch.cpd(node).intercept, abs=1e-6
        )
        np.testing.assert_allclose(
            seq.cpd(node).coefficients, batch.cpd(node).coefficients, atol=1e-6
        )
        assert seq.cpd(node).variance == pytest.approx(
            batch.cpd(node).variance, rel=1e-3
        )


def test_gaussian_updater_validation(chain_gaussian_net):
    with pytest.raises(LearningError):
        SequentialGaussianUpdater(chain_gaussian_net.dag, decay=0.0)
    upd = SequentialGaussianUpdater(chain_gaussian_net.dag)
    with pytest.raises(LearningError):
        upd.cpd("a")  # nothing ingested


def test_stale_data_lingers_without_decay(chain_gaussian_net, rng):
    """The paper's core Section-2 claim, made quantitative."""
    from repro.bn.cpd import LinearGaussianCPD
    from repro.bn.network import GaussianBayesianNetwork

    old = chain_gaussian_net
    # Drift: b's dependence on a doubles.
    drifted = GaussianBayesianNetwork(
        old.dag,
        [
            old.cpd("a"),
            LinearGaussianCPD("b", 0.5, [4.0], 0.3, ("a",)),
            old.cpd("c"),
        ],
    )
    before = [old.sample(500, rng) for _ in range(4)]
    after = [drifted.sample(500, rng) for _ in range(2)]
    test_after = drifted.sample(1000, rng)

    result = drift_experiment(
        old.dag, before, after, test_after, window_batches=2
    )
    # Windowed reconstruction sees only post-drift data; the sequential
    # updater still carries 2000 stale rows -> worse fit.
    assert result["reconstructed_log10"] > result["sequential_log10"]


def test_decay_mitigates_staleness(chain_gaussian_net, rng):
    from repro.bn.cpd import LinearGaussianCPD
    from repro.bn.network import GaussianBayesianNetwork

    old = chain_gaussian_net
    drifted = GaussianBayesianNetwork(
        old.dag,
        [
            old.cpd("a"),
            LinearGaussianCPD("b", 0.5, [4.0], 0.3, ("a",)),
            old.cpd("c"),
        ],
    )
    before = [old.sample(500, rng) for _ in range(4)]
    after = [drifted.sample(500, rng) for _ in range(2)]
    test_after = drifted.sample(1000, rng)

    no_decay = drift_experiment(old.dag, before, after, test_after, 2, decay=1.0)
    heavy_decay = drift_experiment(old.dag, before, after, test_after, 2, decay=0.2)
    assert heavy_decay["sequential_log10"] > no_decay["sequential_log10"]


def test_tabular_updater_matches_batch(rng):
    from repro.bn.cpd import TabularCPD
    from repro.bn.dag import DAG
    from repro.bn.network import DiscreteBayesianNetwork

    dag = DAG(nodes=["a", "b"], edges=[("a", "b")])
    truth = DiscreteBayesianNetwork(
        dag,
        [
            TabularCPD("a", 2, np.array([0.4, 0.6])),
            TabularCPD("b", 3, np.array([[0.5, 0.2], [0.3, 0.3], [0.2, 0.5]]),
                       ("a",), (2,)),
        ],
    )
    data = truth.sample(4000, rng)
    upd = SequentialTabularUpdater(dag, {"a": 2, "b": 3}, alpha=1.0)
    half = data.n_rows // 2
    upd.ingest(data.rows(np.arange(half)))
    upd.ingest(data.rows(np.arange(half, data.n_rows)))
    seq = upd.network()
    batch = fit_discrete_network(dag, data, {"a": 2, "b": 3}, alpha=1.0)
    for node in ("a", "b"):
        np.testing.assert_allclose(
            seq.cpd(node).values, batch.cpd(node).values, atol=1e-9
        )


def test_tabular_updater_decay_forgets(rng):
    from repro.bn.dag import DAG

    dag = DAG(nodes=["a"])
    upd = SequentialTabularUpdater(dag, {"a": 2}, decay=0.01, alpha=0.1)
    upd.ingest(Dataset({"a": np.zeros(1000, dtype=int)}))
    upd.ingest(Dataset({"a": np.ones(1000, dtype=int)}))
    pmf = upd.cpd("a").values
    assert pmf[1] > 0.95  # the old all-zeros batch has almost vanished
