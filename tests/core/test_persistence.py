"""Model bundles: save/load for both families and kinds."""

import json

import numpy as np
import pytest

from repro.core.persistence import (
    discretizer_from_dict,
    discretizer_to_dict,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.exceptions import DataError


def test_discretizer_roundtrip(ediamond_data):
    from repro.bn.discretize import Discretizer

    train, test = ediamond_data
    disc = Discretizer(n_bins=4).fit(train)
    loaded = discretizer_from_dict(
        json.loads(json.dumps(discretizer_to_dict(disc)))
    )
    t1 = disc.transform(test)
    t2 = loaded.transform(test)
    for c in t1.columns:
        np.testing.assert_array_equal(t1[c], t2[c])
    np.testing.assert_allclose(loaded.centers("D"), disc.centers("D"))


def test_continuous_kertbn_bundle_roundtrip(
    tmp_path, ediamond_continuous_model, ediamond_data
):
    _, test = ediamond_data
    path = str(tmp_path / "kert.json")
    save_model(ediamond_continuous_model, path)
    loaded = load_model(path)
    assert loaded.log10_likelihood(test) == pytest.approx(
        ediamond_continuous_model.log10_likelihood(test)
    )
    assert loaded.f.to_string() == ediamond_continuous_model.f.to_string()
    assert loaded.report.model_kind == "kert-bn/continuous"
    # The loaded model remains usable by the apps.
    from repro.apps.paccel import PAccel

    res = PAccel(loaded).baseline(n_samples=2000, rng=0)
    assert np.isfinite(res.mean)


def test_discrete_kertbn_bundle_roundtrip(
    tmp_path, ediamond_discrete_model, ediamond_data
):
    _, test = ediamond_data
    path = str(tmp_path / "kertd.json")
    save_model(ediamond_discrete_model, path)
    loaded = load_model(path)
    assert loaded.discretizer is not None
    assert loaded.log10_likelihood(test) == pytest.approx(
        ediamond_discrete_model.log10_likelihood(test)
    )


def test_nrtbn_bundle_roundtrip(tmp_path, ediamond_data):
    from repro.core.nrtbn import build_continuous_nrtbn

    train, test = ediamond_data
    model = build_continuous_nrtbn(train, rng=0)
    path = str(tmp_path / "nrt.json")
    save_model(model, path)
    loaded = load_model(path)
    assert loaded.report.model_kind == "nrt-bn/continuous"
    assert loaded.log10_likelihood(test) == pytest.approx(
        model.log10_likelihood(test)
    )


def test_unknown_family_rejected():
    with pytest.raises(DataError):
        model_from_dict({"family": "martian"})


def test_bundle_is_json_clean(ediamond_discrete_model):
    # Every value must survive strict JSON (no numpy scalars/arrays).
    text = json.dumps(model_to_dict(ediamond_discrete_model))
    assert "NaN" not in text
    json.loads(text)


# --------------------------------------------------------------------- #
# Schema versioning and corruption handling
# --------------------------------------------------------------------- #


def test_bundles_carry_schema_version(ediamond_discrete_model):
    from repro.core.persistence import SCHEMA_VERSION

    spec = model_to_dict(ediamond_discrete_model)
    assert spec["schema_version"] == SCHEMA_VERSION


def test_unknown_schema_version_refused_with_message(ediamond_discrete_model):
    spec = model_to_dict(ediamond_discrete_model)
    spec["schema_version"] = 999
    with pytest.raises(DataError, match="schema_version 999"):
        model_from_dict(spec)


def test_legacy_bundle_without_schema_version_still_loads(
    ediamond_discrete_model, ediamond_data
):
    _, test = ediamond_data
    spec = model_to_dict(ediamond_discrete_model)
    del spec["schema_version"]  # pre-versioning layout
    loaded = model_from_dict(json.loads(json.dumps(spec)))
    assert loaded.log10_likelihood(test) == pytest.approx(
        ediamond_discrete_model.log10_likelihood(test)
    )


def test_truncated_bundle_names_the_missing_key(ediamond_discrete_model):
    spec = model_to_dict(ediamond_discrete_model)
    del spec["network"]
    with pytest.raises(DataError, match="missing key 'network'"):
        model_from_dict(spec)


def test_corrupt_json_file_is_a_dataerror(tmp_path):
    path = str(tmp_path / "bad.json")
    with open(path, "w") as fh:
        fh.write('{"family": "kert", "netw')
    with pytest.raises(DataError, match="not valid JSON"):
        load_model(path)
    with open(path, "w") as fh:
        fh.write('["not", "a", "bundle"]')
    with pytest.raises(DataError):
        load_model(path)


# --------------------------------------------------------------------- #
# Discretizer.from_edges and edge-case model round-trips
# --------------------------------------------------------------------- #


def test_from_edges_constructor_validates():
    from repro.bn.discretize import Discretizer

    disc = Discretizer.from_edges({"a": [0.0, 1.0, 2.0]})
    assert disc.cardinality("a") == 2
    np.testing.assert_allclose(disc.centers("a"), [0.5, 1.5])
    with pytest.raises(DataError):
        Discretizer.from_edges({"a": [1.0]})                 # too few edges
    with pytest.raises(DataError):
        Discretizer.from_edges({"a": [0.0, 0.0, 1.0]})       # not increasing
    with pytest.raises(DataError):
        Discretizer.from_edges({"a": [0.0, np.nan, 1.0]})    # not finite
    with pytest.raises(DataError):
        Discretizer.from_edges(
            {"a": [0.0, 1.0]}, centers={"a": [0.25, 0.75]}
        )  # centers length must match bin count
    with pytest.raises(DataError):
        Discretizer.from_edges({"a": [0.0, 1.0]}, centers={"zz": [0.5]})


def test_single_bin_column_roundtrip(tmp_path, ediamond_discrete_model):
    """A degenerate single-bin column is legal via from_edges and must
    survive a bundle round-trip (fit() can never produce one, but a
    hand-built or degraded bundle can)."""
    from repro.core.persistence import discretizer_from_dict, discretizer_to_dict
    from repro.bn.discretize import Discretizer

    disc = Discretizer.from_edges(
        {"only": [0.0, 10.0], "multi": [0.0, 1.0, 2.0, 3.0]}
    )
    assert disc.cardinality("only") == 1
    loaded = discretizer_from_dict(
        json.loads(json.dumps(discretizer_to_dict(disc)))
    )
    assert loaded.cardinality("only") == 1
    assert loaded.state_of("only", 123.4) == 0  # everything clips into the bin
    np.testing.assert_allclose(loaded.edges("multi"), disc.edges("multi"))
    np.testing.assert_allclose(loaded.centers("only"), disc.centers("only"))


def test_degraded_round_stale_cpd_model_roundtrip(tmp_path):
    """A partially-learned model carrying stale CPDs from a degraded
    decentralized round must persist and reload like any other."""
    from repro.bn.dag import DAG
    from repro.bn.data import Dataset
    from repro.bn.network import GaussianBayesianNetwork
    from repro.core.metrics import BuildReport
    from repro.core.nrtbn import NRTBN
    from repro.decentralized.coordinator import Coordinator
    from repro.bn.learning.mle import fit_linear_gaussian
    from repro.exceptions import LearningError

    dag = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])

    broken = {"node": None}

    def fitter(data, variable, parents):
        if variable == broken["node"]:
            raise LearningError("chaos: fit diverged")
        return fit_linear_gaussian(data, variable, parents)

    def window(seed):
        r = np.random.default_rng(seed)
        a = r.normal(1.0, 0.2, size=120)
        b = 0.5 + 2.0 * a + r.normal(0, 0.1, size=120)
        c = -1.0 + 1.5 * b + r.normal(0, 0.1, size=120)
        return Dataset({"a": a, "b": b, "c": c})

    coord = Coordinator(dag, fitter, rng=0)
    healthy = coord.learn_round(window(1))
    assert healthy.complete and not healthy.degraded
    broken["node"] = "b"
    degraded = coord.learn_round(window(2))
    assert degraded.degraded and "b" in degraded.stale

    model = NRTBN(
        network=GaussianBayesianNetwork(dag, list(degraded.cpds.values())),
        response="c",
        report=BuildReport(model_kind="nrt-bn/continuous"),
    )
    path = str(tmp_path / "stale.json")
    save_model(model, path)
    loaded = load_model(path)
    test = window(3)
    assert loaded.log10_likelihood(test) == pytest.approx(
        model.log10_likelihood(test)
    )


def test_bundle_to_registry_to_rollback_query_equivalence(
    tmp_path, ediamond_discrete_model, ediamond_data
):
    """Bundle → registry → rollback → query must answer exactly like the
    in-memory model it started from."""
    from repro.serving.registry import ModelRegistry
    from repro.serving.server import ModelServer

    train, _ = ediamond_data
    model = ediamond_discrete_model
    reg = ModelRegistry(str(tmp_path / "reg"))
    reg.publish(model)
    reg.publish(model)
    reg.rollback(reason="equivalence check")
    assert reg.active_version == 1

    srv = ModelServer(reg, rng=0)
    svc = next(n for n in model.network.nodes if n != model.response)
    mean = float(np.mean(train[svc]))
    served = srv.query([model.response], {svc: mean})
    assert served.ok and served.tier == "compiled-einsum"
    disc = model.discretizer
    direct = model.network.compiled().query(
        [model.response], {svc: disc.state_of(svc, mean)}
    ).values
    np.testing.assert_allclose(served.value, direct)
