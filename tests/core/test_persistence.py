"""Model bundles: save/load for both families and kinds."""

import json

import numpy as np
import pytest

from repro.core.persistence import (
    discretizer_from_dict,
    discretizer_to_dict,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.exceptions import DataError


def test_discretizer_roundtrip(ediamond_data):
    from repro.bn.discretize import Discretizer

    train, test = ediamond_data
    disc = Discretizer(n_bins=4).fit(train)
    loaded = discretizer_from_dict(
        json.loads(json.dumps(discretizer_to_dict(disc)))
    )
    t1 = disc.transform(test)
    t2 = loaded.transform(test)
    for c in t1.columns:
        np.testing.assert_array_equal(t1[c], t2[c])
    np.testing.assert_allclose(loaded.centers("D"), disc.centers("D"))


def test_continuous_kertbn_bundle_roundtrip(
    tmp_path, ediamond_continuous_model, ediamond_data
):
    _, test = ediamond_data
    path = str(tmp_path / "kert.json")
    save_model(ediamond_continuous_model, path)
    loaded = load_model(path)
    assert loaded.log10_likelihood(test) == pytest.approx(
        ediamond_continuous_model.log10_likelihood(test)
    )
    assert loaded.f.to_string() == ediamond_continuous_model.f.to_string()
    assert loaded.report.model_kind == "kert-bn/continuous"
    # The loaded model remains usable by the apps.
    from repro.apps.paccel import PAccel

    res = PAccel(loaded).baseline(n_samples=2000, rng=0)
    assert np.isfinite(res.mean)


def test_discrete_kertbn_bundle_roundtrip(
    tmp_path, ediamond_discrete_model, ediamond_data
):
    _, test = ediamond_data
    path = str(tmp_path / "kertd.json")
    save_model(ediamond_discrete_model, path)
    loaded = load_model(path)
    assert loaded.discretizer is not None
    assert loaded.log10_likelihood(test) == pytest.approx(
        ediamond_discrete_model.log10_likelihood(test)
    )


def test_nrtbn_bundle_roundtrip(tmp_path, ediamond_data):
    from repro.core.nrtbn import build_continuous_nrtbn

    train, test = ediamond_data
    model = build_continuous_nrtbn(train, rng=0)
    path = str(tmp_path / "nrt.json")
    save_model(model, path)
    loaded = load_model(path)
    assert loaded.report.model_kind == "nrt-bn/continuous"
    assert loaded.log10_likelihood(test) == pytest.approx(
        model.log10_likelihood(test)
    )


def test_unknown_family_rejected():
    with pytest.raises(DataError):
        model_from_dict({"family": "martian"})


def test_bundle_is_json_clean(ediamond_discrete_model):
    # Every value must survive strict JSON (no numpy scalars/arrays).
    text = json.dumps(model_to_dict(ediamond_discrete_model))
    assert "NaN" not in text
    json.loads(text)
