"""The Section-2 periodic (re)construction scheme (Eqs. 1-2)."""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.core.reconstruction import (
    ModelReconstructor,
    RebuildEvent,
    ReconstructionSchedule,
)
from repro.exceptions import SchedulingError


def test_schedule_equations():
    s = ReconstructionSchedule(t_data=10.0, alpha_model=12, k=3)
    assert s.t_con == pytest.approx(120.0)       # Eq. 2
    assert s.window == pytest.approx(360.0)      # Eq. 1
    assert s.n_points == 36                      # K * alpha


def test_paper_fig3_settings():
    # "36 data points (i.e. K*alpha = 3*12 = 36, T_CON = 2 minutes)"
    s = ReconstructionSchedule(t_data=10.0, alpha_model=12, k=3)
    assert s.t_con == 120.0
    # "1080 data points (K*alpha = 3*360), T_CON = 60 minutes"
    s2 = ReconstructionSchedule(t_data=10.0, alpha_model=360, k=3)
    assert s2.n_points == 1080
    assert s2.t_con == 3600.0


def test_paper_section5_settings():
    # T_DATA=20s, K=10, T_CON=20min => alpha=60... the paper says
    # alpha_model = 120 with T_CON = 20 min? 120*20s = 40min; the paper's
    # own numbers give K*alpha = 1200 training points, which we honor via
    # from_training_size.
    s = ReconstructionSchedule.from_training_size(1200, k=10, t_data=20.0)
    assert s.alpha_model == 120
    assert s.n_points == 1200


def test_schedule_validation():
    with pytest.raises(SchedulingError):
        ReconstructionSchedule(t_data=0.0, alpha_model=1, k=1)
    with pytest.raises(SchedulingError):
        ReconstructionSchedule(t_data=1.0, alpha_model=0, k=1)
    with pytest.raises(SchedulingError):
        ReconstructionSchedule(t_data=1.0, alpha_model=1, k=0)
    with pytest.raises(SchedulingError):
        ReconstructionSchedule.from_training_size(35, k=3, t_data=1.0)


class DummyModel:
    def __init__(self, data):
        self.n = data.n_rows

        class R:
            construction_seconds = 0.001

        self.report = R()


def make_data(n):
    return Dataset({"x": np.arange(n, dtype=float), "D": np.ones(n)})


def test_reconstructor_window_selection():
    s = ReconstructionSchedule(t_data=1.0, alpha_model=5, k=2)
    rec = ModelReconstructor(schedule=s, builder=DummyModel)
    rec.ingest(make_data(30), start_time=1.0)
    window = rec.window_at(10.0)  # W = 10 -> points in (0, 10]
    assert window.n_rows == 10
    window2 = rec.window_at(15.0)  # points in (5, 15]
    assert window2.n_rows == 10
    np.testing.assert_allclose(window2["x"], np.arange(5, 15))


def test_reconstructor_run_produces_feasible_events():
    s = ReconstructionSchedule(t_data=1.0, alpha_model=5, k=2)
    rec = ModelReconstructor(schedule=s, builder=DummyModel)
    events = rec.run(make_data(40), n_rebuilds=3)
    assert len(events) == 3
    for e in events:
        assert isinstance(e, RebuildEvent)
        assert e.n_points == s.n_points
        assert e.feasible  # dummy builds in 1 ms << T_CON 5 s
    assert rec.history == events


def test_reconstructor_infeasible_flagged():
    s = ReconstructionSchedule(t_data=0.001, alpha_model=2, k=1)

    class SlowModel(DummyModel):
        def __init__(self, data):
            super().__init__(data)

            class R:
                construction_seconds = 10.0  # way beyond T_CON = 2 ms

            self.report = R()

    rec = ModelReconstructor(schedule=s, builder=SlowModel)
    events = rec.run(make_data(10), n_rebuilds=1)
    assert not events[0].feasible


def test_reconstructor_validation():
    s = ReconstructionSchedule(t_data=1.0, alpha_model=5, k=2)
    rec = ModelReconstructor(schedule=s, builder=DummyModel)
    with pytest.raises(SchedulingError):
        rec.window_at(5.0)  # nothing ingested
    with pytest.raises(SchedulingError):
        rec.run(make_data(5), n_rebuilds=2)  # not enough points
    rec2 = ModelReconstructor(schedule=s, builder=DummyModel)
    rec2.ingest(make_data(10), start_time=1.0)
    with pytest.raises(SchedulingError):
        rec2.window_at(-100.0)


def test_reconstructor_rejects_mismatched_ingests():
    s = ReconstructionSchedule(t_data=1.0, alpha_model=2, k=1)
    rec = ModelReconstructor(schedule=s, builder=DummyModel)
    rec.ingest(make_data(5), start_time=1.0)
    with pytest.raises(SchedulingError):
        rec.ingest(Dataset({"other": np.ones(3)}), start_time=6.0)


def test_correlation_metric_from_managers():
    from repro.core.reconstruction import correlation_metric_from_managers

    # One manager acting every 10 min, T_CON = 2 min -> K = 5.
    assert correlation_metric_from_managers([600.0], t_con=120.0) == 5
    # Several managers: the paper suggests the minimum interval governs.
    assert correlation_metric_from_managers([600.0, 240.0], t_con=120.0) == 2
    # A manager acting faster than T_CON floors K at 1.
    assert correlation_metric_from_managers([60.0], t_con=120.0) == 1
    with pytest.raises(SchedulingError):
        correlation_metric_from_managers([], t_con=120.0)
    with pytest.raises(SchedulingError):
        correlation_metric_from_managers([0.0], t_con=120.0)
    with pytest.raises(SchedulingError):
        correlation_metric_from_managers([60.0], t_con=0.0)
