"""AutonomicManager: the closed MAPE loop on a simulated environment."""

import numpy as np
import pytest

from repro.core.manager import (
    AutonomicManager,
    CycleReport,
    SLAPolicy,
    inject_degradation,
)
from repro.exceptions import ReproError
from repro.simulator.scenarios.ediamond import ediamond_scenario


def test_policy_validation():
    with pytest.raises(ReproError):
        SLAPolicy(threshold=0.0, max_violation_prob=0.1)
    with pytest.raises(ReproError):
        SLAPolicy(threshold=2.0, max_violation_prob=1.5)
    with pytest.raises(ReproError):
        SLAPolicy(threshold=2.0, max_violation_prob=0.1, candidate_speedups=(1.5,))
    with pytest.raises(ReproError):
        AutonomicManager(ediamond_scenario(), SLAPolicy(2.0, 0.1), window_points=5)


def test_healthy_environment_no_action():
    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.2)
    mgr = AutonomicManager(env, policy, window_points=200, rng=1)
    report = mgr.run_cycle()
    assert isinstance(report, CycleReport)
    assert not report.acted
    assert report.violation_prob <= 0.2
    assert report.model is not None


def test_degradation_triggers_remediation():
    env = ediamond_scenario()
    inject_degradation(env, "X5", 2.5)
    policy = SLAPolicy(threshold=3.0, max_violation_prob=0.15)
    mgr = AutonomicManager(env, policy, window_points=250, rng=2)
    report = mgr.run_cycle()
    assert report.acted
    service, factor = report.action
    assert service == "X5"  # the degraded service is the one accelerated
    assert 0 < factor < 1
    assert report.projected_violation_prob is not None
    assert report.suspects  # localization evidence recorded


def test_remediation_actually_helps():
    env = ediamond_scenario()
    inject_degradation(env, "X6", 2.5)
    policy = SLAPolicy(threshold=3.5, max_violation_prob=0.15)
    mgr = AutonomicManager(env, policy, window_points=250, rng=3)
    first = mgr.run_cycle()
    assert first.acted
    second = mgr.run_cycle()
    # After the action, measured violation probability drops.
    assert second.violation_prob < first.violation_prob


def test_run_n_cycles_history():
    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.3)
    mgr = AutonomicManager(env, policy, window_points=120, rng=4)
    reports = mgr.run(3)
    assert len(reports) == 3
    assert [r.cycle for r in reports] == [0, 1, 2]
    assert mgr.history == reports
    with pytest.raises(ReproError):
        mgr.run(0)


def test_inject_degradation_validation():
    env = ediamond_scenario()
    with pytest.raises(ReproError):
        inject_degradation(env, "X1", 0.0)
    with pytest.raises(ReproError):
        inject_degradation(env, "ghost", 2.0)
