"""AutonomicManager: the closed MAPE loop on a simulated environment."""

import numpy as np
import pytest

from repro.core.manager import (
    AutonomicManager,
    CycleReport,
    SLAPolicy,
    inject_degradation,
)
from repro.exceptions import ReproError
from repro.simulator.scenarios.ediamond import ediamond_scenario


def test_policy_validation():
    with pytest.raises(ReproError):
        SLAPolicy(threshold=0.0, max_violation_prob=0.1)
    with pytest.raises(ReproError):
        SLAPolicy(threshold=2.0, max_violation_prob=1.5)
    with pytest.raises(ReproError):
        SLAPolicy(threshold=2.0, max_violation_prob=0.1, candidate_speedups=(1.5,))
    with pytest.raises(ReproError):
        AutonomicManager(ediamond_scenario(), SLAPolicy(2.0, 0.1), window_points=5)


def test_healthy_environment_no_action():
    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.2)
    mgr = AutonomicManager(env, policy, window_points=200, rng=1)
    report = mgr.run_cycle()
    assert isinstance(report, CycleReport)
    assert not report.acted
    assert report.violation_prob <= 0.2
    assert report.model is not None


def test_degradation_triggers_remediation():
    env = ediamond_scenario()
    inject_degradation(env, "X5", 2.5)
    policy = SLAPolicy(threshold=3.0, max_violation_prob=0.15)
    mgr = AutonomicManager(env, policy, window_points=250, rng=2)
    report = mgr.run_cycle()
    assert report.acted
    service, factor = report.action
    assert service == "X5"  # the degraded service is the one accelerated
    assert 0 < factor < 1
    assert report.projected_violation_prob is not None
    assert report.suspects  # localization evidence recorded


def test_remediation_actually_helps():
    env = ediamond_scenario()
    inject_degradation(env, "X6", 2.5)
    policy = SLAPolicy(threshold=3.5, max_violation_prob=0.15)
    mgr = AutonomicManager(env, policy, window_points=250, rng=3)
    first = mgr.run_cycle()
    assert first.acted
    second = mgr.run_cycle()
    # After the action, measured violation probability drops.
    assert second.violation_prob < first.violation_prob


def test_run_n_cycles_history():
    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.3)
    mgr = AutonomicManager(env, policy, window_points=120, rng=4)
    reports = mgr.run(3)
    assert len(reports) == 3
    assert [r.cycle for r in reports] == [0, 1, 2]
    assert mgr.history == reports
    with pytest.raises(ReproError):
        mgr.run(0)


def test_inject_degradation_validation():
    env = ediamond_scenario()
    with pytest.raises(ReproError):
        inject_degradation(env, "X1", 0.0)
    with pytest.raises(ReproError):
        inject_degradation(env, "ghost", 2.0)


def test_environment_scale_service_is_the_mutation_point():
    # inject_degradation and the manager's execute step both go through
    # SimulatedEnvironment.scale_service — no half-built manager objects.
    env = ediamond_scenario()
    before = {s.name: s.delay for s in env.services}
    env.scale_service("X3", 2.0)
    after = {s.name: s.delay for s in env.services}
    assert after["X3"] is not before["X3"]
    assert all(after[n] is before[n] for n in before if n != "X3")
    with pytest.raises(ReproError):
        env.scale_service("X3", 0.0)
    with pytest.raises(ReproError):
        env.scale_service("ghost", 0.5)


def _all_nan_window(env, n):
    from repro.bn.data import Dataset

    cols = {s: np.full(n, np.nan) for s in env.service_names}
    cols[env.response] = np.full(n, np.nan)
    return Dataset(cols)


def test_unlearnable_window_survives_and_reuses_reference():
    """Acceptance: a cycle with an all-NaN window must not crash the MAPE
    loop — the manager degrades to the last healthy model and resumes."""
    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.3)
    mgr = AutonomicManager(env, policy, window_points=120, rng=5)
    healthy = mgr.run_cycle()
    assert not healthy.degraded
    reference = mgr._reference_model
    assert reference is not None

    env.simulate = lambda n, rng=None: _all_nan_window(env, n)
    degraded = mgr.run_cycle()
    assert degraded.degraded
    assert "no finite values" in degraded.incident
    assert degraded.model is reference       # last healthy model reused
    assert not degraded.acted
    assert np.isfinite(degraded.violation_prob)
    assert mgr._reference_model is reference  # NaN cycle never promoted

    del env.simulate                         # restore the real method
    recovered = mgr.run_cycle()
    assert not recovered.degraded
    assert [r.cycle for r in mgr.history] == [0, 1, 2]


def test_rebuild_exception_degrades_cycle(monkeypatch):
    from repro.core import manager as manager_mod
    from repro.exceptions import LearningError

    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.3)
    mgr = AutonomicManager(env, policy, window_points=120, rng=6)
    mgr.run_cycle()

    def boom(workflow, data):
        raise LearningError("degenerate covariance")

    monkeypatch.setattr(manager_mod, "build_continuous_kertbn", boom)
    report = mgr.run_cycle()
    assert report.degraded
    assert "model rebuild failed" in report.incident
    assert "degenerate covariance" in report.incident
    assert not report.acted


def test_degraded_cycle_without_reference_reports_nan():
    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.3)
    mgr = AutonomicManager(env, policy, window_points=120, rng=7)
    env.simulate = lambda n, rng=None: _all_nan_window(env, n)
    report = mgr.run_cycle()   # very first cycle already unlearnable
    assert report.degraded
    assert report.model is None
    assert np.isnan(report.violation_prob)
    assert np.isnan(report.expected_response)
    assert len(mgr.history) == 1


# --------------------------------------------------------------------- #
# Serving-layer integration: registry publishing + quality quarantine
# --------------------------------------------------------------------- #


def test_manager_publishes_healthy_cycles_to_registry(tmp_path):
    from repro.serving.registry import ModelRegistry

    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.3)
    reg = ModelRegistry(str(tmp_path / "reg"))
    mgr = AutonomicManager(env, policy, window_points=150, rng=11, registry=reg)
    r1 = mgr.run_cycle()
    r2 = mgr.run_cycle()
    assert (r1.published_version, r2.published_version) == (1, 2)
    assert not r1.rolled_back and not r2.rolled_back
    assert reg.active_version == 2
    # the published bundle is a live, loadable model
    assert reg.load().report.model_kind == "kert-bn/continuous"
    # and the manager can hand out a guarded server over it
    srv = mgr.model_server(rng=0)
    assert srv.version == 2
    result = srv.violation_prob(policy.threshold)
    assert result.ok and 0.0 <= result.value <= 1.0


def test_manager_quarantines_poisoned_window(tmp_path):
    from repro.bn.data import Dataset
    from repro.serving.quality import DataQualityGate

    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.3)
    gate = DataQualityGate(
        columns=(*env.service_names, env.response),
        min_rows=10,
        drift_threshold=6.0,
    )
    mgr = AutonomicManager(
        env, policy, window_points=150, rng=12, quality_gate=gate
    )
    healthy = mgr.run_cycle()
    assert not healthy.degraded and healthy.window_verdict.accepted

    real_simulate = env.simulate

    def poisoned(n, rng=None):
        data = real_simulate(n, rng=rng)
        return Dataset({c: np.asarray(data[c]) * 50.0 for c in data.columns})

    env.simulate = poisoned
    report = mgr.run_cycle()
    assert report.degraded and report.quarantined
    assert "quarantined" in report.incident
    assert not report.window_verdict.accepted
    assert gate.quarantined and gate.quarantined[0][0] == 1
    assert not report.acted

    del env.simulate
    recovered = mgr.run_cycle()
    assert not recovered.degraded and not recovered.quarantined


def test_manager_tripwire_rolls_back_regressed_publish(tmp_path, monkeypatch):
    """A cycle that builds a much-worse model publishes it, trips the
    accuracy tripwire, and the registry auto-rolls back."""
    from repro.core import manager as manager_mod
    from repro.serving.registry import ModelRegistry

    env = ediamond_scenario()
    policy = SLAPolicy(threshold=6.0, max_violation_prob=0.3)
    reg = ModelRegistry(str(tmp_path / "reg"))
    mgr = AutonomicManager(
        env, policy, window_points=150, rng=13,
        registry=reg, tripwire_max_regression=0.25,
    )
    first = mgr.run_cycle()
    assert first.published_version == 1

    real_build = manager_mod.build_continuous_kertbn

    def garbage_build(workflow, data):
        from repro.bn.data import Dataset

        r = np.random.default_rng(0)
        noise = Dataset(
            {c: r.uniform(0.1, 10.0, size=data.n_rows) for c in data.columns}
        )
        return real_build(workflow, noise)

    monkeypatch.setattr(manager_mod, "build_continuous_kertbn", garbage_build)
    second = mgr.run_cycle()
    assert second.published_version == 2
    assert second.rolled_back
    assert "rolled back" in second.incident
    assert reg.active_version == 1
    assert not reg.info(2).healthy
