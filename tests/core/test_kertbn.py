"""KERT-BN builders: structure provenance, Eq.-4 CPD, cost accounting."""

import numpy as np
import pytest

from repro.bn.cpd import DeterministicCPD, LinearGaussianCPD, NoisyDeterministicCPD
from repro.bn.network import DiscreteBayesianNetwork, HybridResponseNetwork
from repro.core.kertbn import (
    build_continuous_kertbn,
    build_discrete_kertbn,
    calibrate_confusion,
    estimate_leak,
)
from repro.exceptions import LearningError


def test_continuous_structure_is_knowledge_given(ediamond_env, ediamond_data):
    train, _ = ediamond_data
    model = build_continuous_kertbn(ediamond_env.workflow, train)
    dag = model.network.dag
    assert set(dag.parents("D")) == set(ediamond_env.service_names)
    assert dag.has_edge("X2", "X3")
    assert dag.has_edge("X3", "X5")
    assert not dag.has_edge("X3", "X4")  # parallel branches not linked


def test_continuous_cpd_families(ediamond_continuous_model):
    net = ediamond_continuous_model.network
    assert isinstance(net, HybridResponseNetwork)
    assert isinstance(net.cpd("D"), NoisyDeterministicCPD)
    for s in ("X1", "X2", "X3", "X4", "X5", "X6"):
        assert isinstance(net.cpd(s), LinearGaussianCPD)


def test_continuous_report_accounting(ediamond_continuous_model):
    rep = ediamond_continuous_model.report
    assert rep.model_kind == "kert-bn/continuous"
    assert rep.n_nodes == 7
    assert rep.construction_seconds == pytest.approx(
        rep.structure_seconds + rep.parameter_seconds
    )
    assert set(rep.per_cpd_seconds) == {"X1", "X2", "X3", "X4", "X5", "X6", "D"}
    assert rep.decentralized_parameter_seconds <= rep.centralized_parameter_seconds
    assert rep.n_training_rows == 600


def test_continuous_response_variance_reflects_noise(ediamond_env):
    noisy_env_data = ediamond_env.simulate(400, rng=42)
    model = build_continuous_kertbn(ediamond_env.workflow, noisy_env_data)
    # Residual sigma should be small but nonzero (monitoring noise).
    assert 0 < model.network.cpd("D").variance < 0.5


def test_continuous_rejects_resource_groups(ediamond_env, ediamond_data):
    train, _ = ediamond_data
    with pytest.raises(LearningError):
        build_continuous_kertbn(
            ediamond_env.workflow, train, resource_groups={"R": ("X1", "X2")}
        )


def test_continuous_loglik_beats_shuffled_response(ediamond_env, ediamond_data):
    """Sanity: the workflow-given f must explain D far better than chance."""
    train, test = ediamond_data
    model = build_continuous_kertbn(ediamond_env.workflow, train)
    good = model.log10_likelihood(test)
    # Scoring a dataset whose D column is shuffled destroys the f link.
    rng = np.random.default_rng(0)
    cols = {c: np.asarray(test[c]) for c in test.columns}
    cols["D"] = rng.permutation(cols["D"])
    from repro.bn.data import Dataset

    bad = model.log10_likelihood(Dataset(cols))
    assert good > bad + 50


def test_discrete_model_families(ediamond_discrete_model):
    net = ediamond_discrete_model.network
    assert isinstance(net, DiscreteBayesianNetwork)
    assert isinstance(net.cpd("D"), DeterministicCPD)
    assert ediamond_discrete_model.discretizer is not None


def test_discrete_leak_estimated_in_range(ediamond_discrete_model):
    leak = ediamond_discrete_model.report.extra["leak"]
    assert 0.001 <= leak <= 0.99


def test_discrete_leak_grows_with_noise(ediamond_env):
    from repro.simulator.scenarios.ediamond import ediamond_scenario

    quiet = ediamond_scenario(measurement_noise=0.0)
    loud = ediamond_scenario(measurement_noise=0.15)
    tq = quiet.simulate(500, rng=1)
    tl = loud.simulate(500, rng=1)
    mq = build_discrete_kertbn(quiet.workflow, tq, n_bins=4)
    ml = build_discrete_kertbn(loud.workflow, tl, n_bins=4)
    assert ml.report.extra["leak"] > mq.report.extra["leak"]


def test_discrete_leak_model_options(ediamond_env, ediamond_data):
    train, test = ediamond_data
    scores = {}
    for lm in ("uniform", "geometric", "confusion"):
        m = build_discrete_kertbn(ediamond_env.workflow, train, n_bins=4, leak_model=lm)
        scores[lm] = m.log10_likelihood(test)
    # Calibration can only help (on in-distribution test data).
    assert scores["confusion"] >= scores["uniform"] - 5
    with pytest.raises(LearningError):
        build_discrete_kertbn(ediamond_env.workflow, train, leak_model="bogus")


def test_discrete_missing_column_rejected(ediamond_env, ediamond_data):
    train, _ = ediamond_data
    with pytest.raises(LearningError):
        build_discrete_kertbn(
            ediamond_env.workflow, train, resource_groups={"R_x": ("X1", "X2")}
        )  # no R_x column in data


def test_estimate_leak_and_confusion_consistency(ediamond_env, ediamond_data):
    from repro.bn.discretize import Discretizer
    from repro.workflow.response_time import response_time_function

    train, _ = ediamond_data
    f = response_time_function(ediamond_env.workflow)
    disc = Discretizer(n_bins=4).fit(train)
    leak = estimate_leak(f, disc, train, "D")
    t = calibrate_confusion(f, disc, train, "D", leak, 0.5)
    assert t.shape == (4, 4)
    np.testing.assert_allclose(t.sum(axis=1), 1.0)
    # Diagonal should dominate: f predicts the right bin most of the time.
    assert np.all(np.diag(t) > 1.0 / 4)


def test_kertbn_scores_raw_data_through_discretizer(ediamond_discrete_model, ediamond_data):
    _, test = ediamond_data
    # Raw continuous test data must be accepted directly.
    score = ediamond_discrete_model.log10_likelihood(test)
    assert np.isfinite(score)
