"""Trace → dataset conversion, monitoring agents, management server."""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.exceptions import DataError, SimulationError
from repro.simulator.engine import TransactionRecord
from repro.simulator.monitoring import ManagementServer, MonitoringAgent
from repro.simulator.traces import inject_missing, trace_to_dataset, warmup_filter


def records(n=10):
    out = []
    for i in range(n):
        r = TransactionRecord(request_id=i, arrival=float(i))
        r.completion = i + 2.0
        r.elapsed = {"a": 1.0 + i * 0.1, "b": 0.5}
        r.invocations = {"a": 1, "b": 1}
        out.append(r)
    return out


def test_trace_to_dataset_per_transaction():
    data = trace_to_dataset(records(), ["a", "b"])
    assert data.columns == ("a", "b", "D")
    assert data.n_rows == 10
    np.testing.assert_allclose(data["D"], 2.0)
    np.testing.assert_allclose(data["b"], 0.5)


def test_trace_to_dataset_zero_fills_untouched_services():
    data = trace_to_dataset(records(), ["a", "b", "ghost"])
    np.testing.assert_allclose(data["ghost"], 0.0)


def test_trace_to_dataset_noise_perturbs_services_not_response(rng):
    data = trace_to_dataset(records(), ["a", "b"], measurement_noise=0.1, rng=rng)
    assert not np.allclose(data["b"], 0.5)
    np.testing.assert_allclose(data["D"], 2.0)  # response measured at client
    assert np.all(data["a"] >= 0)


def test_trace_to_dataset_window_aggregation():
    data = trace_to_dataset(
        records(), ["a", "b"], aggregate="window", t_data=5.0
    )
    # completions at 2..11 -> windows [0,5), [5,10), [10,15)
    assert data.n_rows == 3
    np.testing.assert_allclose(data["b"], 0.5)


def test_trace_to_dataset_validation():
    with pytest.raises(DataError):
        trace_to_dataset([], ["a"])
    with pytest.raises(DataError):
        trace_to_dataset(records(), ["a", "D"])
    with pytest.raises(DataError):
        trace_to_dataset(records(), ["a"], aggregate="bogus")
    with pytest.raises(DataError):
        trace_to_dataset(records(), ["a"], aggregate="window")


def test_inject_missing_full_and_partial(rng):
    data = Dataset({"a": np.ones(100), "b": np.ones(100)})
    full = inject_missing(data, ["a"])
    assert np.isnan(full["a"]).all()
    assert not np.isnan(full["b"]).any()
    part = inject_missing(data, ["a"], fraction=0.5, rng=rng)
    frac = np.isnan(part["a"]).mean()
    assert 0.3 < frac < 0.7
    with pytest.raises(DataError):
        inject_missing(data, ["zzz"])
    with pytest.raises(DataError):
        inject_missing(data, ["a"], fraction=0.0)


def test_warmup_filter():
    rs = records()
    assert len(warmup_filter(rs, 3)) == 7
    with pytest.raises(DataError):
        warmup_filter(rs, 10)
    with pytest.raises(DataError):
        warmup_filter(rs, -1)


# --------------------------------------------------------------------- #
# Monitoring agents and the management server
# --------------------------------------------------------------------- #


def test_agent_batches_and_reports(rng):
    agent = MonitoringAgent(host="h", services=("a",), t_data=10.0)
    agent.observe(records(), rng)
    assert agent.pending == 10
    batch = agent.report()
    assert len(batch) == 10
    assert agent.pending == 0
    assert batch[0].service == "a"


def test_agent_reporting_loss(rng):
    agent = MonitoringAgent(
        host="h", services=("a",), reporting_loss=0.5
    )
    agent.observe(records(1000), rng)
    assert 350 < agent.pending < 650


def test_agent_validation():
    with pytest.raises(SimulationError):
        MonitoringAgent(host="h", services=())
    with pytest.raises(SimulationError):
        MonitoringAgent(host="h", services=("a",), t_data=0)
    with pytest.raises(SimulationError):
        MonitoringAgent(host="h", services=("a",), reporting_loss=1.0)
    with pytest.raises(SimulationError):
        MonitoringAgent(host="h", services=("a",), measurement_noise=-0.1)


def test_management_server_assembles_complete_rows(rng):
    rs = records()
    agent_a = MonitoringAgent(host="h1", services=("a",))
    agent_b = MonitoringAgent(host="h2", services=("b",))
    agent_a.observe(rs, rng)
    agent_b.observe(rs, rng)
    server = ManagementServer(services=("a", "b"))
    server.collect(agent_a.report())
    server.collect(agent_b.report())
    server.collect_responses(rs)
    data = server.assemble()
    assert data.n_rows == 10
    assert not np.isnan(data.to_array()).any()


def test_management_server_missing_reports_become_nan(rng):
    rs = records()
    agent_a = MonitoringAgent(host="h1", services=("a",))
    agent_a.observe(rs, rng)
    server = ManagementServer(services=("a", "b"))
    server.collect(agent_a.report())
    server.collect_responses(rs)
    data = server.assemble()
    assert np.isnan(data["b"]).all()
    with pytest.raises(SimulationError):
        server.assemble(require_complete=True)


def test_assemble_require_complete_every_row_partial():
    # Each transaction misses a *different* service, so no row is
    # complete; require_complete must say so, not return zero rows.
    rs = records(4)
    server = ManagementServer(services=("a", "b"))
    from repro.simulator.monitoring import Measurement

    for i, r in enumerate(rs):
        service = "a" if i % 2 == 0 else "b"
        server.collect([Measurement(r.request_id, service, 1.0, r.completion)])
    server.collect_responses(rs)
    with pytest.raises(SimulationError):
        server.assemble(require_complete=True)
    # The permissive path still yields all rows, NaN-filled.
    data = server.assemble()
    assert data.n_rows == 4
    assert np.isnan(data["a"]).sum() == 2
    assert np.isnan(data["b"]).sum() == 2


def test_management_server_validation(rng):
    server = ManagementServer(services=("a",))
    with pytest.raises(SimulationError):
        ManagementServer(services=("a",), response="a")
    with pytest.raises(SimulationError):
        server.assemble()  # nothing collected
    agent = MonitoringAgent(host="h", services=("a",))
    agent.observe(records(), rng)
    bad = agent.report()
    bad[0] = type(bad[0])(0, "zzz", 1.0, 1.0)
    with pytest.raises(SimulationError):
        server.collect(bad)


def test_monitoring_pipeline_feeds_obs_metrics(rng):
    """With obs enabled the agents/server account their traffic: reports,
    measurements, loss drops, and assembled rows all hit the registry."""
    from repro import obs
    from repro.obs import runtime

    was_enabled = runtime.OBS.enabled
    obs.enable()
    obs.reset()
    try:
        agent = MonitoringAgent(
            host="h", services=("a", "b"), reporting_loss=0.5
        )
        recs = records(100)
        agent.observe(recs, rng=rng)
        server = ManagementServer(services=("a", "b"))
        server.collect(agent.report())
        server.collect_responses(recs)
        server.assemble()

        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["monitoring.reports"] == 1
        assert counters["monitoring.measurements"] > 0
        assert counters["monitoring.reporting_losses"] > 0
        # every measurement either reported or dropped, nothing lost
        assert (
            counters["monitoring.measurements"]
            + counters["monitoring.reporting_losses"]
            == 2 * len(recs)
        )
        assert counters["monitoring.assembled_rows"] == len(recs)
        assert counters["monitoring.dropped_rows"] == 0
    finally:
        obs.reset()
        runtime.OBS.enabled = was_enabled
