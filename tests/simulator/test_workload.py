"""Workload generators."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulator.workload import (
    ClosedWorkload,
    FixedIntervalWorkload,
    OpenWorkload,
)


def test_open_workload_rate(rng):
    w = OpenWorkload(rate=2.0)
    t = w.arrival_times(20_000, rng)
    assert np.all(np.diff(t) >= 0)
    gaps = np.diff(t)
    assert gaps.mean() == pytest.approx(0.5, rel=0.05)


def test_open_workload_validation():
    with pytest.raises(SimulationError):
        OpenWorkload(0.0)
    with pytest.raises(SimulationError):
        OpenWorkload(1.0).arrival_times(0)


def test_fixed_interval():
    w = FixedIntervalWorkload(interval=2.0)
    np.testing.assert_allclose(w.arrival_times(3), [2.0, 4.0, 6.0])
    with pytest.raises(SimulationError):
        FixedIntervalWorkload(0.0)
    with pytest.raises(SimulationError):
        FixedIntervalWorkload(1.0, jitter=1.5)


def test_fixed_interval_jitter_sorted(rng):
    w = FixedIntervalWorkload(interval=1.0, jitter=0.5)
    t = w.arrival_times(100, rng)
    assert np.all(np.diff(t) >= 0)


def test_closed_workload_basics(rng):
    w = ClosedWorkload(n_clients=5, think_time=2.0)
    t = w.arrival_times(500, rng)
    assert len(t) == 500
    assert np.all(np.diff(t) >= 0)
    with pytest.raises(SimulationError):
        ClosedWorkload(0, 1.0)
    with pytest.raises(SimulationError):
        ClosedWorkload(2, 0.0)


def test_closed_workload_calibration_slows_arrivals(rng):
    base = ClosedWorkload(n_clients=4, think_time=1.0)
    calibrated = base.calibrate(mean_response_time=3.0)
    assert calibrated.expected_cycle == pytest.approx(4.0)
    t_fast = base.arrival_times(2000, np.random.default_rng(0))
    t_slow = calibrated.arrival_times(2000, np.random.default_rng(0))
    assert t_slow[-1] > t_fast[-1]


def test_calibrate_closed_workload_converges():
    from repro.simulator.scenarios.ediamond import ediamond_scenario
    from repro.simulator.workload import calibrate_closed_workload

    env = ediamond_scenario()
    base = ClosedWorkload(n_clients=3, think_time=5.0)
    calibrated = calibrate_closed_workload(env, base, n_probe=100, rng=9)
    # The cycle now includes a realistic response time (> think time).
    assert calibrated.expected_cycle > base.think_time
    assert calibrated.expected_cycle < base.think_time + 20.0
    # One more round barely moves it (fixed point).
    again = calibrate_closed_workload(env, calibrated, n_probe=100,
                                      iterations=1, rng=10)
    assert abs(again.expected_cycle - calibrated.expected_cycle) < 1.5
    with pytest.raises(SimulationError):
        calibrate_closed_workload(env, base, iterations=0)


def test_bursty_workload_properties(rng):
    from repro.simulator.workload import BurstyWorkload

    w = BurstyWorkload(
        base_rate=0.5, burst_rate=10.0,
        mean_base_duration=50.0, mean_burst_duration=10.0,
    )
    t = w.arrival_times(5000, rng)
    assert len(t) == 5000
    assert np.all(np.diff(t) >= 0)
    # Bursty arrivals are overdispersed: the squared coefficient of
    # variation of inter-arrival gaps clearly exceeds the Poisson 1.0.
    gaps = np.diff(t)
    cv2 = gaps.var() / gaps.mean() ** 2
    assert cv2 > 1.5
    with pytest.raises(SimulationError):
        BurstyWorkload(2.0, 1.0, 1.0, 1.0)
    with pytest.raises(SimulationError):
        BurstyWorkload(1.0, 2.0, 0.0, 1.0)
    with pytest.raises(SimulationError):
        w.arrival_times(0)


def test_diurnal_workload_modulation(rng):
    from repro.simulator.workload import DiurnalWorkload

    w = DiurnalWorkload(base_rate=2.0, amplitude=0.8, period=100.0)
    t = w.arrival_times(20_000, rng)
    assert len(t) == 20_000
    assert np.all(np.diff(t) >= 0)
    # The sinusoid must show: arrivals near the peak phase clearly
    # outnumber arrivals near the trough phase.
    phase = np.mod(t, 100.0) / 100.0
    near_peak = np.sum(np.abs(phase - 0.25) < 0.1)
    near_trough = np.sum(np.abs(phase - 0.75) < 0.1)
    assert near_peak > 2 * near_trough
    # rate_at honours base_rate·(1 + A·sin(...)).
    assert w.rate_at(25.0) == pytest.approx(2.0 * 1.8)
    assert w.rate_at(75.0) == pytest.approx(2.0 * 0.2)
    with pytest.raises(SimulationError):
        DiurnalWorkload(0.0)
    with pytest.raises(SimulationError):
        DiurnalWorkload(1.0, amplitude=1.0)
    with pytest.raises(SimulationError):
        DiurnalWorkload(1.0, period=0.0)
    with pytest.raises(SimulationError):
        w.arrival_times(0)


def test_bursty_workload_drives_engine_bursts(rng):
    """Bursts must show up as queueing spikes downstream — the
    bottleneck-shift signal the KERT-BN edges model."""
    from repro.simulator.delays import Deterministic
    from repro.simulator.engine import Engine
    from repro.simulator.service import ServiceSpec
    from repro.simulator.workload import BurstyWorkload, OpenWorkload
    from repro.workflow.constructs import Activity

    wf = Activity("a")
    spec = [ServiceSpec("a", Deterministic(0.5))]

    bursty = BurstyWorkload(0.3, 6.0, 60.0, 15.0)
    calm = OpenWorkload(rate=1.0)
    r_bursty = Engine(wf, spec, rng=1).run(bursty.arrival_times(800, rng))
    r_calm = Engine(wf, spec, rng=2).run(
        calm.arrival_times(800, np.random.default_rng(3))
    )
    p95_bursty = np.percentile([r.response_time for r in r_bursty], 95)
    p95_calm = np.percentile([r.response_time for r in r_calm], 95)
    assert p95_bursty > 1.5 * p95_calm
