"""Trace analysis report."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.simulator.report import analyze_trace, format_report


@pytest.fixture(scope="module")
def trace(ediamond_env):
    return ediamond_env.run_transactions(300, rng=91)


def test_report_shapes(trace, ediamond_env):
    report = analyze_trace(trace, ediamond_env.service_names)
    assert report.n_transactions == 300
    assert len(report.services) == 6
    assert report.mean_response > 0
    assert report.p95_response >= report.mean_response


def test_shares_are_sane(trace, ediamond_env):
    report = analyze_trace(trace)
    shares = {s.service: s.share_of_response for s in report.services}
    # Every observed service contributes something...
    assert all(v > 0 for v in shares.values())
    # ...and the DB services (X5/X6) dominate this workload.
    top = report.sorted_by_share()[0].service
    assert top in ("X5", "X6")
    # Shares exceed 1.0 in total (parallel branches overlap) but not 2x.
    assert 0.9 < sum(shares.values()) < 2.0


def test_stats_match_manual(trace):
    report = analyze_trace(trace, ["X1"])
    s = report.services[0]
    elapsed = np.array([r.elapsed["X1"] for r in trace])
    assert s.mean_elapsed == pytest.approx(float(elapsed.mean()))
    assert s.p95_elapsed == pytest.approx(float(np.percentile(elapsed, 95)))
    assert s.n_invocations == len(trace)


def test_unobserved_service_zero_row(trace):
    report = analyze_trace(trace, ["ghost"])
    s = report.services[0]
    assert s.n_invocations == 0
    assert s.share_of_response == 0.0


def test_empty_trace_rejected():
    with pytest.raises(DataError):
        analyze_trace([])


def test_format_report_renders(trace):
    text = format_report(analyze_trace(trace))
    assert "transactions: 300" in text
    assert "X5" in text and "share" in text
    assert len(text.splitlines()) == 2 + 6
