"""Delay distributions: positivity, means, validation, queueing theory."""

import math

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulator.delays import (
    GG1,
    Deterministic,
    Exponential,
    Gamma,
    LogNormal,
    MMk,
    Shifted,
    Uniform,
    erlang_c,
    kingman_waiting_time,
)

ALL = [
    Exponential(0.5),
    LogNormal(0.2, 0.4),
    Gamma(2.0, 0.1),
    Uniform(0.1, 0.3),
    Deterministic(0.25),
    Shifted(Exponential(0.1), 0.2),
    MMk(0.2, 0.6, servers=2),
    GG1(0.2, 0.6, scv_arrival=1.5, scv_service=0.8),
]


@pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
def test_samples_nonnegative_and_mean_close(dist, rng):
    samples = dist.sample(rng, size=50_000)
    assert np.all(samples >= 0)
    assert np.mean(samples) == pytest.approx(dist.mean, rel=0.05)


@pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
def test_scalar_sample(dist, rng):
    v = dist.sample(rng)
    assert float(v) >= 0


def test_validation():
    with pytest.raises(SimulationError):
        Exponential(0.0)
    with pytest.raises(SimulationError):
        LogNormal(-1.0)
    with pytest.raises(SimulationError):
        LogNormal(1.0, -0.1)
    with pytest.raises(SimulationError):
        Gamma(0, 1)
    with pytest.raises(SimulationError):
        Uniform(0.5, 0.2)
    with pytest.raises(SimulationError):
        Deterministic(-1)
    with pytest.raises(SimulationError):
        Shifted(Exponential(1.0), -0.5)


def test_lognormal_mean_formula():
    d = LogNormal(1.0, 0.5)
    assert d.mean == pytest.approx(np.exp(0.125))


def test_shifted_floor():
    d = Shifted(Exponential(0.1), 0.5)
    samples = d.sample(np.random.default_rng(0), size=1000)
    assert samples.min() >= 0.5


# --------------------------------------------------------------------- #
# Queueing-theoretic distributions vs textbook closed forms
# --------------------------------------------------------------------- #

UTILIZATIONS = (0.3, 0.6, 0.9)


def _erlang_c_direct(k: int, rho: float) -> float:
    """Erlang C via the factorial sum — independent of the Erlang-B
    recursion the implementation uses."""
    a = k * rho
    top = a**k / math.factorial(k) / (1.0 - rho)
    bottom = sum(a**i / math.factorial(i) for i in range(k)) + top
    return top / bottom


@pytest.mark.parametrize("rho", UTILIZATIONS)
@pytest.mark.parametrize("k", (1, 2, 4))
def test_erlang_c_matches_direct_sum(k, rho):
    assert erlang_c(k, rho) == pytest.approx(_erlang_c_direct(k, rho), rel=1e-12)


@pytest.mark.parametrize("rho", UTILIZATIONS)
@pytest.mark.parametrize("k", (1, 2, 4))
def test_mmk_sampled_mean_matches_erlang_c(k, rho):
    """Sampled M/M/k response means must land on the closed form
    ``1/μ + C(k,ρ)/(kμ(1-ρ))`` within 5% at every utilization."""
    s = 0.2
    d = MMk(s, rho, servers=k)
    mu = 1.0 / s
    closed = s + _erlang_c_direct(k, rho) / (k * mu * (1.0 - rho))
    assert d.mean == pytest.approx(closed, rel=1e-12)
    samples = d.sample(np.random.default_rng(1234 + k), size=200_000)
    assert np.all(samples > 0)
    assert samples.mean() == pytest.approx(closed, rel=0.05)


def test_mmk_hockey_stick():
    """Response time must explode as ρ → 1 (textbook hockey stick)."""
    means = [MMk(0.2, rho, servers=2).mean for rho in (0.3, 0.6, 0.9, 0.98)]
    assert means == sorted(means)
    assert means[-1] > 5 * means[0]


@pytest.mark.parametrize("rho", UTILIZATIONS)
def test_gg1_sampled_mean_matches_kingman(rho):
    """Sampled G/G/1 response means must match ``E[S] + W_q`` with
    Kingman's ``W_q = ρ/(1-ρ)·(c_a²+c_s²)/2·E[S]`` within 5%."""
    s, ca2, cs2 = 0.2, 1.5, 0.8
    d = GG1(s, rho, scv_arrival=ca2, scv_service=cs2)
    closed = s + rho / (1.0 - rho) * (ca2 + cs2) / 2.0 * s
    assert d.mean == pytest.approx(closed, rel=1e-12)
    samples = d.sample(np.random.default_rng(42), size=200_000)
    assert np.all(samples > 0)
    assert samples.mean() == pytest.approx(closed, rel=0.05)


def test_gg1_mm1_special_case():
    """With c_a² = c_s² = 1 Kingman is exact: W_q = ρ/(1-ρ)·E[S]."""
    d = GG1(0.1, 0.5)
    mm1_response = 0.1 / (1.0 - 0.5)
    assert d.mean == pytest.approx(mm1_response)


def test_gg1_deterministic_service():
    d = GG1(0.2, 0.6, scv_service=0.0)
    samples = d.sample(np.random.default_rng(7), size=50_000)
    # Service contributes no variance; minimum is the bare service time.
    assert samples.min() == pytest.approx(0.2, rel=1e-6)


def test_queueing_scalar_samples():
    rng = np.random.default_rng(3)
    assert isinstance(MMk(0.2, 0.6, servers=2).sample(rng), float)
    assert isinstance(GG1(0.2, 0.6).sample(rng), float)


def test_queueing_validation():
    with pytest.raises(SimulationError):
        erlang_c(0, 0.5)
    with pytest.raises(SimulationError):
        erlang_c(2, 1.0)
    with pytest.raises(SimulationError):
        kingman_waiting_time(0.0, 0.5)
    with pytest.raises(SimulationError):
        kingman_waiting_time(1.0, 0.5, scv_arrival=-0.1)
    with pytest.raises(SimulationError):
        MMk(0.2, 0.0)
    with pytest.raises(SimulationError):
        MMk(0.2, 0.6, servers=0)
    with pytest.raises(SimulationError):
        MMk(-0.1, 0.6)
    with pytest.raises(SimulationError):
        GG1(0.2, 1.2)
    with pytest.raises(SimulationError):
        GG1(0.2, 0.6, scv_service=-1.0)
