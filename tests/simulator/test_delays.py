"""Delay distributions: positivity, means, validation."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulator.delays import (
    Deterministic,
    Exponential,
    Gamma,
    LogNormal,
    Shifted,
    Uniform,
)

ALL = [
    Exponential(0.5),
    LogNormal(0.2, 0.4),
    Gamma(2.0, 0.1),
    Uniform(0.1, 0.3),
    Deterministic(0.25),
    Shifted(Exponential(0.1), 0.2),
]


@pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
def test_samples_nonnegative_and_mean_close(dist, rng):
    samples = dist.sample(rng, size=50_000)
    assert np.all(samples >= 0)
    assert np.mean(samples) == pytest.approx(dist.mean, rel=0.05)


@pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
def test_scalar_sample(dist, rng):
    v = dist.sample(rng)
    assert float(v) >= 0


def test_validation():
    with pytest.raises(SimulationError):
        Exponential(0.0)
    with pytest.raises(SimulationError):
        LogNormal(-1.0)
    with pytest.raises(SimulationError):
        LogNormal(1.0, -0.1)
    with pytest.raises(SimulationError):
        Gamma(0, 1)
    with pytest.raises(SimulationError):
        Uniform(0.5, 0.2)
    with pytest.raises(SimulationError):
        Deterministic(-1)
    with pytest.raises(SimulationError):
        Shifted(Exponential(1.0), -0.5)


def test_lognormal_mean_formula():
    d = LogNormal(1.0, 0.5)
    assert d.mean == pytest.approx(np.exp(0.125))


def test_shifted_floor():
    d = Shifted(Exponential(0.1), 0.5)
    samples = d.sample(np.random.default_rng(0), size=1000)
    assert samples.min() >= 0.5
