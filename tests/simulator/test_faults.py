"""Fault injection: schedules and their effect on the engine."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulator.delays import Deterministic
from repro.simulator.engine import Engine
from repro.simulator.faults import (
    Degradation,
    FaultSchedule,
    degradation_windows,
)
from repro.simulator.service import ServiceSpec
from repro.workflow.constructs import Activity


def test_degradation_validation():
    with pytest.raises(SimulationError):
        Degradation("a", 5.0, 5.0, 2.0)
    with pytest.raises(SimulationError):
        Degradation("a", 0.0, 1.0, 0.0)
    with pytest.raises(SimulationError):
        FaultSchedule(("not-a-degradation",))


def test_factor_at_windows():
    sched = FaultSchedule(
        (
            Degradation("a", 10.0, 20.0, 3.0),
            Degradation("a", 15.0, 25.0, 2.0),
            Degradation("b", 0.0, 5.0, 10.0),
        )
    )
    assert sched.factor_at("a", 5.0) == 1.0
    assert sched.factor_at("a", 12.0) == 3.0
    assert sched.factor_at("a", 17.0) == 6.0  # overlapping faults compound
    assert sched.factor_at("a", 24.0) == 2.0
    assert sched.factor_at("a", 25.0) == 1.0  # end exclusive
    assert sched.factor_at("zzz", 12.0) == 1.0
    assert set(sched.services) == {"a", "b"}


def test_window_boundaries_half_open():
    """Windows are [start, end): active at t == start, inactive at t == end,
    so back-to-back windows never double-apply at the seam."""
    sched = FaultSchedule(
        (
            Degradation("a", 10.0, 20.0, 3.0),
            Degradation("a", 20.0, 30.0, 2.0),
        )
    )
    assert sched.factor_at("a", 10.0) == 3.0        # t == start: active
    assert sched.factor_at("a", 20.0) == 2.0        # seam: only the second
    assert sched.factor_at("a", 30.0) == 1.0        # t == end: inactive
    assert sched.active("a", 10.0) == (sched.degradations[0],)
    assert sched.active("a", 20.0) == (sched.degradations[1],)
    assert sched.active("a", 30.0) == ()


def test_overlapping_windows_compound_and_report():
    first = Degradation("a", 0.0, 10.0, 2.0)
    second = Degradation("a", 5.0, 15.0, 3.0)
    sched = FaultSchedule((first, second))
    assert sched.active("a", 7.0) == (first, second)
    assert sched.factor_at("a", 7.0) == 6.0
    assert sched.factor_at("a", 5.0) == 6.0          # second starts: both on
    assert sched.factor_at("a", 10.0) == 3.0         # first ends: one left
    assert sched.active("b", 7.0) == ()


def test_outage_convenience_and_merge():
    s1 = FaultSchedule.outage("a", 10.0, 5.0, factor=4.0)
    s2 = FaultSchedule.outage("b", 0.0, 1.0)
    merged = s1.merged_with(s2)
    assert merged.factor_at("a", 12.0) == 4.0
    assert merged.factor_at("b", 0.5) == 5.0
    windows = degradation_windows(merged, ["a", "b", "c"])
    assert windows["a"] == [(10.0, 15.0)]
    assert windows["c"] == []


def test_engine_applies_fault_windows():
    wf = Activity("a")
    spec = [ServiceSpec("a", Deterministic(1.0), queueing=False)]
    faults = FaultSchedule.outage("a", 100.0, 50.0, factor=3.0)
    eng = Engine(wf, spec, rng=0, faults=faults)
    arrivals = np.array([10.0, 120.0, 200.0])
    records = eng.run(arrivals)
    assert records[0].response_time == pytest.approx(1.0)   # before outage
    assert records[1].response_time == pytest.approx(3.0)   # during
    assert records[2].response_time == pytest.approx(1.0)   # after


def test_fault_visible_in_learned_model():
    """An injected outage must move the monitored data distribution —
    the signal a reconstruction is supposed to pick up."""
    from repro.simulator.scenarios.ediamond import ediamond_scenario
    from repro.simulator.traces import trace_to_dataset

    env = ediamond_scenario()
    faults = FaultSchedule.outage("X5", 0.0, 1e9, factor=4.0)
    eng = Engine(env.workflow, env.services, env.hosts,
                 demand_sigma=env.demand_sigma, rng=1, faults=faults)
    arrivals = np.cumsum(np.random.default_rng(2).exponential(2.5, size=300))
    records = eng.run(arrivals)
    data = trace_to_dataset(records, env.service_names)

    healthy = env.simulate(300, rng=3)
    assert np.mean(data["X5"]) > 2.5 * np.mean(healthy["X5"])
    assert np.mean(data["D"]) > np.mean(healthy["D"])
