"""Discrete-event engine: workflow semantics and queueing invariants."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulator.delays import Deterministic, Exponential
from repro.simulator.engine import Engine
from repro.simulator.service import Host, ServiceSpec
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
)


def specs(*pairs, **kw):
    return [ServiceSpec(name, Deterministic(v), **kw) for name, v in pairs]


def run_one(workflow, services, **kw):
    eng = Engine(workflow, services, rng=kw.pop("rng", 0), **kw)
    return eng.run([0.0])[0]


def test_sequence_sums_delays():
    wf = Sequence([Activity("a"), Activity("b")])
    rec = run_one(wf, specs(("a", 1.0), ("b", 2.0)))
    assert rec.response_time == pytest.approx(3.0)
    assert rec.elapsed["a"] == pytest.approx(1.0)
    assert rec.elapsed["b"] == pytest.approx(2.0)


def test_parallel_takes_max():
    wf = Parallel([Activity("a"), Activity("b")])
    rec = run_one(wf, specs(("a", 1.0), ("b", 5.0)))
    assert rec.response_time == pytest.approx(5.0)


def test_nested_ediamond_shape():
    wf = Sequence(
        [
            Activity("x1"),
            Parallel(
                [
                    Sequence([Activity("a1"), Activity("a2")]),
                    Sequence([Activity("b1"), Activity("b2")]),
                ]
            ),
        ]
    )
    rec = run_one(
        wf, specs(("x1", 1.0), ("a1", 1.0), ("a2", 1.0), ("b1", 3.0), ("b2", 4.0))
    )
    assert rec.response_time == pytest.approx(1.0 + max(2.0, 7.0))


def test_choice_picks_exactly_one_branch():
    wf = Choice([Activity("a"), Activity("b")], [0.5, 0.5])
    eng = Engine(wf, specs(("a", 1.0), ("b", 2.0)), rng=3)
    records = eng.run(np.arange(1, 201, dtype=float) * 100.0)
    for rec in records:
        assert len(rec.invocations) == 1
    taken_a = sum(1 for r in records if "a" in r.invocations)
    assert 60 < taken_a < 140  # roughly balanced


def test_loop_repeats_and_accumulates():
    wf = Loop(Activity("a"), 0.5)
    eng = Engine(wf, specs(("a", 1.0)), rng=5)
    records = eng.run(np.arange(1, 501, dtype=float) * 100.0)
    iters = np.array([r.invocations["a"] for r in records])
    assert iters.min() >= 1
    assert iters.mean() == pytest.approx(2.0, abs=0.25)  # geometric mean 2
    for r in records:
        assert r.elapsed["a"] == pytest.approx(r.invocations["a"] * 1.0)


def test_response_equals_f_of_elapsed():
    """The engine's core contract: D == f(X) exactly (no monitoring noise)."""
    from repro.simulator.scenarios.random_env import random_environment
    from repro.workflow.response_time import response_time_function

    for seed in (0, 1, 2):
        env = random_environment(15, rng=seed, measurement_noise=0.0)
        eng = Engine(env.workflow, env.services, env.hosts,
                     demand_sigma=0.3, rng=seed + 100)
        arrivals = np.cumsum(np.random.default_rng(seed).exponential(2.0, size=50))
        records = eng.run(arrivals)
        f = response_time_function(env.workflow)
        for rec in records:
            x = {s: np.array([rec.elapsed.get(s, 0.0)]) for s in env.service_names}
            assert rec.response_time == pytest.approx(float(f(x)[0]), rel=1e-9)


def test_fifo_queueing_delays_second_request():
    wf = Activity("a")
    eng = Engine(wf, specs(("a", 10.0)), rng=0)
    records = eng.run([0.0, 1.0])
    # Second request waits until the first finishes at t=10.
    assert records[0].response_time == pytest.approx(10.0)
    assert records[1].response_time == pytest.approx(19.0)  # 9 wait + 10 service


def test_no_queueing_infinite_server():
    wf = Activity("a")
    eng = Engine(wf, [ServiceSpec("a", Deterministic(10.0), queueing=False)], rng=0)
    records = eng.run([0.0, 1.0])
    assert records[1].response_time == pytest.approx(10.0)


def test_upstream_coupling_adds_term():
    wf = Sequence([Activity("a"), Activity("b")])
    services = [
        ServiceSpec("a", Deterministic(2.0)),
        ServiceSpec("b", Deterministic(1.0), upstream_coupling=0.5),
    ]
    rec = run_one(wf, services)
    assert rec.elapsed["b"] == pytest.approx(1.0 + 0.5 * 2.0)


def test_host_contention_inflates_parallel_jobs():
    wf = Parallel([Activity("a"), Activity("b")])
    host = Host("shared", contention=1.0)
    services = [
        ServiceSpec("a", Deterministic(4.0), host="shared"),
        ServiceSpec("b", Deterministic(4.0), host="shared"),
    ]
    rec = run_one(wf, services, hosts=[host])
    # One of the two starts while the other runs -> slowed by (1 + 1*1).
    assert rec.response_time == pytest.approx(8.0)


def test_demand_factor_scales_sensitive_services():
    wf = Activity("a")
    services = [ServiceSpec("a", Deterministic(1.0), demand_sensitivity=1.0)]
    eng = Engine(wf, services, demand_sigma=0.5, rng=7)
    records = eng.run(np.arange(1, 2001, dtype=float) * 10.0)
    elapsed = np.array([r.elapsed["a"] for r in records])
    # lognormal demand -> mean exp(sigma^2/2)
    assert elapsed.mean() == pytest.approx(np.exp(0.125), rel=0.05)
    assert elapsed.std() > 0.1


def test_engine_validation():
    wf = Sequence([Activity("a"), Activity("b")])
    with pytest.raises(SimulationError):
        Engine(wf, specs(("a", 1.0)))  # missing spec for b
    with pytest.raises(SimulationError):
        Engine(wf, specs(("a", 1.0), ("a", 1.0), ("b", 1.0)))  # duplicate
    eng = Engine(wf, specs(("a", 1.0), ("b", 1.0)))
    with pytest.raises(SimulationError):
        eng.run([])
    with pytest.raises(SimulationError):
        eng.run([2.0, 1.0])  # unsorted
    with pytest.raises(SimulationError):
        eng.run([-1.0])


def test_run_is_reproducible():
    from repro.simulator.scenarios.random_env import random_environment

    env = random_environment(8, rng=1)
    arrivals = np.arange(1, 51, dtype=float)
    r1 = Engine(env.workflow, env.services, env.hosts, rng=9).run(arrivals)
    r2 = Engine(env.workflow, env.services, env.hosts, rng=9).run(arrivals)
    for a, b in zip(r1, r2):
        assert a.response_time == pytest.approx(b.response_time)
        assert a.elapsed == b.elapsed


def test_utilization_accounting():
    wf = Activity("a")
    eng = Engine(wf, specs(("a", 1.0)), rng=0)
    eng.run(np.arange(0, 100, 10, dtype=float))
    util = eng.utilization(horizon=100.0)
    assert util["a"] == pytest.approx(0.1)
    with pytest.raises(SimulationError):
        eng.utilization(0.0)


def test_three_branch_parallel():
    wf = Parallel([Activity("a"), Activity("b"), Activity("c")])
    rec = run_one(wf, specs(("a", 1.0), ("b", 7.0), ("c", 3.0)))
    assert rec.response_time == pytest.approx(7.0)
    assert len(rec.invocations) == 3


def test_choice_inside_loop_accumulates_mixed_branches():
    wf = Loop(Choice([Activity("a"), Activity("b")], [0.5, 0.5]), 0.5)
    eng = Engine(wf, specs(("a", 1.0), ("b", 2.0)), rng=11)
    records = eng.run(np.arange(1, 401, dtype=float) * 50.0)
    multi = [r for r in records if sum(r.invocations.values()) >= 3]
    assert multi  # geometric loop produces multi-iteration transactions
    for r in records:
        expected = r.invocations.get("a", 0) * 1.0 + r.invocations.get("b", 0) * 2.0
        total = r.elapsed.get("a", 0.0) + r.elapsed.get("b", 0.0)
        assert total == pytest.approx(expected)


def test_host_speed_scales_delay():
    from repro.simulator.service import Host

    wf = Activity("a")
    fast = Engine(
        wf,
        [ServiceSpec("a", Deterministic(4.0), host="h")],
        hosts=[Host("h", speed=2.0)],
        rng=0,
    )
    assert fast.run([0.0])[0].response_time == pytest.approx(2.0)


def test_sequence_of_parallels():
    wf = Sequence(
        [
            Parallel([Activity("a"), Activity("b")]),
            Parallel([Activity("c"), Activity("d")]),
        ]
    )
    rec = run_one(wf, specs(("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 1.0)))
    assert rec.response_time == pytest.approx(2.0 + 3.0)


def test_schedule_into_past_rejected():
    eng = Engine(Activity("a"), specs(("a", 1.0)), rng=0)
    eng.now = 100.0
    with pytest.raises(SimulationError):
        eng._schedule(50.0, lambda: None)
