"""Assembled environments and canned scenarios."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulator.environment import SimulatedEnvironment
from repro.simulator.scenarios.ediamond import (
    EDIAMOND_ALIASES,
    ediamond_scenario,
    ediamond_workflow,
)
from repro.simulator.scenarios.random_env import random_environment
from repro.simulator.service import ServiceSpec
from repro.simulator.delays import Deterministic
from repro.workflow.constructs import Activity, Sequence


def test_environment_spec_mismatch_rejected():
    wf = Sequence([Activity("a"), Activity("b")])
    with pytest.raises(SimulationError):
        SimulatedEnvironment(
            workflow=wf, services=(ServiceSpec("a", Deterministic(1.0)),)
        )


def test_environment_simulate_shapes(ediamond_env):
    data = ediamond_env.simulate(50, rng=0)
    assert data.n_rows == 50
    assert set(data.columns) == {"X1", "X2", "X3", "X4", "X5", "X6", "D"}
    assert np.all(data["D"] > 0)


def test_environment_train_test_disjoint_rows(ediamond_env):
    train, test = ediamond_env.train_test(40, 20, rng=1)
    assert train.n_rows == 40
    assert test.n_rows == 20


def test_environment_window_aggregation(ediamond_env):
    data = ediamond_env.simulate(10, rng=2, aggregate="window", t_data=10.0)
    assert data.n_rows <= 10
    assert data.n_rows >= 1


def test_environment_knowledge_structure(ediamond_env):
    dag = ediamond_env.knowledge_structure()
    assert set(dag.parents("D")) == set(ediamond_env.service_names)
    with_r = ediamond_env.knowledge_structure(include_resources=True)
    assert "R_linux" in with_r.nodes


def test_ediamond_aliases_cover_six_services():
    assert set(EDIAMOND_ALIASES) == set(ediamond_workflow().services())
    assert EDIAMOND_ALIASES["X5"] == "ogsa_dai_local"


def test_ediamond_f_matches_paper(ediamond_env):
    f = ediamond_env.response_time_function()
    assert f.to_string() == "X1 + X2 + max(X3 + X5, X4 + X6)"


def test_ediamond_remote_slower_than_local(ediamond_env):
    data = ediamond_env.simulate(400, rng=3)
    # WAN offset: remote locator/DAI are slower on average.
    assert data["X4"].mean() > data["X3"].mean()
    assert data["X6"].mean() > data["X5"].mean()


def test_ediamond_wan_delay_knob():
    slow = ediamond_scenario(wan_delay=1.0).simulate(300, rng=4)
    fast = ediamond_scenario(wan_delay=0.0).simulate(300, rng=4)
    assert slow["X4"].mean() > fast["X4"].mean() + 0.5


def test_ediamond_d_at_least_max_branch(ediamond_env):
    data = ediamond_env.simulate(200, rng=5)
    lhs = data["X1"] + data["X2"] + np.maximum(
        data["X3"] + data["X5"], data["X4"] + data["X6"]
    )
    # Up to measurement noise on the X's, D tracks f(X).
    rel = np.abs(lhs - data["D"]) / data["D"]
    assert np.median(rel) < 0.05


def test_random_environment_properties():
    env = random_environment(25, rng=6)
    assert len(env.services) == 25
    assert env.workflow.n_services() == 25
    data = env.simulate(30, rng=7)
    assert data.n_rows == 30
    assert np.all(data["D"] > 0)


def test_random_environment_distinct_per_seed():
    e1 = random_environment(10, rng=1)
    e2 = random_environment(10, rng=2)
    assert e1.workflow != e2.workflow


def test_random_environment_validation():
    with pytest.raises(SimulationError):
        random_environment(0)
