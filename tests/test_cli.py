"""CLI toolchain: the full workflow→simulate→build→score→assess loop."""

import json
import os

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    return str(tmp_path)


def run(*argv):
    return main(list(argv))


def test_simulate_and_inspect(workspace, capsys):
    data_path = os.path.join(workspace, "data.csv")
    wf_path = os.path.join(workspace, "wf.json")
    assert run(
        "simulate", "--scenario", "ediamond", "--points", "50",
        "--seed", "3", "--out", data_path, "--workflow-out", wf_path,
    ) == 0
    out = capsys.readouterr().out
    assert "wrote 50 points" in out
    assert os.path.exists(data_path)
    assert run("inspect-workflow", wf_path) == 0
    out = capsys.readouterr().out
    assert "D = X1 + X2 + max(X3 + X5, X4 + X6)" in out
    assert "X2 -> X3" in out


def test_simulate_via_agents_routes_the_monitoring_pipeline(
    workspace, capsys
):
    from repro.bn.csvio import dataset_from_csv

    data_path = os.path.join(workspace, "agents.csv")
    assert run(
        "simulate", "--scenario", "ediamond", "--via-agents",
        "--reporting-loss", "0.4", "--points", "80", "--seed", "3",
        "--out", data_path,
    ) == 0
    assert "wrote 80 points" in capsys.readouterr().out
    data = dataset_from_csv(data_path)
    # reporting loss on the agent path shows up as NaNs in service columns
    services = np.column_stack([data[c] for c in data.columns if c != "D"])
    assert np.isnan(services).any()
    assert not np.isnan(data["D"]).any()  # responses are client-side


def test_full_kert_pipeline(workspace, capsys):
    data_path = os.path.join(workspace, "train.csv")
    test_path = os.path.join(workspace, "test.csv")
    wf_path = os.path.join(workspace, "wf.json")
    model_path = os.path.join(workspace, "model.json")
    run("simulate", "--points", "300", "--seed", "1",
        "--out", data_path, "--workflow-out", wf_path)
    run("simulate", "--points", "100", "--seed", "5", "--out", test_path)
    capsys.readouterr()

    assert run(
        "build", "--family", "kert", "--kind", "continuous",
        "--workflow", wf_path, "--data", data_path, "--out", model_path,
    ) == 0
    out = capsys.readouterr().out
    assert "kert-bn/continuous" in out
    assert "construction_seconds=" in out

    assert run("score", "--model", model_path, "--data", test_path) == 0
    out = capsys.readouterr().out
    assert "log10_likelihood=" in out

    assert run(
        "assess", "--model", model_path, "--threshold", "2.0",
        "--set", "X4=0.35",
    ) == 0
    out = capsys.readouterr().out
    assert "E[D]=" in out and "P(D>2)=" in out

    assert run(
        "dcomp", "--model", model_path, "--target", "X4",
        "--observe", "X1=0.2", "--observe", "X2=0.15",
    ) == 0
    out = capsys.readouterr().out
    assert "posterior: mean=" in out


def test_discrete_nrt_pipeline(workspace, capsys):
    data_path = os.path.join(workspace, "train.csv")
    model_path = os.path.join(workspace, "nrt.json")
    run("simulate", "--points", "300", "--seed", "2", "--out", data_path)
    capsys.readouterr()
    assert run(
        "build", "--family", "nrt", "--kind", "discrete",
        "--data", data_path, "--out", model_path, "--restarts", "2",
        "--bins", "4",
    ) == 0
    out = capsys.readouterr().out
    assert "nrt-bn/discrete" in out
    with open(model_path) as fh:
        bundle = json.load(fh)
    assert bundle["family"] == "nrtbn"
    assert "discretizer" in bundle


def test_build_kert_without_workflow_fails(workspace):
    with pytest.raises(SystemExit):
        run("build", "--family", "kert", "--data", "x.csv", "--out", "m.json")


def test_missing_file_is_reported(workspace, capsys):
    assert run("score", "--model", "/nonexistent.json", "--data", "/nope.csv") == 1
    assert "error:" in capsys.readouterr().err


def test_bad_assignment_rejected(workspace):
    with pytest.raises(SystemExit):
        run("assess", "--model", "m.json", "--set", "X4~0.3")


def test_random_scenario(workspace, capsys):
    data_path = os.path.join(workspace, "r.csv")
    assert run(
        "simulate", "--scenario", "random", "--n-services", "8",
        "--points", "40", "--seed", "4", "--out", data_path,
    ) == 0
    from repro.bn.csvio import dataset_from_csv

    data = dataset_from_csv(data_path)
    assert data.n_rows == 40
    assert len(data.columns) == 9


def test_localize_subcommand(workspace, capsys):
    data_path = os.path.join(workspace, "train.csv")
    wf_path = os.path.join(workspace, "wf.json")
    model_path = os.path.join(workspace, "model.json")
    run("simulate", "--points", "300", "--seed", "9",
        "--out", data_path, "--workflow-out", wf_path)
    run("build", "--family", "kert", "--kind", "continuous",
        "--workflow", wf_path, "--data", data_path, "--out", model_path)
    capsys.readouterr()

    assert run(
        "localize", "--model", model_path, "--top", "2",
        "--observe", "X4=2.5", "--observe", "X1=0.17",
    ) == 0
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert len(lines) == 3  # header + top-2
    assert "X4" in lines[1]  # the anomalous service ranks first

    with pytest.raises(SystemExit):
        run("localize", "--model", model_path)


def test_serve_fabric_subcommand(workspace, capsys):
    data_path = os.path.join(workspace, "train.csv")
    wf_path = os.path.join(workspace, "wf.json")
    model_path = os.path.join(workspace, "model.json")
    run("simulate", "--points", "200", "--seed", "2",
        "--out", data_path, "--workflow-out", wf_path)
    run("build", "--family", "kert", "--kind", "discrete", "--bins", "4",
        "--workflow", wf_path, "--data", data_path, "--out", model_path)
    capsys.readouterr()

    assert run(
        "serve-fabric", "--model", model_path, "--shards", "4",
        "--tenants", "6", "--queries", "200", "--threads", "4",
        "--burst", "8", "--observe", "X1=0.2",
    ) == 0
    out = capsys.readouterr().out
    assert "shards=4 replicas=1 tenants=6 queries=200" in out
    assert "sustained:" in out and "p99=" in out
    assert "coalesce:" in out
    # Per-tenant table: every tenant served and stayed healthy.
    for i in range(6):
        assert f"tenant-{i}" in out
    assert "UNHEALTHY" not in out

    with pytest.raises(SystemExit):
        run("serve-fabric")  # needs a source


def test_corpus_subcommand(workspace, capsys):
    # list: every default cell, one line each.
    assert run("corpus", "list", "--sizes", "10") == 0
    out = capsys.readouterr().out
    assert out.count("\n") == 9
    assert "mixed_n10_mmk" in out

    # generate: workflow + data + manifest per requested cell.
    out_dir = os.path.join(workspace, "cells")
    assert run(
        "corpus", "generate", "--cell", "mixed_n10_gg1",
        "--points", "30", "--seed", "4", "--out-dir", out_dir,
    ) == 0
    cell_dir = os.path.join(out_dir, "mixed_n10_gg1")
    assert os.path.exists(os.path.join(cell_dir, "workflow.json"))
    assert os.path.exists(os.path.join(cell_dir, "data.csv"))
    with open(os.path.join(cell_dir, "scenario.json")) as fh:
        manifest = json.load(fh)
    assert manifest["cell"] == "mixed_n10_gg1"
    assert manifest["failure_storm"] is True
    assert manifest["n_points"] == 30
    capsys.readouterr()

    # run: per-cell report plus the aggregate summary, JSON out.
    results_path = os.path.join(workspace, "corpus.json")
    assert run(
        "corpus", "run", "--cell", "sequence_n10_lognormal",
        "--train", "30", "--test", "40", "--json", results_path,
    ) == 0
    out = capsys.readouterr().out
    assert "== corpus cell sequence_n10_lognormal ==" in out
    assert "summary: 1 cells" in out
    with open(results_path) as fh:
        payload = json.load(fh)
    assert "sequence_n10_lognormal" in payload["cells"]
    assert payload["summary"]["n_cells"] == 1

    # unknown cells are a clean error, not a traceback.
    assert run("corpus", "run", "--cell", "no_such_cell") == 1


def test_corpus_generate_requires_out_dir():
    with pytest.raises(SystemExit, match="out-dir"):
        run("corpus", "generate", "--cell", "mixed_n10_gg1")
