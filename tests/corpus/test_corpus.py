"""Scenario corpus: spec validation, determinism, derived knowledge."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import (
    ARRIVAL_REGIMES,
    DELAY_REGIMES,
    FAMILY_KNOBS,
    ScenarioSpec,
    build_scenario,
    default_corpus,
    failure_storm,
    run_cell,
    scenario_rng,
    spec_by_name,
    summarize,
)
from repro.exceptions import SimulationError
from repro.simulator.delays import GG1, LogNormal, MMk
from repro.simulator.workload import (
    BurstyWorkload,
    DiurnalWorkload,
    OpenWorkload,
)


# --------------------------------------------------------------------- #
# ScenarioSpec and the default corpus
# --------------------------------------------------------------------- #


def test_spec_validation():
    with pytest.raises(SimulationError):
        ScenarioSpec("nope", 10, "lognormal")
    with pytest.raises(SimulationError):
        ScenarioSpec("mixed", 0, "lognormal")
    with pytest.raises(SimulationError):
        ScenarioSpec("mixed", 501, "lognormal")
    with pytest.raises(SimulationError):
        ScenarioSpec("mixed", 10, "pareto")
    with pytest.raises(SimulationError):
        ScenarioSpec("mixed", 10, "mmk", arrivals="weekly")
    with pytest.raises(SimulationError):
        ScenarioSpec("mixed", 10, "mmk", utilization=1.0)


def test_spec_name_and_describe():
    spec = ScenarioSpec("mixed", 10, "mmk", arrivals="bursty",
                        failure_storm=True)
    assert spec.name == "mixed_n10_mmk"
    assert "failure-storm" in spec.describe()


def test_default_corpus_shape():
    corpus = default_corpus()
    # 3 families x 2 sizes x 3 delay regimes, all names unique.
    assert len(corpus) == 18
    assert len({s.name for s in corpus}) == 18
    assert {s.family for s in corpus} == {"sequence", "parallel", "mixed"}
    assert {s.delay for s in corpus} == set(DELAY_REGIMES)
    assert {s.arrivals for s in corpus} <= set(ARRIVAL_REGIMES)
    # Only the mixed family runs under failure storms.
    assert all(s.failure_storm == (s.family == "mixed") for s in corpus)


def test_spec_by_name():
    spec = spec_by_name("parallel_n40_gg1")
    assert spec.family == "parallel"
    assert spec.n_services == 40
    with pytest.raises(SimulationError):
        spec_by_name("no_such_cell")


# --------------------------------------------------------------------- #
# Determinism: same (spec, seed) regenerates bit-identical scenarios
# --------------------------------------------------------------------- #


@given(
    family=st.sampled_from(sorted(FAMILY_KNOBS)),
    delay=st.sampled_from(DELAY_REGIMES),
    n=st.integers(min_value=1, max_value=15),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=20, deadline=None)
def test_property_corpus_generation_deterministic(family, delay, n, seed):
    spec = ScenarioSpec(family, n, delay, failure_storm=True)
    a = build_scenario(spec, seed)
    b = build_scenario(spec, seed)
    assert a.env.workflow == b.env.workflow
    assert a.f.to_string() == b.f.to_string()
    assert sorted(a.structure.edges) == sorted(b.structure.edges)
    da = a.env.simulate(25, rng=seed + 1)
    db = b.env.simulate(25, rng=seed + 1)
    assert da.columns == db.columns
    np.testing.assert_array_equal(da.to_array(), db.to_array())


def test_different_seeds_differ():
    spec = ScenarioSpec("mixed", 12, "lognormal")
    a = build_scenario(spec, 0)
    b = build_scenario(spec, 1)
    da = a.env.simulate(25, rng=5)
    db = b.env.simulate(25, rng=5)
    assert not np.array_equal(da.to_array(), db.to_array())


def test_scenario_rng_keyed_by_spec_and_seed():
    s1 = ScenarioSpec("mixed", 10, "mmk", arrivals="bursty")
    s2 = ScenarioSpec("mixed", 10, "gg1", arrivals="diurnal")
    r11 = scenario_rng(s1, 0).random(4)
    r11b = scenario_rng(s1, 0).random(4)
    np.testing.assert_array_equal(r11, r11b)
    assert not np.array_equal(r11, scenario_rng(s2, 0).random(4))
    assert not np.array_equal(r11, scenario_rng(s1, 1).random(4))


# --------------------------------------------------------------------- #
# Generated scenarios: delays, workloads, storms, derived knowledge
# --------------------------------------------------------------------- #


def test_delay_regimes_map_to_distributions():
    expected = {"lognormal": LogNormal, "mmk": MMk, "gg1": GG1}
    for regime, cls in expected.items():
        spec = ScenarioSpec("sequence", 6, regime)
        scen = build_scenario(spec, 3)
        kinds = {type(s.delay) for s in scen.env.services}
        assert kinds == {cls}
        # Queueing-theoretic delays model their own waiting time, so
        # the engine's FIFO queue must be off for them.
        queueing = {s.queueing for s in scen.env.services}
        assert queueing == {regime == "lognormal"}


def test_arrival_regimes_map_to_workloads():
    cases = {
        "steady": OpenWorkload,
        "bursty": BurstyWorkload,
        "diurnal": DiurnalWorkload,
    }
    for arrivals, cls in cases.items():
        spec = ScenarioSpec("sequence", 4, "lognormal", arrivals=arrivals)
        assert isinstance(build_scenario(spec, 0).env.workload, cls)


def test_failure_storm_windows():
    rng = np.random.default_rng(0)
    schedule = failure_storm(("X1", "X2", "X3"), rng, n_windows=5,
                             horizon=600.0)
    assert len(schedule.degradations) == 5
    for d in schedule.degradations:
        assert d.service in ("X1", "X2", "X3")
        assert 0.0 <= d.start < d.end <= 600.0
        assert 2.0 <= d.factor <= 6.0


def test_storm_rider_attached_only_when_requested():
    calm = build_scenario(ScenarioSpec("sequence", 5, "lognormal"), 0)
    stormy = build_scenario(
        ScenarioSpec("sequence", 5, "lognormal", failure_storm=True), 0
    )
    assert calm.env.faults is None
    assert stormy.env.faults is not None


@pytest.mark.parametrize("family", ("choice", "loop", "mixed"))
def test_derived_knowledge_for_choice_loop_families(family):
    """f(X) and the KERT-BN structure are derived automatically even for
    the constructs the original generator never exercised."""
    spec = ScenarioSpec(family, 12, "lognormal")
    scen = build_scenario(spec, 7)
    assert scen.env.workflow.n_services() == 12
    f_text = scen.f.to_string()
    for name in scen.env.workflow.services():
        assert name in f_text or family in ("choice", "mixed")
    nodes = set(scen.structure.nodes)
    assert set(scen.env.workflow.services()) <= nodes
    assert scen.env.response in nodes


def test_generated_scenario_describe():
    scen = build_scenario(ScenarioSpec("mixed", 8, "mmk",
                                       arrivals="bursty"), 0)
    text = scen.describe()
    assert "mixed_n8_mmk" in text
    assert "derived, not learned" in text


# --------------------------------------------------------------------- #
# run_cell / summarize plumbing
# --------------------------------------------------------------------- #


def test_run_cell_smoke():
    spec = ScenarioSpec("sequence", 5, "lognormal")
    cell = run_cell(spec, seed=11, n_train=30, n_test=40)
    for model in ("kert", "nrt"):
        assert cell[model]["build_s"] > 0.0
        assert cell[model]["score_rows_per_s"] > 0.0
        assert np.isfinite(cell[model]["log10_per_row"])
    assert cell["n_train"] == 30 and cell["n_test"] == 40
    assert cell["kert_win"] == (
        cell["kert"]["log10_per_row"] >= cell["nrt"]["log10_per_row"] - 1e-9
    )
    with pytest.raises(SimulationError):
        run_cell(spec, n_train=1)


def test_summarize():
    cells = {
        "a": {"log10_gap_per_row": 1.0, "nrt_over_kert_build": 10.0,
              "kert_win": True},
        "b": {"log10_gap_per_row": -0.5, "nrt_over_kert_build": 4.0,
              "kert_win": False},
    }
    s = summarize(cells)
    assert s["n_cells"] == 2
    assert s["kert_win_fraction"] == pytest.approx(0.5)
    assert s["median_log10_gap_per_row"] == pytest.approx(0.25)
    assert s["nrt_over_kert_build_median"] == pytest.approx(7.0)
    with pytest.raises(SimulationError):
        summarize({})
