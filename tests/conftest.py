"""Shared fixtures.

Expensive artifacts (simulated datasets, built models) are session-scoped
so the suite stays fast on a single core; tests must not mutate them.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bn.cpd import LinearGaussianCPD
from repro.bn.dag import DAG
from repro.bn.network import GaussianBayesianNetwork
from repro.simulator.scenarios.ediamond import ediamond_scenario


@pytest.fixture(scope="session", autouse=True)
def _obs_snapshot_artifact():
    """When ``REPRO_OBS_SNAPSHOT_OUT`` names a path, enable observability
    for the whole run and dump the final metrics + trace snapshot there at
    teardown — CI sets this on the chaos suites and uploads the JSON as a
    build artifact."""
    out = os.environ.get("REPRO_OBS_SNAPSHOT_OUT")
    if not out:
        yield
        return
    from repro import obs

    obs.enable()
    obs.reset()
    yield
    with open(out, "w") as fh:
        json.dump(obs.snapshot(), fh, indent=2, default=str)
    obs.disable()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def chain_gaussian_net():
    """a -> b -> c with known parameters (hand-checkable joint)."""
    dag = DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])
    return GaussianBayesianNetwork(
        dag,
        [
            LinearGaussianCPD("a", 1.0, (), 0.5),
            LinearGaussianCPD("b", 0.5, [2.0], 0.3, ("a",)),
            LinearGaussianCPD("c", -1.0, [1.5], 0.2, ("b",)),
        ],
    )


@pytest.fixture(scope="session")
def ediamond_env():
    return ediamond_scenario()


@pytest.fixture(scope="session")
def ediamond_data(ediamond_env):
    """(train, test) for the eDiaMoND scenario — do not mutate."""
    return ediamond_env.train_test(600, 300, rng=123)


@pytest.fixture(scope="session")
def ediamond_discrete_model(ediamond_env, ediamond_data):
    from repro.core.kertbn import build_discrete_kertbn

    train, _ = ediamond_data
    return build_discrete_kertbn(ediamond_env.workflow, train, n_bins=4)


@pytest.fixture(scope="session")
def ediamond_continuous_model(ediamond_env, ediamond_data):
    from repro.core.kertbn import build_continuous_kertbn

    train, _ = ediamond_data
    return build_continuous_kertbn(ediamond_env.workflow, train)
