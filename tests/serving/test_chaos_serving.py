"""End-to-end serving chaos: the PR's acceptance scenario.

One seeded run drives well-formed and malformed traffic through a
registry-backed :class:`ModelServer` while the engine and the sweep
backend fail in bursts.  The resilience contract under test:

- zero uncaught exceptions across the whole run;
- every well-formed query is *answered*, with the fallback tier that
  produced the answer recorded;
- malformed rows are rejected individually, each with reasons;
- the compiled tier's circuit breaker trips within its threshold;
- a poisoned monitoring window is quarantined by the quality gate;
- publishing a regressed model trips the accuracy tripwire, the
  registry auto-rolls back, and the server follows via ``refresh()``.

Everything is seeded (CHAOS_SEED) so failures replay exactly.
"""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.serving.breaker import OPEN
from repro.serving.fallback import (
    CHAIN,
    TIER_COMPILED,
    TIER_PRIOR,
    TIER_SAMPLING,
    TIER_SWEEP,
)
from repro.serving.quality import AccuracyTripwire, DataQualityGate
from repro.serving.registry import ModelRegistry
from repro.serving.server import ModelServer

CHAOS_SEED = 42
N_QUERIES = 520


def _build(env, data, n_bins=4):
    from repro.core.kertbn import build_discrete_kertbn

    return build_discrete_kertbn(env.workflow, data, n_bins=n_bins)


def test_chaos_serving_end_to_end(tmp_path, ediamond_env, ediamond_data):
    train, test = ediamond_data
    rng = np.random.default_rng(CHAOS_SEED)

    model = _build(ediamond_env, train)
    registry = ModelRegistry(str(tmp_path / "reg"), keep=4)
    registry.publish(model)
    server = ModelServer(
        registry,
        rng=np.random.default_rng(CHAOS_SEED),
        n_fallback_samples=300,
        breaker_threshold=3,
        breaker_cooldown=8,
    )
    response = server.model.response
    services = [n for n in server.model.network.nodes if n != response]

    # ---------------- fault injection (seeded, burst-shaped) ---------- #
    engine = server.chain.engine
    phase = {"engine_down": False, "sweep_down": False}

    def hook(kind, *args):
        if phase["engine_down"]:
            raise RuntimeError("chaos: engine fault")

    real_sweep = engine.query_via_sweep

    def flaky_sweep(variables, evidence):
        if phase["sweep_down"]:
            raise RuntimeError("chaos: sweep fault")
        return real_sweep(variables, evidence)

    engine.failure_hook = hook
    engine.query_via_sweep = flaky_sweep

    # ---------------- mixed traffic ----------------------------------- #
    tiers_seen = set()
    n_well_formed = n_answered = n_malformed = n_rejected = 0
    for i in range(N_QUERIES):
        # Bursts: engine down 30% of the time, sweep also down inside a
        # slice of those bursts (forcing the sampling tier).
        phase["engine_down"] = (i % 50) >= 35
        phase["sweep_down"] = (i % 50) >= 45
        svc = services[int(rng.integers(len(services)))]
        mean = float(rng.uniform(0.5, 1.5)) * float(np.mean(train[svc]))
        kind = i % 6
        if kind == 0:
            result = server.query([response], {svc: mean})
            well_formed = True
        elif kind == 1:
            result = server.query([response], {svc: float("nan")})
            well_formed = False
        elif kind == 2:
            result = server.query([response], {"no-such-service": 1.0})
            well_formed = False
        elif kind == 3:
            result = server.query([response], {svc: 99}, binned=True)
            well_formed = False
        elif kind == 4:
            result = server.violation_prob(
                float(rng.uniform(1.0, 3.0)), {svc: mean}
            )
            well_formed = True
        else:
            batch = server.query_batch(
                [response],
                [{svc: mean}, {svc: float("inf")}, {svc: mean * 1.1}],
            )
            assert [r.status for r in batch] == ["ok", "rejected", "ok"]
            for r in batch:
                if r.ok:
                    tiers_seen.add(r.tier)
            assert batch[1].reasons
            n_well_formed += 2
            n_answered += sum(r.ok for r in batch)
            n_malformed += 1
            n_rejected += 1
            continue
        if well_formed:
            n_well_formed += 1
            # the resilience contract: answered, with provenance
            assert result.status == "ok", (i, result)
            assert result.tier in CHAIN
            tiers_seen.add(result.tier)
            n_answered += 1
            if result.value is not None and np.ndim(result.value) > 0:
                assert float(np.sum(result.value)) == pytest.approx(1.0)
        else:
            n_malformed += 1
            assert result.status == "rejected" and result.reasons
            n_rejected += 1

    # Traffic accounting: nothing silently dropped, nothing crashed.
    assert n_well_formed == n_answered
    assert n_malformed == n_rejected
    assert n_well_formed + n_malformed >= N_QUERIES

    # Degradation was real: every non-terminal tier answered something.
    assert TIER_COMPILED in tiers_seen
    assert TIER_SWEEP in tiers_seen
    assert TIER_SAMPLING in tiers_seen

    # The compiled breaker tripped within threshold during the bursts.
    breaker = server.breakers[TIER_COMPILED]
    assert breaker.n_trips >= 1
    assert server.stats.n_ok == n_answered
    assert server.stats.n_rejected + server.stats.n_rows_rejected >= n_rejected

    # Expired deadlines degrade to the cached prior, still answering.
    slow_server = ModelServer(model, deadline_seconds=1e-9, rng=0)
    r = slow_server.query([response], {services[0]: 1.0})
    assert r.ok and r.tier == TIER_PRIOR and r.deadline_exceeded

    # ---------------- data-quality quarantine ------------------------- #
    gate = DataQualityGate(
        columns=(*services, response), min_rows=10, drift_threshold=6.0
    )
    n = train.n_rows
    third = n // 3
    for k in range(3):
        window = Dataset(
            {c: train[c][k * third:(k + 1) * third] for c in train.columns}
        )
        assert gate.inspect(window).accepted
    poisoned = Dataset(
        {c: np.asarray(train[c][:third]) * 40.0 for c in train.columns}
    )
    verdict = gate.inspect(poisoned)
    assert not verdict.accepted
    assert any("drift" in r for r in verdict.reasons)
    assert gate.quarantined and gate.quarantined[0][0] == 3

    # ---------------- accuracy tripwire auto-rollback ------------------ #
    engine.failure_hook = None  # publishing path is healthy again
    noise = Dataset(
        {
            c: rng.uniform(0.1, 10.0, size=200)
            for c in (*services, response)
        }
    )
    bad_model = _build(ediamond_env, noise)
    tripwire = AccuracyTripwire(registry, max_regression=0.5)
    outcome = tripwire.publish_checked(bad_model, test)
    assert outcome.rolled_back
    assert registry.active_version == 1
    assert not registry.info(outcome.version).healthy
    # the server follows the rollback and keeps answering
    assert server.refresh() == 1
    final = server.query([response], {services[0]: float(np.mean(train[services[0]]))})
    assert final.ok


def test_chaos_run_is_deterministic(tmp_path, ediamond_env, ediamond_data):
    """Same seed -> same shed/degrade/trip pattern (replayable chaos)."""
    train, _ = ediamond_data
    model = _build(ediamond_env, train)

    def run(tag):
        reg = ModelRegistry(str(tmp_path / tag), keep=3)
        reg.publish(model)
        srv = ModelServer(
            reg, rng=np.random.default_rng(CHAOS_SEED),
            n_fallback_samples=200, breaker_threshold=2, breaker_cooldown=5,
        )
        phase = {"down": False}

        def hook(kind, *args):
            if phase["down"]:
                raise RuntimeError("chaos")

        srv.chain.engine.failure_hook = hook
        response = srv.model.response
        svc = [n for n in srv.model.network.nodes if n != response][0]
        trace = []
        for i in range(120):
            phase["down"] = (i % 20) >= 14
            r = srv.query([response], {svc: 0.5 + (i % 7) * 0.1})
            trace.append((r.status, r.tier))
        return trace, srv.breakers["compiled-einsum"].n_trips

    t1, trips1 = run("a")
    t2, trips2 = run("b")
    assert t1 == t2
    assert trips1 == trips2 >= 1
