"""The tiered fallback chain: degradation order, provenance, breakers."""

import time

import numpy as np
import pytest

from repro.exceptions import InferenceError
from repro.serving.breaker import CircuitBreaker
from repro.serving.fallback import (
    TIER_COMPILED,
    TIER_PRIOR,
    TIER_SAMPLING,
    TIER_SWEEP,
    FallbackChain,
)


def _boom(*args, **kwargs):
    raise RuntimeError("injected engine fault")


def _evidence(model):
    svc = next(n for n in model.network.nodes if n != model.response)
    return {svc: 1}


def test_healthy_chain_answers_tier_one(fresh_discrete_model):
    model = fresh_discrete_model
    chain = FallbackChain(model.network, rng=0)
    ans = chain.answer([model.response], _evidence(model))
    assert ans.tier == TIER_COMPILED and not ans.degraded
    assert ans.tier_errors == {}
    np.testing.assert_allclose(
        ans.values,
        model.network.compiled().query([model.response], _evidence(model)).values,
    )


def test_engine_fault_degrades_to_sweep(fresh_discrete_model):
    model = fresh_discrete_model
    chain = FallbackChain(model.network, rng=0)
    exact = chain.answer([model.response], _evidence(model)).values
    chain.engine.failure_hook = _boom
    ans = chain.answer([model.response], _evidence(model))
    assert ans.tier == TIER_SWEEP and ans.degraded and not ans.approximate
    assert "injected engine fault" in ans.tier_errors[TIER_COMPILED]
    # the sweep is an independent numeric path to the same posterior
    np.testing.assert_allclose(ans.values, exact, atol=1e-10)


def test_sweep_fault_degrades_to_sampling(fresh_discrete_model):
    model = fresh_discrete_model
    chain = FallbackChain(model.network, rng=0, n_samples=4000)
    exact = chain.answer([model.response], _evidence(model)).values
    chain.engine.failure_hook = _boom
    chain.engine.query_via_sweep = _boom
    ans = chain.answer([model.response], _evidence(model))
    assert ans.tier == TIER_SAMPLING and ans.approximate
    assert set(ans.tier_errors) == {TIER_COMPILED, TIER_SWEEP}
    assert ans.values.sum() == pytest.approx(1.0)
    assert np.abs(ans.values - exact).sum() < 0.15  # statistically close


def test_everything_broken_still_answers_with_cached_prior(fresh_discrete_model):
    model = fresh_discrete_model
    chain = FallbackChain(model.network, rng=0)
    prior = model.network.compiled().prior(model.response).values
    chain.engine.failure_hook = _boom
    chain.engine.query_via_sweep = _boom
    chain._sampling_pmf = _boom
    ans = chain.answer([model.response], _evidence(model))
    assert ans.tier == TIER_PRIOR and ans.approximate
    assert set(ans.tier_errors) == {TIER_COMPILED, TIER_SWEEP, TIER_SAMPLING}
    # priors were captured before the faults hit
    np.testing.assert_allclose(ans.values, prior)


def test_expired_deadline_skips_straight_to_prior(fresh_discrete_model):
    model = fresh_discrete_model
    chain = FallbackChain(model.network, rng=0)
    ans = chain.answer(
        [model.response], _evidence(model), deadline=time.monotonic() - 1.0
    )
    assert ans.tier == TIER_PRIOR
    assert all(e == "deadline exceeded" for e in ans.tier_errors.values())


def test_unknown_query_variable_is_a_caller_error(fresh_discrete_model):
    chain = FallbackChain(fresh_discrete_model.network, rng=0)
    with pytest.raises(InferenceError):
        chain.answer(["martian"], {})
    with pytest.raises(InferenceError):
        chain.answer([], {})


def test_breakers_trip_and_skip_the_broken_tier(fresh_discrete_model):
    model = fresh_discrete_model
    breaker = CircuitBreaker(failure_threshold=2, cooldown=100)
    chain = FallbackChain(
        model.network, rng=0, breakers={TIER_COMPILED: breaker}
    )
    chain.engine.failure_hook = _boom
    chain.answer([model.response], _evidence(model))
    chain.answer([model.response], _evidence(model))
    assert breaker.state == "open" and breaker.n_trips == 1
    # while open, tier one is not even attempted
    ans = chain.answer([model.response], _evidence(model))
    assert ans.tier_errors[TIER_COMPILED] == "circuit open"
    assert ans.tier == TIER_SWEEP


def test_joint_prior_is_product_of_marginals(fresh_discrete_model):
    model = fresh_discrete_model
    nodes = [n for n in model.network.nodes if n != model.response][:2]
    chain = FallbackChain(model.network, rng=0)
    joint = chain.prior(nodes)
    assert joint.shape == tuple(
        model.network.cardinalities[n] for n in nodes
    )
    assert joint.sum() == pytest.approx(1.0)


@pytest.mark.slow
def test_sampling_tier_converges_to_exact_posterior(fresh_discrete_model):
    """Heavier statistical check of the likelihood-weighting tier."""
    model = fresh_discrete_model
    chain = FallbackChain(model.network, rng=1, n_samples=40_000)
    evidence = _evidence(model)
    exact = chain.answer([model.response], evidence).values
    approx = chain._sampling_pmf((model.response,), evidence)
    assert np.abs(approx - exact).sum() < 0.05
