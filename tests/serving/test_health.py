"""Replica health scoring, the state machine, and the probe loop."""

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving.health import (
    ACTIVE,
    EJECTED,
    PROBATION,
    HealthPolicy,
    HealthProber,
    QuantileTracker,
    ReplicaHealth,
)
from repro.serving.server import QueryResult, STATUS_FAILED, STATUS_OK


# --------------------------------------------------------------------- #
# QuantileTracker
# --------------------------------------------------------------------- #


def test_quantile_tracker_converges_near_p95():
    qt = QuantileTracker(0.95)
    rng = np.random.default_rng(0)
    for x in rng.random(5000):
        qt.update(x)
    # Streaming SGD estimate: generous band around the true 0.95.
    assert 0.80 < qt.value < 1.10


def test_quantile_tracker_is_scale_free():
    # Millisecond-scale samples track just as well as second-scale.
    qt = QuantileTracker(0.5)
    rng = np.random.default_rng(1)
    for x in rng.random(5000) * 1e-3:
        qt.update(x)
    assert 0.3e-3 < qt.value < 0.7e-3


def test_quantile_tracker_validates():
    with pytest.raises(ServingError):
        QuantileTracker(0.0)
    with pytest.raises(ServingError):
        QuantileTracker(0.5, step=0.0)


# --------------------------------------------------------------------- #
# HealthPolicy
# --------------------------------------------------------------------- #


def test_policy_validation():
    HealthPolicy()  # defaults are self-consistent
    with pytest.raises(ServingError):
        HealthPolicy(alpha=0.0)
    with pytest.raises(ServingError):
        HealthPolicy(eject_below=1.0)
    with pytest.raises(ServingError):
        HealthPolicy(min_samples=0)
    with pytest.raises(ServingError):
        HealthPolicy(readmit_after=0)
    with pytest.raises(ServingError):
        HealthPolicy(latency_ref_s=0.0)
    with pytest.raises(ServingError):
        HealthPolicy(quantile=1.0)
    with pytest.raises(ServingError):
        # Suspect threshold must sit strictly above the eject floor.
        HealthPolicy(eject_below=0.5, suspect_below=0.4)


# --------------------------------------------------------------------- #
# ReplicaHealth state machine
# --------------------------------------------------------------------- #


def test_healthy_replica_scores_near_one():
    h = ReplicaHealth()
    for _ in range(20):
        h.record(ok=True, latency_s=0.001)
    assert h.state == ACTIVE
    assert h.score > 0.95


def test_failures_eject_after_min_samples():
    h = ReplicaHealth(HealthPolicy(min_samples=5))
    ejected_at = None
    for i in range(10):
        if h.record(ok=False, latency_s=0.01):
            ejected_at = i
            break
    assert h.state == EJECTED
    assert ejected_at is not None and ejected_at >= 4  # not before min_samples
    assert h.n_ejections == 1
    # Already-ejected replicas do not re-eject on further failures.
    assert h.record(ok=False) is False
    assert h.n_ejections == 1


def test_slow_but_correct_replica_degrades_via_latency_factor():
    h = ReplicaHealth(HealthPolicy(latency_ref_s=0.01))
    for _ in range(20):
        h.record(ok=True, latency_s=0.1)  # 10x the reference latency
    assert h.error_rate == 0.0
    assert h.score < 0.2  # latency factor alone pulled it down
    assert h.state == EJECTED


def test_deadline_misses_count_against_score():
    h = ReplicaHealth()
    for _ in range(10):
        h.record(ok=True, deadline_miss=True, latency_s=0.001)
    assert h.miss_rate > 0.6
    assert h.score < 0.4


def test_probe_walk_ejected_probation_active():
    policy = HealthPolicy(min_samples=1, readmit_after=2, alpha=1.0)
    h = ReplicaHealth(policy)
    h.record(ok=False)
    assert h.state == EJECTED
    # Clean canary: one step toward readmission.
    assert h.probe_outcome(True) is False
    assert h.state == PROBATION
    # A failed canary resets the streak.
    assert h.probe_outcome(False) is False
    assert h.state == EJECTED
    # Two consecutive clean canaries readmit.
    assert h.probe_outcome(True) is False
    assert h.probe_outcome(True) is True
    assert h.state == ACTIVE
    assert h.n_readmissions == 1
    # Readmission resets the EWMAs: the replica starts clean.
    assert h.error_rate == 0.0 and h.score > 0.99
    # Probing an ACTIVE replica is a no-op.
    assert h.probe_outcome(True) is False


def test_manual_eject():
    h = ReplicaHealth()
    h.eject()
    assert h.state == EJECTED and h.n_ejections == 1
    h.eject()  # idempotent while already ejected
    assert h.n_ejections == 1


def test_snapshot_fields():
    h = ReplicaHealth(name="s0.r1")
    h.record(ok=True, latency_s=0.002)
    snap = h.snapshot()
    assert snap["name"] == "s0.r1" and snap["state"] == ACTIVE
    assert snap["samples"] == 1 and 0.0 <= snap["score"] <= 1.0


# --------------------------------------------------------------------- #
# HealthProber (driven by hand against a stub group)
# --------------------------------------------------------------------- #


class _StubGroup:
    """Probe surface of ReplicaGroup with scripted canary outcomes."""

    def __init__(self, healths, clean):
        self.health = healths
        self._clean = clean  # per-replica bool
        self.restored = []
        self.canaried = []

    def canary(self, idx):
        self.canaried.append(idx)
        ok = self._clean[idx]
        # Canaries feed the same health EWMAs as live traffic.
        self.health[idx].record(ok=ok, latency_s=0.001)
        return QueryResult(status=STATUS_OK if ok else STATUS_FAILED)

    def restore_replica(self, idx):
        self.restored.append(idx)


def test_prober_skips_healthy_probes_ejected_and_readmits():
    policy = HealthPolicy(min_samples=1, readmit_after=2)
    healths = [ReplicaHealth(policy, name="r0"), ReplicaHealth(policy, name="r1")]
    for h in healths:
        for _ in range(3):
            h.record(ok=True, latency_s=0.001)
    healths[1].record(ok=False)
    healths[1].eject()
    group = _StubGroup(healths, clean=[True, True])

    prober = HealthProber([group], interval_s=0.01)
    assert prober.probe_once() == 1  # only the ejected replica
    assert group.canaried == [1]
    assert healths[1].state == PROBATION
    assert prober.probe_once() == 1
    assert healths[1].state == ACTIVE
    # Readmission ran the breaker-reset hook exactly once.
    assert group.restored == [1]
    assert prober.n_readmitted == 1
    # Everyone healthy now: nothing left to probe.
    assert prober.probe_once() == 0


def test_prober_ejects_broken_suspects_via_canaries():
    """An ACTIVE replica under the suspect threshold keeps getting
    canaried; when the canaries fail, their recorded outcomes decay it
    all the way to EJECTED — the detection half of the probe loop."""
    policy = HealthPolicy(min_samples=2, suspect_below=0.85)
    h = ReplicaHealth(policy, name="r0")
    for _ in range(5):
        h.record(ok=True, latency_s=0.001)
    h.record(ok=False)  # one blackout-era failure before starvation
    assert h.state == ACTIVE and h.score < policy.suspect_below
    group = _StubGroup([h], clean=[False])
    prober = HealthProber([group], interval_s=0.01)
    for _ in range(10):
        prober.probe_once()
        if h.state == EJECTED:
            break
    assert h.state == EJECTED  # bounded number of cycles, no live traffic


def test_prober_recovers_healthy_suspects_without_ejecting():
    policy = HealthPolicy(min_samples=2, suspect_below=0.85)
    h = ReplicaHealth(policy, name="r0")
    for _ in range(5):
        h.record(ok=True, latency_s=0.001)
    h.record(ok=False)  # transient blip; the replica is actually fine
    group = _StubGroup([h], clean=[True])
    prober = HealthProber([group], interval_s=0.01)
    for _ in range(20):
        prober.probe_once()
    assert h.state == ACTIVE
    assert h.score >= policy.suspect_below  # clean canaries pulled it back
    assert prober.probe_once() == 0  # no longer suspect


def test_prober_thread_lifecycle():
    policy = HealthPolicy(min_samples=1, readmit_after=1, alpha=1.0)
    h = ReplicaHealth(policy)
    h.record(ok=False)
    group = _StubGroup([h], clean=[True])
    prober = HealthProber([group], interval_s=0.01).start()
    try:
        assert prober.running
        deadline = 200
        while not h.active and deadline:
            deadline -= 1
            import time

            time.sleep(0.01)
        assert h.active  # the background loop readmitted it
    finally:
        prober.stop()
    assert not prober.running
    with pytest.raises(ServingError):
        HealthProber([group], interval_s=0.0)
