"""ModelServer: guarded queries, deadlines, shedding, registry refresh."""

import numpy as np
import pytest

from repro.serving.breaker import AdmissionController
from repro.serving.fallback import TIER_COMPILED, TIER_PRIOR, TIER_SWEEP
from repro.serving.registry import ModelRegistry
from repro.serving.server import (
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    TIER_ANALYTIC,
    ModelServer,
)


def _svc(model, k=0):
    return [n for n in model.network.nodes if n != model.response][k]


def _mean(data, name):
    return float(np.mean(data[name]))


# --------------------------------------------------------------------- #
# Single queries
# --------------------------------------------------------------------- #


def test_query_matches_engine_when_healthy(
    fresh_discrete_model, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    svc = _svc(model)
    r = srv.query([model.response], {svc: _mean(train, svc)})
    assert r.ok and r.tier == TIER_COMPILED
    disc = model.discretizer
    expected = model.network.compiled().query(
        [model.response], {svc: disc.state_of(svc, _mean(train, svc))}
    ).values
    np.testing.assert_allclose(r.value, expected)
    assert srv.stats.n_ok == 1
    assert srv.stats.tier_counts[TIER_COMPILED] == 1


def test_bad_evidence_rejected_with_reasons_not_crash(fresh_discrete_model):
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    r = srv.query([model.response], {"martian": 1.0})
    assert r.status == STATUS_REJECTED and "'martian'" in r.reasons[0]
    r = srv.query([model.response], {_svc(model): float("nan")})
    assert r.status == STATUS_REJECTED and any("NaN" in x for x in r.reasons)
    # querying a variable that is also evidence is refused, not undefined
    r = srv.query([model.response], {model.response: 1.0})
    assert r.status == STATUS_REJECTED
    # unknown query variable
    r = srv.query(["martian"], {})
    assert r.status == STATUS_REJECTED
    assert srv.stats.n_rejected == 4 and srv.stats.n_queries == 4


def test_binned_evidence_validated_against_cardinalities(fresh_discrete_model):
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    svc = _svc(model)
    ok = srv.query([model.response], {svc: 2}, binned=True)
    assert ok.ok
    bad = srv.query([model.response], {svc: 99}, binned=True)
    assert bad.status == STATUS_REJECTED
    assert any("out of range" in r for r in bad.reasons)


def test_engine_fault_answers_through_fallback(fresh_discrete_model, ediamond_data):
    train, _ = ediamond_data
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    svc = _svc(model)

    def boom(*a):
        raise RuntimeError("injected")

    srv.chain.engine.failure_hook = boom
    r = srv.query([model.response], {svc: _mean(train, svc)})
    assert r.ok and r.tier == TIER_SWEEP
    assert TIER_COMPILED in r.tier_errors


def test_expired_deadline_degrades_to_prior(fresh_discrete_model, ediamond_data):
    train, _ = ediamond_data
    model = fresh_discrete_model
    srv = ModelServer(model, deadline_seconds=1e-9, rng=0)
    svc = _svc(model)
    r = srv.query([model.response], {svc: _mean(train, svc)})
    assert r.ok and r.tier == TIER_PRIOR and r.approximate
    assert r.deadline_exceeded
    assert srv.stats.n_deadline_exceeded == 1


def test_admission_control_sheds_under_overload(fresh_discrete_model):
    model = fresh_discrete_model
    ac = AdmissionController(
        window=5, overload_threshold=0.5, shed_fraction=1.0,
        rng=np.random.default_rng(0),
    )
    srv = ModelServer(model, admission=ac, rng=0)
    for _ in range(5):
        ac.record(True)
    r = srv.query([model.response], {})
    assert r.status == STATUS_SHED and r.reasons
    assert srv.stats.n_shed == 1


# --------------------------------------------------------------------- #
# Batches
# --------------------------------------------------------------------- #


def test_query_batch_aligns_results_with_input_rows(
    fresh_discrete_model, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    a, b = _svc(model, 0), _svc(model, 1)
    rows = [
        {a: _mean(train, a)},
        {a: float("nan")},
        {"martian": 1.0},
        {b: _mean(train, b)},          # different signature, same batch
        {a: _mean(train, a) * 1.1},
    ]
    results = srv.query_batch([model.response], rows)
    assert [r.status for r in results] == [
        STATUS_OK, STATUS_REJECTED, STATUS_REJECTED, STATUS_OK, STATUS_OK,
    ]
    # batched answers equal the single-query path
    single = srv.query([model.response], rows[0])
    np.testing.assert_allclose(results[0].value, single.value)
    assert srv.stats.n_rows_rejected == 2


def test_query_batch_survives_engine_fault_per_row(
    fresh_discrete_model, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    a = _svc(model)
    exact = srv.query([model.response], {a: _mean(train, a)}).value

    def boom(*args):
        raise RuntimeError("injected")

    srv.chain.engine.failure_hook = boom
    results = srv.query_batch(
        [model.response], [{a: _mean(train, a)}, {a: _mean(train, a) * 2}]
    )
    assert all(r.ok for r in results)
    assert all(r.tier == TIER_SWEEP for r in results)
    np.testing.assert_allclose(results[0].value, exact, atol=1e-10)


# --------------------------------------------------------------------- #
# Assessment surface
# --------------------------------------------------------------------- #


def test_violation_prob_discrete_goes_through_chain(
    fresh_discrete_model, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    h = float(np.percentile(train[model.response], 80))
    r = srv.violation_prob(h)
    assert r.ok and r.tier == TIER_COMPILED
    assert 0.0 <= r.value <= 1.0
    from repro.apps.paccel import PAccel

    expected = PAccel(model).baseline(rng=0).violation_probability(h)
    assert r.value == pytest.approx(expected)
    bad = srv.violation_prob(float("nan"))
    assert bad.status == STATUS_REJECTED


def test_violation_prob_continuous_uses_analytic_tier(
    ediamond_continuous_model, ediamond_data
):
    train, _ = ediamond_data
    srv = ModelServer(ediamond_continuous_model, rng=0)
    h = float(np.percentile(train["D"], 80))
    r = srv.violation_prob(h)
    assert r.ok and r.tier == TIER_ANALYTIC
    assert 0.0 <= r.value <= 1.0
    # query() on a continuous model is a clean rejection, not a crash
    q = srv.query(["D"], {})
    assert q.status == STATUS_REJECTED
    assert any("discrete" in reason for reason in q.reasons)


def test_project_discrete(fresh_discrete_model, ediamond_data):
    train, _ = ediamond_data
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    svc = _svc(model)
    r = srv.project({svc: _mean(train, svc) * 0.5})
    assert r.ok
    assert np.isfinite(r.value.mean) and r.value.pmf.sum() == pytest.approx(1.0)
    from repro.apps.paccel import PAccel

    expected = PAccel(model).project({svc: _mean(train, svc) * 0.5})
    assert r.value.mean == pytest.approx(expected.mean)


# --------------------------------------------------------------------- #
# Registry-backed serving
# --------------------------------------------------------------------- #


def test_refresh_follows_rollback(
    tmp_path, fresh_discrete_model, ediamond_env, ediamond_data
):
    from repro.core.kertbn import build_discrete_kertbn

    train, _ = ediamond_data
    reg = ModelRegistry(str(tmp_path / "reg"))
    reg.publish(fresh_discrete_model)
    srv = ModelServer(reg, rng=0)
    assert srv.version == 1
    other = build_discrete_kertbn(ediamond_env.workflow, train, n_bins=3)
    reg.publish(other)
    assert srv.refresh() == 2
    assert srv.model.network.cardinalities[srv.model.response] == 3
    reg.rollback(reason="operator")
    assert srv.refresh() == 1
    r = srv.query([srv.model.response], {})
    assert r.ok and r.value.shape == (4,)
