"""Evidence guards: per-row rejection with reasons, never a crash."""

import numpy as np

from repro.serving.guards import check_row, sanitize_rows

KNOWN = frozenset({"a", "b", "D"})
CARDS = {"a": 4, "b": 4, "D": 4}


def test_clean_raw_row_passes():
    assert check_row({"a": 1.5, "b": 0.2}, known=KNOWN) == ()


def test_unknown_variable_rejected_by_name():
    reasons = check_row({"zz": 1.0}, known=KNOWN)
    assert len(reasons) == 1 and "'zz'" in reasons[0]


def test_forbidden_variable_rejected():
    reasons = check_row({"D": 1.0}, known=KNOWN, forbid={"D"})
    assert any("'D'" in r and "may not appear" in r for r in reasons)


def test_nan_and_inf_means_rejected():
    reasons = check_row({"a": float("nan"), "b": float("inf")}, known=KNOWN)
    assert any("NaN" in r for r in reasons)
    assert any("non-finite" in r for r in reasons)


def test_non_number_rejected():
    reasons = check_row({"a": "fast"}, known=KNOWN)
    assert any("not a number" in r for r in reasons)


def test_empty_row_rejected_by_default_but_optional():
    assert check_row({}, known=KNOWN) == ("empty evidence row",)
    assert check_row({}, known=KNOWN, require_nonempty=False) == ()


def test_non_mapping_row_rejected():
    reasons = check_row([("a", 1.0)], known=KNOWN)
    assert len(reasons) == 1 and "mapping" in reasons[0]


def test_binned_rows_validated_against_cardinalities():
    assert check_row({"a": 2}, known=KNOWN, cards=CARDS, binned=True) == ()
    # numpy integers count as integral
    assert check_row({"a": np.int64(3)}, known=KNOWN, cards=CARDS, binned=True) == ()
    out = check_row({"a": 4}, known=KNOWN, cards=CARDS, binned=True)
    assert any("out of range" in r for r in out)
    out = check_row({"a": -1}, known=KNOWN, cards=CARDS, binned=True)
    assert any("out of range" in r for r in out)
    out = check_row({"a": 1.5}, known=KNOWN, cards=CARDS, binned=True)
    assert any("not integral" in r for r in out)
    out = check_row({"a": "x"}, known=KNOWN, cards=CARDS, binned=True)
    assert any("not an integer" in r for r in out)


def test_multiple_reasons_all_reported():
    reasons = check_row(
        {"zz": 1.0, "a": float("nan"), "D": 2.0}, known=KNOWN, forbid={"D"}
    )
    assert len(reasons) == 3


def test_sanitize_rows_splits_and_aligns():
    rows = [
        {"a": 1.0},
        {"a": float("nan")},
        {"zz": 2.0},
        {"b": np.float64(3.0)},
        {},
    ]
    batch = sanitize_rows(rows, known=KNOWN)
    assert batch.kept_indices == [0, 3]
    assert batch.n_accepted == 2 and batch.n_rejected == 3
    assert [r.index for r in batch.rejections] == [1, 2, 4]
    for rej in batch.rejections:
        assert rej.reasons  # every rejection carries at least one reason
    # accepted values coerced to plain floats
    assert isinstance(batch.rows[1]["b"], float)


def test_sanitize_rows_binned_coerces_ints():
    batch = sanitize_rows([{"a": np.int64(1)}], known=KNOWN, cards=CARDS, binned=True)
    assert batch.rows == [{"a": 1}]
    assert isinstance(batch.rows[0]["a"], int)
