"""Thread-safety of the serving substrate + batch/single accounting parity.

These are the regression tests for the three serving-path bugs this PR
fixes: shed batches aliasing one mutable result (and being undercounted),
batch rejections bypassing ``_finish``, and unlocked shared state in the
breaker / admission controller / stats / engine plan cache.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.bn.inference.engine import CompiledDiscreteModel
from repro.serving.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    CircuitBreaker,
)
from repro.serving.server import (
    STATUS_REJECTED,
    STATUS_SHED,
    ModelServer,
    QueryResult,
    ServerStats,
)


def _svc(model, k=0):
    return [n for n in model.network.nodes if n != model.response][k]


def _mean(data, name):
    return float(np.mean(data[name]))


# --------------------------------------------------------------------- #
# Bugfix regressions: shed aliasing + rejections through _finish
# --------------------------------------------------------------------- #


def test_shed_batch_returns_distinct_results_counted_per_row(
    fresh_discrete_model,
):
    ac = AdmissionController(
        window=5, overload_threshold=0.5, shed_fraction=1.0,
        rng=np.random.default_rng(0),
    )
    srv = ModelServer(fresh_discrete_model, admission=ac, rng=0)
    for _ in range(5):
        ac.record(True)
    results = srv.query_batch(
        [fresh_discrete_model.response], [{}, {}, {}]
    )
    assert [r.status for r in results] == [STATUS_SHED] * 3
    # Three distinct objects: mutating one must not alias the others.
    assert len({id(r) for r in results}) == 3
    results[0].status = "mutated"
    assert results[1].status == STATUS_SHED
    # And three sheds in the stats, not one.
    assert srv.stats.n_shed == 3 and srv.stats.n_queries == 3


def test_batch_rejections_carry_elapsed_and_feed_admission(
    fresh_discrete_model, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_discrete_model
    ac = AdmissionController(window=50, rng=np.random.default_rng(0))
    srv = ModelServer(model, admission=ac, rng=0)
    svc = _svc(model)
    rows = [
        {svc: _mean(train, svc)},
        {"martian": 1.0},
        {svc: float("nan")},
    ]
    results = srv.query_batch([model.response], rows)
    assert results[0].ok
    for r in results[1:]:
        assert r.status == STATUS_REJECTED
        # Through _finish: timed like every other query.
        assert r.elapsed_seconds > 0.0
    # Through _finish: every row (ok and rejected) fed the admission
    # window — 3 rows in, 3 outcomes recorded.
    assert len(ac._outcomes) == 3


def test_batch_and_single_paths_tally_identically(
    fresh_discrete_model, ediamond_data
):
    """The accounting-equivalence contract: the same rows produce the
    same ServerStats and admission updates whether they arrive as one
    batch or as N single queries."""
    train, _ = ediamond_data
    model = fresh_discrete_model
    svc = _svc(model)
    good = {svc: _mean(train, svc)}
    rows = [good, {"martian": 1.0}, good, {svc: float("nan")}, good]

    batch_srv = ModelServer(
        model,
        admission=AdmissionController(window=50, rng=np.random.default_rng(0)),
        rng=0,
    )
    single_srv = ModelServer(
        model,
        admission=AdmissionController(window=50, rng=np.random.default_rng(0)),
        rng=0,
    )
    batch_results = batch_srv.query_batch([model.response], rows)
    single_results = [single_srv.query([model.response], r) for r in rows]

    assert [r.status for r in batch_results] == [
        r.status for r in single_results
    ]
    for b, s in zip(batch_results, single_results):
        if b.ok:
            np.testing.assert_allclose(b.value, s.value)

    b, s = batch_srv.stats.as_dict(), single_srv.stats.as_dict()
    # n_rows_rejected is the one deliberate asymmetry: it counts rows
    # rejected *inside batches* and has no single-query analogue.
    assert b.pop("n_rows_rejected") == 2
    assert s.pop("n_rows_rejected") == 0
    assert b == s
    # Same seed, same admitted/recorded sequence → identical windows.
    assert list(batch_srv.admission._outcomes) == list(
        single_srv.admission._outcomes
    )
    assert batch_srv.admission.n_admitted == single_srv.admission.n_admitted
    assert batch_srv.admission.n_shed == single_srv.admission.n_shed


# --------------------------------------------------------------------- #
# Thread-safety: breaker / admission / stats invariants under a pool
# --------------------------------------------------------------------- #


def test_circuit_breaker_invariants_under_threads():
    breaker = CircuitBreaker(failure_threshold=3, cooldown=5)
    rngs = [np.random.default_rng(i) for i in range(8)]

    def worker(w):
        rng = rngs[w]
        allowed = 0
        for _ in range(2000):
            if breaker.allow():
                allowed += 1
                if rng.random() < 0.3:
                    breaker.record_failure()
                else:
                    breaker.record_success()
        return allowed

    with ThreadPoolExecutor(8) as ex:
        allowed = sum(ex.map(worker, range(8)))
    # No lost updates or corrupted state machine: the breaker lands in a
    # legal state and its counters balance against the call volume.
    assert breaker.state in (CLOSED, OPEN, HALF_OPEN)
    assert allowed + breaker.n_refused == 8 * 2000
    assert breaker.n_trips >= 1
    assert breaker.n_refused >= 0


def test_admission_controller_counts_balance_under_threads():
    ac = AdmissionController(
        window=50, overload_threshold=0.3, shed_fraction=0.5,
        rng=np.random.default_rng(0),
    )
    calls_per_worker = 3000

    def worker(w):
        rng = np.random.default_rng(100 + w)
        for _ in range(calls_per_worker):
            if ac.admit():
                ac.record(rng.random() < 0.5)

    with ThreadPoolExecutor(8) as ex:
        list(ex.map(worker, range(8)))
    # Every admit() incremented exactly one of the two counters.
    assert ac.n_admitted + ac.n_shed == 8 * calls_per_worker
    assert ac.n_shed > 0  # the overload regime was actually exercised
    assert len(ac._outcomes) == ac.window
    assert 0.0 <= ac.overload_fraction <= 1.0


def test_server_stats_lose_no_counts_under_threads():
    stats = ServerStats()
    per_worker = {
        "ok": 500, "rejected": 300, "shed": 200, "failed": 100,
    }

    def worker(_):
        for _ in range(per_worker["ok"]):
            stats._count(QueryResult(status="ok", tier="compiled-einsum"))
        for _ in range(per_worker["rejected"]):
            stats._count(QueryResult(status="rejected"))
        for _ in range(per_worker["shed"]):
            stats._count(QueryResult(status="shed"))
        for _ in range(per_worker["failed"]):
            stats._count(
                QueryResult(status="failed", deadline_exceeded=True)
            )
        stats.count_rows_rejected(7)

    with ThreadPoolExecutor(8) as ex:
        list(ex.map(worker, range(8)))
    assert stats.n_ok == 8 * 500
    assert stats.n_rejected == 8 * 300
    assert stats.n_shed == 8 * 200
    assert stats.n_failed == 8 * 100
    assert stats.n_deadline_exceeded == 8 * 100
    assert stats.n_queries == 8 * 1100
    assert stats.n_rows_rejected == 8 * 7
    assert stats.tier_counts["compiled-einsum"] == 8 * 500


# --------------------------------------------------------------------- #
# Thread-safety: engine plan cache
# --------------------------------------------------------------------- #


def test_plan_cache_consistent_under_concurrent_mixed_signatures(
    fresh_discrete_model,
):
    """Hammer a 4-slot LRU with 8 threads cycling 8 signatures: lookups,
    compiles, and evictions race, yet answers stay correct and the cache
    bookkeeping balances."""
    net = fresh_discrete_model.network
    engine = CompiledDiscreteModel(net, plan_cache_size=4)
    nodes = list(net.nodes)
    response = fresh_discrete_model.response
    others = [n for n in nodes if n != response]
    signatures = [
        ((response,), {others[i % len(others)]: 0}) for i in range(8)
    ] + [((others[0],), {response: 0})]

    reference = {
        i: CompiledDiscreteModel(net).query(v, e).values
        for i, (v, e) in enumerate(signatures)
    }

    def worker(w):
        rng = np.random.default_rng(w)
        for _ in range(200):
            i = int(rng.integers(len(signatures)))
            v, e = signatures[i]
            np.testing.assert_allclose(
                engine.query(v, e).values, reference[i], atol=1e-12
            )

    with ThreadPoolExecutor(8) as ex:
        list(ex.map(worker, range(8)))

    cs = engine.cache_stats()
    assert cs["plans"] <= cs["capacity"] == 4
    # Compiles minus evictions is exactly what's resident — no plan was
    # double-counted or lost in a race.
    assert cs["compiles"] - cs["evictions"] == cs["plans"]
    # Every query either hit or compiled (racing losers count as hits).
    assert cs["hits"] + cs["compiles"] == 8 * 200


def test_threaded_server_queries_match_single_thread(
    fresh_discrete_model, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_discrete_model
    srv = ModelServer(model, rng=0)
    svc_a, svc_b = _svc(model, 0), _svc(model, 1)
    evs = [
        {svc_a: _mean(train, svc_a)},
        {svc_b: _mean(train, svc_b)},
        {svc_a: _mean(train, svc_a), svc_b: _mean(train, svc_b)},
    ]
    expected = [
        ModelServer(model, rng=0).query([model.response], ev).value
        for ev in evs
    ]

    def worker(w):
        for j in range(60):
            i = (w + j) % len(evs)
            r = srv.query([model.response], evs[i])
            assert r.ok
            np.testing.assert_allclose(r.value, expected[i])

    with ThreadPoolExecutor(6) as ex:
        list(ex.map(worker, range(6)))
    assert srv.stats.n_ok == 6 * 60 == srv.stats.n_queries
