"""Serving-layer fixtures.

The shared session fixtures (``ediamond_discrete_model`` etc.) must not
be mutated; serving tests that install fault hooks on the compiled
engine therefore get a *fresh* model per test.  Building a discrete
KERT-BN is milliseconds, so this costs nothing.
"""

import pytest


@pytest.fixture
def fresh_discrete_model(ediamond_env, ediamond_data):
    from repro.core.kertbn import build_discrete_kertbn

    train, _ = ediamond_data
    return build_discrete_kertbn(ediamond_env.workflow, train, n_bins=4)
