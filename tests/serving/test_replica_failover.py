"""Replica groups: failover, hedging, and the seeded blackout chaos suite."""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving.breaker import CLOSED
from repro.serving.fabric import (
    HedgePolicy,
    ReplicaGroup,
    ShardRouter,
    build_fabric,
)
from repro.serving.faults import ReplicaFaultInjector
from repro.serving.health import ACTIVE, EJECTED
from repro.serving.server import STATUS_FAILED, ModelServer


def _svc(model, k=0):
    return [n for n in model.network.nodes if n != model.response][k]


@pytest.fixture
def fresh_models(ediamond_env, ediamond_data):
    from repro.core.kertbn import build_discrete_kertbn

    train, _ = ediamond_data
    return [
        build_discrete_kertbn(ediamond_env.workflow, train, n_bins=4)
        for _ in range(2)
    ]


def _group(model, n=2, **kwargs):
    return ReplicaGroup(
        [ModelServer(model, rng=0) for _ in range(n)], name="g", **kwargs
    )


# --------------------------------------------------------------------- #
# ModelServer-compatible surface
# --------------------------------------------------------------------- #


def test_group_construction_validates(fresh_models):
    with pytest.raises(ServingError):
        ReplicaGroup([])
    g = _group(fresh_models[0])
    with pytest.raises(ServingError):
        g.inject_fault(5, ReplicaFaultInjector())


def test_group_delegates_like_a_single_server(fresh_models):
    model = fresh_models[0]
    group = _group(model)
    direct = ModelServer(model, rng=0)
    r = group.query([model.response], {}, binned=True)
    expected = direct.query([model.response], {}, binned=True)
    assert r.ok
    np.testing.assert_allclose(r.value, expected.value)
    # The surface the router/batcher/harness rely on.
    assert group.chain is not None
    assert CLOSED in {b.state for b in group.breakers.values()}
    assert group.model is model and group.version is None
    assert group.batch_ready
    # `stats` tracks the *current* primary (which may reorder after the
    # first latency sample); the aggregate sees every replica.
    assert group.replicas[0].stats.n_ok == 1
    agg = group.stats_dict()
    assert agg["n_queries"] == 1
    group.close()


def test_single_replica_wrapping_preserves_router_behavior(fresh_models):
    # Bare ModelServers passed to ShardRouter become 1-replica groups.
    server = ModelServer(fresh_models[0], rng=0)
    router = ShardRouter([server])
    assert isinstance(router.shards[0], ReplicaGroup)
    assert router.shards[0].replicas == (server,)
    model = fresh_models[0]
    r = router.query("t", [model.response], {}, binned=True)
    assert r.ok and server.stats.n_ok == 1


# --------------------------------------------------------------------- #
# Failover
# --------------------------------------------------------------------- #


def test_failover_answers_through_the_sibling(fresh_models):
    model = fresh_models[0]
    group = _group(model)
    inj = ReplicaFaultInjector(rng=0)
    inj.blackout()
    group.inject_fault(0, inj)
    for _ in range(10):
        r = group.query([model.response], {}, binned=True)
        assert r.ok  # never a failed answer: the sibling covers
    assert group.n_failovers >= 1
    assert group.n_exhausted == 0
    # The failed replica is demoted: the healthy sibling is primary now.
    assert group.order()[0] == 1
    # Replica 0's server never saw the blacked-out calls.
    assert group.replicas[0].stats.n_queries == 0
    group.close()


def test_exhausted_when_every_replica_is_black(fresh_models):
    model = fresh_models[0]
    group = _group(model)
    for i in range(2):
        inj = ReplicaFaultInjector(rng=i)
        inj.blackout()
        group.inject_fault(i, inj)
    r = group.query([model.response], {}, binned=True)
    assert r.status == STATUS_FAILED
    assert "fault" in r.tier_errors
    assert group.n_exhausted == 1
    group.close()


def test_batch_failover_counts_every_row_once(fresh_models, ediamond_data):
    train, _ = ediamond_data
    model = fresh_models[0]
    svc = _svc(model)
    group = _group(model)
    inj = ReplicaFaultInjector(rng=0)
    inj.blackout()
    group.inject_fault(0, inj)
    rows = [{svc: float(np.mean(train[svc]))} for _ in range(6)]
    results = group.query_batch([model.response], rows)
    assert len(results) == 6 and all(r.ok for r in results)
    # Only the answering replica's stats saw the rows — no double count.
    assert group.replicas[0].stats.n_queries == 0
    assert group.replicas[1].stats.n_queries == 6
    group.close()


def test_injected_faults_never_touch_replica_stats(fresh_models):
    model = fresh_models[0]
    group = _group(model, n=1)
    inj = ReplicaFaultInjector(rng=0)
    inj.blackout(duration=3)
    group.inject_fault(0, inj)
    for _ in range(3):
        r = group.query([model.response], {}, binned=True)
        assert r.status == STATUS_FAILED  # sole replica, no failover
    assert group.replicas[0].stats.n_queries == 0  # unreachable, not failing
    assert group.n_faults_injected == 3
    r = group.query([model.response], {}, binned=True)
    assert r.ok  # window over
    group.close()


# --------------------------------------------------------------------- #
# Hedged requests
# --------------------------------------------------------------------- #


def test_hedge_policy_validates():
    with pytest.raises(ServingError):
        HedgePolicy(min_delay_s=0.0)
    with pytest.raises(ServingError):
        HedgePolicy(multiplier=0.0)
    with pytest.raises(ServingError):
        HedgePolicy(warmup=0)


def test_hedge_backup_beats_a_stalled_primary(fresh_models):
    model = fresh_models[0]
    group = _group(model, hedge=HedgePolicy(min_delay_s=0.02))
    inj = ReplicaFaultInjector(rng=0)
    inj.latency_storm(0.25)  # primary stalls every call
    group.inject_fault(0, inj)
    t0 = time.monotonic()
    r = group.query([model.response], {}, binned=True)
    elapsed = time.monotonic() - t0
    assert r.ok
    assert elapsed < 0.2  # the hedge answered well before the stall
    assert group.n_hedges_issued >= 1 and group.n_hedges_won >= 1
    group.close()


def test_hedge_accounting_invariant(fresh_models):
    model = fresh_models[0]
    # Stall BOTH replicas past the hedge delay: every call hedges, and
    # the primary (stalled first) usually beats the later backup — the
    # wasted-hedge path.
    group = _group(model, hedge=HedgePolicy(min_delay_s=0.002))
    for i in range(2):
        inj = ReplicaFaultInjector(rng=i)
        inj.latency_storm(0.02)
        group.inject_fault(i, inj)
    for _ in range(6):
        assert group.query([model.response], {}, binned=True).ok
    assert group.n_hedges_issued == 6
    assert (
        group.n_hedges_won + group.n_hedges_wasted == group.n_hedges_issued
    )
    assert group.n_hedges_wasted >= 1
    group.close()


def test_hedge_delay_adapts_to_observed_p95(fresh_models):
    model = fresh_models[0]
    group = _group(model, hedge=HedgePolicy(min_delay_s=0.001, warmup=4))
    for _ in range(10):
        group.latency.update(0.05)
    # 2x the ~50ms p95, not the 1ms floor.
    assert group.hedge_delay() == pytest.approx(0.1, rel=0.2)


def test_hedge_disabled_for_single_replica(fresh_models):
    model = fresh_models[0]
    group = _group(model, n=1, hedge=HedgePolicy(min_delay_s=1e-4))
    assert group.query([model.response], {}, binned=True).ok
    assert group.n_hedges_issued == 0
    group.close()


# --------------------------------------------------------------------- #
# Probe-driven readmission through a real fabric
# --------------------------------------------------------------------- #


def test_probe_loop_ejects_and_readmits_blacked_out_replica(fresh_models):
    fabric = build_fabric(
        [fresh_models[0]],
        n_replicas=2,
        probe_interval_s=None,  # drive the prober by hand
        max_batch=8,
        max_wait_us=1000,
        rng=0,
    )
    from repro.serving.health import HealthProber

    model = fresh_models[0]
    group = fabric.router.shards[0]
    prober = HealthProber(fabric.router.shards, interval_s=0.01)
    assert fabric.prober is None

    inj = ReplicaFaultInjector(rng=0)
    inj.blackout()
    group.inject_fault(0, inj)
    r = group.query([model.response], {}, binned=True)
    assert r.ok  # failover covered the blackout

    # Detection: the once-failed, now-starved replica is suspect; failed
    # canaries decay it to EJECTED within a bounded number of cycles.
    for _ in range(20):
        prober.probe_once()
        if group.health[0].state == EJECTED:
            break
    assert group.health[0].state == EJECTED

    # Trip a breaker while unreachable: readmission must clear it.
    group.replicas[0].breakers["compiled-einsum"].record_failure()

    # Recovery: lift the fault; clean canaries readmit within
    # readmit_after(+1) cycles and reset the replica's breakers.
    inj.clear()
    cycles = 0
    for cycles in range(1, 21):
        prober.probe_once()
        if group.health[0].state == ACTIVE:
            break
    assert group.health[0].state == ACTIVE
    assert cycles <= group.policy.readmit_after + 1
    assert all(
        b.state == CLOSED for b in group.replicas[0].breakers.values()
    )
    assert prober.n_readmitted == 1
    fabric.close()


# --------------------------------------------------------------------- #
# Satellite: seeded mid-load blackout chaos test
# --------------------------------------------------------------------- #


def test_chaos_blackout_mid_load_no_hung_waiters_exact_accounting(
    fresh_models, ediamond_data
):
    """Black out one replica mid-load under concurrent batched traffic.

    Asserts the three failover-correctness properties: (1) zero hung
    waiters — every submitted query resolves within its wait bound;
    (2) per-tenant ServerStats row counts exactly match the rows each
    tenant submitted; (3) the recovered replica is readmitted by the
    probe loop within a bounded number of cycles.
    """
    train, _ = ediamond_data
    model = fresh_models[0]
    svc = _svc(model)
    ev = {svc: float(np.mean(train[svc]))}
    fabric = build_fabric(
        fresh_models,
        n_replicas=2,
        hedge=True,
        probe_interval_s=0.02,
        max_batch=16,
        max_wait_us=1500,
        rng=0,
    )
    tenants = [f"tenant-{i}" for i in range(6)]
    per_tenant = 40
    n_workers = 8
    inj = ReplicaFaultInjector(rng=11)
    target_group = fabric.router.shards[0]

    rng = np.random.default_rng(5)
    order = rng.permutation(np.repeat(np.arange(len(tenants)), per_tenant))
    fault_at = len(order) // 3
    clear_at = 2 * len(order) // 3

    def run(i):
        # Seeded incident timeline interleaved with the load: blackout
        # one replica a third of the way in, lift it at two thirds.
        if i == fault_at:
            inj.blackout()
            target_group.inject_fault(0, inj)
        elif i == clear_at:
            inj.clear()
        tenant = tenants[order[i]]
        pending = fabric.submit(tenant, [model.response], ev)
        # Zero hung waiters: the batcher-assigned default bound applies.
        return tenant, pending.result()

    try:
        with ThreadPoolExecutor(n_workers) as ex:
            results = list(ex.map(run, range(len(order))))
    finally:
        # Give the prober a bounded window to readmit the recovered
        # replica before shutdown.
        deadline = time.monotonic() + 10.0
        while (
            not target_group.health[0].active
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        readmitted = target_group.health[0].active
        prober_snap = fabric.prober.snapshot()
        fabric.close()

    assert len(results) == len(order)
    statuses = [r.status for _, r in results]
    # With a live sibling, a single-replica blackout must not surface
    # failures (tenant budgets may shed a few under the storm).
    answered = sum(1 for s in statuses if s != STATUS_FAILED)
    assert answered / len(statuses) >= 0.99

    # Exact per-tenant accounting: every submitted row in exactly that
    # tenant's rollup, nothing lost, nothing double-counted.
    for t in tenants:
        submitted = int(np.sum(order == tenants.index(t)))
        assert fabric.router.tenant_state(t).stats.n_queries == submitted

    # Probe-driven readmission of the recovered replica.
    assert readmitted, f"replica not readmitted; prober={prober_snap}"
