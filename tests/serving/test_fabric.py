"""Sharded multi-tenant fabric: routing, budgets, dynamic batching, chaos."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving.breaker import AdmissionController, CLOSED, OPEN
from repro.serving.fallback import TIER_COMPILED, TIER_SWEEP
from repro.serving.fabric import (
    DynamicBatcher,
    ServingFabric,
    ShardRouter,
    build_fabric,
    shard_index,
)
from repro.serving.server import (
    STATUS_OK,
    STATUS_SHED,
    ModelServer,
)


def _svc(model, k=0):
    return [n for n in model.network.nodes if n != model.response][k]


def _mean(data, name):
    return float(np.mean(data[name]))


@pytest.fixture
def fresh_models(ediamond_env, ediamond_data):
    from repro.core.kertbn import build_discrete_kertbn

    train, _ = ediamond_data
    return [
        build_discrete_kertbn(ediamond_env.workflow, train, n_bins=4)
        for _ in range(4)
    ]


# --------------------------------------------------------------------- #
# Consistent tenant -> shard mapping
# --------------------------------------------------------------------- #


def test_shard_index_is_stable_and_covers_shards():
    names = [f"tenant-{i}" for i in range(64)]
    first = [shard_index(n, 4) for n in names]
    # Deterministic: recomputing (any order) gives the same placement.
    assert [shard_index(n, 4) for n in reversed(names)] == first[::-1]
    assert all(0 <= s < 4 for s in first)
    # 64 hashed tenants should land on every shard.
    assert set(first) == {0, 1, 2, 3}


def test_shard_index_rejects_bad_shard_count():
    with pytest.raises(ServingError):
        shard_index("t", 0)


def test_router_mapping_independent_of_registration_order(fresh_models):
    a = ShardRouter([ModelServer(m, rng=0) for m in fresh_models])
    b = ShardRouter([ModelServer(m, rng=0) for m in fresh_models])
    names = [f"tenant-{i}" for i in range(12)]
    for n in names:
        a.add_tenant(n)
    for n in reversed(names):
        b.add_tenant(n)
    assert {n: a.shard_of(n) for n in names} == {
        n: b.shard_of(n) for n in names
    }


# --------------------------------------------------------------------- #
# Routing correctness
# --------------------------------------------------------------------- #


def test_router_query_matches_direct_server(fresh_models, ediamond_data):
    train, _ = ediamond_data
    model = fresh_models[0]
    shards = [ModelServer(m, rng=0) for m in fresh_models]
    router = ShardRouter(shards)
    svc = _svc(model)
    ev = {svc: _mean(train, svc)}
    r = router.query("tenant-a", [model.response], ev)
    assert r.ok and r.tier == TIER_COMPILED
    direct = ModelServer(fresh_models[router.shard_of("tenant-a")], rng=0)
    expected = direct.query([model.response], ev)
    np.testing.assert_allclose(r.value, expected.value)
    # Tenant rollup and shard stats both saw exactly this row.
    state = router.tenant_state("tenant-a")
    assert state.stats.n_ok == 1
    assert shards[state.shard].stats.n_ok == 1


def test_router_batch_and_columns_route_through_tenant(
    fresh_models, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_models[0]
    router = ShardRouter([ModelServer(m, rng=0) for m in fresh_models])
    svc = _svc(model)
    rows = [{svc: _mean(train, svc)}] * 5
    results = router.query_batch("t", [model.response], rows)
    assert len(results) == 5 and all(r.ok for r in results)
    state = router.tenant_state("t")
    assert state.stats.n_queries == 5 and state.stats.n_ok == 5

    cols = {svc: np.zeros(7, dtype=np.int64)}
    cr = router.query_batch_columns("t", [model.response], cols)
    assert cr.ok and cr.n_valid == 7
    assert state.stats.n_queries == 12 and state.stats.n_ok == 12
    assert router.query_batch("t", [model.response], []) == []


def test_unknown_tenant_rejected_when_auto_register_off(fresh_models):
    router = ShardRouter(
        [ModelServer(fresh_models[0], rng=0)], auto_register=False
    )
    with pytest.raises(ServingError):
        router.query("ghost", ["x"], {})


# --------------------------------------------------------------------- #
# Per-tenant budgets
# --------------------------------------------------------------------- #


def test_tenant_admission_sheds_without_touching_neighbours(
    fresh_models, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_models[0]
    shards = [ModelServer(m, rng=0) for m in fresh_models]
    router = ShardRouter(shards)
    hot = AdmissionController(
        window=5, overload_threshold=0.5, shed_fraction=1.0,
        rng=np.random.default_rng(0),
    )
    router.add_tenant("hot", admission=hot)
    for _ in range(5):
        hot.record(True)
    svc = _svc(model)
    ev = {svc: _mean(train, svc)}

    shed = router.query("hot", [model.response], ev)
    assert shed.status == STATUS_SHED and "admission" in shed.reasons[0]
    ok = router.query("cool", [model.response], ev)
    assert ok.ok
    hot_state = router.tenant_state("hot")
    cool_state = router.tenant_state("cool")
    assert hot_state.stats.n_shed == 1 and hot_state.stats.n_ok == 0
    assert cool_state.stats.n_shed == 0 and cool_state.stats.n_ok == 1
    # The shed query never reached any shard.
    assert sum(s.stats.n_queries for s in shards) == 1


def test_tenant_breaker_trips_on_sustained_overload(fresh_models):
    # A shard with an impossible deadline answers approximately with
    # deadline_exceeded set — an overload signal for the tenant breaker.
    slow = ModelServer(fresh_models[0], deadline_seconds=1e-9, rng=0)
    router = ShardRouter([slow], breaker_threshold=2, breaker_cooldown=3)
    model = fresh_models[0]
    for _ in range(2):
        r = router.query("t", [model.response], {})
        assert r.deadline_exceeded
    state = router.tenant_state("t")
    assert state.breaker.state == OPEN and state.breaker.n_trips == 1
    shed = router.query("t", [model.response], {})
    assert shed.status == STATUS_SHED and "circuit open" in shed.reasons[0]
    # Batch sheds are per-row distinct objects and per-row counted.
    results = router.query_batch("t", [model.response], [{}, {}, {}])
    assert [r.status for r in results] == [STATUS_SHED] * 3
    assert len({id(r) for r in results}) == 3
    assert state.stats.n_shed == 4


# --------------------------------------------------------------------- #
# Dynamic batching
# --------------------------------------------------------------------- #


def test_batcher_coalesces_same_signature_submissions(
    fresh_models, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_models[0]
    router = ShardRouter([ModelServer(m, rng=0) for m in fresh_models])
    svc = _svc(model)
    ev = {svc: _mean(train, svc)}
    # Long max_wait so nothing flushes behind our back; flush manually.
    batcher = DynamicBatcher(router, max_batch=256, max_wait_us=5_000_000)
    try:
        # Use tenants that hash to the same shard so they share a bucket.
        shard0 = [
            f"t{i}" for i in range(32)
            if router.shard_of(f"t{i}") == router.shard_of("t0")
        ][:4]
        pendings = [
            batcher.submit(t, [model.response], ev)
            for t in shard0 for _ in range(8)
        ]
        assert not any(p.done() for p in pendings)
        assert batcher.queue_depth == len(pendings)
        assert batcher.flush() == len(pendings)
        results = [p.result(timeout=5.0) for p in pendings]
        assert all(r.ok and r.tier == TIER_COMPILED for r in results)
        expected = router.shards[router.shard_of(shard0[0])].query(
            [model.response], ev
        )
        for r in results:
            np.testing.assert_allclose(r.value, expected.value)
        # 32 same-signature rows in one flush: ratio far above 2x.
        assert batcher.n_flushes == 1
        assert batcher.coalesce_ratio == len(pendings)
        # Each tenant's rollup saw exactly its own rows.
        for t in shard0:
            assert router.tenant_state(t).stats.n_ok == 8
    finally:
        batcher.close()


def test_batcher_flushes_inline_at_max_batch(fresh_models, ediamond_data):
    train, _ = ediamond_data
    model = fresh_models[0]
    router = ShardRouter([ModelServer(fresh_models[0], rng=0)])
    svc = _svc(model)
    ev = {svc: _mean(train, svc)}
    batcher = DynamicBatcher(router, max_batch=4, max_wait_us=5_000_000)
    try:
        pendings = [batcher.submit("t", [model.response], ev) for _ in range(4)]
        # The 4th submission filled the bucket: flushed on this thread.
        assert all(p.done() for p in pendings)
        assert batcher.n_flushes == 1 and batcher.queue_depth == 0
    finally:
        batcher.close()


def test_batcher_background_flush_honours_max_wait(
    fresh_models, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_models[0]
    router = ShardRouter([ModelServer(fresh_models[0], rng=0)])
    svc = _svc(model)
    batcher = DynamicBatcher(router, max_batch=1024, max_wait_us=2000)
    try:
        r = batcher.query("t", [model.response], {svc: _mean(train, svc)})
        assert r.ok  # the flusher, not max_batch, answered this
        assert batcher.n_flushes >= 1
    finally:
        batcher.close()


def test_batcher_bypasses_to_singles_when_batch_tier_tripped(
    fresh_models, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_models[0]
    server = ModelServer(model, breaker_threshold=1, breaker_cooldown=100, rng=0)
    router = ShardRouter([server])
    server.breakers[TIER_COMPILED].record_failure()
    assert server.breakers[TIER_COMPILED].state != CLOSED
    svc = _svc(model)
    batcher = DynamicBatcher(router, max_batch=64, max_wait_us=5_000_000)
    try:
        pending = batcher.submit("t", [model.response], {svc: _mean(train, svc)})
        # Bypass resolves immediately: no queueing behind a broken tier.
        assert pending.done() and batcher.n_bypass == 1
        r = pending.result(timeout=0)
        assert r.ok and r.tier == TIER_SWEEP
        assert batcher.queue_depth == 0 and batcher.n_flushes == 0
    finally:
        batcher.close()


def test_batcher_sheds_at_submit_time(fresh_models):
    router = ShardRouter(
        [ModelServer(fresh_models[0], rng=0)],
        breaker_threshold=1, breaker_cooldown=100,
    )
    model = fresh_models[0]
    router.tenant_state("t").breaker.record_failure()
    batcher = DynamicBatcher(router, max_batch=64, max_wait_us=5_000_000)
    try:
        pending = batcher.submit("t", [model.response], {})
        assert pending.done()
        assert pending.result(timeout=0).status == STATUS_SHED
        assert batcher.queue_depth == 0
    finally:
        batcher.close()


def test_batcher_rejects_after_close(fresh_models):
    router = ShardRouter([ModelServer(fresh_models[0], rng=0)])
    batcher = DynamicBatcher(router, max_batch=4, max_wait_us=1000)
    batcher.close()
    with pytest.raises(ServingError):
        batcher.submit("t", ["x"], {})


def test_batcher_validates_knobs(fresh_models):
    router = ShardRouter([ModelServer(fresh_models[0], rng=0)])
    with pytest.raises(ServingError):
        DynamicBatcher(router, max_batch=0)
    with pytest.raises(ServingError):
        DynamicBatcher(router, max_wait_us=0)


def test_shard_index_rejects_bad_tenants():
    for bad in ("", "   ", None, 7, b"bytes"):
        with pytest.raises(ServingError):
            shard_index(bad, 4)


def test_router_rejects_bad_tenants(fresh_models):
    router = ShardRouter([ModelServer(fresh_models[0], rng=0)])
    for bad in ("", "  \t", None, 0):
        with pytest.raises(ServingError):
            router.add_tenant(bad)
        with pytest.raises(ServingError):
            router.tenant_state(bad)
    # Valid names with surrounding content still register normally.
    router.add_tenant("tenant-a")
    assert router.tenant_state("tenant-a") is not None


def test_batcher_close_joins_flusher_and_drains(
    fresh_models, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_models[0]
    svc = _svc(model)
    router = ShardRouter([ModelServer(fresh_models[0], rng=0)])
    # A flush cadence far longer than the test: only close() can be the
    # thing that answers the pending query.
    batcher = DynamicBatcher(router, max_batch=64, max_wait_us=5_000_000)
    pending = batcher.submit("t", [model.response], {svc: _mean(train, svc)})
    assert not pending.done()
    batcher.close()
    # close() joined the background flusher, then drained the queue.
    assert not batcher._flusher.is_alive()
    assert pending.done()
    assert pending.result(timeout=0).ok
    assert batcher.queue_depth == 0
    # And stays closed: late submits are rejected, close is idempotent.
    with pytest.raises(ServingError):
        batcher.submit("t", [model.response], {})
    batcher.close()


def test_pending_query_default_wait_bound(fresh_models):
    from repro.serving.fabric import PendingQuery

    router = ShardRouter([ModelServer(fresh_models[0], rng=0)])
    batcher = DynamicBatcher(router, max_batch=4, max_wait_us=2000)
    try:
        # The bound is a multiple of the flush cadence, floored at 1s so
        # tiny cadences do not turn scheduler jitter into failures.
        assert batcher.default_result_timeout == max(1.0, 50.0 * 0.002)
        pending = batcher.submit("t", ["x"], {})
        assert pending.default_timeout == batcher.default_result_timeout
    finally:
        batcher.close()
    # A waiter whose batch never flushes wakes with a diagnosable error
    # instead of blocking forever.
    orphan = PendingQuery("t", {}, default_timeout=0.05)
    with pytest.raises(ServingError, match="timed out"):
        orphan.result()


# --------------------------------------------------------------------- #
# Facade + chaos
# --------------------------------------------------------------------- #


def test_fabric_stats_rollup_includes_batcher(fresh_models, ediamond_data):
    train, _ = ediamond_data
    model = fresh_models[0]
    svc = _svc(model)
    with build_fabric(fresh_models, max_batch=8, max_wait_us=2000) as fab:
        assert isinstance(fab, ServingFabric)
        r = fab.query("t", [model.response], {svc: _mean(train, svc)})
        assert r.ok
        st = fab.stats()
        assert st["n_shards"] == 4
        assert st["batcher"]["submitted"] == 1
        assert st["tenants"]["t"]["stats"]["n_ok"] == 1
        assert "breakers" in st["shards"][0]


def test_fabric_chaos_tripped_shard_does_not_bleed_across_tenants(
    fresh_models, ediamond_data
):
    """Seeded tenant storm with one poisoned shard: its tenants degrade
    through the fallback chain; tenants on healthy shards keep getting
    compiled answers; every row lands in exactly one tenant rollup."""
    train, _ = ediamond_data
    model = fresh_models[0]
    svc = _svc(model)
    ev = {svc: _mean(train, svc)}
    shards = [ModelServer(m, rng=0) for m in fresh_models]

    def boom(*a):
        raise RuntimeError("injected")

    poisoned = 0
    shards[poisoned].chain.engine.failure_hook = boom

    router = ShardRouter(shards)
    tenants = [f"tenant-{i}" for i in range(12)]
    sick = [t for t in tenants if router.shard_of(t) == poisoned]
    healthy = [t for t in tenants if router.shard_of(t) != poisoned]
    assert sick and healthy  # 12 hashed tenants cover all 4 shards

    batcher = DynamicBatcher(router, max_batch=16, max_wait_us=2000)
    rng = np.random.default_rng(7)
    order = rng.permutation(np.repeat(np.arange(12), 20))
    try:
        with ThreadPoolExecutor(8) as ex:
            results = list(
                ex.map(
                    lambda i: (
                        tenants[i],
                        batcher.query(tenants[i], [model.response], ev),
                    ),
                    order,
                )
            )
    finally:
        batcher.close()

    by_tenant = {}
    for name, r in results:
        by_tenant.setdefault(name, []).append(r)
    for t in healthy:
        assert all(r.ok and r.tier == TIER_COMPILED for r in by_tenant[t])
    for t in sick:
        # Degraded, not dead: every answer still arrives via a fallback
        # tier (or is shed by the tenant budget) — never a crash.
        assert all(
            (r.ok and r.tier != TIER_COMPILED) or r.status == STATUS_SHED
            for r in by_tenant[t]
        )
    # Accounting balances: each of the 240 rows in exactly one rollup.
    total = sum(
        router.tenant_state(t).stats.n_queries for t in tenants
    )
    assert total == len(order)
    served = sum(s.stats.n_queries for s in shards)
    shed_at_gate = sum(
        router.tenant_state(t).stats.n_shed for t in tenants
    ) - sum(s.stats.n_shed for s in shards)
    assert served + shed_at_gate == len(order)


def test_fabric_concurrent_same_signature_traffic_coalesces(
    fresh_models, ediamond_data
):
    train, _ = ediamond_data
    model = fresh_models[0]
    svc = _svc(model)
    ev = {svc: _mean(train, svc)}
    with build_fabric(fresh_models, max_batch=32, max_wait_us=2000) as fab:
        barrier = threading.Barrier(8)

        def worker(w):
            barrier.wait()
            return [
                fab.query(f"tenant-{(w + j) % 6}", [model.response], ev)
                for j in range(30)
            ]

        with ThreadPoolExecutor(8) as ex:
            out = [r for rs in ex.map(worker, range(8)) for r in rs]
        assert all(r.ok for r in out)
        assert fab.batcher.coalesce_ratio > 1.0
