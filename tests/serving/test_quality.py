"""Data-quality gate (quarantine) and post-publish accuracy tripwire."""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.exceptions import ServingError
from repro.serving.quality import AccuracyTripwire, DataQualityGate
from repro.serving.registry import ModelRegistry

COLS = ("x", "y")


def _window(rng, n=100, x_mean=1.0, y_mean=2.0, nan_frac=0.0, outliers=0):
    x = rng.normal(x_mean, 0.1, size=n)
    y = rng.normal(y_mean, 0.2, size=n)
    if nan_frac:
        k = int(n * nan_frac)
        x[:k] = np.nan
    if outliers:
        x[-outliers:] = x_mean + 1e6
    return Dataset({"x": x, "y": y})


def test_gate_validation():
    with pytest.raises(ServingError):
        DataQualityGate(columns=())
    with pytest.raises(ServingError):
        DataQualityGate(columns=COLS, max_nan_fraction=1.0)
    with pytest.raises(ServingError):
        DataQualityGate(columns=COLS, ema=0.0)


def test_clean_windows_accepted_and_build_reference():
    rng = np.random.default_rng(0)
    gate = DataQualityGate(columns=COLS, min_rows=10)
    for _ in range(3):
        assert gate.inspect(_window(rng)).accepted
    assert gate.has_reference and gate.n_accepted == 3
    assert gate.quarantined == []


def test_missing_column_quarantined():
    rng = np.random.default_rng(0)
    gate = DataQualityGate(columns=COLS, min_rows=10)
    v = gate.inspect(Dataset({"x": rng.normal(size=50)}))
    assert not v.accepted and any("missing column 'y'" in r for r in v.reasons)
    assert gate.quarantined[0][0] == 0


def test_nan_flood_quarantined():
    rng = np.random.default_rng(0)
    gate = DataQualityGate(columns=COLS, min_rows=10, max_nan_fraction=0.2)
    v = gate.inspect(_window(rng, nan_frac=0.5))
    assert not v.accepted and any("non-finite fraction" in r for r in v.reasons)


def test_outlier_burst_quarantined():
    rng = np.random.default_rng(0)
    gate = DataQualityGate(columns=COLS, min_rows=10, max_outlier_fraction=0.05)
    v = gate.inspect(_window(rng, outliers=20))
    assert not v.accepted and any("outlier fraction" in r for r in v.reasons)


def test_short_window_quarantined():
    rng = np.random.default_rng(0)
    gate = DataQualityGate(columns=COLS, min_rows=50)
    v = gate.inspect(_window(rng, n=10))
    assert not v.accepted and any("rows < 50" in r for r in v.reasons)


def test_mean_shift_drift_quarantined_then_recovers():
    rng = np.random.default_rng(0)
    gate = DataQualityGate(columns=COLS, min_rows=10, drift_threshold=6.0)
    for _ in range(3):
        gate.inspect(_window(rng))
    poisoned = _window(rng, x_mean=50.0)       # unit mix-up style shift
    v = gate.inspect(poisoned)
    assert not v.accepted
    assert any("drift" in r for r in v.reasons)
    assert v.drift_score > 6.0 and v.column_drift["x"] > 6.0
    # quarantined windows never update the reference …
    ref_after = gate.reference()
    clean = gate.inspect(_window(rng))
    # … so the next clean window still matches it
    assert clean.accepted
    assert gate.reference()["x"][0] == pytest.approx(ref_after["x"][0], rel=0.05)
    assert [i for i, _ in gate.quarantined] == [3]


# --------------------------------------------------------------------- #
# Accuracy tripwire
# --------------------------------------------------------------------- #


def _noise_model(env, rng, n=200):
    """A model trained on garbage: same schema, no structure to learn."""
    from repro.core.kertbn import build_discrete_kertbn

    cols = {
        s: rng.uniform(0.1, 10.0, size=n)
        for s in (*env.service_names, env.response)
    }
    return build_discrete_kertbn(env.workflow, Dataset(cols), n_bins=4)


def test_tripwire_keeps_an_equally_good_model(
    tmp_path, fresh_discrete_model, ediamond_data
):
    _, test = ediamond_data
    reg = ModelRegistry(str(tmp_path / "reg"))
    tw = AccuracyTripwire(reg, max_regression=0.5)
    first = tw.publish_checked(fresh_discrete_model, test)
    assert first.version == 1 and not first.rolled_back
    assert first.previous_score is None  # nothing to compare against yet
    again = tw.publish_checked(fresh_discrete_model, test)
    assert again.version == 2 and not again.rolled_back
    assert again.new_score == pytest.approx(again.previous_score)
    assert reg.active_version == 2


def test_tripwire_rolls_back_a_regressed_model(
    tmp_path, fresh_discrete_model, ediamond_env, ediamond_data
):
    _, test = ediamond_data
    reg = ModelRegistry(str(tmp_path / "reg"))
    tw = AccuracyTripwire(reg, max_regression=0.5)
    tw.publish_checked(fresh_discrete_model, test)
    bad = _noise_model(ediamond_env, np.random.default_rng(7))
    outcome = tw.publish_checked(bad, test)
    assert outcome.rolled_back and tw.n_rollbacks == 1
    assert outcome.version == 2 and outcome.active_version == 1
    assert reg.active_version == 1
    assert not reg.info(2).healthy
    assert "tripwire" in reg.info(2).reason
    # the rolled-back-to model still serves
    assert reg.load().log10_likelihood(test) == pytest.approx(
        fresh_discrete_model.log10_likelihood(test)
    )
