"""Versioned model registry: publish/activate/rollback/retention."""

import json
import os

import numpy as np
import pytest

from repro.exceptions import DataError, ServingError
from repro.serving.registry import ModelRegistry


def test_keep_validation(tmp_path):
    with pytest.raises(ServingError):
        ModelRegistry(str(tmp_path), keep=1)


def test_publish_assigns_monotonic_versions(tmp_path, ediamond_discrete_model):
    reg = ModelRegistry(str(tmp_path / "reg"))
    v1 = reg.publish(ediamond_discrete_model)
    v2 = reg.publish(ediamond_discrete_model)
    assert (v1, v2) == (1, 2)
    assert reg.active_version == 2
    assert [i.version for i in reg.versions()] == [1, 2]
    assert all(i.healthy for i in reg.versions())


def test_publish_without_activate_keeps_pointer(tmp_path, ediamond_discrete_model):
    reg = ModelRegistry(str(tmp_path / "reg"))
    reg.publish(ediamond_discrete_model)
    v2 = reg.publish(ediamond_discrete_model, activate=False)
    assert reg.active_version == 1
    reg.activate(v2)
    assert reg.active_version == 2


def test_load_roundtrips_the_active_model(
    tmp_path, ediamond_discrete_model, ediamond_data
):
    _, test = ediamond_data
    reg = ModelRegistry(str(tmp_path / "reg"))
    reg.publish(ediamond_discrete_model)
    loaded = reg.load()
    assert loaded.log10_likelihood(test) == pytest.approx(
        ediamond_discrete_model.log10_likelihood(test)
    )


def test_registry_state_survives_reopen(tmp_path, ediamond_discrete_model):
    root = str(tmp_path / "reg")
    reg = ModelRegistry(root)
    reg.publish(ediamond_discrete_model)
    reg.publish(ediamond_discrete_model)
    reg.rollback(reason="bad build")
    reopened = ModelRegistry(root)
    assert reopened.active_version == 1
    assert not reopened.info(2).healthy
    assert reopened.info(2).reason == "bad build"
    # monotonic ids continue after reopen — never reused
    assert reopened.publish(ediamond_discrete_model) == 3


def test_rollback_requires_a_healthy_predecessor(tmp_path, ediamond_discrete_model):
    reg = ModelRegistry(str(tmp_path / "reg"))
    with pytest.raises(ServingError):
        reg.rollback()
    reg.publish(ediamond_discrete_model)
    with pytest.raises(ServingError):
        reg.rollback()  # v1 has no predecessor


def test_rollback_marks_unhealthy_and_refuses_reactivation(
    tmp_path, ediamond_discrete_model
):
    reg = ModelRegistry(str(tmp_path / "reg"))
    reg.publish(ediamond_discrete_model)
    reg.publish(ediamond_discrete_model)
    assert reg.rollback(reason="regressed") == 1
    assert reg.active_version == 1
    assert not reg.info(2).healthy
    with pytest.raises(ServingError):
        reg.activate(2)


def test_retention_prunes_but_protects_active_and_rollback_target(
    tmp_path, ediamond_discrete_model
):
    reg = ModelRegistry(str(tmp_path / "reg"), keep=2)
    for _ in range(5):
        reg.publish(ediamond_discrete_model)
    kept = [i.version for i in reg.versions()]
    assert len(kept) == 2 and reg.active_version == 5
    assert reg.previous_healthy() == 4
    # pruned bundles are gone from disk; kept ones remain loadable
    files = {f for f in os.listdir(reg.root) if f.endswith(".json")}
    assert files == {"MANIFEST.json", "v000004.json", "v000005.json"}
    assert reg.load(4) is not None
    # and rollback still works after heavy pruning
    assert reg.rollback() == 4


def test_corrupt_manifest_raises_dataerror(tmp_path, ediamond_discrete_model):
    root = str(tmp_path / "reg")
    reg = ModelRegistry(root)
    reg.publish(ediamond_discrete_model)
    with open(os.path.join(root, "MANIFEST.json"), "w") as fh:
        fh.write('{"schema_version": 1, "next_ver')
    with pytest.raises(DataError, match="corrupt"):
        ModelRegistry(root)


def test_truncated_manifest_names_missing_key(tmp_path, ediamond_discrete_model):
    root = str(tmp_path / "reg")
    reg = ModelRegistry(root)
    reg.publish(ediamond_discrete_model)
    path = os.path.join(root, "MANIFEST.json")
    with open(path) as fh:
        spec = json.load(fh)
    del spec["versions"]
    with open(path, "w") as fh:
        json.dump(spec, fh)
    with pytest.raises(DataError, match="'versions'"):
        ModelRegistry(root)


def test_missing_bundle_on_disk_is_a_dataerror(tmp_path, ediamond_discrete_model):
    root = str(tmp_path / "reg")
    reg = ModelRegistry(root)
    v = reg.publish(ediamond_discrete_model)
    os.remove(os.path.join(root, reg.info(v).file))
    with pytest.raises(DataError, match="missing on disk"):
        reg.load(v)


def test_unknown_version_is_a_servingerror(tmp_path, ediamond_discrete_model):
    reg = ModelRegistry(str(tmp_path / "reg"))
    reg.publish(ediamond_discrete_model)
    with pytest.raises(ServingError):
        reg.info(99)
    with pytest.raises(ServingError):
        reg.activate(99)


def test_metadata_is_persisted(tmp_path, ediamond_discrete_model):
    root = str(tmp_path / "reg")
    reg = ModelRegistry(root)
    v = reg.publish(ediamond_discrete_model, metadata={"cycle": 7})
    assert ModelRegistry(root).info(v).metadata == {"cycle": 7}
