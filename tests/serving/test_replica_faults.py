"""Seeded shard-fault injection: windows, determinism, timelines."""

import math
import time

import pytest

from repro.exceptions import ServingError
from repro.serving.faults import (
    KIND_BLACKOUT,
    KIND_ERRORS,
    KIND_LATENCY,
    KIND_RAMP,
    FaultWindow,
    ReplicaFaultInjector,
)


# --------------------------------------------------------------------- #
# FaultWindow validation + semantics
# --------------------------------------------------------------------- #


def test_window_rejects_bad_specs():
    with pytest.raises(ServingError):
        FaultWindow("meteor", 0, 10)
    with pytest.raises(ServingError):
        FaultWindow(KIND_ERRORS, -1, 10)
    with pytest.raises(ServingError):
        FaultWindow(KIND_ERRORS, 5, 5)  # empty
    with pytest.raises(ServingError):
        FaultWindow(KIND_ERRORS, 0, 10, probability=1.5)
    with pytest.raises(ServingError):
        FaultWindow(KIND_LATENCY, 0, 10)  # needs latency_s > 0
    with pytest.raises(ServingError):
        FaultWindow(KIND_RAMP, 0, math.inf, probability=0.5)  # finite end


def test_window_half_open_and_probabilities():
    w = FaultWindow(KIND_BLACKOUT, 10, 20)
    assert not w.active_at(9) and w.active_at(10)
    assert w.active_at(19) and not w.active_at(20)
    assert w.failure_probability(10) == 1.0
    assert w.failure_probability(20) == 0.0

    e = FaultWindow(KIND_ERRORS, 0, 100, probability=0.3)
    assert e.failure_probability(50) == 0.3

    # Ramps decay linearly from p0 to zero across the window.
    r = FaultWindow(KIND_RAMP, 0, 10, probability=1.0)
    assert r.failure_probability(0) == 1.0
    assert r.failure_probability(5) == pytest.approx(0.5)
    assert r.failure_probability(9) == pytest.approx(0.1)
    assert r.failure_probability(10) == 0.0

    lat = FaultWindow(KIND_LATENCY, 0, 10, latency_s=0.01)
    assert lat.failure_probability(5) == 0.0  # delays, never fails


# --------------------------------------------------------------------- #
# Injector behavior
# --------------------------------------------------------------------- #


def test_blackout_fails_exactly_its_window():
    inj = ReplicaFaultInjector(rng=0)
    inj.blackout(duration=5)
    verdicts = [inj.before_call() for _ in range(8)]
    assert all(v is not None and "blackout" in v for v in verdicts[:5])
    assert verdicts[5:] == [None, None, None]
    assert inj.n_failed == 5 and inj.n_calls == 8


def test_open_ended_blackout_until_clear():
    inj = ReplicaFaultInjector(rng=0)
    inj.blackout()  # no duration: until clear()
    assert all(inj.before_call() is not None for _ in range(10))
    inj.clear()
    assert all(inj.before_call() is None for _ in range(10))


def test_error_burst_is_seed_deterministic():
    def pattern(seed):
        inj = ReplicaFaultInjector(rng=seed)
        inj.error_burst(0.5, duration=200)
        return [inj.before_call() is not None for _ in range(200)]

    a, b = pattern(42), pattern(42)
    assert a == b
    assert pattern(43) != a  # a different seed flips some draws
    # Roughly half fail at p=0.5 (seeded, so this bound is stable).
    assert 60 < sum(a) < 140


def test_latency_storm_sleeps_on_the_calling_thread():
    inj = ReplicaFaultInjector(rng=0)
    inj.latency_storm(0.02, probability=1.0, duration=3)
    t0 = time.monotonic()
    verdicts = [inj.before_call() for _ in range(3)]
    elapsed = time.monotonic() - t0
    assert verdicts == [None, None, None]  # delayed, not failed
    assert elapsed >= 0.05
    assert inj.n_delayed == 3
    assert inj.injected_sleep_s == pytest.approx(0.06)


def test_recovery_ramp_decays_to_healthy():
    inj = ReplicaFaultInjector(rng=7)
    inj.recovery_ramp(1.0, duration=100)
    fails = [inj.before_call() is not None for _ in range(120)]
    # Early calls mostly fail, late calls mostly pass, post-window none.
    assert sum(fails[:20]) > 15
    assert sum(fails[80:100]) < 8
    assert not any(fails[100:])
    with pytest.raises(ServingError):
        inj.recovery_ramp(0.5, duration=None)


def test_windows_compose_worst_case():
    # A blackout layered over an error burst: the blackout dominates.
    inj = ReplicaFaultInjector(
        windows=[
            FaultWindow(KIND_ERRORS, 0, 10, probability=0.1),
            FaultWindow(KIND_BLACKOUT, 0, 10),
        ],
        rng=0,
    )
    assert all(inj.before_call() is not None for _ in range(10))


def test_injector_rejects_non_window_inputs():
    with pytest.raises(ServingError):
        ReplicaFaultInjector(windows=["not-a-window"])


def test_snapshot_counts():
    inj = ReplicaFaultInjector(rng=0)
    inj.blackout(duration=2)
    for _ in range(4):
        inj.before_call()
    snap = inj.snapshot()
    assert snap["n_calls"] == 4 and snap["n_failed"] == 2
    assert snap["n_windows"] == 1
