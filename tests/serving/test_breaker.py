"""Circuit breaker and admission control: deterministic state machines."""

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    CircuitBreaker,
)


def test_breaker_validation():
    with pytest.raises(ServingError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ServingError):
        CircuitBreaker(cooldown=0)


def test_breaker_opens_after_threshold_consecutive_failures():
    b = CircuitBreaker(failure_threshold=3, cooldown=5)
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED and b.allow()
    b.record_failure()
    assert b.state == OPEN and b.n_trips == 1


def test_success_resets_consecutive_count():
    b = CircuitBreaker(failure_threshold=2, cooldown=5)
    b.record_failure()
    b.record_success()
    b.record_failure()
    assert b.state == CLOSED  # never two in a row


def test_cooldown_then_half_open_probe():
    b = CircuitBreaker(failure_threshold=1, cooldown=3)
    b.record_failure()
    assert b.state == OPEN
    # refused for exactly `cooldown` calls
    assert [b.allow() for _ in range(3)] == [False, False, False]
    # then one half-open probe is let through; concurrent calls are not
    assert b.allow() is True
    assert b.state == HALF_OPEN
    assert b.allow() is False
    # failed probe -> re-open for a fresh cooldown
    b.record_failure()
    assert b.state == OPEN and b.n_trips == 2
    assert not b.allow()


def test_successful_probe_closes():
    b = CircuitBreaker(failure_threshold=1, cooldown=1)
    b.record_failure()
    assert not b.allow()          # cooldown tick
    assert b.allow()              # half-open probe
    b.record_success()
    assert b.state == CLOSED and b.allow()


def test_admission_validation():
    with pytest.raises(ServingError):
        AdmissionController(window=0)
    with pytest.raises(ServingError):
        AdmissionController(overload_threshold=0.0)
    with pytest.raises(ServingError):
        AdmissionController(shed_fraction=1.5)


def test_admission_sheds_only_when_window_is_overloaded():
    ac = AdmissionController(
        window=10, overload_threshold=0.5, shed_fraction=1.0,
        rng=np.random.default_rng(0),
    )
    for _ in range(9):
        ac.record(True)
    assert not ac.overloaded          # window not yet full
    assert ac.admit()
    ac.record(True)
    assert ac.overloaded
    assert not ac.admit() and ac.n_shed == 1
    # recovery: healthy outcomes push the fraction back down
    for _ in range(6):
        ac.record(False)
    assert not ac.overloaded
    assert ac.admit()


def test_admission_is_deterministic_under_a_seed():
    def run():
        ac = AdmissionController(
            window=5, overload_threshold=0.5, shed_fraction=0.5,
            rng=np.random.default_rng(42),
        )
        for _ in range(5):
            ac.record(True)
        return [ac.admit() for _ in range(50)]

    assert run() == run()
    assert not all(run())  # some shed
    assert any(run())      # but not a full outage: work keeps trickling
