"""Fault tolerance: channel faults, retries, stale fallback, accounting.

The chaos tests use seeded RNGs throughout, so every drop/duplicate/delay
pattern — and therefore every fresh/stale/failed partition — is
deterministic and replayable.
"""

import time

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.bn.learning.mle import fit_linear_gaussian
from repro.decentralized.agent import LearningAgent, linear_gaussian_fitter
from repro.decentralized.coordinator import Coordinator
from repro.decentralized.messaging import Channel, ChannelFaults, Network
from repro.decentralized.resilience import (
    FAILED,
    FRESH,
    STALE,
    RetryPolicy,
    RoundState,
)
from repro.exceptions import CommunicationError, LearningError

CHAOS_SEED = 42


# --------------------------------------------------------------------- #
# Fault and policy configuration
# --------------------------------------------------------------------- #


def test_channel_faults_validation():
    with pytest.raises(CommunicationError):
        ChannelFaults(drop=1.0)
    with pytest.raises(CommunicationError):
        ChannelFaults(duplicate=-0.1)
    with pytest.raises(CommunicationError):
        ChannelFaults(delay_seconds=-1.0)
    assert not ChannelFaults().any
    assert ChannelFaults(drop=0.1).any


def test_retry_policy_validation_and_backoff():
    with pytest.raises(LearningError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(LearningError):
        RetryPolicy(backoff_base=-0.1)
    with pytest.raises(LearningError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(LearningError):
        RetryPolicy(fit_timeout=0.0)
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(3) == pytest.approx(0.4)


# --------------------------------------------------------------------- #
# Channel fault injection
# --------------------------------------------------------------------- #


def test_transmit_drop_duplicate_delay_accounting():
    rng = np.random.default_rng(CHAOS_SEED)
    ch = Channel("p", "x", faults=ChannelFaults(drop=0.3, duplicate=0.3, delay=0.3))
    delivered = []
    for _ in range(200):
        delivered.extend(ch.transmit("p", np.zeros(10), rng))
    assert ch.n_sent == 200
    assert ch.n_dropped > 0
    assert ch.n_duplicated > 0
    assert ch.n_delayed > 0
    # Every surviving transfer delivered once, duplicated ones twice.
    assert ch.n_delivered == (200 - ch.n_dropped) + ch.n_duplicated
    assert len(delivered) == ch.n_delivered
    assert ch.bytes_delivered == 80 * ch.n_delivered
    assert ch.delay_seconds == pytest.approx(0.05 * ch.n_delayed)
    assert any(m.latency > 0 for m in delivered)


def test_transmit_is_deterministic_under_seed():
    def run():
        rng = np.random.default_rng(CHAOS_SEED)
        ch = Channel("p", "x", faults=ChannelFaults(drop=0.4, duplicate=0.2))
        for _ in range(100):
            ch.transmit("p", np.zeros(5), rng)
        return (ch.n_dropped, ch.n_duplicated, ch.n_delivered)

    assert run() == run()


def test_faultless_transmit_equals_send():
    ch = Channel("p", "x")
    out = ch.transmit("p", np.zeros(7))
    assert len(out) == 1
    assert ch.n_sent == ch.n_delivered == 1
    assert ch.n_dropped == ch.n_duplicated == ch.n_delayed == 0


# --------------------------------------------------------------------- #
# Agent re-delivery
# --------------------------------------------------------------------- #


def test_agent_duplicate_redelivery_last_copy_wins(rng):
    agent = LearningAgent("x", ("p",), linear_gaussian_fitter())
    agent.collect_local(rng.normal(size=50))
    ch = Channel("p", "x")
    agent.receive(ch.send("p", np.zeros(50)))
    assert agent.n_duplicates == 0
    agent.receive(ch.send("p", np.ones(50)))  # duplicate: overwrite, count
    assert agent.n_duplicates == 1
    assert agent.n_received == 2
    np.testing.assert_array_equal(agent._columns["p"], np.ones(50))
    assert agent.ready


def test_agent_begin_round_clears_stale_columns(rng):
    agent = LearningAgent("x", ("p",), linear_gaussian_fitter())
    agent.collect_local(rng.normal(size=50))
    ch = Channel("p", "x")
    msg = ch.transmit("p", rng.normal(size=50), rng,
                      faults=ChannelFaults(delay=0.9, delay_seconds=0.2))
    for m in msg:
        agent.receive(m)
    if msg:
        assert agent.last_wait_seconds in (0.0, 0.2)
    agent.begin_round()
    assert not agent.ready
    assert agent.missing == ("x", "p")
    assert agent.last_wait_seconds == 0.0


# --------------------------------------------------------------------- #
# Per-round network accounting (the double-count bugfix)
# --------------------------------------------------------------------- #


def _chain_data(n=120, seed=0):
    r = np.random.default_rng(seed)
    a = r.normal(1.0, 0.1, size=n)
    b = 0.5 * a + r.normal(0.0, 0.1, size=n)
    c = 0.25 * b + r.normal(0.0, 0.1, size=n)
    return Dataset({"a": a, "b": b, "c": c})


def _chain_dag():
    from repro.bn.dag import DAG

    return DAG(nodes=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])


def test_repeated_rounds_report_per_round_deltas():
    coord = Coordinator(_chain_dag(), linear_gaussian_fitter())
    r1 = coord.learn_round(_chain_data(seed=1))
    r2 = coord.learn_round(_chain_data(seed=2))
    # Each round ships one column per structure edge — no accumulation.
    assert r1.network_summary["n_messages"] == 2
    assert r2.network_summary["n_messages"] == 2
    assert r2.network_summary["total_bytes"] == r1.network_summary["total_bytes"]
    assert (r1.round_index, r2.round_index) == (0, 1)
    # Cumulative accounting still available on the network itself.
    assert coord.network.summary()["n_messages"] == 4


def test_channels_keep_counters_not_history():
    ch = Channel("p", "x")
    for _ in range(1000):
        ch.send("p", np.zeros(100))
    assert ch.n_delivered == 1000
    assert ch.total_bytes == 1000 * 800
    assert not hasattr(ch, "delivered")  # no unbounded message list


# --------------------------------------------------------------------- #
# Degraded rounds: retries, timeouts, stale fallback
# --------------------------------------------------------------------- #


def test_chaos_round_completes_with_stale_substitution():
    """Acceptance: 20% parent-column drop + one timed-out agent still
    yields a complete result, with fresh/stale/failed reported."""

    slow = {"node": None}

    def fitter(data, variable, parents):
        if variable == slow["node"]:
            time.sleep(0.08)
        return fit_linear_gaussian(data, variable, parents)

    def run():
        slow["node"] = None
        coord = Coordinator(
            _chain_dag(),
            fitter,
            retry_policy=RetryPolicy(max_attempts=4, fit_timeout=0.05),
            rng=CHAOS_SEED,
        )
        healthy = coord.learn_round(_chain_data(seed=1))
        assert healthy.complete and not healthy.degraded
        assert set(healthy.fresh) == {"a", "b", "c"}
        # Chaos: drop 20% of parent-column transfers, slow one agent past
        # its fit budget.
        coord.network.faults = ChannelFaults(drop=0.2)
        slow["node"] = "b"
        r = coord.learn_round(_chain_data(seed=2))
        return coord, r

    coord, result = run()
    assert result.complete                      # every node has a CPD
    assert set(result.cpds) == {"a", "b", "c"}
    assert result.degraded
    assert "b" in result.stale                  # timed out -> last-known-good
    assert "timeout" in result.outcomes["b"].error
    assert result.outcomes["b"].age == 1
    assert not result.failed
    assert set(result.fresh) | set(result.stale) == {"a", "b", "c"}
    # The substituted CPD is exactly round 1's fit for b.
    assert result.cpds["b"] is coord.state.fallback("b")

    # Deterministic under the fixed seed: the partition repeats exactly.
    _, again = run()
    assert again.fresh == result.fresh
    assert again.stale == result.stale
    assert again.network_summary["n_dropped"] == result.network_summary["n_dropped"]


def test_retry_recovers_dropped_columns():
    # Heavy drop rate but generous retries: deliveries eventually land,
    # and the retry waits are charged to the agents' wait accounting.
    from repro.bn.dag import DAG

    children = [f"c{i}" for i in range(6)]
    dag = DAG(nodes=["root", *children],
              edges=[("root", c) for c in children])
    r = np.random.default_rng(3)
    root = r.normal(1.0, 0.1, size=100)
    cols = {"root": root}
    for c in children:
        cols[c] = 0.5 * root + r.normal(0.0, 0.1, size=100)
    coord = Coordinator(
        dag,
        linear_gaussian_fitter(),
        retry_policy=RetryPolicy(max_attempts=8, backoff_base=0.01),
        faults=ChannelFaults(drop=0.5),
        rng=CHAOS_SEED,
    )
    result = coord.learn_round(Dataset(cols))
    assert result.complete
    assert result.network_summary["n_dropped"] > 0
    retried = [n for n, o in result.outcomes.items() if o.attempts > 1]
    assert retried  # at least one node needed a re-request at drop=0.5
    assert any(result.per_agent_wait_seconds[n] > 0 for n in retried)
    # Delivery waits are part of the concurrent wall clock.
    assert result.decentralized_seconds >= max(
        result.per_agent_seconds[n] + result.per_agent_wait_seconds[n]
        for n in result.per_agent_seconds
    )


def test_first_round_failure_without_fallback_is_reported():
    # Everything dropped, no retries, no earlier round: non-root nodes
    # have no CPD at all and are reported failed — not raised.
    coord = Coordinator(
        _chain_dag(),
        linear_gaussian_fitter(),
        retry_policy=RetryPolicy(max_attempts=1),
        faults=ChannelFaults(drop=0.999),
        rng=CHAOS_SEED,
    )
    result = coord.learn_round(_chain_data(seed=4))
    assert not result.complete
    assert "a" in result.fresh            # root node needs no messages
    assert set(result.failed) == {"b", "c"}
    assert "b" not in result.cpds
    assert result.outcomes["c"].error is not None


def test_strict_mode_raises_instead_of_degrading():
    coord = Coordinator(
        _chain_dag(),
        linear_gaussian_fitter(),
        retry_policy=RetryPolicy(max_attempts=1),
        faults=ChannelFaults(drop=0.999),
        rng=CHAOS_SEED,
        strict=True,
    )
    with pytest.raises(LearningError):
        coord.learn_round(_chain_data(seed=5))


def test_fit_exception_falls_back_to_stale():
    calls = {"fail": False}

    def fitter(data, variable, parents):
        if calls["fail"] and variable == "c":
            raise LearningError("degenerate window")
        return fit_linear_gaussian(data, variable, parents)

    coord = Coordinator(_chain_dag(), fitter)
    first = coord.learn_round(_chain_data(seed=6))
    assert first.complete
    calls["fail"] = True
    second = coord.learn_round(_chain_data(seed=7))
    assert second.complete
    assert second.stale == ("c",)
    assert "degenerate window" in second.outcomes["c"].error
    assert second.cpds["c"] is first.cpds["c"]
    # Ages keep growing while the node stays broken.
    third = coord.learn_round(_chain_data(seed=8))
    assert third.outcomes["c"].age == 2


def test_missing_column_in_window_degrades_not_crashes():
    coord = Coordinator(_chain_dag(), linear_gaussian_fitter())
    first = coord.learn_round(_chain_data(seed=9))
    assert first.complete
    data = _chain_data(seed=10)
    partial = Dataset({"a": data["a"], "c": data["c"]})  # "b" never monitored
    second = coord.learn_round(partial)
    # b has no local column and c misses its parent: both go stale.
    assert set(second.stale) == {"b", "c"}
    assert second.complete


def test_round_state_bookkeeping():
    state = RoundState()
    assert state.fallback("x") is None
    state.record_fresh("x", "cpd-1")
    state.close_round(["x"])
    assert state.age_of("x") == 0
    state.close_round([])  # x not refreshed
    assert state.age_of("x") == 1
    assert state.snapshot() == {"x": 1}
    assert state.rounds_completed == 2
    state.record_fresh("x", "cpd-2")
    assert state.fallback("x") == "cpd-2"
