"""Decentralized learning: messaging, agents, coordinator, parallel path."""

import numpy as np
import pytest

from repro.bn.data import Dataset
from repro.bn.network import GaussianBayesianNetwork
from repro.decentralized.agent import (
    LearningAgent,
    linear_gaussian_fitter,
    tabular_fitter,
)
from repro.decentralized.coordinator import Coordinator
from repro.decentralized.messaging import Channel, Network
from repro.decentralized.parallel import parallel_parameter_learning
from repro.exceptions import LearningError, SimulationError


# --------------------------------------------------------------------- #
# Messaging
# --------------------------------------------------------------------- #


def test_channel_records_payload_sizes():
    ch = Channel(sender="a", recipient="b")
    msg = ch.send("a", np.zeros(100))
    assert msg.n_values == 100
    assert msg.n_bytes == 800
    assert ch.total_bytes == 800


def test_network_dedupes_channels():
    net = Network()
    c1 = net.channel("a", "b")
    c2 = net.channel("a", "b")
    assert c1 is c2
    with pytest.raises(SimulationError):
        net.channel("a", "a")
    c1.send("a", np.zeros(10))
    assert net.n_messages == 1
    assert net.summary()["n_channels"] == 1


# --------------------------------------------------------------------- #
# Agents
# --------------------------------------------------------------------- #


def test_agent_data_locality(rng):
    agent = LearningAgent("x", ("p",), linear_gaussian_fitter())
    assert not agent.ready
    assert agent.missing == ("x", "p")
    agent.collect_local(rng.normal(size=100))
    assert agent.missing == ("p",)
    ch = Channel(sender="p", recipient="x")
    agent.receive(ch.send("p", rng.normal(size=100)))
    assert agent.ready
    cpd = agent.learn()
    assert cpd.variable == "x"
    assert cpd.parents == ("p",)
    assert agent.last_fit_seconds > 0


def test_root_agent_needs_no_messages(rng):
    agent = LearningAgent("x", (), linear_gaussian_fitter())
    agent.collect_local(rng.normal(size=50))
    assert agent.ready
    assert agent.learn().parents == ()


def test_agent_rejects_wrong_messages(rng):
    agent = LearningAgent("x", ("p",), linear_gaussian_fitter())
    ch_wrong_recipient = Channel(sender="p", recipient="y")
    with pytest.raises(LearningError):
        agent.receive(ch_wrong_recipient.send("p", np.zeros(3)))
    ch_wrong_col = Channel(sender="q", recipient="x")
    with pytest.raises(LearningError):
        agent.receive(ch_wrong_col.send("q", np.zeros(3)))


def test_agent_learn_before_ready_raises():
    agent = LearningAgent("x", ("p",), linear_gaussian_fitter())
    with pytest.raises(LearningError):
        agent.learn()


def test_agent_misaligned_columns_raise(rng):
    agent = LearningAgent("x", ("p",), linear_gaussian_fitter())
    agent.collect_local(rng.normal(size=100))
    ch = Channel(sender="p", recipient="x")
    agent.receive(ch.send("p", rng.normal(size=99)))
    with pytest.raises(LearningError):
        agent.learn()


def test_tabular_fitter_agent(rng):
    agent = LearningAgent("x", ("p",), tabular_fitter({"x": 2, "p": 3}))
    agent.collect_local(rng.integers(0, 2, size=200))
    ch = Channel(sender="p", recipient="x")
    agent.receive(ch.send("p", rng.integers(0, 3, size=200)))
    cpd = agent.learn()
    assert cpd.cardinality == 2
    np.testing.assert_allclose(cpd.values.sum(axis=0), 1.0)


# --------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------- #


def test_coordinator_round_produces_consistent_network(ediamond_env, ediamond_data):
    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])
    coord = Coordinator(service_dag, linear_gaussian_fitter())
    result = coord.learn_round(train)
    assert set(result.cpds) == set(map(str, service_dag.nodes))
    assert result.decentralized_seconds <= result.centralized_seconds
    # Messages flow only along structure edges.
    assert result.network_summary["n_channels"] == service_dag.n_edges
    # Assembled network scores identically to a centralized MLE fit.
    net = GaussianBayesianNetwork(service_dag, list(result.cpds.values()))
    from repro.bn.learning.mle import fit_gaussian_network

    central = fit_gaussian_network(service_dag, train)
    test = train.head(100)
    assert net.log10_likelihood(test) == pytest.approx(
        central.log10_likelihood(test)
    )


def test_coordinator_response_fit_hook(ediamond_env, ediamond_data):
    from repro.bn.cpd import NoisyDeterministicCPD
    from repro.utils.timing import timed

    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    f = ediamond_env.response_time_function()

    def fit_response(data):
        return timed(
            NoisyDeterministicCPD.fit_variance,
            "D", f, tuple(sorted(f.inputs)), data,
        )

    coord = Coordinator(dag, linear_gaussian_fitter(), response="D",
                        response_fit=fit_response)
    result = coord.learn_round(train)
    assert "D" in result.cpds
    assert result.response_cpd_seconds > 0


def test_coordinator_response_without_fit_raises(ediamond_env, ediamond_data):
    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    coord = Coordinator(dag, linear_gaussian_fitter(), response="D")
    with pytest.raises(LearningError):
        coord.learn_round(train)


def test_coordinator_unknown_response():
    from repro.bn.dag import DAG

    with pytest.raises(LearningError):
        Coordinator(DAG(nodes=["a"]), linear_gaussian_fitter(), response="Z")


# --------------------------------------------------------------------- #
# Parallel executor
# --------------------------------------------------------------------- #


def test_parallel_matches_sequential(ediamond_env, ediamond_data):
    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])
    seq = parallel_parameter_learning(service_dag, train, processes=1)
    par = parallel_parameter_learning(service_dag, train, processes=2)
    assert set(seq) == set(par)
    for k in seq:
        assert seq[k] == par[k]


def test_parallel_unknown_node_rejected(ediamond_env, ediamond_data):
    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    with pytest.raises(LearningError):
        parallel_parameter_learning(dag, train, nodes=["nope"])


def test_parallel_empty_nodes_rejected(ediamond_env, ediamond_data):
    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    with pytest.raises(LearningError):
        parallel_parameter_learning(dag, train, nodes=[])


def test_parallel_nonpositive_processes_rejected(ediamond_env, ediamond_data):
    # processes=0 must surface as a LearningError, not multiprocessing's
    # raw ValueError from Pool construction.
    train, _ = ediamond_data
    dag = ediamond_env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])
    with pytest.raises(LearningError):
        parallel_parameter_learning(service_dag, train, processes=0)
    with pytest.raises(LearningError):
        parallel_parameter_learning(service_dag, train, processes=-2)
