"""SOAP-piggyback distribution (the Section-3.4 communication sketch)."""

import numpy as np
import pytest

from repro.decentralized.agent import linear_gaussian_fitter
from repro.decentralized.piggyback import PiggybackDistributor
from repro.exceptions import LearningError


@pytest.fixture(scope="module")
def service_dag(ediamond_env):
    dag = ediamond_env.knowledge_structure()
    return dag.subgraph([n for n in dag.nodes if n != "D"])


@pytest.fixture(scope="module")
def trace(ediamond_env):
    return ediamond_env.run_transactions(400, rng=81)


def test_replay_accumulates_columns(service_dag, trace):
    result = PiggybackDistributor(service_dag).replay(trace)
    # Every agent holds its own column...
    for node in map(str, service_dag.nodes):
        assert node in result.columns[node]
        assert len(result.columns[node][node]) == len(trace)
    # ...and each child received every parent's column.
    for node in map(str, service_dag.nodes):
        for p in map(str, service_dag.parents(node)):
            assert p in result.columns[node]


def test_no_dedicated_messages(service_dag, trace):
    result = PiggybackDistributor(service_dag).replay(trace)
    assert result.n_dedicated_messages == 0
    assert result.total_extra_bytes > 0
    # One piggybacked float per transaction per edge in this workflow.
    for (p, c), t in result.traffic.items():
        assert t.n_values == len(trace)
        assert t.values_per_request == pytest.approx(1.0)


def test_learn_from_replay_matches_direct_fit(service_dag, trace, ediamond_env):
    from repro.bn.learning.mle import fit_linear_gaussian
    from repro.simulator.traces import trace_to_dataset

    cpds, _ = PiggybackDistributor(service_dag).learn_from_replay(
        trace, linear_gaussian_fitter()
    )
    data = trace_to_dataset(trace, ediamond_env.service_names)
    for node in map(str, service_dag.nodes):
        parents = tuple(map(str, service_dag.parents(node)))
        direct = fit_linear_gaussian(data, node, parents)
        assert cpds[node] == direct


def test_replay_validation(service_dag):
    with pytest.raises(LearningError):
        PiggybackDistributor(service_dag).replay([])


def test_edge_without_traffic_detected(trace):
    """If the structure claims an edge that application traffic never
    exercises, learning must fail loudly rather than silently."""
    from repro.bn.dag import DAG

    bogus = DAG(nodes=["X1", "ghost"], edges=[("ghost", "X1")])
    with pytest.raises(LearningError):
        PiggybackDistributor(bogus).learn_from_replay(
            trace, linear_gaussian_fitter()
        )
