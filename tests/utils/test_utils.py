"""Utility-layer tests: rng plumbing, timers, stats, validation."""

import time

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import (
    empirical_tail_probability,
    gaussian_tail_probability,
    histogram_pmf,
    kl_divergence,
    relative_error,
    summarize,
    total_variation,
)
from repro.utils.timing import Timer, timed
from repro.utils.validation import require, require_positive, require_type


# --------------------------------------------------------------------- #
# rng
# --------------------------------------------------------------------- #


def test_ensure_rng_from_seed_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    np.testing.assert_array_equal(a, b)


def test_ensure_rng_passthrough():
    g = np.random.default_rng(0)
    assert ensure_rng(g) is g


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_rejects_garbage():
    with pytest.raises(TypeError):
        ensure_rng("seed")


def test_spawn_rngs_independent_and_deterministic():
    kids1 = spawn_rngs(7, 3)
    kids2 = spawn_rngs(7, 3)
    assert len(kids1) == 3
    for k1, k2 in zip(kids1, kids2):
        np.testing.assert_array_equal(k1.random(4), k2.random(4))
    # Streams differ from each other.
    assert not np.allclose(kids1[0].random(8), kids1[1].random(8))
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


# --------------------------------------------------------------------- #
# timing
# --------------------------------------------------------------------- #


def test_timer_accumulates():
    t = Timer()
    with t:
        time.sleep(0.01)
    first = t.elapsed
    with t:
        time.sleep(0.01)
    assert t.elapsed > first >= 0.009


def test_timer_not_reentrant():
    t = Timer()
    with t:
        with pytest.raises(RuntimeError):
            t.__enter__()


def test_timer_reset():
    t = Timer()
    with t:
        pass
    t.reset()
    assert t.elapsed == 0.0


def test_timed_returns_result_and_seconds():
    out, secs = timed(sum, range(100))
    assert out == 4950
    assert secs >= 0


# --------------------------------------------------------------------- #
# stats
# --------------------------------------------------------------------- #


def test_empirical_tail():
    s = np.array([1.0, 2.0, 3.0, 4.0])
    assert empirical_tail_probability(s, 2.5) == 0.5
    with pytest.raises(ValueError):
        empirical_tail_probability(np.array([]), 1.0)


def test_gaussian_tail():
    assert gaussian_tail_probability(0.0, 1.0, 0.0) == pytest.approx(0.5)
    assert gaussian_tail_probability(5.0, 0.0, 4.0) == 1.0
    assert gaussian_tail_probability(5.0, 0.0, 6.0) == 0.0
    with pytest.raises(ValueError):
        gaussian_tail_probability(0.0, -1.0, 0.0)


def test_relative_error_cases():
    assert relative_error(1.2, 1.0) == pytest.approx(0.2)
    assert relative_error(0.0, 0.0) == 0.0
    assert relative_error(0.5, 0.0) == float("inf")


def test_summarize_keys():
    s = summarize(np.arange(100, dtype=float))
    assert s["n"] == 100
    assert s["min"] == 0.0 and s["max"] == 99.0
    assert s["p50"] == pytest.approx(49.5)


def test_histogram_pmf_and_divergences(rng):
    samples = rng.normal(size=5000)
    edges = np.linspace(-4, 4, 21)
    pmf = histogram_pmf(samples, edges)
    assert pmf.sum() == pytest.approx(1.0)
    assert total_variation(pmf, pmf) == 0.0
    assert kl_divergence(pmf, pmf) == pytest.approx(0.0, abs=1e-9)
    other = histogram_pmf(rng.normal(1.0, 1.0, size=5000), edges)
    assert total_variation(pmf, other) > 0.2
    assert kl_divergence(pmf, other) > 0.1
    with pytest.raises(ValueError):
        total_variation(pmf, pmf[:-1])


def test_histogram_pmf_empty_bins_uniform():
    pmf = histogram_pmf(np.array([100.0]), np.linspace(0, 1, 5))
    np.testing.assert_allclose(pmf, 0.25)


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #


def test_require():
    require(True, "fine")
    with pytest.raises(ValueError):
        require(False, "boom")
    with pytest.raises(KeyError):
        require(False, "boom", exc=KeyError)


def test_require_type():
    require_type(1, int, "x")
    with pytest.raises(TypeError):
        require_type("a", int, "x")


def test_require_positive():
    require_positive(1.0, "x")
    require_positive(0.0, "x", strict=False)
    with pytest.raises(ValueError):
        require_positive(0.0, "x")
    with pytest.raises(ValueError):
        require_positive(-1.0, "x", strict=False)
