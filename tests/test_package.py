"""Package-level hygiene: exceptions, versioning, public API."""

import importlib
import inspect

import pytest

import repro
from repro import exceptions


def test_all_exceptions_derive_from_reproerror():
    members = [
        obj
        for _, obj in inspect.getmembers(exceptions, inspect.isclass)
        if issubclass(obj, Exception) and obj is not exceptions.ReproError
    ]
    assert len(members) >= 8
    for cls in members:
        assert issubclass(cls, exceptions.ReproError), cls


def test_version_matches_pyproject():
    import os
    import tomllib

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "pyproject.toml"), "rb") as fh:
        pyproject = tomllib.load(fh)
    assert repro.__version__ == pyproject["project"]["version"]


def test_public_api_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.bn",
        "repro.bn.inference",
        "repro.bn.learning",
        "repro.bn.cpd",
        "repro.workflow",
        "repro.simulator",
        "repro.simulator.scenarios",
        "repro.core",
        "repro.decentralized",
        "repro.apps",
        "repro.utils",
        "repro.cli",
    ],
)
def test_subpackage_all_exports_exist(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_package_doctest():
    """The quickstart doctest in the package docstring must run."""
    import doctest

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_every_public_module_has_docstring():
    import pkgutil

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mod = importlib.import_module(info.name)
        assert mod.__doc__, f"{info.name} lacks a module docstring"
