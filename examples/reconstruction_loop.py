#!/usr/bin/env python
"""The periodic model-(re)construction scheme of Section 2.

Models expire as the environment drifts, so they are rebuilt every
``T_CON = α_model · T_DATA`` from a sliding window ``W = K · T_CON``
(Eqs. 1–2).  A rebuild is *feasible* only if construction finishes
before the next one is due — the constraint that rules NRT-BN out of
fast-changing environments (Section 4.2: infeasible beyond ~60 services
at T_CON = 2 minutes on the paper's hardware).

This script runs the scheme for both models on a growing environment and
prints the feasibility frontier.

Run:  python examples/reconstruction_loop.py
"""

from repro import (
    ModelReconstructor,
    ReconstructionSchedule,
    build_continuous_kertbn,
    build_continuous_nrtbn,
    random_environment,
)

# The paper's fast-reconstruction regime: T_DATA = 10 s, alpha = 12,
# K = 3  =>  T_CON = 2 min, 36 points per construction.
SCHEDULE = ReconstructionSchedule(t_data=10.0, alpha_model=12, k=3)
N_REBUILDS = 3


def run_scheme(env, builder, label: str) -> None:
    data = env.simulate(
        SCHEDULE.n_points + (N_REBUILDS - 1) * SCHEDULE.alpha_model + 5, rng=5
    )
    rec = ModelReconstructor(schedule=SCHEDULE, builder=builder)
    events = rec.run(data, n_rebuilds=N_REBUILDS)
    for i, e in enumerate(events):
        status = "feasible" if e.feasible else "INFEASIBLE"
        print(
            f"  {label} rebuild #{i + 1} at t={e.at_time:6.0f}s: "
            f"{e.n_points} points, built in "
            f"{e.construction_seconds * 1e3:8.2f} ms -> {status} "
            f"(budget {SCHEDULE.t_con:.0f} s)"
        )


def main() -> None:
    print(f"Schedule: T_DATA={SCHEDULE.t_data:.0f}s, alpha={SCHEDULE.alpha_model}, "
          f"K={SCHEDULE.k} => T_CON={SCHEDULE.t_con:.0f}s, "
          f"window W={SCHEDULE.window:.0f}s, {SCHEDULE.n_points} points/build\n")

    for n_services in (10, 40, 80):
        print(f"--- environment with {n_services} services ---")
        env = random_environment(n_services, rng=n_services)
        run_scheme(env, lambda d: build_continuous_kertbn(env.workflow, d),
                   "KERT-BN")
        run_scheme(env, lambda d: build_continuous_nrtbn(d, rng=1), "NRT-BN ")
        print()

    print("KERT-BN stays feasible as the environment grows; NRT-BN's "
          "structure search is the part that scales super-linearly "
          "(see benchmarks/test_fig4_env_size.py for the full sweep).")


if __name__ == "__main__":
    main()
