#!/usr/bin/env python
"""Decentralized parameter learning (Sections 3.4 and 4.3).

Every KERT-BN service CPD ``P(X_i | Φ(X_i))`` depends only on service
*i*'s own measurements plus its parents' — so each service's monitoring
agent can learn its CPD locally after the parents ship their columns
over (piggybacked on application messages in the paper's SOAP
suggestion).  The management server keeps just the structure and the
finished CPDs.

The script runs one decentralized learning round on the eDiaMoND
scenario, prints the per-agent costs and the communication bill, shows
the Section-4.3 accounting (decentralized = max per-agent time,
centralized = sum), and cross-checks the result against both a
centralized fit and the true-multiprocessing executor.

Run:  python examples/decentralized_learning.py
"""

import numpy as np

from repro import ediamond_scenario
from repro.bn.learning.mle import fit_gaussian_network
from repro.bn.network import GaussianBayesianNetwork
from repro.decentralized import Coordinator, parallel_parameter_learning
from repro.decentralized.agent import linear_gaussian_fitter


def main() -> None:
    env = ediamond_scenario()
    data = env.simulate(600, rng=3)
    dag = env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])

    coordinator = Coordinator(service_dag, linear_gaussian_fitter())
    result = coordinator.learn_round(data)

    print("Per-agent CPD learning (each runs on its service's machine):")
    for service in sorted(result.per_agent_seconds):
        agent = coordinator.agents[service]
        parents = ", ".join(agent.parents) if agent.parents else "(root, no comms)"
        print(
            f"  {service:3s} | parents: {parents:20s} | "
            f"fit {result.per_agent_seconds[service] * 1e6:7.1f} us"
        )

    print("\nCommunication (parent -> child elapsed-time columns):")
    for channel in coordinator.network:
        print(
            f"  {channel.sender:3s} -> {channel.recipient:3s}: "
            f"{channel.total_bytes} bytes"
        )
    summary = result.network_summary
    print(f"  total: {summary['n_messages']} messages, "
          f"{summary['total_bytes']} bytes")

    print("\nSection-4.3 accounting:")
    print(f"  decentralized (max per-CPD): {result.decentralized_seconds * 1e3:.3f} ms")
    print(f"  centralized   (sum)        : {result.centralized_seconds * 1e3:.3f} ms")
    print(f"  speedup                    : "
          f"{result.centralized_seconds / result.decentralized_seconds:.1f}x")

    # Cross-check 1: same parameters as a centralized fit.
    assembled = GaussianBayesianNetwork(service_dag, list(result.cpds.values()))
    central = fit_gaussian_network(service_dag, data)
    probe = data.head(100)
    assert np.isclose(
        assembled.log10_likelihood(probe), central.log10_likelihood(probe)
    )
    print("\nAssembled network matches the centralized fit exactly.")

    # Cross-check 2: the real multiprocessing executor agrees too.
    parallel_cpds = parallel_parameter_learning(service_dag, data, processes=2)
    assert all(parallel_cpds[k] == result.cpds[k] for k in parallel_cpds)
    print("True-multiprocessing executor produced identical CPDs.")


if __name__ == "__main__":
    main()
