#!/usr/bin/env python
"""Quickstart: model a service-oriented system's response time.

This walks the paper's core loop end to end:

1. stand up the eDiaMoND scenario (Fig. 1) in the simulator;
2. extract the *domain knowledge* — the KERT-BN structure and the
   deterministic response-time function ``f`` — from its workflow;
3. collect monitored data and build a KERT-BN (knowledge + data) and an
   NRT-BN (data only, K2 structure learning) side by side;
4. compare construction cost and test accuracy, the paper's two metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    build_continuous_kertbn,
    build_continuous_nrtbn,
    ediamond_scenario,
)


def main() -> None:
    # 1. The environment: six Grid services serving a radiologist's query.
    env = ediamond_scenario()
    print("Services:", ", ".join(env.service_names))

    # 2. Domain knowledge, for free, from the workflow.
    f = env.response_time_function()
    dag = env.knowledge_structure()
    print(f"Workflow-derived response function:  D = {f.to_string()}")
    print(f"Knowledge-derived structure: {dag.n_nodes} nodes, {dag.n_edges} edges")

    # 3. Monitored data: one row per transaction (X1..X6 elapsed, D).
    train, test = env.train_test(n_train=600, n_test=300, rng=7)
    print(f"Collected {train.n_rows} training / {test.n_rows} testing points")

    kert = build_continuous_kertbn(env.workflow, train)
    nrt = build_continuous_nrtbn(train, rng=8)

    # 4. The paper's two metrics.
    print("\n              construction time   test log10-likelihood")
    print(
        f"KERT-BN       {kert.report.construction_seconds * 1e3:12.2f} ms"
        f"   {kert.log10_likelihood(test):12.1f}"
    )
    print(
        f"NRT-BN        {nrt.report.construction_seconds * 1e3:12.2f} ms"
        f"   {nrt.log10_likelihood(test):12.1f}"
    )
    speedup = nrt.report.construction_seconds / kert.report.construction_seconds
    print(f"\nKERT-BN built {speedup:.0f}x faster (no structure learning, "
          "response CPD given by the workflow) with equal-or-better accuracy.")


if __name__ == "__main__":
    main()
