#!/usr/bin/env python
"""A self-managing loop built entirely from the paper's machinery.

MAPE over the simulated eDiaMoND Grid:

- **Monitor**: collect a fresh monitoring window;
- **Analyze**: rebuild the KERT-BN (the paper's periodic reconstruction)
  and assess P(D > SLA) analytically;
- **Plan**: when the SLA is at risk, localize the culprit service and
  pick the mildest acceleration that pAccel projects to be sufficient;
- **Execute**: apply the resource action to the environment.

Midway through, the script degrades the remote OGSA-DAI database behind
the manager's back and watches the loop detect, localize and remediate.

Run:  python examples/autonomic_manager.py
"""

from repro.core.manager import AutonomicManager, SLAPolicy, inject_degradation
from repro.simulator.scenarios.ediamond import ediamond_scenario

SLA_SECONDS = 3.5
MAX_VIOLATION = 0.15


def describe(report) -> None:
    print(
        f"cycle {report.cycle}: E[D]={report.expected_response:5.2f} s, "
        f"P(D>{SLA_SECONDS}s)={report.violation_prob:5.3f}",
        end="",
    )
    if report.acted:
        service, factor = report.action
        print(
            f"  -> SLA AT RISK: accelerating {service} to {factor:.0%} "
            f"(projected P={report.projected_violation_prob:.3f})"
        )
        top = report.suspects[0]
        print(
            f"          localization: {top['service']} blamed "
            f"(z={top['z']:.1f}, projected D-shift={top['projected_D_shift']:+.2f} s)"
        )
    else:
        print("  -> healthy, no action")


def main() -> None:
    env = ediamond_scenario()
    policy = SLAPolicy(threshold=SLA_SECONDS, max_violation_prob=MAX_VIOLATION)
    manager = AutonomicManager(env, policy, window_points=250, rng=7)

    print(f"SLA: P(D > {SLA_SECONDS}s) <= {MAX_VIOLATION}\n")
    for _ in range(2):
        describe(manager.run_cycle())

    print("\n*** fault injected: ogsa_dai_remote (X6) degrades 2.5x ***\n")
    inject_degradation(env, "X6", 2.5)

    for _ in range(3):
        describe(manager.run_cycle())

    acted = [r for r in manager.history if r.acted]
    print(f"\nThe manager acted {len(acted)} time(s); final "
          f"P(D>{SLA_SECONDS}s) = {manager.history[-1].violation_prob:.3f}.")


if __name__ == "__main__":
    main()
