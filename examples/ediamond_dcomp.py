#!/usr/bin/env python
"""dComp: estimate an unobservable service's performance (Section 5.1).

Scenario: the monitoring point on ``image_locator_remote`` (X4) stops
reporting — a reporting failure at the remote hospital.  Meanwhile the
WAN to that hospital degrades, so the *stale prior* from the last model
construction underestimates X4 badly.  dComp updates the prior with the
current measurements of the observable services and the end-to-end
response time.

Run:  python examples/ediamond_dcomp.py
"""

import numpy as np

from repro import DComp, build_discrete_kertbn, ediamond_scenario


def bar(p: float, width: int = 40) -> str:
    return "#" * int(round(p * width))


def main() -> None:
    # Build the model at construction time T: healthy environment,
    # 1200 points (the paper's K*alpha = 10*120).
    env = ediamond_scenario()
    train = env.simulate(1200, rng=42)
    model = build_discrete_kertbn(env.workflow, train, n_bins=5)
    print(f"Discrete KERT-BN built from {train.n_rows} points "
          f"(leak l = {model.report.extra['leak']:.3f})")

    # Later: the remote WAN degrades; X4's monitoring point goes dark.
    drifted = ediamond_scenario(wan_delay=0.6)
    current = drifted.simulate(400, rng=43)
    actual_x4 = float(np.mean(current["X4"]))  # ground truth (unknown to dComp)
    observed = {c: float(np.mean(current[c]))
                for c in current.columns if c != "X4"}
    print("\nObservable means fed to dComp:")
    for name, value in observed.items():
        print(f"  {name:3s} = {value:.3f} s")

    result = DComp(model).posterior("X4", observed)

    print("\nX4 elapsed-time distribution (bin centers in seconds):")
    print(f"{'center':>8s}  {'prior':>7s}  {'posterior':>9s}")
    for c, p, q in zip(result.centers, result.prior, result.posterior):
        print(f"{c:8.3f}  {p:7.3f}  {q:9.3f}  {bar(q)}")

    print(f"\nPrior     mean {result.prior_mean:.3f} ± {result.prior_std:.3f} s")
    print(f"Posterior mean {result.posterior_mean:.3f} ± {result.posterior_std:.3f} s")
    print(f"Actual    mean {actual_x4:.3f} s  (remote WAN degraded)")
    print(f"Posterior moved {result.shift_toward(actual_x4):+.3f} s closer "
          "to the truth than the stale prior.")


if __name__ == "__main__":
    main()
