#!/usr/bin/env python
"""Capacity analysis: where does end-to-end time actually go?

Three lenses on the same eDiaMoND trace, all driven by the KERT-BN and
its workflow knowledge:

1. an operator-style trace report (who is slow, who is invoked);
2. branch-dominance probabilities for the parallel join — Section 5.2's
   "accelerating the shadowed branch buys nothing" made quantitative;
3. acceleration headroom — the hard ceiling on what any resource action
   targeting one service could ever gain.

Run:  python examples/capacity_analysis.py
"""

from repro import build_continuous_kertbn, ediamond_scenario
from repro.apps.capacity import acceleration_headroom, branch_dominance
from repro.simulator.report import analyze_trace, format_report
from repro.simulator.traces import trace_to_dataset


def main() -> None:
    env = ediamond_scenario()
    records = env.run_transactions(600, rng=19)

    print("=== operator trace report ===")
    print(format_report(analyze_trace(records, env.service_names)))

    data = trace_to_dataset(records, env.service_names, rng=20)
    model = build_continuous_kertbn(env.workflow, data)

    print("\n=== parallel-branch dominance ===")
    for join in branch_dominance(model, rng=21):
        print(f"join: max({', '.join(join.operands)})")
        for operand, p in zip(join.operands, join.probabilities):
            print(f"  P({operand} determines the join) = {p:.2f}")

    print("\n=== acceleration headroom (upper bound on E[D] gain) ===")
    headroom = acceleration_headroom(model, rng=22)
    for service, gain in sorted(headroom.items(), key=lambda kv: -kv[1]):
        print(f"  zeroing {service}: at most {gain:.3f} s")
    best = max(headroom, key=headroom.get)
    worst = min(headroom, key=headroom.get)
    print(f"\nSpend tuning effort near {best!r}; {worst!r} is shadowed by the "
          "slower parallel branch and cannot move end-to-end time.")


if __name__ == "__main__":
    main()
