#!/usr/bin/env python
"""Modeling timeout counts — the paper's second Eq.-4 metric (§3.3).

For transaction-oriented *count* metrics the workflow-given function is
simply ``D = Σ X_i``: per-service sub-transaction timeout counts add up
to the end-to-end count regardless of sequential/parallel composition.
This example:

1. derives per-service timeout thresholds from a healthy trace (90th
   percentile SLAs);
2. aggregates counts per 20-transaction monitoring window and verifies
   the ``D = Σ X_i`` identity;
3. builds a discrete KERT-BN over the counts and asks the autonomic
   question: *given the locator reports a bad window, how many total
   timeouts should we expect?*

Run:  python examples/timeout_modeling.py
"""

import numpy as np

from repro import build_discrete_kertbn, ediamond_scenario
from repro.apps.timeouts import (
    default_thresholds_from_trace,
    timeout_count_dataset,
    verify_count_identity,
)
from repro.workflow.timeout import timeout_count_function

WINDOW = 20


def main() -> None:
    env = ediamond_scenario()
    records = env.run_transactions(1200, rng=23)

    thresholds = default_thresholds_from_trace(records, env.service_names, 0.9)
    print("Per-service timeout thresholds (p90 SLAs):")
    for s, h in sorted(thresholds.items()):
        print(f"  {s}: {h:.3f} s")

    counts = timeout_count_dataset(records, thresholds, window=WINDOW)
    f = timeout_count_function(env.workflow)
    print(f"\nCount function from the workflow: D = {f.to_string()}")
    print(f"Identity D = sum(X_i) holds on all {counts.n_rows} windows: "
          f"{verify_count_identity(counts, env.workflow)}")
    print(f"Mean end-to-end timeouts per {WINDOW}-transaction window: "
          f"{float(np.mean(counts['D'])):.2f}")

    train, test = counts.split(int(counts.n_rows * 0.7))
    model = build_discrete_kertbn(env.workflow, train, n_bins=3)
    print(f"\nDiscrete KERT-BN over counts built in "
          f"{model.report.construction_seconds * 1e3:.2f} ms "
          f"(leak l = {model.report.extra['leak']:.3f}); "
          f"test log10-likelihood = {model.log10_likelihood(test):.1f}")

    # Conditional question: a bad window at the remote locator (X4).
    disc = model.discretizer
    bad_state = disc.cardinality("X4") - 1
    posterior = model.network.query(["D"], {"X4": bad_state})
    expected = disc.expectation("D", posterior.values)
    baseline = float(np.mean(train["D"]))
    print(f"\nGiven X4 in its worst count bin, expected total timeouts "
          f"per window: {expected:.2f} (baseline {baseline:.2f})")


if __name__ == "__main__":
    main()
