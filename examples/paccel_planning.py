#!/usr/bin/env python
"""pAccel as an autonomic planning aid (Section 5.2).

"A significant performance boost for a particular service may not lead
to system-wide benefits."  Before spending resources, an autonomic
manager asks pAccel for the *projected* end-to-end response-time
distribution under each candidate acceleration — here, cutting every
service's elapsed time to 90 % — and ranks the candidates by projected
benefit and by the projected drop in SLA-violation probability.

The script then *applies* the best action in the simulator and checks
the projection against reality (the Fig. 7 comparison).

Run:  python examples/paccel_planning.py
"""

import numpy as np

from repro import PAccel, build_continuous_kertbn, ediamond_scenario

SLA_THRESHOLD = 2.0  # seconds
SPEEDUP = 0.9


def main() -> None:
    env = ediamond_scenario()
    train = env.simulate(800, rng=11)
    model = build_continuous_kertbn(env.workflow, train)
    pa = PAccel(model)

    base = pa.baseline(rng=0)
    print(f"Current response time: mean {base.mean:.3f} s, "
          f"P(D > {SLA_THRESHOLD}s) = {base.violation_probability(SLA_THRESHOLD):.3f}")
    print(f"\nCandidate actions: accelerate one service to {SPEEDUP:.0%}\n")
    print(f"{'service':>8s}  {'proj. mean':>10s}  {'gain':>8s}  {'P(D>SLA)':>9s}")

    projections = {}
    for i, service in enumerate(env.service_names):
        current_mean = float(np.mean(train[service]))
        proj = pa.project({service: SPEEDUP * current_mean}, rng=i + 1)
        projections[service] = proj
        print(
            f"{service:>8s}  {proj.mean:10.3f}  {base.mean - proj.mean:8.3f}"
            f"  {proj.violation_probability(SLA_THRESHOLD):9.3f}"
        )

    best = min(projections, key=lambda s: projections[s].mean)
    print(f"\npAccel recommendation: accelerate {best!r} "
          "(largest projected end-to-end gain).")
    worst = max(projections, key=lambda s: projections[s].mean)
    print(f"Least useful action: {worst!r} — a reminder that a local boost "
          "on the fast parallel branch buys almost nothing end-to-end.")

    # Apply the recommended action for real and verify the projection.
    accelerated = ediamond_scenario(service_speedups={best: SPEEDUP})
    observed = accelerated.simulate(800, rng=12)
    observed_mean = float(np.mean(observed["D"]))
    proj = projections[best]
    print(f"\nAfter physically applying the action:")
    print(f"  projected mean {proj.mean:.3f} s, observed mean {observed_mean:.3f} s "
          f"(error {abs(proj.mean - observed_mean) / observed_mean:.1%})")


if __name__ == "__main__":
    main()
