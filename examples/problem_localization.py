#!/usr/bin/env python
"""Problem localization: which service is hurting end-to-end response time?

The paper's introduction lists "performance problem localization and
remediation" among the autonomic activities a response-time model must
guide.  This example degrades one eDiaMoND service behind the scenes,
then uses :class:`repro.apps.localization.ProblemLocalizer` — built
entirely on the KERT-BN — to find it from monitoring data alone.

The blame score combines *local anomaly* (how far the service drifted
from its modeled behaviour, in prior standard deviations) with
*end-to-end impact* (how much of the response-time shift clamping that
service reproduces, via the analytic Clark-propagation assessor).

Run:  python examples/problem_localization.py
"""

import numpy as np

from repro import build_continuous_kertbn, ediamond_scenario
from repro.apps.localization import ProblemLocalizer

CULPRIT = "X6"  # ogsa_dai_remote — degraded 2.5x behind the scenes


def main() -> None:
    env = ediamond_scenario()
    train = env.simulate(800, rng=31)
    model = build_continuous_kertbn(env.workflow, train)
    localizer = ProblemLocalizer(model)
    print(f"Model built; healthy E[D] = {localizer.baseline_response_mean:.3f} s")

    # Behind the curtain: the remote database degrades badly.
    broken = ediamond_scenario(service_speedups={CULPRIT: 2.5})
    current = broken.simulate(400, rng=32)
    observed_d = float(np.mean(current["D"]))
    print(f"Ops alert: observed E[D] = {observed_d:.3f} s — investigating.\n")

    observed = {c: float(np.mean(current[c])) for c in current.columns if c != "D"}
    suspects = localizer.localize(observed)

    print(f"{'rank':>4s}  {'service':>8s}  {'prior':>7s}  {'now':>7s}"
          f"  {'z':>6s}  {'D-shift':>8s}  {'blame':>8s}")
    for rank, s in enumerate(suspects, start=1):
        print(
            f"{rank:4d}  {s.service:>8s}  {s.prior_mean:7.3f}  "
            f"{s.observed_mean:7.3f}  {s.z_score:6.2f}  "
            f"{s.projected_d_shift:8.3f}  {s.blame:8.4f}"
        )

    top = suspects[0].service
    verdict = "CORRECT" if top == CULPRIT else f"MISSED (actual: {CULPRIT})"
    print(f"\nLocalizer verdict: {top} — {verdict}.")


if __name__ == "__main__":
    main()
