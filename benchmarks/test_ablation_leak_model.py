"""Ablation — how the Eq.-4 leak mass is spread.

The paper's Eq. 4 spreads the leak ``l`` uniformly over the non-predicted
states.  Binned measurements rarely miss uniformly — noise lands next
door — so this library also offers a distance-decayed spread and a
one-pass calibrated confusion matrix (see
:func:`repro.core.kertbn.calibrate_confusion`).  The ablation measures
what each refinement buys in test likelihood at identical build cost
class (all are O(N) in training size, constant in parent count).
"""

import numpy as np
import pytest

from _util import emit_series

from repro.core.kertbn import build_discrete_kertbn
from repro.simulator.scenarios.ediamond import ediamond_scenario

N_TRAIN = 1200
N_TEST = 600
N_REPS = 3
MODELS = ("uniform", "geometric", "confusion")


@pytest.fixture(scope="module")
def leak_rows():
    acc = {m: {"log10": [], "build": []} for m in MODELS}
    for rep in range(N_REPS):
        env = ediamond_scenario()
        train, test = env.train_test(N_TRAIN, N_TEST, rng=91_000 + rep)
        for m in MODELS:
            model = build_discrete_kertbn(
                env.workflow, train, n_bins=5, leak_model=m
            )
            acc[m]["log10"].append(model.log10_likelihood(test))
            acc[m]["build"].append(model.report.construction_seconds)
    rows = [
        {
            "leak_model": m,
            "test_log10": float(np.mean(acc[m]["log10"])),
            "build_s": float(np.mean(acc[m]["build"])),
        }
        for m in MODELS
    ]
    emit_series(
        "ablation_leak_model",
        f"Eq.-4 leak-spread variants (eDiaMoND, N={N_TRAIN}, {N_REPS} reps)",
        rows,
    )
    return {r["leak_model"]: r for r in rows}


def test_leak_refinements_pay_off(leak_rows, benchmark):
    assert leak_rows["geometric"]["test_log10"] >= leak_rows["uniform"]["test_log10"]
    assert leak_rows["confusion"]["test_log10"] >= leak_rows["geometric"]["test_log10"]
    # All stay within the same (cheap) build-cost class.
    costs = [leak_rows[m]["build_s"] for m in MODELS]
    assert max(costs) < 10 * min(costs)

    env = ediamond_scenario()
    train, _ = env.train_test(N_TRAIN, N_TEST, rng=91_900)
    benchmark.pedantic(
        build_discrete_kertbn,
        args=(env.workflow, train),
        kwargs={"n_bins": 5, "leak_model": "confusion"},
        rounds=3,
        iterations=1,
    )
