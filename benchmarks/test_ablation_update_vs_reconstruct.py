"""Ablation — sequential updating vs windowed reconstruction under drift.

Section 2 justifies full periodic reconstruction over incremental
updates: "the disperse of old data is often not possible under current
statistical frameworks … out-of-date information lingers in the updated
model and adversely impacts its accuracy."  This benchmark quantifies
that trade-off on a drifting eDiaMoND environment: after the remote WAN
degrades, a sequential updater (all history), a forgetting updater
(exponential decay) and the paper's Eq.-1 windowed reconstruction are
scored on post-drift test data.
"""

import numpy as np
import pytest

from _util import emit_series

from repro.bn.learning.mle import fit_gaussian_network
from repro.bn.data import Dataset
from repro.core.update import SequentialGaussianUpdater
from repro.simulator.scenarios.ediamond import ediamond_scenario

BATCH = 150
N_BEFORE = 4  # batches from the healthy environment
N_AFTER = 2   # batches after the WAN degrades
WINDOW = 2    # Eq.-1 window, in batches
N_REPS = 3


@pytest.fixture(scope="module")
def drift_rows():
    acc = {"sequential": [], "forgetting(0.3)": [], "reconstruction": []}
    for rep in range(N_REPS):
        healthy = ediamond_scenario()
        degraded = ediamond_scenario(wan_delay=0.7)
        before = [healthy.simulate(BATCH, rng=92_000 + 10 * rep + i)
                  for i in range(N_BEFORE)]
        after = [degraded.simulate(BATCH, rng=92_100 + 10 * rep + i)
                 for i in range(N_AFTER)]
        test = degraded.simulate(400, rng=92_200 + rep)
        dag = healthy.knowledge_structure()
        service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])

        seq = SequentialGaussianUpdater(service_dag, decay=1.0)
        forget = SequentialGaussianUpdater(service_dag, decay=0.3)
        for batch in before + after:
            seq.ingest(batch)
            forget.ingest(batch)
        window_data = Dataset.concat((before + after)[-WINDOW:])
        recon = fit_gaussian_network(service_dag, window_data)

        acc["sequential"].append(seq.network().log10_likelihood(test))
        acc["forgetting(0.3)"].append(forget.network().log10_likelihood(test))
        acc["reconstruction"].append(recon.log10_likelihood(test))
    rows = [
        {"strategy": k, "post_drift_test_log10": float(np.mean(v))}
        for k, v in acc.items()
    ]
    emit_series(
        "ablation_update_vs_reconstruct",
        f"model maintenance under WAN drift ({N_BEFORE}+{N_AFTER} batches "
        f"of {BATCH}, window={WINDOW} batches, {N_REPS} reps)",
        rows,
    )
    return {r["strategy"]: r["post_drift_test_log10"] for r in rows}


def test_reconstruction_beats_pure_updating(drift_rows, benchmark):
    # The Section-2 claim: old data lingers and hurts.
    assert drift_rows["reconstruction"] > drift_rows["sequential"]
    # Forgetting mitigates but windowed reconstruction remains the
    # simple, robust choice the paper adopts.
    assert drift_rows["forgetting(0.3)"] > drift_rows["sequential"]

    env = ediamond_scenario()
    data = env.simulate(BATCH, rng=92_900)
    dag = env.knowledge_structure()
    service_dag = dag.subgraph([n for n in dag.nodes if n != "D"])

    def one_update_round():
        upd = SequentialGaussianUpdater(service_dag)
        upd.ingest(data)
        return upd.network()

    benchmark.pedantic(one_update_round, rounds=3, iterations=1)
