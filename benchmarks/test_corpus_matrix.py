"""Corpus benchmark matrix: KERT-BN vs NRT-BN across scenario diversity.

Every cell of the (topology family × environment size × delay regime)
matrix realizes one seeded corpus scenario — random Cardoso composition,
M/M/k / G/G/1 / lognormal delays, bursty/diurnal arrivals, failure
storms on the mixed family — and runs the paper's comparison on it:
continuous KERT-BN (workflow knowledge) vs continuous NRT-BN (K2
search), recording per-row test log10-likelihood (accuracy) plus build
seconds and scoring throughput (learn/inference cost).

Cells merge under the ``"cells"`` key of ``BENCH_corpus.json`` (repo
root and ``benchmarks/results/``) and the aggregate ``"summary"`` is
recomputed over every recorded cell; ``check_regression.py --suite
corpus`` gates the summary.  The three ``mixed_n10_*`` cells are the PR
smoke slice; everything else carries the ``corpus_full`` marker and runs
in the nightly scheduled CI job (locally:
``pytest benchmarks/test_corpus_matrix.py -m "" -q``).
"""

import json
import os

import pytest

from _util import RESULTS_DIR, emit_series

from repro.corpus import default_corpus, format_cell_report, run_cell, summarize

#: Full matrix: 3 families × 3 sizes × 3 delay regimes = 27 cells.
NIGHTLY_SIZES = (10, 40, 120)
CORPUS = default_corpus(sizes=NIGHTLY_SIZES)

#: PR smoke slice: the mixed family exercises choice/loop constructs and
#: failure storms, and its three n=10 cells cover every delay regime.
SMOKE_CELLS = frozenset(
    s.name for s in CORPUS if s.family == "mixed" and s.n_services == 10
)

SEED = 20_260_808

_PARAMS = [
    pytest.param(
        spec,
        id=spec.name,
        marks=() if spec.name in SMOKE_CELLS else (pytest.mark.corpus_full,),
    )
    for spec in CORPUS
]


@pytest.mark.parametrize("spec", _PARAMS)
def test_corpus_cell(spec):
    cell = run_cell(spec, seed=SEED)

    # Per-cell contracts: KERT-BN must stay cheap to build (the paper's
    # central claim) and every recorded number must be finite.
    assert cell["kert"]["build_s"] < 30.0
    for model in ("kert", "nrt"):
        assert cell[model]["build_s"] > 0.0
        assert cell[model]["score_rows_per_s"] > 0.0
    assert cell["nrt_over_kert_build"] > 1.0, (
        f"{spec.name}: knowledge-derived structure should be cheaper "
        f"than K2 search, got ratio {cell['nrt_over_kert_build']:.2f}"
    )

    report = format_cell_report(spec.name, cell)
    print("\n" + report)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"corpus_{spec.name}.txt"), "w") as fh:
        fh.write(report + "\n")
    _merge_cells({spec.name: cell})


def test_corpus_summary():
    """Aggregate every recorded cell and assert the headline claims.

    Runs after the parametrized cells (pytest preserves file order).  In
    smoke runs the merge keeps the committed full-matrix cells, so the
    summary always spans the whole corpus.
    """
    payload = _load_payload()
    cells = payload.get("cells", {})
    assert cells, "no corpus cells recorded — did the cell tests run?"
    summary = summarize(cells)
    assert summary["kert_win_fraction"] >= 0.5
    assert summary["nrt_over_kert_build_median"] > 1.0
    _merge_payload({"summary": summary})
    rows = [
        {
            "cell": name,
            "kert_log10_row": c["kert"]["log10_per_row"],
            "nrt_log10_row": c["nrt"]["log10_per_row"],
            "gap_row": c["log10_gap_per_row"],
            "kert_build_s": c["kert"]["build_s"],
            "nrt_build_s": c["nrt"]["build_s"],
            "build_ratio": c["nrt_over_kert_build"],
        }
        for name, c in sorted(cells.items())
    ]
    emit_series(
        "corpus_matrix",
        f"KERT-BN vs NRT-BN over {summary['n_cells']} corpus cells "
        f"(win fraction {summary['kert_win_fraction']:.2f})",
        rows,
    )


# --------------------------------------------------------------------- #
# Payload plumbing (same merge convention as BENCH_inference.json)
# --------------------------------------------------------------------- #

_ROOT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_corpus.json")


def _load_payload() -> dict:
    """The freshest payload: results copy first, then the committed one."""
    for path in (os.path.join(RESULTS_DIR, "BENCH_corpus.json"), _ROOT_PATH):
        if os.path.exists(path):
            with open(path) as fh:
                return json.load(fh)
    return {}


def _merge_cells(new_cells: dict) -> None:
    payload = _load_payload()
    cells = dict(payload.get("cells", {}))
    cells.update(new_cells)
    _merge_payload({"cells": cells})


def _merge_payload(update: dict) -> None:
    payload = _load_payload()
    payload.update(update)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for path in (os.path.join(RESULTS_DIR, "BENCH_corpus.json"), _ROOT_PATH):
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
