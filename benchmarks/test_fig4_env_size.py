"""Figure 4 — KERT-BN vs NRT-BN across environment sizes.

Paper setup (Section 4.2): 10–100 simulated services; training sets of
36 points (α = 12, T_CON = 2 min — the fast-reconstruction regime);
repeated runs averaged.

Expected shape: NRT-BN construction time grows *super-linearly* with the
number of services (its K2 search evaluates O((n+1)²) candidate sets)
while KERT-BN's stays nearly flat; NRT-BN becomes infeasible at
T_CON = 2 min beyond some size while KERT-BN never does; KERT-BN keeps
the accuracy lead at every size.
"""

import numpy as np
import pytest

from _util import emit_series

from repro.core.kertbn import build_continuous_kertbn
from repro.core.nrtbn import build_continuous_nrtbn
from repro.core.reconstruction import ReconstructionSchedule
from repro.simulator.scenarios.random_env import random_environment

import os

# The paper extrapolates NRT-BN's blow-up to 200/300/500 services (over
# 2 h / 10 h / 2 days on 2007 hardware).  Opt in to the larger sweep with
# REPRO_FIG4_LARGE=1; the default keeps CI fast.
ENV_SIZES = (10, 20, 40, 60, 80, 100)
if os.environ.get("REPRO_FIG4_LARGE") == "1":
    ENV_SIZES = ENV_SIZES + (150, 200)
N_TRAIN = 36
N_TEST = 100
N_REPS = 3
SCHEDULE = ReconstructionSchedule(t_data=10.0, alpha_model=12, k=3)  # T_CON = 2 min


@pytest.fixture(scope="module")
def fig4_rows():
    rows = []
    for n in ENV_SIZES:
        acc = {"kert_build_s": [], "nrt_build_s": [],
               "kert_log10": [], "nrt_log10": [], "k2_evals": []}
        for rep in range(N_REPS):
            seed = 41_000 + 13 * n + rep
            env = random_environment(n, rng=seed)
            train, test = env.train_test(N_TRAIN, N_TEST, rng=seed + 1)
            kert = build_continuous_kertbn(env.workflow, train)
            nrt = build_continuous_nrtbn(train, rng=seed + 2)
            acc["kert_build_s"].append(kert.report.construction_seconds)
            acc["nrt_build_s"].append(nrt.report.construction_seconds)
            acc["kert_log10"].append(kert.log10_likelihood(test))
            acc["nrt_log10"].append(nrt.log10_likelihood(test))
            acc["k2_evals"].append(nrt.report.extra["k2_evaluations"])
        rows.append(
            {
                "n_services": n,
                "kert_build_s": float(np.mean(acc["kert_build_s"])),
                "nrt_build_s": float(np.mean(acc["nrt_build_s"])),
                "kert_log10": float(np.mean(acc["kert_log10"])),
                "nrt_log10": float(np.mean(acc["nrt_log10"])),
                "k2_evals": float(np.mean(acc["k2_evals"])),
                "kert_feasible@2min": float(np.mean(acc["kert_build_s"]))
                <= SCHEDULE.t_con,
                "nrt_feasible@2min": float(np.mean(acc["nrt_build_s"]))
                <= SCHEDULE.t_con,
            }
        )
    emit_series(
        "fig4",
        f"construction time & accuracy vs environment size "
        f"(N={N_TRAIN} training points, {N_REPS} reps)",
        rows,
    )
    return rows


def test_fig4_construction_time_shape(fig4_rows, benchmark):
    small, large = fig4_rows[0], fig4_rows[-1]
    n_ratio = large["n_services"] / small["n_services"]
    # NRT-BN super-linear: time ratio beats the size ratio.
    assert large["nrt_build_s"] / small["nrt_build_s"] > n_ratio
    # K2's candidate evaluations grow super-linearly too (O(n^2) signature).
    assert large["k2_evals"] / small["k2_evals"] > n_ratio
    # KERT-BN ~flat: grows far slower than NRT-BN.
    kert_growth = large["kert_build_s"] / small["kert_build_s"]
    nrt_growth = large["nrt_build_s"] / small["nrt_build_s"]
    assert kert_growth < nrt_growth / 2
    # KERT-BN always feasible at T_CON = 2 min.
    assert all(r["kert_feasible@2min"] for r in fig4_rows)

    env = random_environment(ENV_SIZES[-1], rng=900)
    train, _ = env.train_test(N_TRAIN, N_TEST, rng=901)
    benchmark.pedantic(
        build_continuous_kertbn, args=(env.workflow, train), rounds=3, iterations=1
    )


def test_fig4_accuracy_shape(fig4_rows, benchmark):
    for r in fig4_rows:
        assert r["kert_log10"] >= r["nrt_log10"] - 1e-6

    env = random_environment(ENV_SIZES[-1], rng=902)
    train, _ = env.train_test(N_TRAIN, N_TEST, rng=903)
    benchmark.pedantic(
        build_continuous_nrtbn, args=(train,), kwargs={"rng": 904},
        rounds=2, iterations=1,
    )
