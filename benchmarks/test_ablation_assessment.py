"""Ablation — rapid analytic assessment vs Monte-Carlo (Section-7 extension).

The paper's future work asks for cheap probability assessment *after*
construction.  This benchmark compares the Clark-approximation
:class:`~repro.apps.assessment.RapidAssessor` against Monte-Carlo
projection (the default pAccel path) on the eDiaMoND model: per-query
latency and agreement on E[D] and P(D > h).
"""

import time

import numpy as np
import pytest

from _util import emit_series

from repro.apps.assessment import RapidAssessor
from repro.apps.paccel import PAccel
from repro.core.kertbn import build_continuous_kertbn
from repro.simulator.scenarios.ediamond import ediamond_scenario

MC_SAMPLES = 40_000


@pytest.fixture(scope="module")
def assessment_rows():
    env = ediamond_scenario()
    train = env.simulate(800, rng=93_000)
    model = build_continuous_kertbn(env.workflow, train)
    ra = RapidAssessor(model)
    pa = PAccel(model)

    t0 = time.perf_counter()
    m_fast, v_fast = ra.assess()
    fast_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    mc = pa.baseline(n_samples=MC_SAMPLES, rng=93_001)
    mc_s = time.perf_counter() - t0

    rows = [
        {
            "method": "clark-analytic",
            "query_s": fast_s,
            "E[D]": m_fast,
            "sd[D]": float(np.sqrt(v_fast)),
            "P(D>2.0)": ra.violation_probability(2.0),
        },
        {
            "method": f"monte-carlo({MC_SAMPLES})",
            "query_s": mc_s,
            "E[D]": mc.mean,
            "sd[D]": mc.std,
            "P(D>2.0)": mc.violation_probability(2.0),
        },
    ]
    emit_series(
        "ablation_assessment",
        "rapid analytic assessment vs Monte Carlo (eDiaMoND)",
        rows,
    )
    return rows, ra, pa


def test_analytic_assessment_accurate_and_fast(assessment_rows, benchmark):
    rows, ra, pa = assessment_rows
    fast, mc = rows
    assert fast["E[D]"] == pytest.approx(mc["E[D]"], rel=0.02)
    assert fast["sd[D]"] == pytest.approx(mc["sd[D]"], rel=0.06)
    assert fast["P(D>2.0)"] == pytest.approx(mc["P(D>2.0)"], abs=0.06)
    assert fast["query_s"] < mc["query_s"]

    benchmark.pedantic(ra.assess, rounds=20, iterations=5)
