"""Figure 3 — KERT-BN vs NRT-BN across training-set sizes.

Paper setup (Section 4.2): 30 simulated services; continuous models;
training sets from 36 points (K·α = 3·12, T_CON = 2 min) to 1080 points
(3·360, T_CON = 60 min); accuracy = log10 p(TestData | BN) against a
100-point test set; each point averaged over repetitions.

Expected shape: both construction times grow ~linearly with training
size with KERT-BN strictly below and the gap widening; KERT-BN accuracy
at least matches NRT-BN everywhere and is already near its plateau at 36
points while NRT-BN needs hundreds of points to stabilize.
"""

import numpy as np
import pytest

from _util import emit_series

from repro.core.kertbn import build_continuous_kertbn
from repro.core.nrtbn import build_continuous_nrtbn
from repro.simulator.scenarios.random_env import random_environment

N_SERVICES = 30
TRAINING_SIZES = (36, 108, 216, 432, 648, 1080)
N_TEST = 100
N_REPS = 3


@pytest.fixture(scope="module")
def fig3_rows():
    rows = []
    for n_train in TRAINING_SIZES:
        acc = {"kert_build_s": [], "nrt_build_s": [],
               "kert_log10": [], "nrt_log10": []}
        for rep in range(N_REPS):
            seed = 31_000 + 17 * n_train + rep
            env = random_environment(N_SERVICES, rng=seed)
            train, test = env.train_test(n_train, N_TEST, rng=seed + 1)
            kert = build_continuous_kertbn(env.workflow, train)
            nrt = build_continuous_nrtbn(train, rng=seed + 2)
            acc["kert_build_s"].append(kert.report.construction_seconds)
            acc["nrt_build_s"].append(nrt.report.construction_seconds)
            acc["kert_log10"].append(kert.log10_likelihood(test))
            acc["nrt_log10"].append(nrt.log10_likelihood(test))
        rows.append(
            {
                "n_train": n_train,
                **{k: float(np.mean(v)) for k, v in acc.items()},
                "speedup": float(np.mean(acc["nrt_build_s"]))
                / float(np.mean(acc["kert_build_s"])),
            }
        )
    emit_series(
        "fig3",
        f"construction time & accuracy vs training size "
        f"({N_SERVICES} services, {N_REPS} reps)",
        rows,
    )
    return rows


def test_fig3_construction_time_shape(fig3_rows, benchmark):
    # KERT-BN below NRT-BN at every size; gap (absolute) widens with N.
    for r in fig3_rows:
        assert r["kert_build_s"] < r["nrt_build_s"]
    gaps = [r["nrt_build_s"] - r["kert_build_s"] for r in fig3_rows]
    assert gaps[-1] > gaps[0]

    # Representative timed unit: one KERT-BN build at the largest size.
    env = random_environment(N_SERVICES, rng=99)
    train, _ = env.train_test(TRAINING_SIZES[-1], N_TEST, rng=100)
    benchmark.pedantic(
        build_continuous_kertbn, args=(env.workflow, train), rounds=3, iterations=1
    )


def test_fig3_accuracy_shape(fig3_rows, benchmark):
    # KERT-BN accuracy >= NRT-BN accuracy at every training size.
    for r in fig3_rows:
        assert r["kert_log10"] >= r["nrt_log10"] - 1e-6
    # NRT-BN improves substantially from 36 to 1080 points; KERT-BN's
    # small-data accuracy is already close to its large-data accuracy
    # relative to NRT's movement (fast convergence).
    kert_gain = fig3_rows[-1]["kert_log10"] - fig3_rows[0]["kert_log10"]
    nrt_gain = fig3_rows[-1]["nrt_log10"] - fig3_rows[0]["nrt_log10"]
    assert nrt_gain > kert_gain

    env = random_environment(N_SERVICES, rng=101)
    train, test = env.train_test(36, N_TEST, rng=102)
    model = build_continuous_kertbn(env.workflow, train)
    benchmark.pedantic(model.log10_likelihood, args=(test,), rounds=3, iterations=1)
