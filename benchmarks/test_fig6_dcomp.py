"""Figure 6 — dComp: posterior vs prior distribution of X4.

Paper setup (Section 5.1): discrete KERT-BN on the eDiaMoND test-bed
(T_DATA = 20 s, K = 10, T_CON = 20 min, 1200 training points); dComp
infers the posterior of the unobservable X4 (image_locator_remote) from
observed means of the remaining variables.

Expected shape: the posterior shifts from the (stale) prior toward the
actual elapsed time and concentrates ("more deterministic and precise").
The drift scenario makes the prior stale: the remote WAN degrades after
model construction, so X4's real mean rises above what the training data
showed.
"""

import numpy as np
import pytest

from _util import emit_series

from repro.apps.dcomp import DComp
from repro.core.kertbn import build_discrete_kertbn
from repro.core.reconstruction import ReconstructionSchedule
from repro.simulator.scenarios.ediamond import ediamond_scenario

SCHEDULE = ReconstructionSchedule.from_training_size(1200, k=10, t_data=20.0)


@pytest.fixture(scope="module")
def fig6_result():
    env = ediamond_scenario()
    train = env.simulate(SCHEDULE.n_points, rng=61_001)
    model = build_discrete_kertbn(env.workflow, train, n_bins=5)

    # Environment drift after construction: remote link degrades.
    drifted = ediamond_scenario(wan_delay=0.6)
    current = drifted.simulate(400, rng=61_002)
    actual_x4 = float(np.mean(current["X4"]))
    observed = {
        c: float(np.mean(current[c])) for c in current.columns if c != "X4"
    }
    result = DComp(model).posterior("X4", observed)
    return result, actual_x4


def test_fig6_posterior_vs_prior(fig6_result, benchmark):
    result, actual_x4 = fig6_result

    rows = [
        {
            "bin_center": float(c),
            "prior": float(p),
            "posterior": float(q),
        }
        for c, p, q in zip(result.centers, result.prior, result.posterior)
    ]
    rows.append(
        {
            "bin_center": "mean/std",
            "prior": f"{result.prior_mean:.3f}±{result.prior_std:.3f}",
            "posterior": f"{result.posterior_mean:.3f}±{result.posterior_std:.3f}",
        }
    )
    rows.append({"bin_center": "actual_x4", "prior": "", "posterior": f"{actual_x4:.3f}"})
    emit_series("fig6", "dComp posterior vs prior of X4 under WAN drift", rows)

    # Shape assertions: shift toward the (higher) actual value...
    assert result.posterior_mean > result.prior_mean
    assert result.shift_toward(actual_x4) > 0
    # ...and concentration (entropy over bins drops).
    def entropy(pmf):
        p = pmf[pmf > 0]
        return float(-(p * np.log(p)).sum())

    assert entropy(result.posterior) < entropy(result.prior)

    # Timed unit: one dComp posterior query (the autonomic-loop cost).
    env = ediamond_scenario()
    train = env.simulate(SCHEDULE.n_points, rng=61_003)
    model = build_discrete_kertbn(env.workflow, train, n_bins=5)
    current = env.simulate(100, rng=61_004)
    observed = {c: float(np.mean(current[c])) for c in current.columns if c != "X4"}
    dcomp = DComp(model)
    benchmark.pedantic(
        dcomp.posterior, args=("X4", observed), rounds=5, iterations=1
    )
