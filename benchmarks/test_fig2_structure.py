"""Figure 2 — the KERT-BN DAG for the eDiaMoND scenario.

Figure 2 is a structure diagram, so its "reproduction" is the derived
DAG itself: the benchmark prints the edge list, asserts it matches the
figure, and times the knowledge-based structure derivation (the cost
that replaces NRT-BN's structure search).
"""

from _util import emit_series

from repro.simulator.scenarios.ediamond import ediamond_workflow
from repro.workflow.response_time import response_time_function
from repro.workflow.structure import kert_bn_structure


EXPECTED_WORKFLOW_EDGES = {
    ("X1", "X2"),
    ("X2", "X3"),
    ("X2", "X4"),
    ("X3", "X5"),
    ("X4", "X6"),
}


def test_fig2_structure(benchmark):
    workflow = ediamond_workflow()
    dag = benchmark(kert_bn_structure, workflow)

    service_edges = {
        (u, v) for u, v in dag.edges if u != "D" and v != "D"
    }
    assert service_edges == EXPECTED_WORKFLOW_EDGES
    assert set(dag.parents("D")) == {"X1", "X2", "X3", "X4", "X5", "X6"}

    f = response_time_function(workflow)
    assert f.to_string() == "X1 + X2 + max(X3 + X5, X4 + X6)"

    rows = [{"edge": f"{u} -> {v}"} for u, v in sorted(dag.edges)]
    rows.append({"edge": f"f: D = {f.to_string()}"})
    emit_series("fig2", "KERT-BN structure for the eDiaMoND scenario", rows)
