"""Figure 5 — decentralized vs centralized parameter-learning time.

Paper setup (Section 4.3): for each environment size, the parameters of
randomly generated KERT-BNs are learned; since the per-CPD computations
run concurrently on monitoring agents, the decentralized learning time is
the **maximum** of the per-CPD times, compared against the centralized
**sum**.

Expected shape: decentralized constantly below centralized, the gap
growing with the number of services (thus CPDs).
"""

import numpy as np
import pytest

from _util import emit_series

from repro.decentralized.agent import linear_gaussian_fitter
from repro.decentralized.coordinator import Coordinator
from repro.simulator.scenarios.random_env import random_environment

ENV_SIZES = (10, 25, 50, 75, 100)
N_TRAIN = 200
N_NETS_PER_SIZE = 5


@pytest.fixture(scope="module")
def fig5_rows():
    rows = []
    for n in ENV_SIZES:
        dec, cen, msgs = [], [], []
        for rep in range(N_NETS_PER_SIZE):
            seed = 51_000 + 7 * n + rep
            env = random_environment(n, rng=seed)
            data = env.simulate(N_TRAIN, rng=seed + 1)
            dag = env.knowledge_structure()
            service_dag = dag.subgraph([m for m in dag.nodes if m != "D"])
            coord = Coordinator(service_dag, linear_gaussian_fitter())
            result = coord.learn_round(data)
            dec.append(result.decentralized_seconds)
            cen.append(result.centralized_seconds)
            msgs.append(result.network_summary["n_messages"])
        rows.append(
            {
                "n_services": n,
                "decentralized_s": float(np.mean(dec)),
                "centralized_s": float(np.mean(cen)),
                "ratio": float(np.mean(cen)) / float(np.mean(dec)),
                "n_messages": float(np.mean(msgs)),
            }
        )
    emit_series(
        "fig5",
        f"decentralized (max per-CPD) vs centralized (sum) learning time "
        f"({N_NETS_PER_SIZE} random KERT-BNs per size, N={N_TRAIN})",
        rows,
    )
    return rows


def test_fig5_decentralized_beats_centralized(fig5_rows, benchmark):
    for r in fig5_rows:
        assert r["decentralized_s"] < r["centralized_s"]
    # The advantage grows with environment size.
    assert fig5_rows[-1]["ratio"] > fig5_rows[0]["ratio"]

    env = random_environment(ENV_SIZES[-1], rng=905)
    data = env.simulate(N_TRAIN, rng=906)
    dag = env.knowledge_structure()
    service_dag = dag.subgraph([m for m in dag.nodes if m != "D"])

    def one_round():
        return Coordinator(service_dag, linear_gaussian_fitter()).learn_round(data)

    benchmark.pedantic(one_round, rounds=3, iterations=1)
