"""Shared helpers for the figure-reproduction benchmarks.

Each ``test_fig*.py`` regenerates one figure of the paper's evaluation:
it sweeps the paper's parameter, prints the series in a paper-shaped
table, persists it under ``benchmarks/results/`` (so the data survives
pytest's output capture), and times a representative unit of work with
pytest-benchmark.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_series(figure: str, header: str, rows: "Iterable[Mapping]") -> str:
    """Format, print, and persist one figure's data series.

    Returns the formatted text (also written to
    ``benchmarks/results/<figure>.txt``).
    """
    rows = list(rows)
    if not rows:
        raise ValueError(f"{figure}: no rows to emit")
    keys = list(rows[0].keys())
    widths = {k: max(len(str(k)), 12) for k in keys}
    lines = [f"== {figure}: {header} =="]
    lines.append("  ".join(str(k).ljust(widths[k]) for k in keys))
    for r in rows:
        cells = []
        for k in keys:
            v = r[k]
            if isinstance(v, float):
                cells.append(f"{v:.6g}".ljust(widths[k]))
            else:
                cells.append(str(v).ljust(widths[k]))
        lines.append("  ".join(cells))
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{figure}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text
