"""Inference-serving throughput: compile-once and batched query speedups.

The paper optimizes model *construction*; this benchmark starts the
serving-side perf trajectory.  On the eDiaMoND-shaped discrete KERT-BN
it measures queries/sec for

- scratch variable elimination (factor extraction + min-fill + factor
  products per call) vs the compiled engine answering the same repeated
  single-evidence query, and
- a per-row loop of compiled queries vs one vectorized
  ``query_batch`` pass over 1k evidence rows,

asserts the compiled/batched posteriors match scratch VE to 1e-9, and
persists the numbers to ``BENCH_inference.json`` (repo root and
``benchmarks/results/``) so future PRs can track regressions.
"""

import json
import os
import time

import numpy as np
import pytest

from _util import RESULTS_DIR, emit_series

from repro.bn.inference.variable_elimination import query as ve_query
from repro.core.kertbn import build_discrete_kertbn
from repro.simulator.scenarios.ediamond import ediamond_scenario

N_BATCH_ROWS = 1_000
EVIDENCE_VARS = ("X1", "X2", "D")
TARGET = "X3"


@pytest.fixture(scope="module")
def discrete_model():
    env = ediamond_scenario()
    train = env.simulate(1000, rng=95_000)
    return build_discrete_kertbn(env.workflow, train, n_bins=5)


def _qps(seconds: float, n: int) -> float:
    return n / seconds if seconds > 0 else float("inf")


def test_inference_throughput(discrete_model, benchmark):
    net = discrete_model.network
    engine = net.compiled()
    cards = net.cardinalities
    evidence = {"X1": 1, "X2": 2, "D": 3}

    # --- compile-once: repeated single queries ------------------------- #
    n_single = 100
    engine.query([TARGET], evidence)  # compile outside the timing
    t0 = time.perf_counter()
    for _ in range(n_single):
        ve_query(net, [TARGET], evidence)
    scratch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n_single):
        compiled_factor = engine.query([TARGET], evidence)
    compiled_s = time.perf_counter() - t0
    compiled_speedup = scratch_s / compiled_s

    scratch_factor = ve_query(net, [TARGET], evidence)
    single_dev = float(
        np.max(np.abs(compiled_factor.values - scratch_factor.values))
    )

    # --- batched evidence rows ----------------------------------------- #
    rng = np.random.default_rng(0)
    columns = {
        v: rng.integers(0, cards[v], size=N_BATCH_ROWS) for v in EVIDENCE_VARS
    }
    engine.query_batch([TARGET], columns)  # warm the batch plan
    t0 = time.perf_counter()
    batched = engine.query_batch([TARGET], columns)
    batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i in range(N_BATCH_ROWS):
        row = {v: int(col[i]) for v, col in columns.items()}
        engine.query([TARGET], row)
    loop_s = time.perf_counter() - t0
    batch_speedup = loop_s / batch_s

    batch_dev = 0.0
    for i in range(0, N_BATCH_ROWS, 97):  # spot-check rows against scratch VE
        row = {v: int(col[i]) for v, col in columns.items()}
        ref = ve_query(net, [TARGET], row).values
        batch_dev = max(batch_dev, float(np.max(np.abs(batched[i] - ref))))

    # --- acceptance criteria ------------------------------------------- #
    assert compiled_speedup >= 5.0, f"compile-once speedup {compiled_speedup:.1f}x < 5x"
    assert batch_speedup >= 5.0, f"batched speedup {batch_speedup:.1f}x < 5x"
    assert single_dev <= 1e-9 and batch_dev <= 1e-9

    rows = [
        {
            "path": "scratch VE (per call)",
            "queries_per_s": _qps(scratch_s, n_single),
            "speedup": 1.0,
        },
        {
            "path": "compiled engine (repeated)",
            "queries_per_s": _qps(compiled_s, n_single),
            "speedup": compiled_speedup,
        },
        {
            "path": "compiled engine (row loop)",
            "queries_per_s": _qps(loop_s, N_BATCH_ROWS),
            "speedup": scratch_s / n_single * N_BATCH_ROWS / loop_s,
        },
        {
            "path": f"query_batch ({N_BATCH_ROWS} rows)",
            "queries_per_s": _qps(batch_s, N_BATCH_ROWS),
            "speedup": scratch_s / n_single * N_BATCH_ROWS / batch_s,
        },
    ]
    emit_series(
        "BENCH_inference",
        f"eDiaMoND discrete KERT-BN, P({TARGET} | {', '.join(EVIDENCE_VARS)})",
        rows,
    )
    payload = {
        "model": "ediamond/discrete-kertbn(n_bins=5)",
        "query": {"variables": [TARGET], "evidence_vars": list(EVIDENCE_VARS)},
        "single": {
            "scratch_qps": _qps(scratch_s, n_single),
            "compiled_qps": _qps(compiled_s, n_single),
            "compile_once_speedup": compiled_speedup,
            "max_abs_deviation_vs_scratch": single_dev,
        },
        "batched": {
            "n_rows": N_BATCH_ROWS,
            "per_row_loop_qps": _qps(loop_s, N_BATCH_ROWS),
            "batched_qps": _qps(batch_s, N_BATCH_ROWS),
            "batched_speedup_vs_loop": batch_speedup,
            "max_abs_deviation_vs_scratch": batch_dev,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for path in (
        os.path.join(RESULTS_DIR, "BENCH_inference.json"),
        os.path.join(os.path.dirname(__file__), "..", "BENCH_inference.json"),
    ):
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    # Representative serving unit for pytest-benchmark's tracking.
    benchmark(engine.query_batch, [TARGET], columns)
