"""Inference-serving throughput: compile-once and batched query speedups.

The paper optimizes model *construction*; this benchmark starts the
serving-side perf trajectory.  On the eDiaMoND-shaped discrete KERT-BN
it measures queries/sec for

- scratch variable elimination (factor extraction + min-fill + factor
  products per call) vs the compiled engine answering the same repeated
  single-evidence query, and
- a per-row loop of compiled queries vs one vectorized
  ``query_batch`` pass over 1k evidence rows,

asserts the compiled/batched posteriors match scratch VE to 1e-9, and
persists the numbers to ``BENCH_inference.json`` (repo root and
``benchmarks/results/``) so future PRs can track regressions.
"""

import json
import os
import time

import numpy as np
import pytest

from _util import RESULTS_DIR, emit_series

from repro.bn.inference.engine import FLOAT32_MAX_DEVIATION
from repro.bn.inference.junction_tree import JunctionTree
from repro.bn.inference.variable_elimination import query as ve_query
from repro.bn.random_nets import random_discrete_network
from repro.core.kertbn import build_discrete_kertbn
from repro.simulator.scenarios.ediamond import ediamond_scenario

N_BATCH_ROWS = 1_000
N_BATCH_REPS = 50
EVIDENCE_VARS = ("X1", "X2", "D")
TARGET = "X3"


@pytest.fixture(scope="module")
def discrete_model():
    env = ediamond_scenario()
    train = env.simulate(1000, rng=95_000)
    return build_discrete_kertbn(env.workflow, train, n_bins=5)


def _qps(seconds: float, n: int) -> float:
    return n / seconds if seconds > 0 else float("inf")


def test_inference_throughput(discrete_model, benchmark):
    net = discrete_model.network
    engine = net.compiled()
    cards = net.cardinalities
    evidence = {"X1": 1, "X2": 2, "D": 3}

    # --- compile-once: repeated single queries ------------------------- #
    n_single = 100
    engine.query([TARGET], evidence)  # compile outside the timing
    t0 = time.perf_counter()
    for _ in range(n_single):
        ve_query(net, [TARGET], evidence)
    scratch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n_single):
        compiled_factor = engine.query([TARGET], evidence)
    compiled_s = time.perf_counter() - t0
    compiled_speedup = scratch_s / compiled_s

    scratch_factor = ve_query(net, [TARGET], evidence)
    single_dev = float(
        np.max(np.abs(compiled_factor.values - scratch_factor.values))
    )

    # --- batched evidence rows ----------------------------------------- #
    rng = np.random.default_rng(0)
    columns = {
        v: rng.integers(0, cards[v], size=N_BATCH_ROWS).astype(np.intp)
        for v in EVIDENCE_VARS
    }
    engine.query_batch([TARGET], columns)  # warm the batch plan
    # One joint-table gather over 1k rows takes tens of µs now; repeat
    # the call so the measured qps is not timer-resolution noise.
    t0 = time.perf_counter()
    for _ in range(N_BATCH_REPS):
        batched = engine.query_batch([TARGET], columns)
    batch_s = (time.perf_counter() - t0) / N_BATCH_REPS
    t0 = time.perf_counter()
    for i in range(N_BATCH_ROWS):
        row = {v: int(col[i]) for v, col in columns.items()}
        engine.query([TARGET], row)
    loop_s = time.perf_counter() - t0
    batch_speedup = loop_s / batch_s

    batch_dev = 0.0
    for i in range(0, N_BATCH_ROWS, 97):  # spot-check rows against scratch VE
        row = {v: int(col[i]) for v, col in columns.items()}
        ref = ve_query(net, [TARGET], row).values
        batch_dev = max(batch_dev, float(np.max(np.abs(batched[i] - ref))))

    # --- single-precision batch path ----------------------------------- #
    engine.query_batch([TARGET], columns, dtype=np.float32)  # warm f32 table
    t0 = time.perf_counter()
    for _ in range(N_BATCH_REPS):
        batched_f32 = engine.query_batch([TARGET], columns, dtype=np.float32)
    batch_f32_s = (time.perf_counter() - t0) / N_BATCH_REPS
    f32_dev = float(np.max(np.abs(batched_f32.astype(np.float64) - batched)))

    # --- acceptance criteria ------------------------------------------- #
    assert compiled_speedup >= 5.0, f"compile-once speedup {compiled_speedup:.1f}x < 5x"
    assert batch_speedup >= 5.0, f"batched speedup {batch_speedup:.1f}x < 5x"
    assert single_dev <= 1e-9 and batch_dev <= 1e-9
    assert f32_dev <= FLOAT32_MAX_DEVIATION, (
        f"float32 deviation {f32_dev:.2e} > documented bound "
        f"{FLOAT32_MAX_DEVIATION:.0e}"
    )

    rows = [
        {
            "path": "scratch VE (per call)",
            "queries_per_s": _qps(scratch_s, n_single),
            "speedup": 1.0,
        },
        {
            "path": "compiled engine (repeated)",
            "queries_per_s": _qps(compiled_s, n_single),
            "speedup": compiled_speedup,
        },
        {
            "path": "compiled engine (row loop)",
            "queries_per_s": _qps(loop_s, N_BATCH_ROWS),
            "speedup": scratch_s / n_single * N_BATCH_ROWS / loop_s,
        },
        {
            "path": f"query_batch ({N_BATCH_ROWS} rows)",
            "queries_per_s": _qps(batch_s, N_BATCH_ROWS),
            "speedup": scratch_s / n_single * N_BATCH_ROWS / batch_s,
        },
    ]
    emit_series(
        "BENCH_inference",
        f"eDiaMoND discrete KERT-BN, P({TARGET} | {', '.join(EVIDENCE_VARS)})",
        rows,
    )
    payload = {
        "model": "ediamond/discrete-kertbn(n_bins=5)",
        "query": {"variables": [TARGET], "evidence_vars": list(EVIDENCE_VARS)},
        "single": {
            "scratch_qps": _qps(scratch_s, n_single),
            "compiled_qps": _qps(compiled_s, n_single),
            "compile_once_speedup": compiled_speedup,
            "max_abs_deviation_vs_scratch": single_dev,
        },
        "batched": {
            "n_rows": N_BATCH_ROWS,
            "per_row_loop_qps": _qps(loop_s, N_BATCH_ROWS),
            "batched_qps": _qps(batch_s, N_BATCH_ROWS),
            "batched_speedup_vs_loop": batch_speedup,
            "max_abs_deviation_vs_scratch": batch_dev,
            "float32": {
                "batched_qps": _qps(batch_f32_s, N_BATCH_ROWS),
                "speedup_vs_float64": batch_s / batch_f32_s,
                "max_abs_deviation_vs_float64": f32_dev,
                "documented_bound": FLOAT32_MAX_DEVIATION,
            },
        },
    }
    _merge_payload(payload)

    # Representative serving unit for pytest-benchmark's tracking.
    benchmark(engine.query_batch, [TARGET], columns)


def _merge_payload(update: dict) -> None:
    """Merge ``update`` into both BENCH_inference.json copies.

    The throughput, junction-tree, and matrix benchmarks each own a
    top-level key; merging (rather than overwriting) lets them run in
    any combination without clobbering each other's sections.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for path in (
        os.path.join(RESULTS_DIR, "BENCH_inference.json"),
        os.path.join(os.path.dirname(__file__), "..", "BENCH_inference.json"),
    ):
        payload = {}
        if os.path.exists(path):
            with open(path) as fh:
                payload = json.load(fh)
        payload.update(update)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")


N_CHURN_WINDOWS = 60


def test_incremental_recalibration_speedup(benchmark):
    """Evidence churn on a wide random net: incremental vs full sweeps.

    The manager's per-window loop is absorb → read a few marginals →
    retract.  The incremental tree reuses every message from subtrees
    the window's evidence did not touch; the ``incremental=False`` tree
    recomputes the full two-sweep calibration per window — the honest
    comparator the ``jtree.incremental_speedup_vs_full`` gate guards.
    """
    rng = np.random.default_rng(1234)
    net = random_discrete_network(rng, width=16, n_bins=4)
    nodes = [str(n) for n in net.nodes]
    cards = net.cardinalities
    windows = []
    rng2 = np.random.default_rng(5678)
    for _ in range(N_CHURN_WINDOWS):
        picks = [nodes[i] for i in rng2.choice(len(nodes), 5, replace=False)]
        ev = {v: int(rng2.integers(cards[v])) for v in picks[:2]}
        windows.append((ev, picks[2:]))

    def churn(tree):
        for ev, queries in windows:
            tree.absorb(ev)
            for q in queries:
                tree.marginal(q)
            tree.retract(list(ev))

    inc = JunctionTree(net, incremental=True)
    full = JunctionTree(net, incremental=False)
    churn(inc)  # warm both trees outside the timing
    churn(full)
    t0 = time.perf_counter()
    churn(inc)
    inc_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    churn(full)
    full_s = time.perf_counter() - t0
    speedup = full_s / inc_s

    # Cross-check: both trees answer identically after the churn.
    ev, queries = windows[0]
    inc.absorb(ev)
    full.absorb(ev)
    for q in queries:
        np.testing.assert_allclose(
            inc.marginal(q).values, full.marginal(q).values, atol=1e-10
        )
    inc.retract(list(ev))
    full.retract(list(ev))

    assert speedup >= 1.2, (
        f"incremental recalibration only {speedup:.2f}x vs full sweep"
    )
    _merge_payload(
        {
            "jtree": {
                "model": "random(width=16, n_bins=4, max_parents=2)",
                "n_windows": N_CHURN_WINDOWS,
                "incremental_windows_per_s": _qps(inc_s, N_CHURN_WINDOWS),
                "full_sweep_windows_per_s": _qps(full_s, N_CHURN_WINDOWS),
                "incremental_speedup_vs_full": speedup,
            }
        }
    )
    benchmark(churn, inc)
