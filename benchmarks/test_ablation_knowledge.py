"""Ablation — how much does each knowledge injection buy?

DESIGN.md calls out two distinct uses of domain knowledge in KERT-BN:
the *structure* (Sec 3.2) and the *response CPD* ``f`` (Sec 3.3, Eq. 4).
This ablation builds the ladder

  NRT-BN  →  structure-only KERT-BN  →  full KERT-BN

on identical data and reports construction time and test accuracy for
each rung, separating the two contributions the paper evaluates jointly.
"""

import numpy as np
import pytest

from _util import emit_series

from repro.core.kertbn import build_continuous_kertbn, build_structure_only_kertbn
from repro.core.nrtbn import build_continuous_nrtbn, build_naive_continuous
from repro.simulator.scenarios.random_env import random_environment

N_SERVICES = 30
N_TRAIN = 120
N_TEST = 150
N_REPS = 3


@pytest.fixture(scope="module")
def ablation_rows():
    builders = {
        "naive (no knowledge, no search)": lambda env, tr: build_naive_continuous(tr),
        "nrt-bn (K2 search)": lambda env, tr: build_continuous_nrtbn(tr, rng=1),
        "kert structure-only": lambda env, tr: build_structure_only_kertbn(
            env.workflow, tr
        ),
        "kert full (structure + f)": lambda env, tr: build_continuous_kertbn(
            env.workflow, tr
        ),
    }
    acc = {name: {"build": [], "log10": []} for name in builders}
    for rep in range(N_REPS):
        env = random_environment(N_SERVICES, rng=90_000 + rep)
        train, test = env.train_test(N_TRAIN, N_TEST, rng=90_100 + rep)
        for name, build in builders.items():
            model = build(env, train)
            acc[name]["build"].append(model.report.construction_seconds)
            acc[name]["log10"].append(model.log10_likelihood(test))
    rows = [
        {
            "variant": name,
            "build_s": float(np.mean(v["build"])),
            "test_log10": float(np.mean(v["log10"])),
        }
        for name, v in acc.items()
    ]
    emit_series(
        "ablation_knowledge",
        f"knowledge ladder ({N_SERVICES} services, N={N_TRAIN}, {N_REPS} reps)",
        rows,
    )
    return {r["variant"]: r for r in rows}


def test_knowledge_ladder_monotone(ablation_rows, benchmark):
    naive = ablation_rows["naive (no knowledge, no search)"]
    nrt = ablation_rows["nrt-bn (K2 search)"]
    struct = ablation_rows["kert structure-only"]
    full = ablation_rows["kert full (structure + f)"]

    # Accuracy climbs the ladder.
    assert nrt["test_log10"] > naive["test_log10"]
    assert struct["test_log10"] >= nrt["test_log10"] - 1e-6
    assert full["test_log10"] >= struct["test_log10"] - 1e-6
    # Knowledge-given structure removes the expensive search.
    assert struct["build_s"] < nrt["build_s"]
    assert full["build_s"] < nrt["build_s"]

    env = random_environment(N_SERVICES, rng=90_900)
    train, _ = env.train_test(N_TRAIN, N_TEST, rng=90_901)
    benchmark.pedantic(
        build_structure_only_kertbn, args=(env.workflow, train),
        rounds=3, iterations=1,
    )
