"""Ablation — can data learning recover the knowledge structure?

KERT-BN's structure comes for free from the workflow; NRT-BN must learn
it.  This ablation measures how close K2 gets to the workflow-derived
reference as training data grows (skeleton F1 and structural Hamming
distance), quantifying what "knowledge for free" is worth in data terms.
"""

import numpy as np
import pytest

from _util import emit_series

from repro.bn.structure_metrics import knowledge_recovery
from repro.core.nrtbn import build_continuous_nrtbn
from repro.simulator.scenarios.random_env import random_environment

N_SERVICES = 15
TRAIN_SIZES = (36, 120, 400, 1200)
N_REPS = 3


@pytest.fixture(scope="module")
def recovery_rows():
    rows = []
    for n_train in TRAIN_SIZES:
        f1s, shds, recalls = [], [], []
        for rep in range(N_REPS):
            seed = 95_000 + 11 * n_train + rep
            env = random_environment(N_SERVICES, rng=seed)
            train = env.simulate(n_train, rng=seed + 1)
            nrt = build_continuous_nrtbn(train, rng=seed + 2)
            cmp = knowledge_recovery(nrt.network.dag, env.workflow)
            f1s.append(cmp.skeleton_f1)
            shds.append(cmp.shd)
            recalls.append(cmp.skeleton_recall)
        rows.append(
            {
                "n_train": n_train,
                "skeleton_f1": float(np.mean(f1s)),
                "skeleton_recall": float(np.mean(recalls)),
                "shd": float(np.mean(shds)),
            }
        )
    emit_series(
        "ablation_structure_recovery",
        f"K2 recovery of the workflow structure ({N_SERVICES} services, "
        f"{N_REPS} reps)",
        rows,
    )
    return rows


def test_structure_recovery_improves_but_stays_imperfect(recovery_rows, benchmark):
    recall = [r["skeleton_recall"] for r in recovery_rows]
    # More data finds more of the true workflow edges...
    assert recall[-1] > recall[0]
    # ...but even 1200 points leave a clear gap to the free knowledge
    # structure: K2 also picks up indirect-correlation edges the paper's
    # "simplest DAG" reference deliberately omits, so precision (and SHD)
    # do NOT converge to the knowledge structure — measured here, and the
    # reason interpretability is listed among KERT-BN's advantages.
    assert all(r["skeleton_f1"] < 0.95 for r in recovery_rows)
    assert recovery_rows[-1]["shd"] > 0

    env = random_environment(N_SERVICES, rng=95_900)
    train = env.simulate(400, rng=95_901)

    def recover():
        nrt = build_continuous_nrtbn(train, rng=95_902)
        return knowledge_recovery(nrt.network.dag, env.workflow)

    benchmark.pedantic(recover, rounds=3, iterations=1)
