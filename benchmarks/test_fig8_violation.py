"""Figure 8 — relative threshold-violation error, KERT-BN vs NRT-BN.

Paper setup (Section 5.3): discrete models trained on 1200 points
(K·α = 10·120); the NRT-BN is *optimized* by re-running K2 with random
orderings until the next construction is due; both models project the
response-time distribution after accelerating X4 and are scored with
Eq. 5's ε = |P_bn(D>h) − P_real(D>h)| / P_real(D>h) at six thresholds.

Expected shape: despite the random-restart optimization, NRT-BN's mean ε
stays at or above KERT-BN's.
"""

import numpy as np
import pytest

from _util import emit_series

from repro.apps.paccel import PAccel
from repro.apps.violation import default_thresholds, violation_curve
from repro.core.kertbn import build_discrete_kertbn
from repro.core.nrtbn import build_discrete_nrtbn
from repro.core.reconstruction import ReconstructionSchedule
from repro.simulator.scenarios.ediamond import ediamond_scenario

SCHEDULE = ReconstructionSchedule.from_training_size(1200, k=10, t_data=20.0)
SPEEDUP = 0.9
N_SEEDS = 3
N_RESTARTS = 8  # the paper's "repeatedly run K2 ... until the next
# model construction is due"; a fixed restart budget keeps runtime bounded.


@pytest.fixture(scope="module")
def fig8_rows():
    per_threshold: dict[int, dict[str, list[float]]] = {}
    means = {"kert": [], "nrt": []}
    for seed in range(N_SEEDS):
        env = ediamond_scenario()
        train = env.simulate(SCHEDULE.n_points, rng=81_000 + seed)
        kert = build_discrete_kertbn(env.workflow, train, n_bins=5)
        nrt = build_discrete_nrtbn(
            train, rng=81_100 + seed, n_restarts=N_RESTARTS, max_parents=3
        )

        accelerated = ediamond_scenario(service_speedups={"X4": SPEEDUP})
        observed = accelerated.simulate(1200, rng=81_200 + seed)
        new_x4 = float(np.mean(observed["X4"]))
        real_d = np.asarray(observed["D"])
        thresholds = default_thresholds(real_d)

        kert_curve = violation_curve(
            PAccel(kert).project({"X4": new_x4}).violation_probability,
            real_d, thresholds,
        )
        nrt_curve = violation_curve(
            PAccel(nrt).project({"X4": new_x4}).violation_probability,
            real_d, thresholds,
        )
        for i, (kr, nr) in enumerate(zip(kert_curve, nrt_curve)):
            slot = per_threshold.setdefault(i, {"kert": [], "nrt": [], "h": []})
            slot["kert"].append(kr["epsilon"])
            slot["nrt"].append(nr["epsilon"])
            slot["h"].append(kr["threshold"])
        means["kert"].append(np.mean([r["epsilon"] for r in kert_curve]))
        means["nrt"].append(np.mean([r["epsilon"] for r in nrt_curve]))

    rows = [
        {
            "threshold": float(np.mean(slot["h"])),
            "kert_epsilon": float(np.mean(slot["kert"])),
            "nrt_epsilon": float(np.mean(slot["nrt"])),
        }
        for slot in per_threshold.values()
    ]
    rows.append(
        {
            "threshold": "mean",
            "kert_epsilon": float(np.mean(means["kert"])),
            "nrt_epsilon": float(np.mean(means["nrt"])),
        }
    )
    emit_series(
        "fig8",
        f"relative threshold-violation error after X4 -> {SPEEDUP:.0%} "
        f"({N_SEEDS} seeds, NRT-BN with {N_RESTARTS} K2 restarts)",
        rows,
    )
    return rows


def test_fig8_kert_at_or_below_nrt(fig8_rows, benchmark):
    summary = fig8_rows[-1]
    assert summary["kert_epsilon"] <= summary["nrt_epsilon"] + 0.02

    # Timed unit: one full KERT-BN projection + ε computation.
    env = ediamond_scenario()
    train = env.simulate(SCHEDULE.n_points, rng=81_900)
    kert = build_discrete_kertbn(env.workflow, train, n_bins=5)
    observed = ediamond_scenario(service_speedups={"X4": SPEEDUP}).simulate(
        600, rng=81_901
    )
    new_x4 = float(np.mean(observed["X4"]))
    real_d = np.asarray(observed["D"])
    thresholds = default_thresholds(real_d)

    def run():
        return violation_curve(
            PAccel(kert).project({"X4": new_x4}).violation_probability,
            real_d, thresholds,
        )

    benchmark.pedantic(run, rounds=5, iterations=1)
