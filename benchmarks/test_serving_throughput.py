"""Serving-fabric load harness: ≥1M mixed-tenant queries across 4 shards.

Two traffic shapes drive the sharded multi-tenant fabric built in this
PR, both against registry-backed shards of the eDiaMoND discrete
KERT-BN:

- **coalescing segment** — 8 threads pipeline bursty single ``query``
  submissions (12 tenants, shared evidence signature) through the
  :class:`DynamicBatcher`; measures sustained qps, p50/p95/p99 latency,
  and the coalesce ratio (rows per kernel flush), which must exceed 2×;
- **columnar segment** — ~0.9M evidence rows in bursty variable-size
  chunks through the router's ``query_batch_columns`` lane, compared
  against the raw ``engine.query_batch`` kernel on the *same* chunks;
  the fully-guarded fabric path must stay within 5× of the bare kernel.

- **degraded segment** — the fabric rebuilt with ``n_replicas=2`` and
  hedging, driven through a healthy / seeded-single-replica-blackout /
  recovery timeline; records ``availability`` (floored at an absolute
  0.99 by the gate), degraded p99, and probe-driven readmission time.

Together the first two segments push ≥1M queries.  Results land in
``BENCH_serving.json`` (repo root + ``benchmarks/results/``), gated by
``benchmarks/check_regression.py --suite serving``.
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from _util import RESULTS_DIR, emit_series

from repro.core.kertbn import build_discrete_kertbn
from repro.serving.fabric import build_fabric
from repro.serving.faults import ReplicaFaultInjector
from repro.serving.registry import ModelRegistry
from repro.simulator.scenarios.ediamond import ediamond_scenario

N_SHARDS = 4
N_TENANTS = 12
N_THREADS = 8
BURST = 32
MAX_BATCH = 64
MAX_WAIT_US = 2000.0

N_COALESCE_QUERIES = 120_000
N_COLUMNAR_ROWS = 900_000

EVIDENCE_VARS = ("X1", "X2", "D")
TARGET = "X3"


@pytest.fixture(scope="module")
def shard_registries(tmp_path_factory):
    """Four registry-backed shards, each serving the published model."""
    env = ediamond_scenario()
    train = env.simulate(1000, rng=95_000)
    model = build_discrete_kertbn(env.workflow, train, n_bins=5)
    root = tmp_path_factory.mktemp("fabric-registries")
    registries = []
    for i in range(N_SHARDS):
        reg = ModelRegistry(str(root / f"shard-{i}"))
        reg.publish(model)
        registries.append(reg)
    return registries, model


def _pct(sorted_lats, q):
    return float(sorted_lats[min(len(sorted_lats) - 1, int(q * len(sorted_lats)))])


def test_serving_fabric_throughput(shard_registries, benchmark):
    registries, model = shard_registries
    fabric = build_fabric(
        registries,
        max_batch=MAX_BATCH,
        max_wait_us=MAX_WAIT_US,
        rng=0,
    )
    tenants = [f"tenant-{i}" for i in range(N_TENANTS)]
    net = model.network
    cards = net.cardinalities
    engine = fabric.router.shards[0].chain.engine

    # ------------------------------------------------------------------ #
    # Segment A: bursty single queries coalescing through the batcher
    # ------------------------------------------------------------------ #
    evidence = {"X1": 1, "X2": 2}

    def worker(w: int) -> list:
        rng = np.random.default_rng(1 + w)
        n = N_COALESCE_QUERIES // N_THREADS
        lats, pending = [], []

        def drain():
            for t0, p in pending:
                p.result(timeout=60.0)
                lats.append(time.perf_counter() - t0)
            pending.clear()

        done = 0
        while done < n:
            # Bursty arrivals: bursts of 8..BURST back-to-back, then wait.
            size = min(int(rng.integers(8, BURST + 1)), n - done)
            for _ in range(size):
                tenant = tenants[int(rng.integers(N_TENANTS))]
                pending.append(
                    (
                        time.perf_counter(),
                        fabric.submit(tenant, [TARGET], evidence, binned=True),
                    )
                )
            done += size
            drain()
        return lats

    # Warm every shard's batch plan outside the timing.
    for t in tenants:
        fabric.query(t, [TARGET], evidence, binned=True)

    t0 = time.perf_counter()
    with ThreadPoolExecutor(N_THREADS) as ex:
        lats = sorted(
            x for chunk in ex.map(worker, range(N_THREADS)) for x in chunk
        )
    coalesce_elapsed = time.perf_counter() - t0
    n_coalesce = len(lats)
    sustained_qps = n_coalesce / coalesce_elapsed
    coalesce_ratio = fabric.batcher.coalesce_ratio

    # ------------------------------------------------------------------ #
    # Segment B: bulk columnar traffic vs the raw kernel on same chunks
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(7)
    chunks = []
    remaining = N_COLUMNAR_ROWS
    while remaining > 0:
        size = min(int(rng.integers(512, 4096)), remaining)
        chunks.append(
            {
                v: rng.integers(0, cards[v], size=size).astype(np.intp)
                for v in EVIDENCE_VARS
            }
        )
        remaining -= size
    n_columnar = sum(len(c[EVIDENCE_VARS[0]]) for c in chunks)

    engine.query_batch([TARGET], chunks[0])  # warm the batch plan
    t0 = time.perf_counter()
    for cols in chunks:
        engine.query_batch([TARGET], cols)
    kernel_s = time.perf_counter() - t0
    kernel_rows_per_s = n_columnar / kernel_s

    t0 = time.perf_counter()
    for i, cols in enumerate(chunks):
        tenant = tenants[i % N_TENANTS]
        result = fabric.query_batch_columns(tenant, [TARGET], cols)
        assert result.ok and result.n_valid == len(cols[EVIDENCE_VARS[0]])
    fabric_s = time.perf_counter() - t0
    fabric_rows_per_s = n_columnar / fabric_s
    fabric_over_kernel = fabric_rows_per_s / kernel_rows_per_s

    fabric.close()
    snap = fabric.stats()

    # ------------------------------------------------------------------ #
    # Acceptance criteria
    # ------------------------------------------------------------------ #
    total = n_coalesce + n_columnar
    assert total >= 1_000_000, f"only {total:,} queries driven"
    assert snap["n_shards"] >= 4
    assert coalesce_ratio > 2.0, (
        f"coalesce ratio {coalesce_ratio:.2f} <= 2x: batching is not "
        f"actually coalescing concurrent traffic"
    )
    assert fabric_over_kernel >= 1 / 5, (
        f"guarded columnar path at {fabric_rows_per_s:,.0f} rows/s is "
        f"more than 5x off the bare kernel ({kernel_rows_per_s:,.0f})"
    )
    # Every row landed in exactly one tenant rollup (+1 warm-up each).
    tenant_total = sum(
        t["stats"]["n_queries"] for t in snap["tenants"].values()
    )
    assert tenant_total == total + N_TENANTS

    rows = [
        {
            "path": f"batcher singles ({N_THREADS} threads, burst {BURST})",
            "rows_per_s": sustained_qps,
            "p95_ms": _pct(lats, 0.95) * 1e3,
            "p99_ms": _pct(lats, 0.99) * 1e3,
        },
        {
            "path": "fabric columnar (guarded)",
            "rows_per_s": fabric_rows_per_s,
            "p95_ms": float("nan"),
            "p99_ms": float("nan"),
        },
        {
            "path": "raw query_batch kernel",
            "rows_per_s": kernel_rows_per_s,
            "p95_ms": float("nan"),
            "p99_ms": float("nan"),
        },
    ]
    emit_series(
        "BENCH_serving",
        f"{N_SHARDS}-shard fabric, {N_TENANTS} tenants, "
        f"{total:,} queries",
        rows,
    )
    payload = {
        "fabric": {
            "n_shards": N_SHARDS,
            "n_tenants": N_TENANTS,
            "max_batch": MAX_BATCH,
            "max_wait_us": MAX_WAIT_US,
            "total_queries": total,
        },
        "coalesce": {
            "n_queries": n_coalesce,
            "n_threads": N_THREADS,
            "burst": BURST,
            "sustained_qps": sustained_qps,
            "p50_seconds": _pct(lats, 0.50),
            "p95_seconds": _pct(lats, 0.95),
            "p99_seconds": _pct(lats, 0.99),
            "ratio": coalesce_ratio,
            "n_flushes": fabric.batcher.n_flushes,
            "n_bypass": fabric.batcher.n_bypass,
        },
        "batched": {
            "n_rows": n_columnar,
            "n_chunks": len(chunks),
            "fabric_rows_per_s": fabric_rows_per_s,
            "kernel_rows_per_s": kernel_rows_per_s,
            "fabric_over_kernel": fabric_over_kernel,
        },
    }
    _merge_payload(payload)

    # Representative unit for pytest-benchmark's own tracking.
    benchmark(
        fabric.router.shards[0].query_batch_columns, [TARGET], chunks[0]
    )


N_DEGRADED_SEGMENT = 24_000
N_RECOVERY_SEGMENT = 12_000
READMIT_DEADLINE_S = 20.0


def test_serving_fabric_degraded_blackout(shard_registries):
    """Degraded-mode section of the load harness: replicated shards under
    a seeded single-replica blackout.

    Timeline — healthy segment, blackout replica 0 of shard 0, degraded
    segment under failover + hedging, lift the fault, poll probe-driven
    readmission, recovery segment.  Records ``availability`` (non-failed
    fraction while degraded) and ``degraded`` p99 into
    ``BENCH_serving.json`` for the regression gate.
    """
    registries, model = shard_registries
    fabric = build_fabric(
        registries,
        n_replicas=2,
        hedge=True,
        probe_interval_s=0.05,
        max_batch=MAX_BATCH,
        max_wait_us=MAX_WAIT_US,
        rng=0,
    )
    tenants = [f"tenant-{i}" for i in range(N_TENANTS)]
    evidence = {"X1": 1, "X2": 2}
    group = fabric.router.shards[0]

    def segment(n: int, seed: int):
        """Drive n bursty batched queries; return (sorted lats, statuses)."""

        def worker(w: int):
            rng = np.random.default_rng(seed + w)
            lats, statuses, pending = [], [], []
            for _ in range(n // N_THREADS):
                tenant = tenants[int(rng.integers(N_TENANTS))]
                pending.append(
                    (
                        time.perf_counter(),
                        fabric.submit(tenant, [TARGET], evidence, binned=True),
                    )
                )
                if len(pending) >= BURST:
                    for t0, p in pending:
                        r = p.result(timeout=60.0)
                        lats.append(time.perf_counter() - t0)
                        statuses.append(r.status)
                    pending.clear()
            for t0, p in pending:
                r = p.result(timeout=60.0)
                lats.append(time.perf_counter() - t0)
                statuses.append(r.status)
            return lats, statuses

        with ThreadPoolExecutor(N_THREADS) as ex:
            parts = list(ex.map(worker, range(N_THREADS)))
        lats = sorted(x for ls, _ in parts for x in ls)
        statuses = [s for _, ss in parts for s in ss]
        return lats, statuses

    for t in tenants:  # warm every shard's batch plan
        fabric.query(t, [TARGET], evidence, binned=True)

    healthy_lats, healthy_statuses = segment(N_DEGRADED_SEGMENT, seed=100)
    assert all(s != "failed" for s in healthy_statuses)

    inj = ReplicaFaultInjector(rng=17)
    inj.blackout()
    group.inject_fault(0, inj)
    degraded_lats, degraded_statuses = segment(N_DEGRADED_SEGMENT, seed=200)

    inj.clear()
    t_clear = time.perf_counter()
    while (
        not group.health[0].active
        and time.perf_counter() - t_clear < READMIT_DEADLINE_S
    ):
        time.sleep(0.02)
    readmit_seconds = time.perf_counter() - t_clear
    readmitted = group.health[0].active

    recovery_lats, recovery_statuses = segment(N_RECOVERY_SEGMENT, seed=300)

    fabric.close()
    prober_snap = fabric.prober.snapshot()
    group_snap = group.snapshot()

    # ------------------------------------------------------------------ #
    # Acceptance criteria
    # ------------------------------------------------------------------ #
    answered = sum(1 for s in degraded_statuses if s != "failed")
    availability = answered / len(degraded_statuses)
    assert availability >= 0.99, (
        f"availability {availability:.4f} under single-replica blackout "
        f"fell below the 99% floor"
    )
    assert readmitted, (
        f"blacked-out replica not readmitted within "
        f"{READMIT_DEADLINE_S}s of recovery: {prober_snap}"
    )
    assert all(s != "failed" for s in recovery_statuses)

    healthy_p99 = _pct(healthy_lats, 0.99)
    degraded_p99 = _pct(degraded_lats, 0.99)
    _merge_payload(
        {
            "degraded": {
                "n_replicas": 2,
                "n_queries_per_segment": N_DEGRADED_SEGMENT,
                "availability": availability,
                "p99_seconds": degraded_p99,
                "healthy_p99_seconds": healthy_p99,
                "p99_over_healthy": degraded_p99 / healthy_p99,
                "recovery_p99_seconds": _pct(recovery_lats, 0.99),
                "readmit_seconds": readmit_seconds,
                "n_failovers": group_snap["failover"]["switches"],
                "n_hedges_issued": group_snap["hedge"]["issued"],
                "prober": prober_snap,
            }
        }
    )


def _merge_payload(update: dict) -> None:
    """Merge ``update`` into both BENCH_serving.json copies."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for path in (
        os.path.join(RESULTS_DIR, "BENCH_serving.json"),
        os.path.join(os.path.dirname(__file__), "..", "BENCH_serving.json"),
    ):
        payload = {}
        if os.path.exists(path):
            with open(path) as fh:
                payload = json.load(fh)
        payload.update(update)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
