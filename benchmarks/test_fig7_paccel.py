"""Figure 7 — pAccel: projected vs observed response time after
accelerating X4.

Paper setup (Section 5.2): with the discrete eDiaMoND KERT-BN, compute
the posterior response-time distribution given X4 reduced to ~90 % of
its mean (a local resource action), and compare against the response
times actually measured after applying the acceleration.

Expected shape: "the posterior response time provides a good
approximation of the actual improved response time mean".
"""

import numpy as np
import pytest

from _util import emit_series

from repro.apps.paccel import PAccel
from repro.core.kertbn import build_discrete_kertbn
from repro.core.reconstruction import ReconstructionSchedule
from repro.simulator.scenarios.ediamond import ediamond_scenario

SCHEDULE = ReconstructionSchedule.from_training_size(1200, k=10, t_data=20.0)
SPEEDUP = 0.9


@pytest.fixture(scope="module")
def fig7_result():
    env = ediamond_scenario()
    train = env.simulate(SCHEDULE.n_points, rng=71_001)
    model = build_discrete_kertbn(env.workflow, train, n_bins=5)
    pa = PAccel(model)

    accelerated = ediamond_scenario(service_speedups={"X4": SPEEDUP})
    observed = accelerated.simulate(1200, rng=71_002)
    new_x4_mean = float(np.mean(observed["X4"]))

    projected = pa.project({"X4": new_x4_mean})
    baseline = pa.baseline()
    return projected, baseline, observed, pa


def test_fig7_projection_tracks_observation(fig7_result, benchmark):
    projected, baseline, observed, pa = fig7_result
    observed_d = np.asarray(observed["D"])

    rows = []
    centers = 0.5 * (projected.edges[:-1] + projected.edges[1:])
    emp, _ = np.histogram(observed_d, bins=projected.edges)
    emp_total = max(emp.sum(), 1)
    for c, p, e in zip(centers, projected.pmf, emp / emp_total):
        rows.append(
            {"D_bin_center": float(c), "projected": float(p), "observed": float(e)}
        )
    rows.append(
        {
            "D_bin_center": "mean",
            "projected": projected.mean,
            "observed": float(observed_d.mean()),
        }
    )
    rows.append(
        {
            "D_bin_center": "baseline_mean",
            "projected": baseline.mean,
            "observed": "",
        }
    )
    emit_series(
        "fig7",
        f"pAccel projection vs observation after X4 -> {SPEEDUP:.0%}",
        rows,
    )

    # The projection approximates the observed post-acceleration mean...
    assert projected.mean == pytest.approx(float(observed_d.mean()), rel=0.10)
    # ...and correctly predicts an improvement over the baseline.
    assert projected.mean <= baseline.mean + 1e-9

    new_x4_mean = float(np.mean(observed["X4"]))
    benchmark.pedantic(
        pa.project, args=({"X4": new_x4_mean},), rounds=5, iterations=1
    )
