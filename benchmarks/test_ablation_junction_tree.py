"""Ablation — bulk posterior queries: junction tree vs repeated VE.

dComp-style workloads ask for *every* unobservable service's posterior.
Variable elimination pays a full sweep per query; one calibrated clique
tree answers them all.  This ablation measures both on the discrete
eDiaMoND model and checks they agree exactly.
"""

import time

import numpy as np
import pytest

from _util import emit_series

from repro.bn.inference.junction_tree import JunctionTree
from repro.core.kertbn import build_discrete_kertbn
from repro.simulator.scenarios.ediamond import ediamond_scenario


@pytest.fixture(scope="module")
def discrete_model():
    env = ediamond_scenario()
    train = env.simulate(1000, rng=94_000)
    model = build_discrete_kertbn(env.workflow, train, n_bins=5)
    test = env.simulate(200, rng=94_001)
    disc = model.discretizer
    evidence = {
        "D": disc.state_of("D", float(np.mean(test["D"]))),
        "X1": disc.state_of("X1", float(np.mean(test["X1"]))),
    }
    return model, evidence


def test_junction_tree_bulk_queries(discrete_model, benchmark):
    model, evidence = discrete_model
    net = model.network
    targets = [n for n in map(str, net.nodes) if n not in evidence]

    t0 = time.perf_counter()
    jt = JunctionTree(net, evidence)
    jt_marginals = jt.all_marginals()
    jt_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    ve_marginals = {n: net.query([n], evidence) for n in targets}
    ve_seconds = time.perf_counter() - t0

    for n in targets:
        np.testing.assert_allclose(
            jt_marginals[n].values, ve_marginals[n].values, atol=1e-9
        )

    rows = [
        {"method": "junction-tree (one calibration)", "all_posteriors_s": jt_seconds},
        {"method": f"variable elimination x{len(targets)}", "all_posteriors_s": ve_seconds},
    ]
    emit_series(
        "ablation_junction_tree",
        f"all {len(targets)} service posteriors, eDiaMoND discrete model",
        rows,
    )

    def bulk():
        return JunctionTree(net, evidence).all_marginals()

    benchmark.pedantic(bulk, rounds=5, iterations=1)
