"""CI gate: fail when a guarded benchmark regresses.

Two benchmark payloads are guarded:

- ``--suite inference`` (default) —
  ``benchmarks/test_inference_throughput.py`` persists its numbers to
  ``BENCH_inference.json``; the gate keeps PR 1's compile-once (10.5x)
  and batched (22x) speedups from silently eroding.
- ``--suite obs`` — ``tests/perf/test_obs_overhead.py`` persists
  ``BENCH_obs.json`` (enabled-vs-disabled instrumentation overhead and
  ``/metrics`` scrape latency); the gate keeps the observability layer's
  "near-zero overhead" contract from silently eroding.  Once the
  baseline carries the SLO-budget ``budgets`` section, the ratio of
  per-evaluation burn tracking to once-per-publish budget derivation is
  ceilinged too (plus raw latencies under ``--absolute``).
- ``--suite serving`` — ``benchmarks/test_serving_throughput.py``
  persists ``BENCH_serving.json`` (sharded-fabric load harness); the
  gate keeps the dynamic batcher's coalesce ratio and the guarded
  columnar path's fraction-of-raw-kernel throughput from eroding, and —
  with ``--absolute`` — floors sustained qps and ceilings p95/p99 tail
  latency.  Once the baseline carries the replicated-fabric ``degraded``
  section, blackout availability is floored (relative to baseline *and*
  a hard 0.99 contract) and degraded tail latency is ceilinged under
  ``--absolute``.
- ``--suite corpus`` — ``benchmarks/test_corpus_matrix.py`` persists
  ``BENCH_corpus.json`` (KERT-BN vs NRT-BN over the scenario-corpus
  matrix); the gate keeps the knowledge-enhanced model's accuracy win
  fraction, its median per-row likelihood advantage, and the
  construction-cost ratio over K2 search from eroding, with a hard
  floor requiring KERT-BN to win at least half the corpus.

Each guarded metric has a *direction*: for higher-is-better metrics
(speedup ratios) the gate fails when ``fresh < baseline * (1 -
tolerance)``; for lower-is-better metrics (overhead ratios, latencies)
it fails when ``fresh > baseline * (1 + tolerance)``.  Improvements
never fail — the gate is one-sided per metric; committed baselines are
refreshed by re-running the benchmark, not by the gate.

Machine-independent ratios are always gated; pass ``--absolute`` to
additionally gate raw numbers (qps, scrape seconds) when baseline and
fresh come from the same machine.

Usage (as CI runs it)::

    cp BENCH_inference.json baseline.json      # before the benchmark
    python -m pytest benchmarks/test_inference_throughput.py -q
    python benchmarks/check_regression.py \
        --baseline baseline.json \
        --fresh benchmarks/results/BENCH_inference.json

    cp BENCH_obs.json obs-baseline.json
    python -m pytest tests/perf/test_obs_overhead.py -q
    python benchmarks/check_regression.py --suite obs \
        --baseline obs-baseline.json \
        --fresh benchmarks/results/BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Tuple

DEFAULT_TOLERANCE = 0.30

#: (section, key, human label) for the always-on inference ratio checks.
RATIO_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("single", "compile_once_speedup", "compile-once speedup"),
    ("batched", "batched_speedup_vs_loop", "batched throughput vs row loop"),
)
ABSOLUTE_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("batched", "batched_qps", "batched rows/sec"),
)

#: Metrics gated only when the *baseline* already carries them, so older
#: payloads (and minimal test fixtures) stay valid.  Sections may be
#: dotted paths (``matrix.bins3_width6``).
OPTIONAL_RATIO_METRICS: Tuple[Tuple[str, str, str], ...] = (
    (
        "jtree",
        "incremental_speedup_vs_full",
        "incremental recalibration vs full sweep",
    ),
    (
        "batched.float32",
        "speedup_vs_float64",
        "float32 batch vs float64 batch",
    ),
)

#: Per-suite guarded metrics.  ``lower`` entries are higher-is-better
#: (gate on a floor); ``upper`` entries are lower-is-better (gate on a
#: ceiling).  ``*_absolute`` entries only apply with ``--absolute``.
#: ``optional_*`` entries only gate once the baseline carries them.
#: ``hard_floors`` entries are ``(section, key, label, floor)``
#: absolute constants checked against the *fresh* payload alone —
#: availability-style contracts that no baseline drift may relax.
SUITES = {
    "inference": {
        "lower": RATIO_METRICS,
        "lower_absolute": ABSOLUTE_METRICS,
        "optional_lower": OPTIONAL_RATIO_METRICS,
        "upper": (),
        "upper_absolute": (),
    },
    "obs": {
        "lower": (),
        "lower_absolute": (),
        "upper": (
            (
                "overhead",
                "enabled_over_disabled_ratio",
                "enabled/disabled query_batch latency ratio",
            ),
        ),
        "upper_absolute": (
            ("scrape", "p95_seconds", "p95 /metrics render latency (s)"),
        ),
        # Budget metrics gate once the baseline records them, so
        # pre-budget payloads stay valid.
        "optional_upper": (
            (
                "budgets",
                "track_over_derive_ratio",
                "per-evaluation burn tracking vs budget derivation",
            ),
        ),
        "optional_upper_absolute": (
            ("budgets", "derive_seconds", "budget derivation latency (s)"),
            ("budgets", "track_seconds", "burn tracking latency (s)"),
        ),
    },
    "serving": {
        # Machine-independent ratios: rows coalesced per kernel flush,
        # and the guarded columnar path as a fraction of the raw kernel.
        "lower": (
            ("coalesce", "ratio", "batcher coalesce ratio (rows/flush)"),
            (
                "batched",
                "fabric_over_kernel",
                "guarded columnar path vs raw kernel",
            ),
        ),
        "lower_absolute": (
            ("coalesce", "sustained_qps", "sustained single-query qps"),
            ("batched", "fabric_rows_per_s", "guarded columnar rows/sec"),
        ),
        "upper": (),
        "upper_absolute": (
            ("coalesce", "p95_seconds", "p95 single-query latency (s)"),
            ("coalesce", "p99_seconds", "p99 single-query latency (s)"),
        ),
        # Degraded-mode (single-replica blackout) metrics gate once the
        # baseline records them, so pre-replication payloads stay valid.
        "optional_lower": (
            ("degraded", "availability", "degraded-mode availability"),
        ),
        "optional_upper_absolute": (
            ("degraded", "p99_seconds", "degraded p99 latency (s)"),
            (
                "degraded",
                "p99_over_healthy",
                "degraded/healthy p99 inflation",
            ),
        ),
        # Absolute contract, independent of any baseline: ≥99% of
        # queries must survive a single-replica blackout.
        "hard_floors": (
            (
                "degraded",
                "availability",
                "availability floor under blackout",
                0.99,
            ),
        ),
    },
    "corpus": {
        # All three are machine-independent or same-machine ratios: the
        # accuracy win fraction and likelihood gap are deterministic
        # given the corpus seeds; both build times come from one run.
        "lower": (
            (
                "summary",
                "kert_win_fraction",
                "KERT-BN accuracy win fraction",
            ),
            (
                "summary",
                "median_log10_gap_per_row",
                "median per-row log10-likelihood gap",
            ),
            (
                "summary",
                "nrt_over_kert_build_median",
                "median NRT/KERT build-cost ratio",
            ),
        ),
        "lower_absolute": (),
        "upper": (),
        "upper_absolute": (),
        # The paper's claim, as an absolute contract: knowledge-enhanced
        # construction must out-model K2 on at least half the corpus.
        "hard_floors": (
            (
                "summary",
                "kert_win_fraction",
                "KERT-BN corpus win-fraction floor",
                0.5,
            ),
        ),
    },
}


def extract(payload: dict, section: str, key: str) -> float:
    try:
        node = payload
        for part in section.split("."):
            node = node[part]
        value = node[key]
    except (KeyError, TypeError):
        raise SystemExit(
            f"benchmark payload is missing {section}.{key} — "
            "was the benchmark run with an incompatible schema?"
        )
    return float(value)


def _has(payload: dict, section: str, key: str) -> bool:
    node = payload
    try:
        for part in section.split("."):
            node = node[part]
        return key in node
    except (KeyError, TypeError):
        return False


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    absolute: bool = False,
    suite: str = "inference",
) -> Tuple[List[str], List[str]]:
    """Return ``(failures, report_lines)`` for fresh-vs-baseline.

    A higher-is-better metric fails when ``fresh < baseline * (1 -
    tolerance)``; a lower-is-better metric fails when ``fresh >
    baseline * (1 + tolerance)``.  Improvements never fail.
    """
    if not 0.0 < tolerance < 1.0:
        raise SystemExit(f"tolerance must be in (0, 1), got {tolerance}")
    if suite not in SUITES:
        raise SystemExit(
            f"unknown suite {suite!r} (expected one of {sorted(SUITES)})"
        )
    spec = SUITES[suite]
    lower = spec["lower"] + (spec["lower_absolute"] if absolute else ())
    upper = spec["upper"] + (spec["upper_absolute"] if absolute else ())
    # Optional metrics ride along once the baseline carries them.
    for section, key, label in spec.get("optional_lower", ()):
        if _has(baseline, section, key):
            lower += ((section, key, label),)
    for section, key, label in spec.get("optional_upper", ()):
        if _has(baseline, section, key):
            upper += ((section, key, label),)
    if absolute:
        for section, key, label in spec.get("optional_upper_absolute", ()):
            if _has(baseline, section, key):
                upper += ((section, key, label),)
    if suite == "inference":
        # The perf matrix gates every cell the baseline records, so the
        # speedup floor is not overfit to the canned eDiaMoND net.
        cells = baseline.get("matrix")
        if isinstance(cells, dict):
            for cell in sorted(cells):
                lower += (
                    (
                        f"matrix.{cell}",
                        "batched_speedup_vs_loop",
                        f"matrix[{cell}] batched vs loop",
                    ),
                )
                if absolute:
                    lower += (
                        (
                            f"matrix.{cell}",
                            "batched_qps",
                            f"matrix[{cell}] rows/sec",
                        ),
                    )
    failures: List[str] = []
    report: List[str] = []
    for checks, is_floor in ((lower, True), (upper, False)):
        for section, key, label in checks:
            base = extract(baseline, section, key)
            new = extract(fresh, section, key)
            if is_floor:
                bound = base * (1.0 - tolerance)
                ok = new >= bound
                bound_label = "floor"
            else:
                bound = base * (1.0 + tolerance)
                ok = new <= bound
                bound_label = "ceiling"
            line = (
                f"{'ok  ' if ok else 'FAIL'} {label} ({section}.{key}): "
                f"baseline={base:.4g} fresh={new:.4g} "
                f"{bound_label}={bound:.4g} "
                f"({(new / base - 1.0) * 100.0:+.1f}%)"
            )
            report.append(line)
            if not ok:
                failures.append(line)
    # Hard floors: absolute contracts checked against the fresh payload
    # alone — a slipping baseline can never relax them.  Skipped while
    # the metric is absent from both payloads (pre-replication schema);
    # dropping a metric the baseline still carries is a schema error.
    for section, key, label, floor in spec.get("hard_floors", ()):
        if not _has(fresh, section, key):
            if _has(baseline, section, key):
                raise SystemExit(
                    f"fresh payload dropped {section}.{key}, which the "
                    f"baseline still carries — was the degraded-mode "
                    f"benchmark skipped?"
                )
            continue
        new = extract(fresh, section, key)
        ok = new >= floor
        line = (
            f"{'ok  ' if ok else 'FAIL'} {label} ({section}.{key}): "
            f"fresh={new:.4g} hard-floor={floor:.4g}"
        )
        report.append(line)
        if not ok:
            failures.append(line)
    return failures, report


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when guarded benchmark metrics regress vs baseline"
    )
    parser.add_argument(
        "--baseline", required=True, help="committed BENCH_*.json"
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly produced BENCH_*.json"
    )
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="inference",
        help="which guarded metric set to apply (default: inference)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop before failing (default 0.30)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also gate raw qps (same-machine comparisons only)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    failures, report = compare(
        baseline,
        fresh,
        tolerance=args.tolerance,
        absolute=args.absolute,
        suite=args.suite,
    )
    print(
        f"benchmark regression gate "
        f"[{args.suite}] (tolerance {args.tolerance:.0%}):"
    )
    for line in report:
        print(f"  {line}")
    if failures:
        print(
            f"REGRESSION: {len(failures)} metric(s) dropped more than "
            f"{args.tolerance:.0%} below baseline",
            file=sys.stderr,
        )
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
