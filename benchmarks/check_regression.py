"""CI gate: fail when the inference benchmark regresses.

``benchmarks/test_inference_throughput.py`` persists its numbers to
``BENCH_inference.json``.  This script compares a freshly produced
payload against the committed baseline and exits non-zero when a
guarded metric drops more than ``--tolerance`` (default 30%) below the
baseline — keeping PR 1's compile-once (10.5x) and batched (22x)
speedups from silently eroding.

Guarded metrics are the machine-independent speedup *ratios*
(``single.compile_once_speedup`` and ``batched.batched_speedup_vs_loop``
— the batched-throughput multiplier over a per-row loop), because a CI
runner's absolute queries/sec varies with hardware.  Pass ``--absolute``
to additionally gate raw ``batched.batched_qps`` when baseline and
fresh numbers come from the same machine.

Usage (as CI runs it)::

    cp BENCH_inference.json baseline.json      # before the benchmark
    python -m pytest benchmarks/test_inference_throughput.py -q
    python benchmarks/check_regression.py \
        --baseline baseline.json \
        --fresh benchmarks/results/BENCH_inference.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Tuple

DEFAULT_TOLERANCE = 0.30

#: (section, key, human label) for the always-on ratio checks.
RATIO_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("single", "compile_once_speedup", "compile-once speedup"),
    ("batched", "batched_speedup_vs_loop", "batched throughput vs row loop"),
)
ABSOLUTE_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("batched", "batched_qps", "batched rows/sec"),
)


def extract(payload: dict, section: str, key: str) -> float:
    try:
        value = payload[section][key]
    except (KeyError, TypeError):
        raise SystemExit(
            f"benchmark payload is missing {section}.{key} — "
            "was the benchmark run with an incompatible schema?"
        )
    return float(value)


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    absolute: bool = False,
) -> Tuple[List[str], List[str]]:
    """Return ``(failures, report_lines)`` for fresh-vs-baseline.

    A metric fails when ``fresh < baseline * (1 - tolerance)``.
    Improvements never fail (the gate is one-sided: committed baselines
    are refreshed by re-running the benchmark, not by the gate).
    """
    if not 0.0 < tolerance < 1.0:
        raise SystemExit(f"tolerance must be in (0, 1), got {tolerance}")
    checks = RATIO_METRICS + (ABSOLUTE_METRICS if absolute else ())
    failures: List[str] = []
    report: List[str] = []
    for section, key, label in checks:
        base = extract(baseline, section, key)
        new = extract(fresh, section, key)
        floor = base * (1.0 - tolerance)
        ok = new >= floor
        line = (
            f"{'ok  ' if ok else 'FAIL'} {label} ({section}.{key}): "
            f"baseline={base:.2f} fresh={new:.2f} floor={floor:.2f} "
            f"({(new / base - 1.0) * 100.0:+.1f}%)"
        )
        report.append(line)
        if not ok:
            failures.append(line)
    return failures, report


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when BENCH_inference metrics regress vs baseline"
    )
    parser.add_argument(
        "--baseline", required=True, help="committed BENCH_inference.json"
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly produced BENCH_inference.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop before failing (default 0.30)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also gate raw qps (same-machine comparisons only)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    failures, report = compare(
        baseline, fresh, tolerance=args.tolerance, absolute=args.absolute
    )
    print(f"benchmark regression gate (tolerance {args.tolerance:.0%}):")
    for line in report:
        print(f"  {line}")
    if failures:
        print(
            f"REGRESSION: {len(failures)} metric(s) dropped more than "
            f"{args.tolerance:.0%} below baseline",
            file=sys.stderr,
        )
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
