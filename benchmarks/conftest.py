"""Benchmark-suite configuration."""

import sys
import os

# Allow `from _util import emit_series` inside benchmark modules.
sys.path.insert(0, os.path.dirname(__file__))
