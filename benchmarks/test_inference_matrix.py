"""Perf matrix: batched inference across network shapes.

The eDiaMoND cell alone would overfit the speedup gate to one 6-node
topology.  This matrix sweeps seeded random networks over (n_bins ×
width) — small and medium in both axes — measuring per-cell batched
rows/sec and the batched-vs-row-loop speedup, spot-checking each cell
against scratch variable elimination to 1e-9.  Cells merge under the
``"matrix"`` key of ``BENCH_inference.json``; ``check_regression.py``
floors every cell the committed baseline records.
"""

import time

import numpy as np
import pytest

from test_inference_throughput import _merge_payload, _qps

from repro.bn.inference.variable_elimination import query as ve_query
from repro.bn.random_nets import random_discrete_network

#: (cell name, n_bins, width) — small/medium in both axes.
CELLS = (
    ("bins3_width6", 3, 6),
    ("bins3_width14", 3, 14),
    ("bins6_width6", 6, 6),
    ("bins6_width14", 6, 14),
)

N_ROWS = 2_000
N_REPS = 20
N_LOOP_ROWS = 200  # row-loop comparator sample (scaled to full-batch qps)


@pytest.mark.parametrize("cell,n_bins,width", CELLS)
def test_inference_matrix_cell(cell, n_bins, width):
    rng = np.random.default_rng(width * 100 + n_bins)
    net = random_discrete_network(rng, width=width, n_bins=n_bins)
    engine = net.compiled()
    nodes = [str(n) for n in net.nodes]
    cards = net.cardinalities
    target, ev_vars = nodes[-1], nodes[:3]
    columns = {
        v: rng.integers(0, cards[v], size=N_ROWS).astype(np.intp)
        for v in ev_vars
    }

    engine.query_batch([target], columns)  # warm the plan
    t0 = time.perf_counter()
    for _ in range(N_REPS):
        batched = engine.query_batch([target], columns)
    batch_s = (time.perf_counter() - t0) / N_REPS

    engine.query([target], {v: int(columns[v][0]) for v in ev_vars})
    t0 = time.perf_counter()
    for i in range(N_LOOP_ROWS):
        row = {v: int(columns[v][i]) for v in ev_vars}
        engine.query([target], row)
    loop_s = (time.perf_counter() - t0) * (N_ROWS / N_LOOP_ROWS)

    dev = 0.0
    for i in range(0, N_ROWS, 397):  # spot-check vs scratch VE
        row = {v: int(columns[v][i]) for v in ev_vars}
        ref = ve_query(net, [target], row).values
        dev = max(dev, float(np.max(np.abs(batched[i] - ref))))
    assert dev <= 1e-9, f"{cell}: deviation {dev:.2e} vs scratch VE"

    speedup = loop_s / batch_s
    assert speedup >= 5.0, f"{cell}: batched only {speedup:.1f}x vs loop"
    _merge_payload(
        {
            "matrix": {
                **_existing_matrix(),
                cell: {
                    "n_bins": n_bins,
                    "width": width,
                    "n_rows": N_ROWS,
                    "batched_qps": _qps(batch_s, N_ROWS),
                    "per_row_loop_qps": _qps(loop_s, N_ROWS),
                    "batched_speedup_vs_loop": speedup,
                    "max_abs_deviation_vs_scratch": dev,
                },
            }
        }
    )


def _existing_matrix() -> dict:
    """Previously recorded cells, so per-cell merges accumulate."""
    import json
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "BENCH_inference.json")
    if not os.path.exists(path):
        return {}
    with open(path) as fh:
        payload = json.load(fh)
    cells = payload.get("matrix")
    return dict(cells) if isinstance(cells, dict) else {}
