"""Wall-clock timing helpers.

Construction time is one of the paper's two headline metrics (Section 4.1),
so timing is a first-class concern: :class:`Timer` is used by the model
builders to report per-phase costs (structure learning vs parameter
learning) and by the decentralized learner to account per-CPD costs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single timer may be entered repeatedly; ``elapsed`` accumulates
    across uses, which is convenient for summing learning time over many
    CPDs while excluding bookkeeping in between.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def __enter__(self) -> "Timer":
        if self._running:
            raise RuntimeError("Timer is not reentrant")
        self._running = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed += time.perf_counter() - self._start
        self._running = False

    def reset(self) -> None:
        """Zero the accumulated time (timer must not be running)."""
        if self._running:
            raise RuntimeError("cannot reset a running Timer")
        self.elapsed = 0.0


def timed(fn: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
