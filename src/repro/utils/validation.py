"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Any, Type


def require(condition: bool, message: str, exc: Type[Exception] = ValueError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def require_type(value: Any, types: "type | tuple[type, ...]", name: str) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        raise TypeError(f"{name} must be {types}, got {type(value)!r}")


def require_positive(value: float, name: str, strict: bool = True) -> None:
    """Raise :class:`ValueError` unless ``value`` is (strictly) positive."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
