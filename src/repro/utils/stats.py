"""Statistical helpers shared by the apps and benchmarks.

These back the paper's evaluation quantities: empirical tail
probabilities for the threshold-violation study (Eq. 5), distribution
summaries for the dComp / pAccel figures, and divergence measures used in
tests to assert that a posterior "moved toward" the truth.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


def empirical_tail_probability(samples: np.ndarray, threshold: float) -> float:
    """Return ``P(X > threshold)`` estimated from samples.

    This is the ``P_real(D > h)`` term of the paper's Eq. 5.
    """
    samples = np.asarray(samples, dtype=float)
    require(samples.size > 0, "need at least one sample")
    return float(np.mean(samples > threshold))


def gaussian_tail_probability(mean: float, std: float, threshold: float) -> float:
    """Return ``P(X > threshold)`` for ``X ~ N(mean, std^2)``.

    Degenerate ``std == 0`` collapses to an indicator, which arises for a
    deterministic response-time CPD with zero leak.
    """
    require(std >= 0, "std must be non-negative")
    if std == 0:
        return float(mean > threshold)
    from scipy.stats import norm

    return float(norm.sf(threshold, loc=mean, scale=std))


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` — the paper's Eq. 5 shape.

    ``truth == 0`` returns ``inf`` when the estimate is nonzero and ``0.0``
    when both vanish, mirroring the natural limit.
    """
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def summarize(samples: np.ndarray) -> dict:
    """Five-number-style summary used by example scripts and EXPERIMENTS.md."""
    samples = np.asarray(samples, dtype=float)
    require(samples.size > 0, "need at least one sample")
    return {
        "n": int(samples.size),
        "mean": float(np.mean(samples)),
        "std": float(np.std(samples)),
        "min": float(np.min(samples)),
        "p50": float(np.percentile(samples, 50)),
        "p95": float(np.percentile(samples, 95)),
        "max": float(np.max(samples)),
    }


def histogram_pmf(samples: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Normalized histogram of ``samples`` over ``edges`` (a pmf over bins)."""
    counts, _ = np.histogram(np.asarray(samples, dtype=float), bins=edges)
    total = counts.sum()
    if total == 0:
        return np.full(len(edges) - 1, 1.0 / (len(edges) - 1))
    return counts / total


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two pmfs on the same support."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    require(p.shape == q.shape, "pmfs must share support")
    return 0.5 * float(np.abs(p - q).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-12) -> float:
    """``KL(p || q)`` with epsilon-smoothing so empty bins do not blow up."""
    p = np.asarray(p, dtype=float) + eps
    q = np.asarray(q, dtype=float) + eps
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * (np.log(p) - np.log(q))))
