"""Shared utilities: RNG plumbing, timers, statistics and validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.validation import require, require_type, require_positive

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "require",
    "require_type",
    "require_positive",
]
