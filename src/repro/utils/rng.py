"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either an
integer seed, an existing :class:`numpy.random.Generator`, or ``None``
(fresh OS entropy).  Centralizing the coercion keeps experiments
reproducible: a single seed threaded through an experiment yields
deterministic datasets, structures and learned parameters.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, or an existing generator
        (returned unchanged so generator state is shared, not copied).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used when an experiment repeats trials or when each simulated service /
    monitoring agent needs its own stream (so that adding a service does not
    perturb the draws of existing services).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    base = ensure_rng(rng)
    return [np.random.default_rng(s) for s in base.bit_generator.seed_seq.spawn(n)] \
        if hasattr(base.bit_generator, "seed_seq") and base.bit_generator.seed_seq is not None \
        else [np.random.default_rng(base.integers(0, 2**63 - 1)) for _ in range(n)]
