"""A minimal autonomic manager closing the paper's loop.

The paper positions KERT-BN as the model that "autonomous management
software … requires" for "resource provisioning, load balancing, and
performance problem localization and remediation".  This module wires
the pieces of this library into that loop, MAPE-K style:

- **Monitor** — pull a window of monitored data from the environment;
- **Analyze** — rebuild the KERT-BN (Eqs. 1–2 schedule) and assess the
  SLA-violation probability with the rapid analytic assessor;
- **Plan** — when the violation probability exceeds the policy bound,
  localize the most-blamed service and project candidate accelerations
  with pAccel to pick the cheapest sufficient one;
- **Execute** — apply the chosen speedup to the (simulated) environment.

The manager is deliberately simple — it demonstrates integration, not a
new control algorithm — but every decision it takes is driven by the
paper's machinery and is fully inspectable via :class:`CycleReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.apps.assessment import RapidAssessor
from repro.apps.localization import ProblemLocalizer
from repro.core.kertbn import KERTBN, build_continuous_kertbn
from repro.exceptions import ReproError
from repro.obs.runtime import OBS as _OBS
from repro.obs.runtime import span as _span
from repro.simulator.environment import SimulatedEnvironment
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SLAPolicy:
    """The service-level objective the manager defends."""

    threshold: float          # response-time bound (seconds)
    max_violation_prob: float  # tolerated P(D > threshold)
    candidate_speedups: tuple = (0.9, 0.75, 0.5)

    def __post_init__(self) -> None:
        if not self.threshold > 0:
            raise ReproError("SLA threshold must be > 0")
        if not 0.0 < self.max_violation_prob < 1.0:
            raise ReproError("max_violation_prob must be in (0, 1)")
        if not self.candidate_speedups or any(
            not 0 < s < 1 for s in self.candidate_speedups
        ):
            raise ReproError("candidate speedups must lie in (0, 1)")


@dataclass
class CycleReport:
    """Everything one manage cycle observed and decided.

    ``degraded`` marks a cycle whose model rebuild failed (learning
    error, all-NaN window): the manager fell back to the last healthy
    reference model — or, lacking one, to no model at all — recorded the
    ``incident``, and took no action.  The loop itself never crashes.
    """

    cycle: int
    violation_prob: float
    expected_response: float
    action: "tuple[str, float] | None" = None
    projected_violation_prob: "float | None" = None
    suspects: list = field(default_factory=list)
    model: "KERTBN | None" = None
    degraded: bool = False
    incident: "str | None" = None
    # Serving-layer outcomes (defaults keep pre-serving callers working).
    quarantined: bool = False            # window refused by the quality gate
    window_verdict: object = None        # the gate's WindowVerdict, if gated
    published_version: "int | None" = None  # registry version this cycle made
    rolled_back: bool = False            # accuracy tripwire reverted it
    # Observability-layer outcomes (PR 5): measured-SLO breaches seen
    # this cycle and which trigger(s) caused the action taken.
    slo_breaches: list = field(default_factory=list)
    trigger: "str | None" = None         # "model" | "slo" | "model+slo"
    # Budget attribution (PR 10): the ranked budget-eater table from the
    # attached BudgetTracker at decision time — rows of service /
    # allocated / consumed / burn_rate / blame / breached.  When an
    # action was taken on a breached budget, the targeted service is
    # the first breached row.
    attribution: list = field(default_factory=list)

    @property
    def acted(self) -> bool:
        return self.action is not None


class AutonomicManager:
    """Monitor → analyze → plan → execute over a simulated environment."""

    def __init__(
        self,
        environment: SimulatedEnvironment,
        policy: SLAPolicy,
        window_points: int = 300,
        rng=None,
        registry=None,
        quality_gate=None,
        tripwire_max_regression: float = 0.5,
        slo_monitor=None,
    ):
        """``registry`` (a :class:`repro.serving.ModelRegistry`) makes
        every healthy rebuild a published version, checked by an
        accuracy tripwire that auto-rolls back regressions;
        ``quality_gate`` (a :class:`repro.serving.DataQualityGate`)
        screens each monitoring window before it reaches learning —
        refused windows become degraded, quarantined cycles;
        ``slo_monitor`` (a :class:`repro.obs.slo.SLOMonitor`) is
        evaluated once per cycle on the measured window stream — its
        breaches trigger the plan/execute phases even when the model's
        predicted violation probability is still inside policy."""
        if window_points < 10:
            raise ReproError("window_points must be >= 10")
        self.env = environment
        self.policy = policy
        self.window_points = int(window_points)
        self.rng = ensure_rng(rng)
        self.registry = registry
        self.quality_gate = quality_gate
        self.slo_monitor = slo_monitor
        self._tripwire = None
        if registry is not None:
            from repro.serving.quality import AccuracyTripwire

            self._tripwire = AccuracyTripwire(
                registry, max_regression=tripwire_max_regression
            )
        self.history: list[CycleReport] = []
        # Localization compares *current* observations against the last
        # model built while the SLA held — a freshly rebuilt model already
        # reflects the fault and would show nothing anomalous.  The
        # localizer for that reference model is cached alongside it, so
        # consecutive violating cycles reuse its compiled joint Gaussian
        # instead of re-deriving it every cycle.
        self._reference_model: "KERTBN | None" = None
        self._reference_localizer: "ProblemLocalizer | None" = None

    # ------------------------------------------------------------------ #

    def _degraded_report(self, cycle: int, incident: str) -> CycleReport:
        """Survive a failed analyze step: reuse the last healthy model's
        assessment (or report no estimate at all), record the incident,
        take no action, and let the next cycle try again."""
        if self._reference_model is not None:
            assessor = RapidAssessor(self._reference_model)
            expected, _ = assessor.assess()
            p_violation = assessor.violation_probability(self.policy.threshold)
        else:
            expected = float("nan")
            p_violation = float("nan")
        report = CycleReport(
            cycle=cycle,
            violation_prob=p_violation,
            expected_response=expected,
            model=self._reference_model,
            degraded=True,
            incident=incident,
        )
        self.history.append(report)
        return report

    def _unlearnable(self, data) -> "str | None":
        """A window no rebuild can survive: some column has no finite data."""
        for name in (*self.env.service_names, self.env.response):
            col = np.asarray(data[name], dtype=float)
            if not np.isfinite(col).any():
                return f"column {name!r} has no finite values in the window"
        return None

    def run_cycle(self) -> CycleReport:
        """Execute one full MAPE cycle; mutates the environment if acting.

        A failed model rebuild never crashes the loop: the cycle is
        recorded as degraded (see :meth:`_degraded_report`) and the
        manager resumes on the next window.

        When :mod:`repro.obs` is enabled the cycle emits a
        ``manager.cycle`` span with one child per MAPE phase (monitor /
        quality-gate / analyze / publish / plan / execute) plus cycle,
        quarantine, rollback, and action counters.
        """
        _t0 = _OBS.clock() if _OBS.enabled else None
        with _span("manager.cycle") as cycle_span:
            report = self._run_cycle()
        if _t0 is not None:
            cycle_span.annotate(cycle=report.cycle, degraded=report.degraded)
            if report.trigger is not None:
                cycle_span.annotate(trigger=report.trigger)
            m = _OBS.metrics
            m.counter("manager.cycles").inc()
            m.histogram("manager.cycle.seconds").observe(_OBS.clock() - _t0)
            if report.degraded:
                m.counter("manager.degraded_cycles").inc()
            if report.quarantined:
                m.counter("manager.quarantined_windows").inc()
            if report.rolled_back:
                m.counter("manager.rollbacks").inc()
            if report.acted:
                m.counter("manager.actions").inc()
            if np.isfinite(report.violation_prob):
                m.gauge("manager.last_violation_prob").set(
                    report.violation_prob
                )
        return report

    def _feed_window_metrics(self, data) -> None:
        """Publish the monitored window's measured response stream into
        the metrics registry — the stream the SLO monitor (and any
        scraper) judges.  Violations here are *measured* SLA overruns,
        independent of anything a model predicts."""
        m = _OBS.metrics
        resp = np.asarray(data[self.env.response], dtype=float)
        finite = resp[np.isfinite(resp)]
        hist = m.histogram("manager.window.response_seconds")
        for value in finite:
            hist.observe(float(value))
        m.counter("manager.window.points").inc(int(finite.size))
        m.counter("manager.window.violations").inc(
            int(np.count_nonzero(finite > self.policy.threshold))
        )
        tracker = self._budget_tracker()
        if tracker is not None:
            # Per-service measured streams for budget-burn tracking;
            # finer buckets than the registry default because burn
            # compares a windowed percentile against a bound that may
            # sit only ~20 % above the healthy level.
            from repro.obs.attribution import BUDGET_STREAM_BUCKETS

            for service in self.env.service_names:
                col = np.asarray(data[service], dtype=float)
                shist = m.histogram(
                    tracker.stream_name(service),
                    buckets=BUDGET_STREAM_BUCKETS,
                )
                for value in col[np.isfinite(col)]:
                    shist.observe(float(value))

    def _budget_tracker(self):
        """The BudgetTracker riding the attached SLO monitor, if any."""
        return getattr(self.slo_monitor, "budget_tracker", None)

    def _refresh_budgets(self, model) -> None:
        """(Re)derive per-service budgets from a healthy published model.

        Called only on non-acting cycles — budgets must come from a
        model of the system *meeting* its SLO, or a degradation would
        stretch its own budget and hide inside it.  Amortized per model
        publish, never per query/scrape.
        """
        tracker = self._budget_tracker()
        if tracker is None:
            return
        from repro.bn.budgets import derive_budgets

        with _span("manager.budgets"):
            try:
                allocation = derive_budgets(
                    model,
                    sla=self.policy.threshold,
                    target=self.policy.max_violation_prob,
                )
            except ReproError:
                return  # e.g. a model without an invertible f
            tracker.update_allocation(allocation)
        if _OBS.enabled:
            _OBS.metrics.counter("manager.budget_derivations").inc()

    def _refresh_blame(self, assessor) -> None:
        """Posterior blame ``P(X_i > b_i | D > sla)`` from *this* cycle's
        fresh model against the standing budgets — the fresh model
        reflects any degradation, so blame points at the culprit even
        while the budgets still describe the healthy reference."""
        tracker = self._budget_tracker()
        if tracker is None or tracker.allocation is None:
            return
        from repro.bn.budgets import normal_blame

        d_mean, d_var, moments = assessor.response_moments()
        tracker.update_blame(
            normal_blame(
                moments,
                d_mean,
                d_var,
                tracker.allocation.as_mapping(),
                self.policy.threshold,
            )
        )

    def _evaluate_slo(self, data) -> list:
        """Feed the window stream and run one SLO-monitor interval."""
        if self.slo_monitor is None and not _OBS.enabled:
            return []
        self._feed_window_metrics(data)
        if self.slo_monitor is None:
            return []
        with _span("manager.slo"):
            breaches = self.slo_monitor.evaluate()
        if breaches and _OBS.enabled:
            _OBS.metrics.counter("manager.slo_breach_cycles").inc()
        return breaches

    def _run_cycle(self) -> CycleReport:
        cycle = len(self.history)
        # Monitor: fresh window from the live environment.
        with _span("manager.monitor"):
            data = self.env.simulate(self.window_points, rng=self.rng)
        # The measured stream is judged before anything model-driven:
        # an SLO breach must surface even on cycles whose analyze step
        # degrades (those are exactly the cycles where the measured
        # trigger is the only one left).
        breaches = self._evaluate_slo(data)
        # Quality gate: a poisoned window is quarantined before it can
        # corrupt the rebuild — the cycle degrades instead of learning.
        verdict = None
        if self.quality_gate is not None:
            with _span("manager.quality_gate"):
                verdict = self.quality_gate.inspect(data)
            if not verdict.accepted:
                report = self._degraded_report(
                    cycle,
                    "window quarantined: " + "; ".join(verdict.reasons),
                )
                report.quarantined = True
                report.window_verdict = verdict
                report.slo_breaches = list(breaches)
                return report
        # Analyze: rebuild the model (reconstruction, not update) + assess.
        incident = self._unlearnable(data)
        if incident is not None:
            report = self._degraded_report(cycle, incident)
            report.slo_breaches = list(breaches)
            return report
        try:
            with _span("manager.analyze"):
                model = build_continuous_kertbn(self.env.workflow, data)
                assessor = RapidAssessor(model)
                expected, _ = assessor.assess()
                p_violation = assessor.violation_probability(
                    self.policy.threshold
                )
        except (ReproError, FloatingPointError, ValueError) as exc:
            report = self._degraded_report(
                cycle, f"model rebuild failed: {exc}"
            )
            report.slo_breaches = list(breaches)
            return report
        self._refresh_blame(assessor)
        report = CycleReport(
            cycle=cycle,
            violation_prob=p_violation,
            expected_response=expected,
            model=model,
            window_verdict=verdict,
            slo_breaches=list(breaches),
        )
        tracker = self._budget_tracker()
        if tracker is not None and tracker.allocation is not None:
            report.attribution = tracker.ranking()
        if self._tripwire is not None:
            with _span("manager.publish"):
                outcome = self._tripwire.publish_checked(
                    model, data, metadata={"cycle": cycle}
                )
            report.published_version = outcome.version
            report.rolled_back = outcome.rolled_back
            if outcome.rolled_back:
                report.incident = (
                    f"published v{outcome.version} rolled back: "
                    f"{outcome.detail}"
                )
        model_trigger = p_violation > self.policy.max_violation_prob
        if model_trigger or breaches:
            report.trigger = (
                "model+slo" if model_trigger and breaches
                else ("model" if model_trigger else "slo")
            )
            with _span("manager.plan"):
                target, chosen = self._plan_action(
                    model, assessor, data, report
                )
            # Execute: apply the resource action to the environment.
            with _span("manager.execute"):
                self._apply_speedup(target, chosen[0])
            report.action = (target, chosen[0])
            report.projected_violation_prob = chosen[1]
        else:
            self._reference_model = model
            self._reference_localizer = None
            self._refresh_budgets(model)
        self.history.append(report)
        return report

    def _plan_action(self, model, assessor, data, report):
        """Plan phase: blame ranking against the last healthy model, then
        the *mildest* sufficient speedup.  Returns ``(target, (speedup,
        projected_violation_prob))`` and records suspects on ``report``."""
        if self._reference_model is not None:
            if self._reference_localizer is None:
                self._reference_localizer = ProblemLocalizer(self._reference_model)
            localizer = self._reference_localizer
        else:
            # No healthy reference yet: localize against the fresh
            # model, sharing this cycle's already-built assessor.
            localizer = ProblemLocalizer(model, assessor=assessor)
        observed = {
            s: float(np.mean(data[s])) for s in self.env.service_names
        }
        suspects = localizer.localize(observed)
        report.suspects = [s.row() for s in suspects[:3]]
        target = suspects[0].service
        # A breached per-service budget is the sharper signal: it names
        # the service measurably eating the end-to-end allocation, so
        # the action targets it directly instead of the global ranking.
        budget_breaches = [
            b
            for b in report.slo_breaches
            if getattr(b, "kind", None) == "budget"
            and getattr(b, "service", None) in self.env.service_names
        ]
        if budget_breaches:
            budget_breaches.sort(key=lambda b: -float(b.burn_rate))
            target = budget_breaches[0].service
        chosen = None
        for speedup in sorted(self.policy.candidate_speedups, reverse=True):
            current_mean = float(np.mean(data[target]))
            projected = assessor.violation_probability(
                self.policy.threshold, {target: speedup * current_mean}
            )
            if projected <= self.policy.max_violation_prob:
                chosen = (speedup, projected)
                break
        if chosen is None:
            # Even the strongest candidate is insufficient; take it
            # anyway (best effort) and record the residual risk.
            speedup = min(self.policy.candidate_speedups)
            projected = assessor.violation_probability(
                self.policy.threshold,
                {target: speedup * float(np.mean(data[target]))},
            )
            chosen = (speedup, projected)
        return target, chosen

    def run(self, n_cycles: int) -> list[CycleReport]:
        if n_cycles < 1:
            raise ReproError("need >= 1 cycle")
        return [self.run_cycle() for _ in range(n_cycles)]

    def model_server(self, **kwargs):
        """A guarded :class:`repro.serving.ModelServer` over this
        manager's models — registry-backed when a registry is attached
        (so rollbacks propagate via ``refresh()``), otherwise over the
        last healthy reference model."""
        from repro.serving.server import ModelServer

        if self.registry is not None and self.registry.active_version is not None:
            return ModelServer(self.registry, **kwargs)
        if self._reference_model is not None:
            return ModelServer(self._reference_model, **kwargs)
        raise ReproError(
            "no model to serve yet: run a healthy cycle first"
        )

    # ------------------------------------------------------------------ #

    def _apply_speedup(self, service: str, factor: float) -> None:
        """Execute a resource action: delegate to the environment's single
        mutation point, :meth:`SimulatedEnvironment.scale_service`."""
        self.env.scale_service(service, factor)


def inject_degradation(
    environment: SimulatedEnvironment, service: str, factor: float
) -> None:
    """Test/demo helper: degrade one service in place (factor > 1)."""
    if factor <= 0:
        raise ReproError("factor must be > 0")
    environment.scale_service(service, factor)
