"""Build reports and model comparisons.

The paper's two evaluation metrics (Section 4.1) are *construction time*
— "the time it takes to build the entire Bayesian network (i.e.
including the structure and parameter values)" — and *data-fitting
accuracy* — ``log10 p(TestData | BN)``.  :class:`BuildReport` carries the
former (split by phase, with per-CPD detail for the decentralized
accounting of Section 4.3); :class:`ModelComparison` pairs both metrics
for two models on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass
class BuildReport:
    """Cost accounting for one model construction."""

    model_kind: str
    structure_seconds: float = 0.0
    parameter_seconds: float = 0.0
    per_cpd_seconds: dict = field(default_factory=dict)
    n_nodes: int = 0
    n_edges: int = 0
    n_parameters: int = 0
    n_training_rows: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def construction_seconds(self) -> float:
        """The paper's construction-time metric: structure + parameters."""
        return self.structure_seconds + self.parameter_seconds

    @property
    def decentralized_parameter_seconds(self) -> float:
        """Max per-CPD learning time — Section 4.3's decentralized cost.

        "Since these CPDs will be computed in parallel on monitoring
        agents in practice, the decentralized learning time is the
        maximum of individual learning times across all CPDs."
        """
        if not self.per_cpd_seconds:
            return 0.0
        return max(self.per_cpd_seconds.values())

    @property
    def centralized_parameter_seconds(self) -> float:
        """Sum of per-CPD learning times (single-node accounting)."""
        return sum(self.per_cpd_seconds.values())

    def summary(self) -> dict:
        return {
            "model": self.model_kind,
            "construction_s": self.construction_seconds,
            "structure_s": self.structure_seconds,
            "parameter_s": self.parameter_seconds,
            "decentralized_param_s": self.decentralized_parameter_seconds,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "n_parameters": self.n_parameters,
            "n_training_rows": self.n_training_rows,
        }


@dataclass
class ModelComparison:
    """KERT-BN vs NRT-BN on one (train, test) pair — one Fig. 3/4 point."""

    n_services: int
    n_training_rows: int
    kert_report: BuildReport
    nrt_report: BuildReport
    kert_test_log10: float
    nrt_test_log10: float

    @property
    def construction_speedup(self) -> float:
        """NRT-BN construction time / KERT-BN construction time."""
        k = self.kert_report.construction_seconds
        return self.nrt_report.construction_seconds / k if k > 0 else float("inf")

    @property
    def accuracy_gap(self) -> float:
        """KERT-BN minus NRT-BN test log10-likelihood (positive = KERT wins)."""
        return self.kert_test_log10 - self.nrt_test_log10

    def row(self) -> dict:
        return {
            "n_services": self.n_services,
            "n_train": self.n_training_rows,
            "kert_build_s": self.kert_report.construction_seconds,
            "nrt_build_s": self.nrt_report.construction_seconds,
            "kert_log10": self.kert_test_log10,
            "nrt_log10": self.nrt_test_log10,
            "speedup": self.construction_speedup,
            "accuracy_gap": self.accuracy_gap,
        }


def mean_rows(rows: "list[Mapping[str, float]]") -> dict:
    """Average numeric fields across repetition rows (Fig. 3/4 style)."""
    if not rows:
        raise ValueError("no rows to average")
    keys = rows[0].keys()
    out = {}
    for k in keys:
        vals = [r[k] for r in rows]
        out[k] = sum(vals) / len(vals)
    return out
