"""Periodic model (re)construction — Section 2's scheme.

Two equations govern when models are rebuilt and from how much data:

- Eq. 1: ``W = K · T_CON`` — the sliding data window spans the current
  construction interval plus ``K − 1`` previous ones, where ``K`` is the
  *Environmental Correlation Metric* (how often autonomic actions
  decorrelate the environment from its past).
- Eq. 2: ``T_CON = α_model · T_DATA`` — the construction interval is a
  multiple of the data-collection interval; ``K · α_model`` is the
  number of data points available to infer the model.

:class:`ModelReconstructor` runs the scheme: data points stream in, every
``T_CON`` the model is rebuilt from the last ``W`` worth of points, and
each rebuild is checked for *feasibility* (construction must finish
before the next rebuild is due — the constraint NRT-BN violates beyond
~60 services in Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bn.data import Dataset
from repro.exceptions import SchedulingError


@dataclass(frozen=True)
class ReconstructionSchedule:
    """The (K, α_model, T_DATA) configuration of Eqs. 1–2."""

    t_data: float
    alpha_model: int
    k: int

    def __post_init__(self) -> None:
        if not self.t_data > 0:
            raise SchedulingError(f"T_DATA must be > 0, got {self.t_data}")
        if self.alpha_model < 1:
            raise SchedulingError(f"alpha_model must be >= 1, got {self.alpha_model}")
        if self.k < 1:
            raise SchedulingError(f"K must be >= 1, got {self.k}")

    @property
    def t_con(self) -> float:
        """Eq. 2: model construction interval ``T_CON = α_model · T_DATA``."""
        return self.alpha_model * self.t_data

    @property
    def window(self) -> float:
        """Eq. 1: sliding data window ``W = K · T_CON``."""
        return self.k * self.t_con

    @property
    def n_points(self) -> int:
        """Data points available per construction: ``K · α_model``."""
        return self.k * self.alpha_model

    @classmethod
    def from_training_size(
        cls, n_points: int, k: int, t_data: float
    ) -> "ReconstructionSchedule":
        """Invert ``n_points = K · α_model`` (the paper's Fig. 3 sweep
        varies training size as 36 … 1080 with K = 3 fixed)."""
        if n_points % k != 0:
            raise SchedulingError(
                f"n_points={n_points} not divisible by K={k}"
            )
        return cls(t_data=t_data, alpha_model=n_points // k, k=k)


def correlation_metric_from_managers(
    action_intervals: "list[float]",
    t_con: float,
    combine=min,
) -> int:
    """Derive ``K`` from the autonomic managers' action intervals.

    The paper's footnote: with one manager, base ``K`` on its own
    interval of autonomic actions; with several, use "a statistical
    combination of autonomic change intervals of the different products
    (e.g. taking the minimum ...)".  ``K`` is the number of construction
    intervals the environment stays correlated for, floored at 1.
    """
    if not action_intervals:
        raise SchedulingError("need at least one manager action interval")
    if any(not iv > 0 for iv in action_intervals):
        raise SchedulingError("action intervals must be > 0")
    if not t_con > 0:
        raise SchedulingError("T_CON must be > 0")
    effective = float(combine(action_intervals))
    return max(1, int(effective // t_con))


@dataclass
class RebuildEvent:
    """One model reconstruction in the periodic scheme."""

    at_time: float
    n_points: int
    model: object
    construction_seconds: float
    feasible: bool


@dataclass
class ModelReconstructor:
    """Streams data points and rebuilds the model every ``T_CON``.

    ``builder`` maps a training :class:`Dataset` to any model object
    exposing ``report.construction_seconds`` (both :class:`~repro.core.
    kertbn.KERTBN` and :class:`~repro.core.nrtbn.NRTBN` do).
    """

    schedule: ReconstructionSchedule
    builder: Callable[[Dataset], object]
    _buffer: "Dataset | None" = field(default=None, repr=False)
    _buffer_times: list = field(default_factory=list, repr=False)
    history: list = field(default_factory=list)

    def ingest(self, points: Dataset, start_time: float) -> None:
        """Append data points reported from ``start_time`` on, one per
        ``T_DATA``."""
        times = [start_time + i * self.schedule.t_data for i in range(points.n_rows)]
        if self._buffer is None:
            self._buffer = points
        else:
            if self._buffer.columns != points.columns:
                raise SchedulingError("ingested points have mismatched columns")
            self._buffer = Dataset.concat([self._buffer, points])
        self._buffer_times.extend(times)
        if sorted(self._buffer_times) != self._buffer_times:
            raise SchedulingError("data points must arrive in time order")

    def window_at(self, now: float) -> Dataset:
        """The Eq.-1 sliding window: points in ``(now - W, now]``."""
        if self._buffer is None:
            raise SchedulingError("no data ingested")
        lo = now - self.schedule.window
        idx = [i for i, t in enumerate(self._buffer_times) if lo < t <= now]
        if not idx:
            raise SchedulingError(f"window at t={now} contains no data")
        import numpy as np

        return self._buffer.rows(np.asarray(idx))

    def rebuild(self, now: float) -> RebuildEvent:
        """Rebuild from the current window and record feasibility.

        Feasible means construction finished within ``T_CON`` — a model
        that cannot be rebuilt before its next scheduled rebuild "may
        simply be impossible to build at short model construction
        intervals" (Section 4.2).
        """
        window = self.window_at(now)
        model = self.builder(window)
        secs = model.report.construction_seconds  # type: ignore[attr-defined]
        event = RebuildEvent(
            at_time=now,
            n_points=window.n_rows,
            model=model,
            construction_seconds=secs,
            feasible=secs <= self.schedule.t_con,
        )
        self.history.append(event)
        return event

    def run(self, data: Dataset, n_rebuilds: int) -> list[RebuildEvent]:
        """Convenience driver: stream ``data`` and rebuild every ``T_CON``."""
        if n_rebuilds < 1:
            raise SchedulingError("need >= 1 rebuild")
        needed = self.schedule.n_points + (n_rebuilds - 1) * self.schedule.alpha_model
        if data.n_rows < needed:
            raise SchedulingError(
                f"need >= {needed} points for {n_rebuilds} rebuilds, "
                f"got {data.n_rows}"
            )
        self.ingest(data, start_time=self.schedule.t_data)
        events = []
        for r in range(n_rebuilds):
            now = self.schedule.window + r * self.schedule.t_con
            events.append(self.rebuild(now))
        return events
