"""NRT-BN: the Naive Response Time Bayesian Network baseline.

"Learned purely from data via both structure learning with K2 [6] and
parameter learning" (Section 4).  No domain knowledge: the DAG comes from
a K2 search over a node ordering (random by default — nothing privileges
any order without knowledge; Section 5.3's variant retries many random
orderings within a time budget), and every CPD is learned.

Also provided: the *learning-free* naive-Bayes structure (response node
as sole parent of every service node) that Section 4.2 considers and
dismisses — "not only is a learning-free NRT-BN even less accurate … but
its use will result in complete loss of model interpretability".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.discretize import Discretizer
from repro.bn.learning.k2 import K2Result, k2_random_restarts, k2_search
from repro.bn.learning.mle import fit_gaussian_network, fit_discrete_network
from repro.bn.learning.scores import (
    ScoreCache,
    discrete_k2_local,
    gaussian_bic_local,
)
from repro.bn.network import DiscreteBayesianNetwork, GaussianBayesianNetwork
from repro.core.metrics import BuildReport
from repro.exceptions import LearningError
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer, timed


@dataclass
class NRTBN:
    """A built NRT-BN: network, cost report, and the K2 search outcome."""

    network: "GaussianBayesianNetwork | DiscreteBayesianNetwork"
    response: str
    report: BuildReport
    k2: "K2Result | None" = None
    discretizer: "Discretizer | None" = None

    @property
    def kind(self) -> str:
        return self.report.model_kind

    def log10_likelihood(self, data: Dataset) -> float:
        """Test accuracy on continuous-unit data (see KERTBN counterpart)."""
        if self.discretizer is not None:
            data = self.discretizer.transform(data)
        return self.network.log10_likelihood(data)


def naive_structure(services: "tuple[str, ...]", response: str = "D") -> DAG:
    """The learning-free classic naive-Bayes DAG: ``D → X_i`` for all i."""
    dag = DAG(nodes=(response, *services))
    for s in services:
        dag.add_edge(response, s)
    return dag


def build_continuous_nrtbn(
    data: Dataset,
    response: str = "D",
    rng=None,
    max_parents: "int | None" = 5,
    n_restarts: "int | None" = None,
    time_budget: "float | None" = None,
    min_variance: float = 1e-9,
) -> NRTBN:
    """K2 + linear-Gaussian parameter learning over all data columns.

    ``n_restarts`` / ``time_budget`` enable the Section-5.3 random-restart
    scheme; with neither set a single random ordering is used.
    ``max_parents`` is K2's fan-in bound ``u`` (an input of the original
    algorithm [Cooper & Herskovits 1992]); the default 5 keeps the
    baseline honest on tiny training windows, where unbounded greedy
    parent acquisition overfits pathologically.
    """
    rng = ensure_rng(rng)
    nodes = [str(c) for c in data.columns]
    if response not in nodes:
        raise LearningError(f"data lacks response column {response!r}")
    cache = ScoreCache(lambda v, ps: gaussian_bic_local(data, v, ps))

    structure_timer = Timer()
    with structure_timer:
        if n_restarts is not None or time_budget is not None:
            k2 = k2_random_restarts(
                nodes, cache, rng=rng, n_restarts=n_restarts,
                time_budget=time_budget, max_parents=max_parents,
            )
        else:
            order = [nodes[i] for i in rng.permutation(len(nodes))]
            k2 = k2_search(nodes, cache, order=order, max_parents=max_parents)

    per_cpd: dict[str, float] = {}
    param_timer = Timer()
    with param_timer:
        from repro.bn.learning.mle import fit_linear_gaussian

        cpds = []
        for node in k2.dag.nodes:
            node = str(node)
            parents = tuple(map(str, k2.dag.parents(node)))
            cpd, secs = timed(
                fit_linear_gaussian, data, node, parents, min_variance=min_variance
            )
            per_cpd[node] = secs
            cpds.append(cpd)
        network = GaussianBayesianNetwork(k2.dag, cpds)
    report = BuildReport(
        model_kind="nrt-bn/continuous",
        structure_seconds=structure_timer.elapsed,
        parameter_seconds=param_timer.elapsed,
        per_cpd_seconds=per_cpd,
        n_nodes=k2.dag.n_nodes,
        n_edges=k2.dag.n_edges,
        n_parameters=network.n_parameters,
        n_training_rows=data.n_rows,
        extra={
            "k2_score": k2.score,
            "k2_evaluations": k2.n_score_evaluations,
            "k2_restarts": k2.n_restarts,
        },
    )
    return NRTBN(network=network, response=response, report=report, k2=k2)


def build_discrete_nrtbn(
    data: Dataset,
    response: str = "D",
    rng=None,
    n_bins: int = 5,
    alpha: float = 1.0,
    max_parents: "int | None" = 3,
    n_restarts: "int | None" = None,
    time_budget: "float | None" = None,
    discretizer: "Discretizer | None" = None,
) -> NRTBN:
    """Discretize, K2 with the Cooper–Herskovits score, fit tabular CPDs."""
    rng = ensure_rng(rng)
    nodes = [str(c) for c in data.columns]
    if response not in nodes:
        raise LearningError(f"data lacks response column {response!r}")
    if discretizer is None:
        discretizer = Discretizer(n_bins=n_bins).fit(data, nodes)
    binned = discretizer.transform(data, nodes)
    cards = discretizer.cardinalities()

    cache = ScoreCache(
        lambda v, ps: discrete_k2_local(
            binned, v, cards[v], ps, tuple(cards[p] for p in ps)
        )
    )
    structure_timer = Timer()
    with structure_timer:
        if n_restarts is not None or time_budget is not None:
            k2 = k2_random_restarts(
                nodes, cache, rng=rng, n_restarts=n_restarts,
                time_budget=time_budget, max_parents=max_parents,
            )
        else:
            order = [nodes[i] for i in rng.permutation(len(nodes))]
            k2 = k2_search(nodes, cache, order=order, max_parents=max_parents)

    param_timer = Timer()
    per_cpd: dict[str, float] = {}
    with param_timer:
        from repro.bn.learning.mle import fit_tabular

        cpds = []
        for node in k2.dag.nodes:
            node = str(node)
            parents = tuple(map(str, k2.dag.parents(node)))
            cpd, secs = timed(
                fit_tabular, binned, node, cards[node], parents,
                tuple(cards[p] for p in parents), alpha,
            )
            per_cpd[node] = secs
            cpds.append(cpd)
        network = DiscreteBayesianNetwork(k2.dag, cpds)
    report = BuildReport(
        model_kind="nrt-bn/discrete",
        structure_seconds=structure_timer.elapsed,
        parameter_seconds=param_timer.elapsed,
        per_cpd_seconds=per_cpd,
        n_nodes=k2.dag.n_nodes,
        n_edges=k2.dag.n_edges,
        n_parameters=network.n_parameters,
        n_training_rows=data.n_rows,
        extra={
            "k2_score": k2.score,
            "k2_evaluations": k2.n_score_evaluations,
            "k2_restarts": k2.n_restarts,
            "n_bins": n_bins,
        },
    )
    return NRTBN(
        network=network, response=response, report=report, k2=k2,
        discretizer=discretizer,
    )


def build_naive_continuous(
    data: Dataset, response: str = "D", min_variance: float = 1e-9
) -> NRTBN:
    """The learning-free naive-Bayes baseline of Section 4.2's discussion."""
    nodes = tuple(str(c) for c in data.columns)
    if response not in nodes:
        raise LearningError(f"data lacks response column {response!r}")
    services = tuple(n for n in nodes if n != response)
    dag = naive_structure(services, response)
    param_timer = Timer()
    with param_timer:
        network = fit_gaussian_network(dag, data, min_variance=min_variance)
    report = BuildReport(
        model_kind="naive-bn/continuous",
        structure_seconds=0.0,
        parameter_seconds=param_timer.elapsed,
        n_nodes=dag.n_nodes,
        n_edges=dag.n_edges,
        n_parameters=network.n_parameters,
        n_training_rows=data.n_rows,
    )
    return NRTBN(network=network, response=response, report=report)
