"""KERT-BN: the Knowledge-Enhanced Response Time Bayesian Network.

Construction (Section 3) uses domain knowledge twice and data once:

1. **Structure** — derived from workflow and resource sharing at linear
   cost (:func:`repro.workflow.structure.kert_bn_structure`); *no*
   structure learning.
2. **Response CPD** — the Eq.-4 deterministic CPD parameterized by the
   workflow's ``f``; its only learned quantity is a leak/noise scalar
   (one O(N) pass).
3. **Service CPDs** — ``P(X_i | Φ(X_i))`` learned from data per node;
   each fit is timed individually because these are the units that
   Section 3.4 pushes onto per-service monitoring agents.

Continuous and discrete variants mirror Section 3.1's trade-off: the
continuous (linear-Gaussian + noisy-``f``) model converges with few data
points; the discrete (tabular + Eq.-4 leak) model is assumption-free
given enough data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.bn.cpd.deterministic import DeterministicCPD, NoisyDeterministicCPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.discretize import Discretizer
from repro.bn.learning.mle import fit_linear_gaussian, fit_tabular
from repro.bn.network import DiscreteBayesianNetwork, HybridResponseNetwork
from repro.core.metrics import BuildReport
from repro.exceptions import LearningError
from repro.utils.timing import Timer, timed
from repro.workflow.constructs import WorkflowNode
from repro.workflow.response_time import ResponseTimeFunction, response_time_function
from repro.workflow.structure import kert_bn_structure


@dataclass
class KERTBN:
    """A built KERT-BN: the network plus its provenance and cost report.

    ``network`` is a :class:`HybridResponseNetwork` (continuous) or
    :class:`DiscreteBayesianNetwork` (discrete); ``f`` the workflow
    function behind the response CPD; ``report`` the construction-cost
    accounting; ``discretizer`` is set on discrete models.
    """

    network: "HybridResponseNetwork | DiscreteBayesianNetwork"
    f: ResponseTimeFunction
    response: str
    report: BuildReport
    discretizer: "Discretizer | None" = None

    @property
    def kind(self) -> str:
        return self.report.model_kind

    def log10_likelihood(self, data: Dataset) -> float:
        """Test accuracy on (continuous-unit) data.

        Discrete models transform through their discretizer first, so
        callers always score raw monitored data.
        """
        if self.discretizer is not None:
            data = self.discretizer.transform(data)
        return self.network.log10_likelihood(data)


def _structure_from_knowledge(
    workflow: WorkflowNode,
    response: str,
    resource_groups: "Mapping[str, tuple[str, ...]] | None",
) -> tuple[DAG, float]:
    """Derive the DAG from domain knowledge, returning (dag, seconds).

    The timing matters: this is the (near-zero) "structure phase" that
    replaces NRT-BN's structure search in the Fig. 3/4 comparisons.
    """
    return timed(
        kert_bn_structure, workflow, response=response, resource_groups=resource_groups
    )


def build_continuous_kertbn(
    workflow: WorkflowNode,
    data: Dataset,
    response: str = "D",
    resource_groups: "Mapping[str, tuple[str, ...]] | None" = None,
    min_variance: float = 1e-9,
) -> KERTBN:
    """Build the continuous KERT-BN of Section 4's simulation study.

    Service nodes get least-squares linear-Gaussian CPDs; the response
    node gets ``f(X) + N(0, σ²)`` with σ² from one residual pass.
    """
    if resource_groups:
        raise LearningError(
            "resource-sharing nodes need their own measurements; pass "
            "resource columns in data and use the discrete builder, or "
            "omit resource_groups for the continuous model"
        )
    f = response_time_function(workflow)
    dag, structure_seconds = _structure_from_knowledge(workflow, response, None)

    per_cpd: dict[str, float] = {}
    cpds = []
    param_timer = Timer()
    with param_timer:
        for node in dag.nodes:
            node = str(node)
            parents = tuple(map(str, dag.parents(node)))
            if node == response:
                cpd, secs = timed(
                    NoisyDeterministicCPD.fit_variance, node, f, parents, data,
                    min_variance=min_variance,
                )
            else:
                cpd, secs = timed(
                    fit_linear_gaussian, data, node, parents, min_variance=min_variance
                )
            per_cpd[node] = secs
            cpds.append(cpd)
    network = HybridResponseNetwork(dag, cpds, response=response)
    report = BuildReport(
        model_kind="kert-bn/continuous",
        structure_seconds=structure_seconds,
        parameter_seconds=param_timer.elapsed,
        per_cpd_seconds=per_cpd,
        n_nodes=dag.n_nodes,
        n_edges=dag.n_edges,
        n_parameters=network.n_parameters,
        n_training_rows=data.n_rows,
    )
    return KERTBN(network=network, f=f, response=response, report=report)


def _predicted_vs_actual_bins(
    f: ResponseTimeFunction,
    discretizer: Discretizer,
    data: Dataset,
    response: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Bin of ``f``(binned inputs' centers) vs bin of the measured response."""
    services = sorted(f.inputs)
    binned = discretizer.transform(data, services + [response])
    centers = {s: discretizer.centers(s)[np.asarray(binned[s], dtype=int)] for s in services}
    fx = f(centers)
    edges = discretizer.edges(response)
    predicted = np.clip(np.digitize(fx, edges[1:-1]), 0, edges.size - 2)
    actual = np.asarray(binned[response], dtype=int)
    return predicted, actual


def build_structure_only_kertbn(
    workflow: WorkflowNode,
    data: Dataset,
    response: str = "D",
    min_variance: float = 1e-9,
) -> KERTBN:
    """Ablation: workflow knowledge for the *structure* only.

    The DAG still comes from the workflow (no structure learning), but
    the response CPD is a plain learned linear-Gaussian over all service
    nodes instead of Eq. 4's workflow-given ``f``.  Comparing this
    against the full KERT-BN isolates how much of the win comes from
    each knowledge injection (see
    ``benchmarks/test_ablation_knowledge.py``).
    """
    from repro.bn.network import GaussianBayesianNetwork

    f = response_time_function(workflow)
    dag, structure_seconds = _structure_from_knowledge(workflow, response, None)
    per_cpd: dict[str, float] = {}
    cpds = []
    param_timer = Timer()
    with param_timer:
        for node in dag.nodes:
            node = str(node)
            parents = tuple(map(str, dag.parents(node)))
            cpd, secs = timed(
                fit_linear_gaussian, data, node, parents, min_variance=min_variance
            )
            per_cpd[node] = secs
            cpds.append(cpd)
    network = GaussianBayesianNetwork(dag, cpds)
    report = BuildReport(
        model_kind="kert-bn/structure-only",
        structure_seconds=structure_seconds,
        parameter_seconds=param_timer.elapsed,
        per_cpd_seconds=per_cpd,
        n_nodes=dag.n_nodes,
        n_edges=dag.n_edges,
        n_parameters=network.n_parameters,
        n_training_rows=data.n_rows,
    )
    return KERTBN(network=network, f=f, response=response, report=report)


def estimate_leak(
    f: ResponseTimeFunction,
    discretizer: Discretizer,
    data: Dataset,
    response: str,
    floor: float = 1e-3,
) -> float:
    """Estimate Eq. 4's leak ``l`` — the fraction of training rows whose
    *binned* response disagrees with ``f`` applied to binned inputs.

    Measurement noise and binning coarseness both feed ``l``; a small
    floor keeps the likelihood finite on clean data.
    """
    predicted, actual = _predicted_vs_actual_bins(f, discretizer, data, response)
    leak = float(np.mean(predicted != actual))
    return min(max(leak, floor), 0.99)


def calibrate_confusion(
    f: ResponseTimeFunction,
    discretizer: Discretizer,
    data: Dataset,
    response: str,
    leak: float,
    leak_decay: float,
    prior_strength: float = 5.0,
) -> np.ndarray:
    """One-pass calibration of the Eq.-4 CPD's miss structure.

    Counts how the measured response bin deviates from the ``f``-predicted
    bin and smooths the counts toward the geometric-decay prior.  This is
    still O(N + m²) — independent of the number of parents — so it keeps
    the paper's "no heavyweight ``P(D | X₁..Xₙ)`` learning" property while
    adapting the leak to the observed noise profile.
    """
    predicted, actual = _predicted_vs_actual_bins(f, discretizer, data, response)
    m = discretizer.cardinality(response)
    counts = np.zeros((m, m))
    np.add.at(counts, (predicted, actual), 1.0)
    # Geometric-decay prior (the uncalibrated transition), scaled.
    k = np.arange(m)
    if m == 1:
        return np.ones((1, 1))
    dist = np.abs(k[:, None] - k[None, :]).astype(float)
    weights = np.where(dist > 0, leak_decay ** (dist - 1.0), 0.0)
    z = weights.sum(axis=1, keepdims=True)
    prior = leak * weights / z
    prior[k, k] = 1.0 - leak
    smoothed = counts + prior_strength * prior
    return smoothed / smoothed.sum(axis=1, keepdims=True)


def build_discrete_kertbn(
    workflow: WorkflowNode,
    data: Dataset,
    response: str = "D",
    n_bins: int = 5,
    alpha: float = 1.0,
    leak_decay: float = 0.5,
    leak_model: str = "confusion",
    resource_groups: "Mapping[str, tuple[str, ...]] | None" = None,
    discretizer: "Discretizer | None" = None,
) -> KERTBN:
    """Build the discrete KERT-BN of Section 5 (eDiaMoND applications).

    The response CPD is the Eq.-4 table: mass ``1 - l`` on the bin of
    ``f``(bin centers), leak ``l`` estimated from training data.
    ``leak_model`` selects how the leaked mass is spread:
    ``"uniform"`` (the literal Eq. 4), ``"geometric"`` (distance-decayed),
    or ``"confusion"`` (default; decay prior calibrated by one O(N)
    counting pass — see :func:`calibrate_confusion`).
    Resource-sharing nodes (if named in ``resource_groups`` with matching
    columns in ``data``) carry learned tabular CPDs.
    """
    if leak_model not in ("uniform", "geometric", "confusion"):
        raise LearningError(
            f"leak_model must be uniform|geometric|confusion, got {leak_model!r}"
        )
    f = response_time_function(workflow)
    dag, structure_seconds = _structure_from_knowledge(workflow, response, resource_groups)

    if discretizer is None:
        discretizer = Discretizer(n_bins=n_bins).fit(
            data, [str(n) for n in dag.nodes if str(n) in data]
        )
    missing = [str(n) for n in dag.nodes if str(n) not in data]
    if missing:
        raise LearningError(f"data lacks columns for nodes {missing}")
    binned = discretizer.transform(data, [str(n) for n in dag.nodes])
    cards = discretizer.cardinalities()

    per_cpd: dict[str, float] = {}
    cpds = []
    param_timer = Timer()
    with param_timer:
        leak, leak_secs = timed(estimate_leak, f, discretizer, data, response)
        transition = None
        if leak_model == "confusion":
            transition, conf_secs = timed(
                calibrate_confusion, f, discretizer, data, response, leak, leak_decay
            )
            leak_secs += conf_secs
        for node in dag.nodes:
            node = str(node)
            parents = tuple(map(str, dag.parents(node)))
            if node == response:
                def make_response_cpd():
                    return DeterministicCPD(
                        node,
                        f,
                        parents,
                        {p: discretizer.centers(p) for p in parents},
                        discretizer.edges(response),
                        leak=leak,
                        leak_decay=1.0 if leak_model == "uniform" else leak_decay,
                        transition=transition,
                    )

                cpd, secs = timed(make_response_cpd)
                secs += leak_secs
            else:
                cpd, secs = timed(
                    fit_tabular, binned, node, cards[node], parents,
                    tuple(cards[p] for p in parents), alpha,
                )
            per_cpd[node] = secs
            cpds.append(cpd)
    network = DiscreteBayesianNetwork(dag, cpds)
    report = BuildReport(
        model_kind="kert-bn/discrete",
        structure_seconds=structure_seconds,
        parameter_seconds=param_timer.elapsed,
        per_cpd_seconds=per_cpd,
        n_nodes=dag.n_nodes,
        n_edges=dag.n_edges,
        n_parameters=network.n_parameters,
        n_training_rows=data.n_rows,
        extra={"leak": leak, "n_bins": n_bins},
    )
    return KERTBN(
        network=network, f=f, response=response, report=report, discretizer=discretizer
    )
