"""Sequential model *update* — the alternative Section 2 argues against.

The paper: "a strategy where models are updated with the latest data may
appear less extreme [than full reconstruction], [but] the disperse of
old data is often not possible under current statistical frameworks …
out-of-date information lingers in the updated model and adversely
impacts its accuracy."

This module makes that argument runnable.  :class:`SequentialGaussianUpdater`
and :class:`SequentialTabularUpdater` maintain CPD parameters from
accumulated sufficient statistics (optionally with exponential
forgetting, the standard mitigation): new batches fold in, old data
never leaves (``decay=1``).  The ablation benchmark
``benchmarks/test_ablation_update_vs_reconstruct.py`` pits sequential
updating against the paper's windowed reconstruction under environment
drift.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.bn.cpd import LinearGaussianCPD, TabularCPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.network import DiscreteBayesianNetwork, GaussianBayesianNetwork
from repro.exceptions import LearningError


class SequentialGaussianUpdater:
    """Per-node linear-Gaussian CPDs from accumulated moment statistics.

    For node ``X`` with parents ``U``: keep ``n``, ``Σz`` and ``Σzzᵀ`` for
    ``z = (1, U, X)``; the regression coefficients and residual variance
    fall out of the normal equations at any time.  ``decay`` in (0, 1]
    multiplies the accumulated statistics before each new batch
    (``decay=1`` = the pure sequential update of Spiegelhalter & Lauritzen
    the paper cites; ``<1`` = exponential forgetting).
    """

    def __init__(self, dag: DAG, decay: float = 1.0, min_variance: float = 1e-9,
                 ridge: float = 1e-8):
        if not 0.0 < decay <= 1.0:
            raise LearningError(f"decay must be in (0, 1], got {decay}")
        self.dag = dag.copy()
        self.decay = float(decay)
        self.min_variance = float(min_variance)
        self.ridge = float(ridge)
        self._stats: dict[str, dict] = {}
        for node in dag.nodes:
            node = str(node)
            k = 1 + len(dag.parents(node)) + 1  # intercept + parents + child
            self._stats[node] = {
                "n": 0.0,
                "s1": np.zeros(k),
                "s2": np.zeros((k, k)),
            }

    def _design(self, node: str, data: Dataset) -> np.ndarray:
        parents = tuple(map(str, self.dag.parents(node)))
        cols = [np.ones(data.n_rows)]
        cols += [np.asarray(data[p], dtype=float) for p in parents]
        cols.append(np.asarray(data[node], dtype=float))
        return np.column_stack(cols)

    def ingest(self, data: Dataset) -> None:
        """Fold one batch into every node's statistics."""
        for node, st in self._stats.items():
            z = self._design(node, data)
            st["n"] = self.decay * st["n"] + z.shape[0]
            st["s1"] = self.decay * st["s1"] + z.sum(axis=0)
            st["s2"] = self.decay * st["s2"] + z.T @ z

    def cpd(self, node: str) -> LinearGaussianCPD:
        """Current CPD implied by the accumulated statistics."""
        st = self._stats[str(node)]
        if st["n"] <= 1:
            raise LearningError(f"no data accumulated for {node!r}")
        parents = tuple(map(str, self.dag.parents(node)))
        k = 1 + len(parents)
        s2 = st["s2"]
        a = s2[:k, :k] + self.ridge * np.eye(k)  # design gram
        b = s2[:k, k]                            # design · child
        beta = np.linalg.solve(a, b)
        # Residual second moment: E[x²] − 2βᵀb/n + βᵀAβ/n.
        xx = s2[k, k]
        rss = xx - 2 * beta @ b + beta @ (s2[:k, :k] @ beta)
        var = max(float(rss / st["n"]), self.min_variance)
        return LinearGaussianCPD(str(node), float(beta[0]), beta[1:], var, parents)

    def network(self) -> GaussianBayesianNetwork:
        return GaussianBayesianNetwork(
            self.dag, [self.cpd(str(n)) for n in self.dag.nodes]
        )


class SequentialTabularUpdater:
    """Per-node tabular CPDs from accumulated (decaying) counts."""

    def __init__(
        self,
        dag: DAG,
        cardinalities: Mapping[str, int],
        decay: float = 1.0,
        alpha: float = 1.0,
    ):
        if not 0.0 < decay <= 1.0:
            raise LearningError(f"decay must be in (0, 1], got {decay}")
        self.dag = dag.copy()
        self.cards = {str(k): int(v) for k, v in cardinalities.items()}
        self.decay = float(decay)
        self.alpha = float(alpha)
        self._counts: dict[str, np.ndarray] = {}
        for node in dag.nodes:
            node = str(node)
            parents = tuple(map(str, dag.parents(node)))
            n_configs = int(np.prod([self.cards[p] for p in parents])) if parents else 1
            self._counts[node] = np.zeros((self.cards[node], n_configs))

    def ingest(self, data: Dataset) -> None:
        for node, counts in self._counts.items():
            parents = tuple(map(str, self.dag.parents(node)))
            child = np.asarray(data[node], dtype=int)
            counts *= self.decay
            if parents:
                config = np.zeros(child.size, dtype=np.int64)
                for p in parents:
                    config = config * self.cards[p] + np.asarray(data[p], dtype=int)
                np.add.at(counts, (child, config), 1.0)
            else:
                np.add.at(counts, (child, np.zeros(child.size, dtype=int)), 1.0)

    def cpd(self, node: str) -> TabularCPD:
        node = str(node)
        counts = self._counts[node] + self.alpha
        parents = tuple(map(str, self.dag.parents(node)))
        parent_cards = tuple(self.cards[p] for p in parents)
        table = counts / counts.sum(axis=0)
        return TabularCPD(
            node,
            self.cards[node],
            table.reshape((self.cards[node], *parent_cards)),
            parents,
            parent_cards,
        )

    def network(self) -> DiscreteBayesianNetwork:
        return DiscreteBayesianNetwork(
            self.dag, [self.cpd(str(n)) for n in self.dag.nodes]
        )


def drift_experiment(
    dag: DAG,
    batches_before: Iterable[Dataset],
    batches_after: Iterable[Dataset],
    test_after: Dataset,
    window_batches: int,
    decay: float = 1.0,
) -> dict:
    """Compare sequential updating vs windowed reconstruction under drift.

    ``batches_before`` come from the old environment, ``batches_after``
    from the drifted one; ``test_after`` is drifted test data.  The
    sequential updater folds in every batch; the reconstructor refits
    from only the last ``window_batches`` batches (the Eq.-1 window).
    Returns both models' test log10-likelihoods.
    """
    from repro.bn.learning.mle import fit_gaussian_network

    updater = SequentialGaussianUpdater(dag, decay=decay)
    recent: list[Dataset] = []
    for batch in list(batches_before) + list(batches_after):
        updater.ingest(batch)
        recent.append(batch)
        recent = recent[-window_batches:]
    reconstructed = fit_gaussian_network(dag, Dataset.concat(recent))
    return {
        "sequential_log10": updater.network().log10_likelihood(test_after),
        "reconstructed_log10": reconstructed.log10_likelihood(test_after),
    }
