"""The paper's models and their construction machinery.

- :mod:`repro.core.kertbn` — the Knowledge-Enhanced Response Time
  Bayesian Network: workflow-derived structure, Eq.-4 response CPD,
  per-node parameter learning with per-CPD timing.
- :mod:`repro.core.nrtbn` — the Naive Response Time BN baseline:
  K2 structure learning plus full parameter learning, and the
  learning-free naive structure Section 4.2 dismisses.
- :mod:`repro.core.reconstruction` — the periodic model-(re)construction
  scheme of Section 2 (Eqs. 1–2: ``W = K·T_CON``, ``T_CON = α·T_DATA``).
- :mod:`repro.core.metrics` — construction-time / accuracy comparison
  containers used by the benchmarks.
"""

from repro.core.kertbn import KERTBN, build_continuous_kertbn, build_discrete_kertbn
from repro.core.nrtbn import NRTBN, build_continuous_nrtbn, build_discrete_nrtbn
from repro.core.reconstruction import ReconstructionSchedule, ModelReconstructor
from repro.core.metrics import BuildReport, ModelComparison

__all__ = [
    "KERTBN",
    "build_continuous_kertbn",
    "build_discrete_kertbn",
    "NRTBN",
    "build_continuous_nrtbn",
    "build_discrete_nrtbn",
    "ReconstructionSchedule",
    "ModelReconstructor",
    "BuildReport",
    "ModelComparison",
]
