"""Whole-model persistence: KERT-BN / NRT-BN bundles.

A *bundle* is everything an autonomic component needs to use a built
model later or elsewhere: the network (with its Eq.-4 expression), the
response-node name, the discretizer (for discrete models), and the
construction report.  Bundles are plain JSON.

Bundles carry a ``schema_version`` so a registry rollback across code
changes fails loudly (:class:`~repro.exceptions.DataError`) instead of
deserializing garbage; truncated or corrupt bundles name the offending
key in the error.  Writes are atomic (temp file + rename) so a crashed
writer can never leave a half-written bundle behind.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.bn.discretize import Discretizer
from repro.bn.io import network_from_dict, network_to_dict
from repro.core.kertbn import KERTBN
from repro.core.metrics import BuildReport
from repro.core.nrtbn import NRTBN
from repro.exceptions import DataError
from repro.workflow.response_time import ResponseTimeFunction

#: Bundle layout version.  Bump when the serialized shape changes
#: incompatibly; readers refuse unknown versions with a clear message.
SCHEMA_VERSION = 1

#: Versions this build knows how to read.  Bundles written before the
#: field existed are treated as version 1 (the field was introduced with
#: that layout).
SUPPORTED_SCHEMA_VERSIONS = (1,)


def write_json_atomic(path: str, obj: Any) -> None:
    """Serialize ``obj`` to ``path`` via a same-directory temp file and
    an atomic rename, so readers never observe a partial file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(obj, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def discretizer_to_dict(disc: Discretizer) -> dict:
    return {
        "n_bins": disc.n_bins,
        "strategy": disc.strategy,
        "edges": {c: disc.edges(c).tolist() for c in disc.columns},
        "centers": {c: disc.centers(c).tolist() for c in disc.columns},
    }


def discretizer_from_dict(spec: dict) -> Discretizer:
    disc = Discretizer.from_edges(
        spec["edges"], centers=spec.get("centers"), strategy=spec["strategy"]
    )
    # Preserve the fitted configuration rather than from_edges' inferred
    # floor, so a re-fit after loading behaves like the original.
    disc.n_bins = int(spec["n_bins"])
    return disc


def _report_to_dict(report: BuildReport) -> dict:
    return {
        "model_kind": report.model_kind,
        "structure_seconds": report.structure_seconds,
        "parameter_seconds": report.parameter_seconds,
        "per_cpd_seconds": dict(report.per_cpd_seconds),
        "n_nodes": report.n_nodes,
        "n_edges": report.n_edges,
        "n_parameters": report.n_parameters,
        "n_training_rows": report.n_training_rows,
        "extra": dict(report.extra),
    }


def _report_from_dict(spec: dict) -> BuildReport:
    return BuildReport(**spec)


def model_to_dict(model: "KERTBN | NRTBN") -> dict:
    """Serialize a built model (either family) to a JSON-compatible dict."""
    out: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "family": "kertbn" if isinstance(model, KERTBN) else "nrtbn",
        "response": model.response,
        "network": network_to_dict(model.network),
        "report": _report_to_dict(model.report),
    }
    if model.discretizer is not None:
        out["discretizer"] = discretizer_to_dict(model.discretizer)
    if isinstance(model, KERTBN):
        out["f"] = model.f.to_string()
        from repro.bn.io import expression_to_dict

        out["f_expression"] = expression_to_dict(model.f.expression)
    return out


def model_from_dict(spec: dict) -> "KERTBN | NRTBN":
    """Reconstruct a usable model from a bundle dict.

    KERT-BN bundles recover their ``f`` (as a bare expression — the
    original workflow AST is not needed to *use* the model).  Unknown
    schema versions and truncated bundles raise :class:`DataError` with
    the offending field named.
    """
    version = spec.get("schema_version", 1)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise DataError(
            f"bundle schema_version {version!r} is not supported by this "
            f"build (supported: {list(SUPPORTED_SCHEMA_VERSIONS)}); refusing "
            f"to deserialize a bundle written by an incompatible code version"
        )
    family = spec.get("family")
    if family not in ("kertbn", "nrtbn"):
        raise DataError(f"unknown model family {family!r}")
    try:
        network = network_from_dict(spec["network"])
        report = _report_from_dict(spec["report"])
        disc = (
            discretizer_from_dict(spec["discretizer"])
            if "discretizer" in spec
            else None
        )
        if family == "nrtbn":
            return NRTBN(
                network=network,
                response=spec["response"],
                report=report,
                discretizer=disc,
            )
        from repro.bn.io import expression_from_dict

        expr = expression_from_dict(spec["f_expression"])
        f = ResponseTimeFunction(workflow=None, expression=expr, mode="loaded")
        return KERTBN(
            network=network,
            f=f,
            response=spec["response"],
            report=report,
            discretizer=disc,
        )
    except KeyError as exc:
        raise DataError(
            f"bundle truncated or corrupt: missing key {exc.args[0]!r}"
        ) from exc
    except TypeError as exc:
        raise DataError(f"bundle truncated or corrupt: {exc}") from exc


def save_model(model: "KERTBN | NRTBN", path: str) -> None:
    """Write a model bundle to ``path`` (JSON, atomically)."""
    write_json_atomic(path, model_to_dict(model))


def load_model(path: str) -> "KERTBN | NRTBN":
    """Read a model bundle from ``path``.

    Raises :class:`DataError` (never raw ``KeyError``/``JSONDecodeError``)
    on truncated, corrupt, or incompatible bundles.
    """
    with open(path) as fh:
        try:
            spec = json.load(fh)
        except json.JSONDecodeError as exc:
            raise DataError(f"bundle {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(spec, dict):
        raise DataError(f"bundle {path!r} does not contain a JSON object")
    return model_from_dict(spec)
