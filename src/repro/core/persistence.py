"""Whole-model persistence: KERT-BN / NRT-BN bundles.

A *bundle* is everything an autonomic component needs to use a built
model later or elsewhere: the network (with its Eq.-4 expression), the
response-node name, the discretizer (for discrete models), and the
construction report.  Bundles are plain JSON.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.bn.discretize import Discretizer
from repro.bn.io import network_from_dict, network_to_dict
from repro.core.kertbn import KERTBN
from repro.core.metrics import BuildReport
from repro.core.nrtbn import NRTBN
from repro.exceptions import DataError
from repro.workflow.response_time import ResponseTimeFunction


def discretizer_to_dict(disc: Discretizer) -> dict:
    return {
        "n_bins": disc.n_bins,
        "strategy": disc.strategy,
        "edges": {c: disc.edges(c).tolist() for c in disc.columns},
        "centers": {c: disc.centers(c).tolist() for c in disc.columns},
    }


def discretizer_from_dict(spec: dict) -> Discretizer:
    disc = Discretizer(n_bins=spec["n_bins"], strategy=spec["strategy"])
    disc._edges = {c: np.asarray(v, dtype=float) for c, v in spec["edges"].items()}
    disc._centers = {c: np.asarray(v, dtype=float) for c, v in spec["centers"].items()}
    return disc


def _report_to_dict(report: BuildReport) -> dict:
    return {
        "model_kind": report.model_kind,
        "structure_seconds": report.structure_seconds,
        "parameter_seconds": report.parameter_seconds,
        "per_cpd_seconds": dict(report.per_cpd_seconds),
        "n_nodes": report.n_nodes,
        "n_edges": report.n_edges,
        "n_parameters": report.n_parameters,
        "n_training_rows": report.n_training_rows,
        "extra": dict(report.extra),
    }


def _report_from_dict(spec: dict) -> BuildReport:
    return BuildReport(**spec)


def model_to_dict(model: "KERTBN | NRTBN") -> dict:
    """Serialize a built model (either family) to a JSON-compatible dict."""
    out: dict[str, Any] = {
        "family": "kertbn" if isinstance(model, KERTBN) else "nrtbn",
        "response": model.response,
        "network": network_to_dict(model.network),
        "report": _report_to_dict(model.report),
    }
    if model.discretizer is not None:
        out["discretizer"] = discretizer_to_dict(model.discretizer)
    if isinstance(model, KERTBN):
        out["f"] = model.f.to_string()
        from repro.bn.io import expression_to_dict

        out["f_expression"] = expression_to_dict(model.f.expression)
    return out


def model_from_dict(spec: dict) -> "KERTBN | NRTBN":
    """Reconstruct a usable model from a bundle dict.

    KERT-BN bundles recover their ``f`` (as a bare expression — the
    original workflow AST is not needed to *use* the model).
    """
    family = spec.get("family")
    if family not in ("kertbn", "nrtbn"):
        raise DataError(f"unknown model family {family!r}")
    network = network_from_dict(spec["network"])
    report = _report_from_dict(spec["report"])
    disc = (
        discretizer_from_dict(spec["discretizer"])
        if "discretizer" in spec
        else None
    )
    if family == "nrtbn":
        return NRTBN(
            network=network,
            response=spec["response"],
            report=report,
            discretizer=disc,
        )
    from repro.bn.io import expression_from_dict

    expr = expression_from_dict(spec["f_expression"])
    f = ResponseTimeFunction(workflow=None, expression=expr, mode="loaded")
    return KERTBN(
        network=network,
        f=f,
        response=spec["response"],
        report=report,
        discretizer=disc,
    )


def save_model(model: "KERTBN | NRTBN", path: str) -> None:
    """Write a model bundle to ``path`` (JSON)."""
    with open(path, "w") as fh:
        json.dump(model_to_dict(model), fh)


def load_model(path: str) -> "KERTBN | NRTBN":
    """Read a model bundle from ``path``."""
    with open(path) as fh:
        return model_from_dict(json.load(fh))
