"""dComp — compensating for missing performance data (Section 5.1).

Performance data can go missing through lack of instrumentation,
reporting failures, or deliberate overhead reduction.  dComp updates the
stale *prior* knowledge about an unobservable service with the current
measurements of the observable ones: it computes the posterior
``p(Y | O = E(o))`` by standard BN inference, using only the summary of
observation statistics (the mean ``E(o)``) rather than a full EM fill-in
— the paper's point is that the cheap summary suffices.

Figure 6's qualitative claim, asserted by our tests: the posterior
shifts from the prior toward the actual elapsed time and becomes
narrower ("more deterministic and precise").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.bn.network import (
    DiscreteBayesianNetwork,
    GaussianBayesianNetwork,
    HybridResponseNetwork,
)
from repro.bn.inference.sampling import likelihood_weighting, weighted_mean
from repro.core.kertbn import KERTBN
from repro.exceptions import InferenceError


@dataclass
class DCompResult:
    """Prior vs posterior of one unobservable service's elapsed time."""

    variable: str
    centers: np.ndarray          # bin centers (discrete) or sample grid
    prior: np.ndarray            # prior pmf over centers
    posterior: np.ndarray        # posterior pmf over centers
    prior_mean: float
    posterior_mean: float
    prior_std: float
    posterior_std: float

    def shift_toward(self, actual: float) -> float:
        """How much closer (in absolute error of the mean) the posterior
        is to the actual elapsed time than the prior was; > 0 = improved."""
        return abs(self.prior_mean - actual) - abs(self.posterior_mean - actual)


def _pmf_stats(pmf: np.ndarray, centers: np.ndarray) -> tuple[float, float]:
    mean = float(np.dot(pmf, centers))
    var = float(np.dot(pmf, (centers - mean) ** 2))
    return mean, float(np.sqrt(max(var, 0.0)))


class DComp:
    """Missing-data compensation on a built KERT-BN."""

    def __init__(self, model: KERTBN):
        self.model = model

    # ------------------------------------------------------------------ #

    def posterior(
        self,
        variable: str,
        observed_means: Mapping[str, float],
        n_samples: int = 40_000,
        rng=None,
    ) -> DCompResult:
        """Posterior of ``variable`` given observable services' (and
        optionally the response's) current measurement means.

        ``observed_means`` maps node name → current mean measurement
        ``E(o)``; ``variable`` must not be among them.
        """
        if variable in observed_means:
            raise InferenceError(f"{variable!r} is listed as observed")
        network = self.model.network
        if isinstance(network, DiscreteBayesianNetwork):
            return self._discrete(variable, observed_means)
        if isinstance(network, HybridResponseNetwork):
            return self._hybrid(variable, observed_means, n_samples, rng)
        if isinstance(network, GaussianBayesianNetwork):
            return self._gaussian(variable, observed_means)
        raise InferenceError(
            f"dComp does not support networks of type {type(network).__name__}"
        )

    def posterior_batch(
        self,
        variable: str,
        observed_means_rows: "Sequence[Mapping[str, float]]",
    ) -> "list[DCompResult]":
        """Batched :meth:`posterior` for discrete models.

        All rows must observe the same service set (one compiled
        signature); the N posteriors are computed in a single vectorized
        engine pass instead of N elimination sweeps.
        """
        network = self.model.network
        if not isinstance(network, DiscreteBayesianNetwork):
            raise InferenceError("posterior_batch needs the discrete KERT-BN")
        if not observed_means_rows:
            raise InferenceError("need at least one row of observed means")
        if any(variable in row for row in observed_means_rows):
            raise InferenceError(f"{variable!r} is listed as observed")
        disc = self.model.discretizer
        assert disc is not None
        evidence_rows = [
            {name: disc.state_of(name, float(mean)) for name, mean in row.items()}
            for row in observed_means_rows
        ]
        engine = network.compiled()
        prior = engine.prior(variable).values
        posteriors = engine.query_batch([variable], evidence_rows)
        centers = disc.centers(variable)
        pm, ps = _pmf_stats(prior, centers)
        results = []
        for posterior in posteriors:
            qm, qs = _pmf_stats(posterior, centers)
            results.append(
                DCompResult(
                    variable=variable,
                    centers=centers,
                    prior=prior,
                    posterior=posterior,
                    prior_mean=pm,
                    posterior_mean=qm,
                    prior_std=ps,
                    posterior_std=qs,
                )
            )
        return results

    def posterior_batch_guarded(
        self,
        variable: str,
        observed_means_rows: "Sequence[Mapping[str, float]]",
    ):
        """:meth:`posterior_batch` behind the serving guard layer.

        Malformed rows (unknown services, NaN means, the target variable
        listed as observed) are rejected individually with reasons
        instead of failing the whole batch; clean rows are answered.
        Returns a :class:`repro.serving.guards.GuardedBatch` whose
        ``results`` align with ``kept_indices``.
        """
        from repro.serving.guards import GuardedBatch, sanitize_rows

        network = self.model.network
        if not isinstance(network, DiscreteBayesianNetwork):
            raise InferenceError("posterior_batch needs the discrete KERT-BN")
        sanitized = sanitize_rows(
            observed_means_rows,
            known=frozenset(map(str, network.nodes)),
            forbid={str(variable)},
            binned=False,
        )
        # The vectorized kernel needs one evidence signature per call;
        # guarded batches may mix signatures, so group and reassemble.
        results: "list[DCompResult | None]" = [None] * len(sanitized.rows)
        groups: "dict[tuple, list[int]]" = {}
        for j, row in enumerate(sanitized.rows):
            groups.setdefault(tuple(sorted(map(str, row))), []).append(j)
        for members in groups.values():
            group_results = self.posterior_batch(
                variable, [sanitized.rows[j] for j in members]
            )
            for j, res in zip(members, group_results):
                results[j] = res
        return GuardedBatch(
            results=results,
            kept_indices=sanitized.kept_indices,
            rejections=sanitized.rejections,
        )

    # ------------------------------------------------------------------ #

    def _discrete(self, variable: str, observed_means: Mapping[str, float]) -> DCompResult:
        disc = self.model.discretizer
        assert disc is not None
        network = self.model.network
        evidence = {
            name: disc.state_of(name, float(mean))
            for name, mean in observed_means.items()
        }
        # Compile-once engine: factors/plans are shared across calls and
        # the evidence-free prior is cached per variable.
        engine = network.compiled()
        prior = engine.prior(variable).values
        posterior = engine.query([variable], evidence).values
        centers = disc.centers(variable)
        pm, ps = _pmf_stats(prior, centers)
        qm, qs = _pmf_stats(posterior, centers)
        return DCompResult(
            variable=variable,
            centers=centers,
            prior=prior,
            posterior=posterior,
            prior_mean=pm,
            posterior_mean=qm,
            prior_std=ps,
            posterior_std=qs,
        )

    def _hybrid(
        self,
        variable: str,
        observed_means: Mapping[str, float],
        n_samples: int,
        rng,
    ) -> DCompResult:
        network = self.model.network
        assert isinstance(network, HybridResponseNetwork)
        response = self.model.response
        evidence = {k: float(v) for k, v in observed_means.items()}
        if response in evidence:
            # Response evidence needs the full hybrid net: use LW.
            samples, weights = likelihood_weighting(
                network, evidence, n=n_samples, rng=rng
            )
            values = np.asarray(samples[variable], dtype=float)
            qm = weighted_mean(values, weights)
            qv = weighted_mean((values - qm) ** 2, weights)
            qs = float(np.sqrt(max(qv, 0.0)))
        else:
            sub = network.service_subnetwork()
            names, mean, cov = sub.condition(evidence)
            i = names.index(variable)
            qm, qs = float(mean[i]), float(np.sqrt(max(cov[i, i], 0.0)))
        # Prior marginal from the service subnetwork.
        sub = network.service_subnetwork()
        names, mean, cov = sub.to_joint_gaussian()
        j = names.index(variable)
        pm, ps = float(mean[j]), float(np.sqrt(max(cov[j, j], 0.0)))
        # Represent both as Gaussian pmfs on a shared grid for plotting.
        lo = min(pm - 4 * ps, qm - 4 * max(qs, 1e-9))
        hi = max(pm + 4 * ps, qm + 4 * max(qs, 1e-9))
        centers = np.linspace(lo, hi, 101)
        prior = _gaussian_pmf(centers, pm, ps)
        posterior = _gaussian_pmf(centers, qm, qs)
        return DCompResult(
            variable=variable,
            centers=centers,
            prior=prior,
            posterior=posterior,
            prior_mean=pm,
            posterior_mean=qm,
            prior_std=ps,
            posterior_std=qs,
        )


    def _gaussian(self, variable: str, observed_means: Mapping[str, float]) -> DCompResult:
        """Exact conditioning on a pure linear-Gaussian (NRT-BN) network."""
        network = self.model.network
        assert isinstance(network, GaussianBayesianNetwork)
        from repro.bn.inference.gaussian import conditional_of, joint_gaussian

        names, mean, cov = joint_gaussian(network)
        qm, qv = conditional_of(
            names, mean, cov, variable,
            {k: float(v) for k, v in observed_means.items()},
        )
        qs = float(np.sqrt(max(qv, 0.0)))
        j = names.index(variable)
        pm, ps = float(mean[j]), float(np.sqrt(max(cov[j, j], 0.0)))
        lo = min(pm - 4 * ps, qm - 4 * max(qs, 1e-9))
        hi = max(pm + 4 * ps, qm + 4 * max(qs, 1e-9))
        centers = np.linspace(lo, hi, 101)
        return DCompResult(
            variable=variable,
            centers=centers,
            prior=_gaussian_pmf(centers, pm, ps),
            posterior=_gaussian_pmf(centers, qm, qs),
            prior_mean=pm,
            posterior_mean=qm,
            prior_std=ps,
            posterior_std=qs,
        )


def _gaussian_pmf(centers: np.ndarray, mean: float, std: float) -> np.ndarray:
    if std <= 0:
        pmf = np.zeros_like(centers)
        pmf[int(np.argmin(np.abs(centers - mean)))] = 1.0
        return pmf
    dens = np.exp(-0.5 * ((centers - mean) / std) ** 2)
    return dens / dens.sum()
