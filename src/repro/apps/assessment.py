"""Rapid response-time assessment — the paper's Section-7 future work.

"Another important extension of our work is employing domain knowledge
and decentralization techniques to reduce the cost of probability
assessment *after* the model is constructed.  Crucial autonomic routines
such as resource provisioning and problem localization will profit
greatly on rapid response time assessment."

This module implements that extension for the continuous KERT-BN:
instead of Monte-Carlo sampling the hybrid network (tens of thousands of
draws per query), the workflow expression is evaluated *analytically*
over Gaussian moments —

- ``Sum``  → exact mean/variance/covariance propagation;
- ``Max``  → Clark's (1961) second-order approximation for the maximum
  of correlated Gaussians, applied pairwise down the operand list;
- ``Scale`` / ``WeightedSum`` → linear maps.

The result is an O(workflow-size) estimate of ``E[D]``, ``Var[D]`` and
``P(D > h)``, available on any node that holds the (tiny) joint-Gaussian
summary of the service layer — cheap enough to run inside an autonomic
control loop, and decentralizable since the summary is a few floats.

Accuracy: exact for pure-sequence workflows; for parallel joins the
Clark approximation is typically within a few percent of Monte Carlo
(asserted by the tests), degrading gracefully when branch distributions
overlap heavily.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np
from scipy.stats import norm

from repro.bn.inference.gaussian import condition_gaussian, joint_gaussian
from repro.core.kertbn import KERTBN
from repro.exceptions import InferenceError
from repro.workflow.expressions import (
    Const,
    Expression,
    Max,
    Scale,
    Sum,
    Var,
    WeightedSum,
)


class _MomentState:
    """Mean vector + covariance over base variables *and* derived terms.

    Each expression node is assigned an index; Clark's formulas need the
    covariance of intermediate terms with every base variable, so the
    state grows by one entry per inner node — still tiny for real
    workflows.
    """

    def __init__(self, names: list[str], mean: np.ndarray, cov: np.ndarray):
        self.index: dict[object, int] = {n: i for i, n in enumerate(names)}
        self.mean = list(mean.astype(float))
        k = len(names)
        self.cov = [[float(cov[i, j]) for j in range(k)] for i in range(k)]

    def add(self, key: object, mean: float, cov_with: "list[float]", var: float) -> int:
        idx = len(self.mean)
        self.index[key] = idx
        self.mean.append(mean)
        for row, c in zip(self.cov, cov_with):
            row.append(c)
        self.cov.append(cov_with + [var])
        return idx

    def get(self, idx: int) -> tuple[float, float]:
        return self.mean[idx], self.cov[idx][idx]

    def cov_between(self, i: int, j: int) -> float:
        return self.cov[i][j]


def _clark_max(state: _MomentState, i: int, j: int) -> tuple[float, list[float], float]:
    """Clark's moments for ``max(Z_i, Z_j)`` of jointly Gaussian terms.

    Returns (mean, covariances with all existing entries, variance).
    """
    m1, v1 = state.get(i)
    m2, v2 = state.get(j)
    c12 = state.cov_between(i, j)
    a2 = max(v1 + v2 - 2 * c12, 0.0)
    a = math.sqrt(a2)
    if a < 1e-12:
        # Degenerate: the two terms are (almost) the same variable.
        mean = max(m1, m2)
        take = i if m1 >= m2 else j
        covs = [state.cov_between(take, k) for k in range(len(state.mean))]
        _, var = state.get(take)
        return mean, covs, var
    alpha = (m1 - m2) / a
    phi = norm.pdf(alpha)
    big_phi = norm.cdf(alpha)
    q = 1.0 - big_phi
    mean = m1 * big_phi + m2 * q + a * phi
    second = (
        (v1 + m1 * m1) * big_phi
        + (v2 + m2 * m2) * q
        + (m1 + m2) * a * phi
    )
    var = max(second - mean * mean, 0.0)
    covs = [
        state.cov_between(i, k) * big_phi + state.cov_between(j, k) * q
        for k in range(len(state.mean))
    ]
    return mean, covs, var


def _propagate(expr: Expression, state: _MomentState) -> int:
    """Return the state index holding ``expr``'s moments."""
    if isinstance(expr, Var):
        if expr.name not in state.index:
            raise InferenceError(f"no moments for variable {expr.name!r}")
        return state.index[expr.name]
    if isinstance(expr, Const):
        return state.add(
            ("const", expr.value, len(state.mean)),
            expr.value,
            [0.0] * len(state.mean),
            0.0,
        )
    if isinstance(expr, Sum):
        idxs = [_propagate(t, state) for t in expr.terms]
        mean = sum(state.mean[i] for i in idxs)
        covs = [
            sum(state.cov_between(i, k) for i in idxs)
            for k in range(len(state.mean))
        ]
        var = sum(state.cov_between(i, j) for i in idxs for j in idxs)
        return state.add(("sum", id(expr)), mean, covs, max(var, 0.0))
    if isinstance(expr, Scale):
        i = _propagate(expr.term, state)
        f = expr.factor
        mean = f * state.mean[i]
        covs = [f * state.cov_between(i, k) for k in range(len(state.mean))]
        _, v = state.get(i)
        return state.add(("scale", id(expr)), mean, covs, f * f * v)
    if isinstance(expr, WeightedSum):
        idxs = [(w, _propagate(t, state)) for w, t in expr.weighted_terms]
        mean = sum(w * state.mean[i] for w, i in idxs)
        covs = [
            sum(w * state.cov_between(i, k) for w, i in idxs)
            for k in range(len(state.mean))
        ]
        var = sum(
            wi * wj * state.cov_between(i, j)
            for wi, i in idxs
            for wj, j in idxs
        )
        return state.add(("wsum", id(expr)), mean, covs, max(var, 0.0))
    if isinstance(expr, Max):
        idxs = [_propagate(t, state) for t in expr.terms]
        current = idxs[0]
        for nxt in idxs[1:]:
            mean, covs, var = _clark_max(state, current, nxt)
            current = state.add(("max", id(expr), nxt), mean, covs, var)
        return current
    raise InferenceError(f"cannot propagate through {type(expr)!r}")


class RapidAssessor:
    """Analytic (sampling-free) response-time assessment on a KERT-BN.

    Built once per model construction; each :meth:`assess` call costs a
    Gaussian conditioning plus one moment-propagation sweep over the
    workflow expression.
    """

    def __init__(self, model: KERTBN):
        from repro.bn.network import HybridResponseNetwork

        if not isinstance(model.network, HybridResponseNetwork):
            raise InferenceError(
                "RapidAssessor needs the continuous (hybrid) KERT-BN"
            )
        self.model = model
        sub = model.network.service_subnetwork()
        self._names, self._mean, self._cov = joint_gaussian(sub)
        self._response_var = model.network.cpd(model.response).variance

    @property
    def joint(self) -> "tuple[list[str], np.ndarray, np.ndarray]":
        """The cached service-layer joint Gaussian ``(names, mean, cov)``.

        Computed once at construction; consumers (e.g. the problem
        localizer) should read it from here rather than re-deriving the
        service subnetwork per query.
        """
        return self._names, self._mean, self._cov

    def assess(
        self, evidence: "Mapping[str, float] | None" = None
    ) -> tuple[float, float]:
        """Return ``(E[D], Var[D])`` given optional service evidence."""
        if evidence:
            names, mean, cov = condition_gaussian(
                self._names, self._mean, self._cov, evidence
            )
            # Evidence variables re-enter as zero-variance entries.
            names = list(names) + list(evidence)
            mean = np.concatenate([mean, [float(v) for v in evidence.values()]])
            k_old = cov.shape[0]
            k = len(names)
            grown = np.zeros((k, k))
            grown[:k_old, :k_old] = cov
            cov = grown
        else:
            names, mean, cov = self._names, self._mean, self._cov
        state = _MomentState(list(names), np.asarray(mean), np.asarray(cov))
        expr = self.model.f.expression
        idx = _propagate(expr, state)
        m, v = state.get(idx)
        return float(m), float(v + self._response_var)

    def violation_probability(
        self, threshold: float, evidence: "Mapping[str, float] | None" = None
    ) -> float:
        """Analytic ``P(D > h)`` under a Gaussian summary of ``D``."""
        m, v = self.assess(evidence)
        std = math.sqrt(max(v, 1e-18))
        return float(norm.sf(threshold, loc=m, scale=std))

    def response_moments(
        self,
    ) -> tuple[float, float, dict[str, tuple[float, float, float]]]:
        """Joint second-order summary of the services *and* ``D``.

        Returns ``(E[D], Var[D], per_service)`` where ``per_service``
        maps each service to ``(mean, var, cov(X_i, D))`` — the Clark
        propagation tracks covariances of every intermediate term with
        the base variables, so the service/response covariances come for
        free from the same sweep :meth:`assess` runs.  Var[D] includes
        the response node's own noise (which is independent of the
        services, so the covariances are unaffected).
        """
        state = _MomentState(
            list(self._names), np.asarray(self._mean), np.asarray(self._cov)
        )
        idx = _propagate(self.model.f.expression, state)
        d_mean, d_var = state.get(idx)
        per_service = {
            name: (
                state.mean[i],
                state.cov_between(i, i),
                state.cov_between(i, idx),
            )
            for name, i in ((n, state.index[n]) for n in self._names)
        }
        return (
            float(d_mean),
            float(d_var + self._response_var),
            per_service,
        )
