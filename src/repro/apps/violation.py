"""Threshold-violation probabilities and the Eq.-5 error.

"What is the probability that response time will exceed the
threshold(s)?" — the assessment both human operators and autonomic
software care about.  Model quality is judged by the *Relative Threshold
Violation Probability Error*

    ε = |P_bn(D > h) − P_real(D > h)| / P_real(D > h)        (Eq. 5)

computed here for a sweep of thresholds (Fig. 8 uses six).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InferenceError
from repro.utils.stats import empirical_tail_probability, relative_error


def tail_probability_from_pmf(
    pmf: np.ndarray, edges: np.ndarray, threshold: float
) -> float:
    """``P(D > h)`` from a binned pmf, linearly interpolating inside the
    bin containing ``h`` (mass is treated as uniform within a bin)."""
    pmf = np.asarray(pmf, dtype=float)
    edges = np.asarray(edges, dtype=float)
    if pmf.size != edges.size - 1:
        raise InferenceError(
            f"pmf has {pmf.size} bins but edges define {edges.size - 1}"
        )
    if threshold <= edges[0]:
        return float(pmf.sum())
    if threshold >= edges[-1]:
        return 0.0
    b = int(np.searchsorted(edges, threshold, side="right") - 1)
    b = min(max(b, 0), pmf.size - 1)
    within = (edges[b + 1] - threshold) / (edges[b + 1] - edges[b])
    return float(pmf[b + 1:].sum() + pmf[b] * within)


def relative_violation_error(p_model: float, p_real: float) -> float:
    """Eq. 5: ``|P_bn − P_real| / P_real``."""
    if p_real < 0 or p_model < 0:
        raise InferenceError("probabilities must be nonnegative")
    return relative_error(p_model, p_real)


def violation_curve(
    model_prob,  # Callable[[float], float] — e.g. PAccelResult.violation_probability
    real_samples: np.ndarray,
    thresholds: Sequence[float],
) -> list[dict]:
    """ε across thresholds — one row per Fig.-8 bar.

    ``model_prob`` is any callable giving ``P_bn(D > h)``; ``real_samples``
    are the measured response times defining ``P_real``.
    """
    real_samples = np.asarray(real_samples, dtype=float)
    rows = []
    for h in thresholds:
        p_real = empirical_tail_probability(real_samples, h)
        p_model = float(model_prob(h))
        rows.append(
            {
                "threshold": float(h),
                "p_real": p_real,
                "p_model": p_model,
                "epsilon": relative_violation_error(p_model, p_real),
            }
        )
    return rows


def guarded_violation_curve(
    model_prob,
    real_samples: np.ndarray,
    thresholds: Sequence[float],
) -> list[dict]:
    """:func:`violation_curve` that survives bad thresholds and a flaky
    ``model_prob``.

    Non-finite thresholds and per-threshold evaluation failures produce
    a row with an ``"error"`` string (and ``p_model``/``epsilon`` of
    NaN) instead of aborting the sweep — an autonomic loop keeps the
    assessments it *can* compute.
    """
    real_samples = np.asarray(real_samples, dtype=float)
    rows = []
    for h in thresholds:
        h = float(h)
        if not np.isfinite(h):
            rows.append(
                {
                    "threshold": h,
                    "p_real": float("nan"),
                    "p_model": float("nan"),
                    "epsilon": float("nan"),
                    "error": f"threshold {h!r} is not finite",
                }
            )
            continue
        p_real = empirical_tail_probability(real_samples, h)
        try:
            p_model = float(model_prob(h))
            epsilon = relative_violation_error(p_model, p_real)
        except Exception as exc:
            rows.append(
                {
                    "threshold": h,
                    "p_real": p_real,
                    "p_model": float("nan"),
                    "epsilon": float("nan"),
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            continue
        rows.append(
            {
                "threshold": h,
                "p_real": p_real,
                "p_model": p_model,
                "epsilon": epsilon,
                "error": None,
            }
        )
    return rows


def default_thresholds(samples: np.ndarray, n: int = 6) -> list[float]:
    """Six evenly spread quantile thresholds over the observed response
    range (the paper does not list its values; quantiles keep every
    ``P_real`` away from 0 so ε stays defined)."""
    samples = np.asarray(samples, dtype=float)
    qs = np.linspace(0.30, 0.90, n)
    return [float(np.quantile(samples, q)) for q in qs]
