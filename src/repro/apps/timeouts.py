"""Timeout-request-count modeling — the other Eq.-4 metric (Section 3.3).

"The CPD format given by Equation 4 … also appl[ies] to other
transaction-oriented performance metrics such as timeout request count…
D will stand for the count for end-to-end transactions, X will hold
per-service sub transaction counts, and f should take the form of
``D = Σ X_i``."

Definitions used here (which make the paper's ``f`` *exact*):

- a sub-transaction of service *i* **times out** when its elapsed time
  exceeds that service's timeout threshold ``h_i``;
- a transaction's timeout count is the number of timed-out
  sub-transactions it contains, so per-window totals satisfy
  ``D = Σ_i X_i`` identically;
- monitoring reports one row per aggregation window: the per-service
  timeout counts and the end-to-end count.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.bn.data import Dataset
from repro.exceptions import DataError
from repro.simulator.engine import TransactionRecord
from repro.workflow.constructs import WorkflowNode
from repro.workflow.timeout import timeout_count_function


def timeout_count_dataset(
    records: Sequence[TransactionRecord],
    thresholds: Mapping[str, float],
    window: int = 20,
    response: str = "D",
) -> Dataset:
    """Aggregate timeout counts over fixed-size transaction windows.

    Parameters
    ----------
    records:
        Completed transactions.
    thresholds:
        Per-service timeout threshold ``h_i`` in seconds.
    window:
        Number of consecutive transactions per data point (count metrics
        need aggregation to be informative).
    """
    if not records:
        raise DataError("no transaction records")
    if window < 1:
        raise DataError(f"window must be >= 1, got {window}")
    services = list(thresholds)
    if response in services:
        raise DataError(f"response column {response!r} collides with a service")
    n_windows = len(records) // window
    if n_windows == 0:
        raise DataError(
            f"{len(records)} records cannot fill a window of {window}"
        )
    cols = {s: np.zeros(n_windows, dtype=float) for s in services}
    total = np.zeros(n_windows, dtype=float)
    for w in range(n_windows):
        for r in records[w * window:(w + 1) * window]:
            for s in services:
                if s in r.elapsed and r.elapsed[s] > thresholds[s]:
                    cols[s][w] += 1
                    total[w] += 1
    data = dict(cols)
    data[response] = total
    return Dataset(data)


def default_thresholds_from_trace(
    records: Sequence[TransactionRecord],
    services: Sequence[str],
    quantile: float = 0.9,
) -> dict[str, float]:
    """Per-service timeout thresholds at a quantile of observed elapsed
    times (SLAs are commonly set this way when no contract exists)."""
    if not 0.0 < quantile < 1.0:
        raise DataError(f"quantile must be in (0, 1), got {quantile}")
    out = {}
    for s in services:
        values = np.asarray(
            [r.elapsed[s] for r in records if s in r.elapsed], dtype=float
        )
        if values.size == 0:
            raise DataError(f"no measurements for service {s!r}")
        out[str(s)] = float(np.quantile(values, quantile))
    return out


def verify_count_identity(data: Dataset, workflow: WorkflowNode, response: str = "D") -> bool:
    """Check the paper's ``D = Σ X_i`` identity on an aggregated dataset."""
    f = timeout_count_function(workflow)
    fx = f({s: np.asarray(data[s], dtype=float) for s in f.inputs})
    return bool(np.allclose(fx, np.asarray(data[response], dtype=float)))
