"""Performance-problem localization.

The paper's introduction lists "performance problem localization and
remediation" among the autonomic activities the model must guide.  This
app does it with the KERT-BN machinery already in place: when the
end-to-end response time degrades, rank the services by how much each
one's *own* behavioural change explains the degradation.

Method (continuous KERT-BN):

1. ``observed_shift_i`` — the change in service *i*'s measured mean
   elapsed time vs the model's (training-time) prior mean, in units of
   the prior standard deviation (a z-score: how anomalous is *i*?);
2. ``impact_i`` — the end-to-end sensitivity of E[D] to service *i*,
   computed with the :class:`~repro.apps.assessment.RapidAssessor` by
   re-assessing with X_i clamped to its observed mean (everything else
   marginalized): how much of the D-shift does *i*'s change reproduce?
3. blame = the product signs/magnitudes combined into a score; services
   whose local anomaly explains the global symptom rank first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.apps.assessment import RapidAssessor
from repro.core.kertbn import KERTBN
from repro.exceptions import InferenceError


@dataclass
class Suspect:
    """One service's localization evidence."""

    service: str
    prior_mean: float
    observed_mean: float
    z_score: float
    projected_d_shift: float
    blame: float

    def row(self) -> dict:
        return {
            "service": self.service,
            "prior_mean": self.prior_mean,
            "observed_mean": self.observed_mean,
            "z": self.z_score,
            "projected_D_shift": self.projected_d_shift,
            "blame": self.blame,
        }


class ProblemLocalizer:
    """Rank services by responsibility for a response-time degradation."""

    def __init__(self, model: KERTBN, assessor: "RapidAssessor | None" = None):
        self.model = model
        if assessor is not None and assessor.model is not model:
            raise InferenceError("assessor was built for a different model")
        self.assessor = assessor if assessor is not None else RapidAssessor(model)
        # Reuse the assessor's compiled joint Gaussian instead of paying
        # a second service-subnetwork extraction + moment derivation.
        self._names, self._mean, self._cov = self.assessor.joint
        self._baseline_d, _ = self.assessor.assess()

    @property
    def baseline_response_mean(self) -> float:
        return self._baseline_d

    def localize(
        self, observed_means: Mapping[str, float], top: "int | None" = None
    ) -> list[Suspect]:
        """Return suspects sorted by blame, highest first.

        ``observed_means`` maps each (observable) service to its current
        mean elapsed time.  Services missing from the mapping are skipped
        (they are unobservable; run dComp on them first if needed).
        """
        unknown = [s for s in observed_means if s not in self._names]
        if unknown:
            raise InferenceError(f"unknown services {sorted(unknown)}")
        if not observed_means:
            raise InferenceError("need at least one observed service mean")
        suspects = []
        for service, observed in observed_means.items():
            i = self._names.index(service)
            prior_mean = float(self._mean[i])
            prior_std = float(np.sqrt(max(self._cov[i, i], 1e-18)))
            z = (float(observed) - prior_mean) / prior_std
            projected, _ = self.assessor.assess({service: float(observed)})
            d_shift = projected - self._baseline_d
            # Blame: end-to-end impact weighted by local anomalousness.
            blame = abs(d_shift) * abs(z)
            suspects.append(
                Suspect(
                    service=service,
                    prior_mean=prior_mean,
                    observed_mean=float(observed),
                    z_score=z,
                    projected_d_shift=d_shift,
                    blame=blame,
                )
            )
        suspects.sort(key=lambda s: s.blame, reverse=True)
        return suspects[:top] if top is not None else suspects
