"""Branch-dominance analysis for parallel joins.

Section 5.2's motivating observation — "if service A is being invoked in
parallel with another service B that has a significantly longer elapsed
time, reducing A's elapsed time can do little" — has a quantitative
core: *how often* does each branch of a parallel join determine the join
time?  This module computes exactly that from a continuous KERT-BN:

- :func:`branch_dominance` — for every ``Max`` node in the model's
  workflow expression, the probability that each operand attains the
  maximum (Monte Carlo over the service-layer joint Gaussian);
- :func:`acceleration_headroom` — the largest possible end-to-end gain
  from accelerating one service to zero, an upper bound that tells an
  autonomic planner when to stop trying.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kertbn import KERTBN
from repro.exceptions import InferenceError
from repro.utils.rng import ensure_rng
from repro.workflow.expressions import Expression, Max


@dataclass
class MaxNodeDominance:
    """Dominance probabilities for one parallel join."""

    description: str
    operands: tuple
    probabilities: tuple

    def dominant_branch(self) -> int:
        return int(np.argmax(self.probabilities))


def _service_samples(model: KERTBN, n_samples: int, rng) -> dict:
    from repro.bn.network import HybridResponseNetwork

    if not isinstance(model.network, HybridResponseNetwork):
        raise InferenceError("branch dominance needs the continuous KERT-BN")
    data = model.network.service_subnetwork().sample(n_samples, rng)
    return {c: np.asarray(data[c]) for c in data.columns}


def branch_dominance(
    model: KERTBN, n_samples: int = 30_000, rng=None
) -> list[MaxNodeDominance]:
    """Dominance probabilities for every ``Max`` in the model's ``f``."""
    rng = ensure_rng(rng)
    values = _service_samples(model, n_samples, rng)
    results: list[MaxNodeDominance] = []

    def visit(expr: Expression) -> None:
        if isinstance(expr, Max):
            branch_values = np.stack([t(values) for t in expr.terms])
            winners = np.argmax(branch_values, axis=0)
            probs = tuple(
                float(np.mean(winners == i)) for i in range(len(expr.terms))
            )
            results.append(
                MaxNodeDominance(
                    description=expr.to_string(),
                    operands=tuple(t.to_string() for t in expr.terms),
                    probabilities=probs,
                )
            )
        for child in getattr(expr, "terms", ()):
            visit(child)
        if hasattr(expr, "term"):
            visit(expr.term)
        if hasattr(expr, "weighted_terms"):
            for _, t in expr.weighted_terms:
                visit(t)

    visit(model.f.expression)
    if not results:
        raise InferenceError("the workflow has no parallel joins")
    return results


def acceleration_headroom(
    model: KERTBN, n_samples: int = 30_000, rng=None
) -> dict[str, float]:
    """Upper bound on E[D] reduction from zeroing each service.

    Computed by re-evaluating ``f`` with one service's samples replaced
    by zero — no resource action can do better than eliminating the
    service entirely, so this bounds what pAccel can ever find.
    """
    rng = ensure_rng(rng)
    values = _service_samples(model, n_samples, rng)
    f = model.f
    base = float(np.mean(f(values)))
    out = {}
    for service in sorted(f.inputs):
        patched = dict(values)
        patched[service] = np.zeros_like(values[service])
        out[service] = base - float(np.mean(f(patched)))
    return out
