"""The Section-5 applications built on KERT-BN.

- :mod:`repro.apps.dcomp` — compensate for missing performance data by
  inferring an unobservable service's elapsed-time posterior;
- :mod:`repro.apps.paccel` — project the end-to-end impact of
  accelerating one service before spending effort on it;
- :mod:`repro.apps.violation` — threshold-violation probabilities and
  the relative error ε of Eq. 5 used to judge the models in Fig. 8.
"""

from repro.apps.dcomp import DComp, DCompResult
from repro.apps.paccel import PAccel, PAccelResult
from repro.apps.violation import (
    tail_probability_from_pmf,
    relative_violation_error,
    violation_curve,
)
from repro.apps.assessment import RapidAssessor
from repro.apps.localization import ProblemLocalizer, Suspect
from repro.apps.timeouts import timeout_count_dataset
from repro.apps.capacity import branch_dominance, acceleration_headroom

__all__ = [
    "DComp",
    "DCompResult",
    "PAccel",
    "PAccelResult",
    "tail_probability_from_pmf",
    "relative_violation_error",
    "violation_curve",
    "RapidAssessor",
    "ProblemLocalizer",
    "Suspect",
    "timeout_count_dataset",
    "branch_dominance",
    "acceleration_headroom",
]
