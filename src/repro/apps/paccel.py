"""pAccel — projecting the end-to-end impact of local acceleration
(Section 5.2).

Speeding up a service invoked in parallel with a slower sibling buys
nothing end-to-end; pAccel quantifies this *before* resources are spent:
it computes the posterior response-time distribution ``p(D | Z = E(z))``
given a *predicted* mean elapsed time for the service under
consideration (e.g. 90 % of its current mean after a resource action).
The difference between projected and current response-time distributions
gauges the action's benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.apps.violation import tail_probability_from_pmf
from repro.bn.network import (
    DiscreteBayesianNetwork,
    GaussianBayesianNetwork,
    HybridResponseNetwork,
)
from repro.core.kertbn import KERTBN
from repro.exceptions import InferenceError
from repro.utils.rng import ensure_rng


@dataclass
class PAccelResult:
    """Projected response-time distribution under a hypothetical change."""

    evidence: dict
    # Discrete representation (always filled; hybrid models histogram
    # their Monte-Carlo samples onto `edges`).
    edges: np.ndarray
    pmf: np.ndarray
    mean: float
    std: float
    samples: "np.ndarray | None" = None

    def violation_probability(self, threshold: float) -> float:
        """``P_bn(D > h)`` under the projection — Eq. 5's model term."""
        if self.samples is not None:
            return float(np.mean(self.samples > threshold))
        return tail_probability_from_pmf(self.pmf, self.edges, threshold)


class PAccel:
    """Acceleration-impact projection on a built KERT-BN."""

    def __init__(self, model: KERTBN):
        self.model = model

    def project(
        self,
        predicted_means: Mapping[str, float],
        n_samples: int = 40_000,
        rng=None,
    ) -> PAccelResult:
        """Posterior response-time distribution given predicted service
        means (``{service: E(z)}``)."""
        if not predicted_means:
            raise InferenceError("need at least one predicted service mean")
        response = self.model.response
        if response in predicted_means:
            raise InferenceError("cannot condition on the response itself")
        network = self.model.network
        if isinstance(network, HybridResponseNetwork):
            return self._hybrid(predicted_means, n_samples, rng)
        if isinstance(network, GaussianBayesianNetwork):
            return self._gaussian(predicted_means)
        if isinstance(network, DiscreteBayesianNetwork):
            return self._discrete(predicted_means)
        raise InferenceError(
            f"pAccel does not support networks of type {type(network).__name__}"
        )

    def _gaussian(self, predicted_means: Mapping[str, float]) -> PAccelResult:
        """Projection on a pure linear-Gaussian (NRT-BN) network."""
        network = self.model.network
        assert isinstance(network, GaussianBayesianNetwork)
        response = self.model.response
        from repro.bn.inference.gaussian import conditional_of, joint_gaussian

        names, mean, cov = joint_gaussian(network)
        m, v = conditional_of(names, mean, cov, response,
                              {k: float(x) for k, x in predicted_means.items()})
        std = float(np.sqrt(max(v, 1e-18)))
        lo, hi = m - 5 * std, m + 5 * std
        edges = np.linspace(lo, hi, 81)
        centers = 0.5 * (edges[:-1] + edges[1:])
        dens = np.exp(-0.5 * ((centers - m) / std) ** 2)
        pmf = dens / dens.sum()
        return PAccelResult(
            evidence=dict(predicted_means), edges=edges, pmf=pmf, mean=m, std=std
        )

    def baseline(self, n_samples: int = 40_000, rng=None) -> PAccelResult:
        """The current (no-action) response-time distribution, for
        benefit = projected − baseline comparisons."""
        network = self.model.network
        if isinstance(network, DiscreteBayesianNetwork):
            disc = self.model.discretizer
            assert disc is not None
            response = self.model.response
            pmf = network.compiled().prior(response).values
            edges = disc.edges(response)
            centers = disc.centers(response)
            mean = float(np.dot(pmf, centers))
            std = float(np.sqrt(max(np.dot(pmf, (centers - mean) ** 2), 0.0)))
            return PAccelResult(evidence={}, edges=edges, pmf=pmf, mean=mean, std=std)
        if isinstance(network, GaussianBayesianNetwork):
            from repro.bn.inference.gaussian import joint_gaussian, marginal_gaussian

            names, mean, cov = joint_gaussian(network)
            _, m, v = marginal_gaussian(names, mean, cov, [self.model.response])
            mu, std = float(m[0]), float(np.sqrt(max(v[0, 0], 1e-18)))
            edges = np.linspace(mu - 5 * std, mu + 5 * std, 81)
            centers = 0.5 * (edges[:-1] + edges[1:])
            dens = np.exp(-0.5 * ((centers - mu) / std) ** 2)
            return PAccelResult(
                evidence={}, edges=edges, pmf=dens / dens.sum(), mean=mu, std=std
            )
        assert isinstance(network, HybridResponseNetwork)
        rng = ensure_rng(rng)
        samples = network.response_distribution(n_samples=n_samples, rng=rng)
        return _from_samples({}, samples)

    # ------------------------------------------------------------------ #

    def _discrete(self, predicted_means: Mapping[str, float]) -> PAccelResult:
        disc = self.model.discretizer
        assert disc is not None
        network = self.model.network
        response = self.model.response
        evidence = {
            name: disc.state_of(name, float(mean))
            for name, mean in predicted_means.items()
        }
        # Compiled engine: repeated what-if projections share one plan.
        pmf = network.compiled().query([response], evidence).values
        centers = disc.centers(response)
        edges = disc.edges(response)
        mean = float(np.dot(pmf, centers))
        std = float(np.sqrt(max(np.dot(pmf, (centers - mean) ** 2), 0.0)))
        return PAccelResult(
            evidence=dict(predicted_means), edges=edges, pmf=pmf, mean=mean, std=std
        )

    def project_batch(
        self, predicted_means_rows: "Sequence[Mapping[str, float]]"
    ) -> "list[PAccelResult]":
        """Batched :meth:`project` for discrete models.

        Evaluates N candidate resource actions (all predicting the same
        service set) in one vectorized engine pass — the manager's
        candidate-speedup scan without N elimination sweeps.
        """
        network = self.model.network
        if not isinstance(network, DiscreteBayesianNetwork):
            raise InferenceError("project_batch needs the discrete KERT-BN")
        if not predicted_means_rows:
            raise InferenceError("need at least one row of predicted means")
        response = self.model.response
        if any(response in row for row in predicted_means_rows):
            raise InferenceError("cannot condition on the response itself")
        disc = self.model.discretizer
        assert disc is not None
        evidence_rows = [
            {name: disc.state_of(name, float(mean)) for name, mean in row.items()}
            for row in predicted_means_rows
        ]
        pmfs = network.compiled().query_batch([response], evidence_rows)
        centers = disc.centers(response)
        edges = disc.edges(response)
        results = []
        for row, pmf in zip(predicted_means_rows, pmfs):
            mean = float(np.dot(pmf, centers))
            std = float(np.sqrt(max(np.dot(pmf, (centers - mean) ** 2), 0.0)))
            results.append(
                PAccelResult(
                    evidence=dict(row), edges=edges, pmf=pmf, mean=mean, std=std
                )
            )
        return results

    def project_batch_guarded(
        self, predicted_means_rows: "Sequence[Mapping[str, float]]"
    ):
        """:meth:`project_batch` behind the serving guard layer.

        Malformed candidate rows (unknown services, NaN predictions,
        conditioning on the response) are rejected per row with reasons;
        clean rows — even with differing service sets — are projected.
        Returns a :class:`repro.serving.guards.GuardedBatch`.
        """
        from repro.serving.guards import GuardedBatch, sanitize_rows

        network = self.model.network
        if not isinstance(network, DiscreteBayesianNetwork):
            raise InferenceError("project_batch needs the discrete KERT-BN")
        sanitized = sanitize_rows(
            predicted_means_rows,
            known=frozenset(map(str, network.nodes)),
            forbid={str(self.model.response)},
            binned=False,
        )
        results: "list[PAccelResult | None]" = [None] * len(sanitized.rows)
        groups: "dict[tuple, list[int]]" = {}
        for j, row in enumerate(sanitized.rows):
            groups.setdefault(tuple(sorted(map(str, row))), []).append(j)
        for members in groups.values():
            group_results = self.project_batch(
                [sanitized.rows[j] for j in members]
            )
            for j, res in zip(members, group_results):
                results[j] = res
        return GuardedBatch(
            results=results,
            kept_indices=sanitized.kept_indices,
            rejections=sanitized.rejections,
        )

    def _hybrid(
        self, predicted_means: Mapping[str, float], n_samples: int, rng
    ) -> PAccelResult:
        network = self.model.network
        assert isinstance(network, HybridResponseNetwork)
        rng = ensure_rng(rng)
        evidence = {k: float(v) for k, v in predicted_means.items()}
        samples = network.response_distribution(
            n_samples=n_samples, rng=rng, evidence=evidence
        )
        return _from_samples(dict(predicted_means), samples)


def _from_samples(evidence: dict, samples: np.ndarray) -> PAccelResult:
    lo, hi = float(samples.min()), float(samples.max())
    span = max(hi - lo, 1e-9)
    edges = np.linspace(lo - 0.01 * span, hi + 0.01 * span, 41)
    counts, _ = np.histogram(samples, bins=edges)
    pmf = counts / counts.sum()
    return PAccelResult(
        evidence=evidence,
        edges=edges,
        pmf=pmf,
        mean=float(samples.mean()),
        std=float(samples.std()),
        samples=samples,
    )
