"""repro — reproduction of *Efficient Statistical Performance Modeling for
Autonomic, Service-Oriented Systems* (Zhang, Bivens & Rezek, IPDPS 2007).

The package provides:

- :mod:`repro.bn` — a from-scratch Bayesian-network engine (DAGs, discrete
  and linear-Gaussian CPDs, exact and approximate inference, parameter and
  structure learning including K2).
- :mod:`repro.workflow` — the workflow algebra (sequence / parallel /
  choice / loop), the Cardoso-style reduction to the deterministic
  response-time function ``f(X)``, and the workflow-to-BN structure
  derivation that makes a KERT-BN "knowledge enhanced".
- :mod:`repro.simulator` — a discrete-event simulator of service-oriented
  systems with monitoring agents, used to generate training/testing data.
- :mod:`repro.core` — the KERT-BN model of the paper and the NRT-BN
  baseline, plus the periodic model-(re)construction scheme of Section 2.
- :mod:`repro.decentralized` — decentralized parameter learning
  (Section 3.4) with per-agent timing accounting.
- :mod:`repro.apps` — the dComp and pAccel applications (Section 5).
- :mod:`repro.serving` — the resilient model-serving layer: versioned
  registry with rollback, guarded queries with a tiered fallback chain,
  circuit breakers / admission control, and data-quality quarantine.

Quickstart
----------
>>> from repro import ediamond_scenario, build_continuous_kertbn
>>> env = ediamond_scenario()
>>> train, test = env.train_test(200, 100, rng=0)
>>> model = build_continuous_kertbn(env.workflow, train)
>>> round(model.report.construction_seconds, 6) >= 0
True
"""

from repro.version import __version__

from repro.core.kertbn import KERTBN, build_continuous_kertbn, build_discrete_kertbn
from repro.core.nrtbn import NRTBN, build_continuous_nrtbn, build_discrete_nrtbn
from repro.core.reconstruction import ReconstructionSchedule, ModelReconstructor
from repro.workflow.constructs import (
    Activity,
    Sequence,
    Parallel,
    Choice,
    Loop,
)
from repro.workflow.response_time import response_time_function
from repro.workflow.structure import kert_bn_structure
from repro.simulator.environment import SimulatedEnvironment
from repro.simulator.scenarios.ediamond import ediamond_scenario
from repro.simulator.scenarios.random_env import random_environment
from repro.apps.dcomp import DComp
from repro.apps.paccel import PAccel
from repro.serving import (
    AccuracyTripwire,
    DataQualityGate,
    FallbackChain,
    ModelRegistry,
    ModelServer,
)

__all__ = [
    "AccuracyTripwire",
    "DataQualityGate",
    "FallbackChain",
    "ModelRegistry",
    "ModelServer",
    "__version__",
    "KERTBN",
    "build_continuous_kertbn",
    "build_discrete_kertbn",
    "NRTBN",
    "build_continuous_nrtbn",
    "build_discrete_nrtbn",
    "ReconstructionSchedule",
    "ModelReconstructor",
    "Activity",
    "Sequence",
    "Parallel",
    "Choice",
    "Loop",
    "response_time_function",
    "kert_bn_structure",
    "SimulatedEnvironment",
    "ediamond_scenario",
    "random_environment",
    "DComp",
    "PAccel",
]
