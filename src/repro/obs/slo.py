"""Windowed SLO monitoring over the metrics registry.

The paper's autonomic loop acts when the *model* predicts an SLA
violation; a production loop also needs the complementary trigger —
the *measured* stream crossing its objective (ALPINE-style diagnosis
consumes exactly this).  :class:`SLOMonitor` closes that observe →
analyze edge: it subscribes to the :class:`~repro.obs.metrics.
MetricsRegistry` (no new instrumentation needed), tracks **windowed**
latency percentiles and error rates from cumulative instrument deltas,
and emits :class:`SLOBreach` events that
:meth:`repro.core.manager.AutonomicManager.run_cycle` treats as an
action trigger alongside the model-predicted violation probability.

Windowing works on deltas: each :meth:`SLOMonitor.evaluate` call reads
the cumulative instruments, subtracts the previous reading, and pushes
the interval delta into a fixed-length window.  Objectives are then
judged on the *window aggregate* — a single slow interval in an
otherwise healthy window need not breach, and a breach clears once
enough healthy intervals push the bad one out.  ``burn_rate`` is the
classic SRE ratio: how many times faster than allowed the error budget
is being consumed (observed / objective); alerting triggers at
``burn_rate_threshold`` (default 1.0 — at or above budget).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import runtime
from repro.obs.runtime import OBS

__all__ = [
    "LatencyObjective",
    "ErrorRateObjective",
    "SLOBreach",
    "SLOMonitor",
    "manager_objectives",
]


@dataclass(frozen=True)
class LatencyObjective:
    """``percentile(histogram) <= threshold_seconds`` over the window."""

    name: str
    histogram: str          # registry histogram the objective watches
    threshold_seconds: float
    percentile: float = 95.0

    def __post_init__(self) -> None:
        if not self.threshold_seconds > 0:
            raise ValueError(f"threshold_seconds must be > 0 for {self.name!r}")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100] for {self.name!r}")


@dataclass(frozen=True)
class ErrorRateObjective:
    """``errors / total <= max_ratio`` over the window."""

    name: str
    errors: str             # numerator counter
    total: str              # denominator counter
    max_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.max_ratio < 1.0:
            raise ValueError(f"max_ratio must be in (0, 1) for {self.name!r}")


@dataclass(frozen=True)
class SLOBreach:
    """One objective over budget for the current window."""

    objective: str
    kind: str               # "latency" | "error_rate" | "budget"
    observed: float
    threshold: float
    burn_rate: float        # observed / threshold (>= the alert bound)
    window_intervals: int
    detail: str = ""
    service: Optional[str] = None  # set for kind="budget" breaches

    def to_dict(self) -> dict:
        return {
            "objective": self.objective,
            "kind": self.kind,
            "observed": self.observed,
            "threshold": self.threshold,
            "burn_rate": self.burn_rate,
            "window_intervals": self.window_intervals,
            "detail": self.detail,
            "service": self.service,
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "SLOBreach":
        return cls(
            objective=str(spec["objective"]),
            kind=str(spec["kind"]),
            observed=float(spec["observed"]),
            threshold=float(spec["threshold"]),
            burn_rate=float(spec["burn_rate"]),
            window_intervals=int(spec["window_intervals"]),
            detail=str(spec.get("detail", "")),
            service=(
                None if spec.get("service") is None else str(spec["service"])
            ),
        )


def _percentile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Interpolated percentile over aggregated bucket deltas (the same
    scheme as :meth:`repro.obs.metrics.Histogram.percentile`, but for
    counts that no single live instrument holds)."""
    n = sum(counts)
    if n == 0:
        return None
    rank = q / 100.0 * n
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count:
            if i >= len(bounds):
                return float(bounds[-1])  # overflow: clamp to last bound
            upper = float(bounds[i])
            lower = float(bounds[i - 1]) if i else 0.0
            fraction = (rank - (cumulative - count)) / count
            return lower + fraction * (upper - lower)
    return float(bounds[-1])


@dataclass
class _ObjectiveState:
    """Rolling window + last cumulative reading for one objective."""

    window: deque = field(default_factory=deque)
    last: "Tuple | None" = None
    last_eval: "dict | None" = None


class SLOMonitor:
    """Evaluate objectives over rolling windows of registry deltas.

    One :meth:`evaluate` call = one interval (the autonomic manager
    calls it once per MAPE cycle).  Breaches go to every subscriber,
    to the attached event sink (category ``slo_breach``), and into the
    ``slo.*`` metrics so the exporter publishes SLO health alongside
    the raw stream it is judged on.
    """

    def __init__(
        self,
        objectives: Sequence[object],
        registry=None,
        window: int = 5,
        burn_rate_threshold: float = 1.0,
        min_points: int = 1,
        budget_tracker=None,
    ):
        if not objectives:
            raise ValueError("SLOMonitor needs at least one objective")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if burn_rate_threshold <= 0:
            raise ValueError(
                f"burn_rate_threshold must be > 0, got {burn_rate_threshold}"
            )
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique, got {names}")
        self.objectives = tuple(objectives)
        self._registry = registry
        self.window = int(window)
        self.burn_rate_threshold = float(burn_rate_threshold)
        self.min_points = int(min_points)
        self._states: Dict[str, _ObjectiveState] = {
            o.name: _ObjectiveState(window=deque(maxlen=self.window))
            for o in self.objectives
        }
        self._subscribers: List[Callable[[SLOBreach], None]] = []
        self.evaluations = 0
        #: Optional :class:`~repro.obs.attribution.BudgetTracker`; when
        #: attached, per-service budget burn rides the breach pipeline.
        self.budget_tracker = budget_tracker

    @property
    def registry(self):
        # Resolved late so ``SLOMonitor(objectives)`` built before
        # ``obs.enable()`` still watches the process-global registry.
        return self._registry if self._registry is not None else OBS.metrics

    def subscribe(self, callback: Callable[[SLOBreach], None]) -> None:
        self._subscribers.append(callback)

    # -- interval ingestion --------------------------------------------- #

    def _latency_interval(self, obj: LatencyObjective, state: _ObjectiveState):
        summary = self.registry.histogram(obj.histogram).summary()
        counts = tuple(int(c) for c in summary["bucket_counts"])
        bounds = tuple(float(b) for b in summary["bucket_bounds"])
        last = state.last
        if last is None or len(last) != len(counts) or any(
            c < p for c, p in zip(counts, last)
        ):
            delta = counts  # first interval, or the registry was reset
        else:
            delta = tuple(c - p for c, p in zip(counts, last))
        state.last = counts
        state.window.append(delta)
        aggregated = [
            sum(interval[i] for interval in state.window)
            for i in range(len(counts))
        ]
        observed = _percentile_from_buckets(bounds, aggregated, obj.percentile)
        points = sum(aggregated)
        return observed, points

    def _error_rate_interval(
        self, obj: ErrorRateObjective, state: _ObjectiveState
    ):
        errors = self.registry.counter(obj.errors).value
        total = self.registry.counter(obj.total).value
        last = state.last
        if last is None or errors < last[0] or total < last[1]:
            delta = (errors, total)
        else:
            delta = (errors - last[0], total - last[1])
        state.last = (errors, total)
        state.window.append(delta)
        err = sum(d[0] for d in state.window)
        tot = sum(d[1] for d in state.window)
        observed = (err / tot) if tot else None
        return observed, tot

    # -- evaluation ----------------------------------------------------- #

    def evaluate(self) -> List[SLOBreach]:
        """Ingest one interval and judge every objective on its window."""
        self.evaluations += 1
        m = self.registry
        m.counter("slo.evaluations").inc()
        breaches: List[SLOBreach] = []
        for obj in self.objectives:
            state = self._states[obj.name]
            if isinstance(obj, LatencyObjective):
                kind = "latency"
                threshold = obj.threshold_seconds
                observed, points = self._latency_interval(obj, state)
                detail = (
                    f"p{obj.percentile:g}({obj.histogram}) over "
                    f"{len(state.window)} interval(s), {points} point(s)"
                )
            else:
                kind = "error_rate"
                threshold = obj.max_ratio
                observed, points = self._error_rate_interval(obj, state)
                detail = (
                    f"{obj.errors}/{obj.total} over "
                    f"{len(state.window)} interval(s), {points} point(s)"
                )
            if observed is None or points < self.min_points:
                state.last_eval = {
                    "objective": obj.name,
                    "kind": kind,
                    "observed": None,
                    "threshold": threshold,
                    "burn_rate": 0.0,
                    "breached": False,
                    "window_intervals": len(state.window),
                }
                continue
            burn_rate = observed / threshold
            breached = burn_rate >= self.burn_rate_threshold
            state.last_eval = {
                "objective": obj.name,
                "kind": kind,
                "observed": observed,
                "threshold": threshold,
                "burn_rate": burn_rate,
                "breached": breached,
                "window_intervals": len(state.window),
            }
            if breached:
                breach = SLOBreach(
                    objective=obj.name,
                    kind=kind,
                    observed=observed,
                    threshold=threshold,
                    burn_rate=burn_rate,
                    window_intervals=len(state.window),
                    detail=detail,
                )
                breaches.append(breach)
                m.counter("slo.breaches").inc()
                m.counter(f"slo.{obj.name}.breaches").inc()
                runtime.emit_event("slo_breach", breach.to_dict())
                for callback in self._subscribers:
                    callback(breach)
        tracker = self.budget_tracker
        if tracker is not None and tracker.allocation is not None:
            for record in tracker.observe(m):
                breach = SLOBreach.from_dict(record)
                breaches.append(breach)
                m.counter("slo.breaches").inc()
                m.counter(f"slo.{breach.objective}.breaches").inc()
                runtime.emit_event("slo_breach", breach.to_dict())
                for callback in self._subscribers:
                    callback(breach)
        self.publish_gauges()
        return breaches

    def publish_gauges(self) -> None:
        """(Re)write the ``slo.*`` gauges from the last evaluation —
        scrape-safe: does not ingest an interval or advance windows."""
        m = self.registry
        for name, state in self._states.items():
            ev = state.last_eval
            if ev is None:
                continue
            if ev["observed"] is not None:
                m.gauge(f"slo.{name}.value").set(float(ev["observed"]))
            m.gauge(f"slo.{name}.burn_rate").set(float(ev["burn_rate"]))
            m.gauge(f"slo.{name}.breached").set(1.0 if ev["breached"] else 0.0)
        tracker = self.budget_tracker
        if tracker is not None and tracker.allocation is not None:
            tracker.publish_gauges(m)

    def status(self) -> dict:
        """JSON-ready per-objective view (for ``/healthz``, dashboards)."""
        out = {
            "evaluations": self.evaluations,
            "window": self.window,
            "burn_rate_threshold": self.burn_rate_threshold,
            "objectives": [
                self._states[o.name].last_eval
                or {"objective": o.name, "observed": None, "breached": False}
                for o in self.objectives
            ],
        }
        tracker = self.budget_tracker
        if tracker is not None and tracker.allocation is not None:
            out["budgets"] = tracker.status()
        return out


def manager_objectives(policy, percentile: float = 95.0) -> tuple:
    """The default objective pair guarding an :class:`~repro.core.
    manager.AutonomicManager`'s measured stream, derived from its
    :class:`~repro.core.manager.SLAPolicy`: the windowed response-time
    percentile (p95 by default) against the SLA threshold, and the
    observed violation fraction against the tolerated violation
    probability."""
    if policy is None:
        raise ValueError(
            "manager_objectives needs an SLAPolicy, got None"
        )
    return (
        LatencyObjective(
            name=f"response_p{percentile:g}",
            histogram="manager.window.response_seconds",
            threshold_seconds=policy.threshold,
            percentile=percentile,
        ),
        ErrorRateObjective(
            name="violation_rate",
            errors="manager.window.violations",
            total="manager.window.points",
            max_ratio=policy.max_violation_prob,
        ),
    )
