"""repro.obs — zero-dependency observability for the modeling stack.

Three pieces, in the spirit of the always-on self-monitoring an
autonomic system assumes (Kephart & Chess's MAPE loops watch
themselves too):

- :mod:`repro.obs.metrics` — process-local counters, gauges, and
  fixed-bucket histograms with p50/p95/p99 summaries, snapshot/reset
  semantics, and text + JSON exporters;
- :mod:`repro.obs.tracing` — ``span("name")`` context managers
  producing a parent-linked span tree with wall time and optional
  ``tracemalloc`` peak-memory capture, exportable as JSON or a
  flame-style text tree;
- :mod:`repro.obs.runtime` — the module-level enable flag instrumented
  call sites guard on.  **Off by default**; the disabled cost on a hot
  path is a single attribute read.

Instrumentation is wired through the inference engine
(query / batch / plan-cache), the junction tree (absorb / retract /
recalibrate), the decentralized coordinator (per-agent fit times and
the Sec.-3.4 max-over-agents round span), the model server (per-tier
answer counts, breaker transitions, deadline misses), and the
autonomic manager (phase spans, quarantines, rollbacks).  See
``docs/architecture.md`` ("Observability") for the metric-name catalog.

Quickstart
----------
>>> from repro import obs
>>> obs.enable()
>>> with obs.span("demo"):
...     obs.OBS.metrics.counter("demo.calls").inc()
>>> obs.snapshot()["metrics"]["counters"]["demo.calls"]
1
>>> obs.reset(); obs.disable()
"""

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.runtime import (
    OBS,
    disable,
    enable,
    is_enabled,
    iter_spans,
    render_text,
    reset,
    snapshot,
    span,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "is_enabled",
    "iter_spans",
    "render_text",
    "reset",
    "snapshot",
    "span",
]
