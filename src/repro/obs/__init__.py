"""repro.obs — zero-dependency observability for the modeling stack.

Three pieces, in the spirit of the always-on self-monitoring an
autonomic system assumes (Kephart & Chess's MAPE loops watch
themselves too):

- :mod:`repro.obs.metrics` — process-local counters, gauges, and
  fixed-bucket histograms with p50/p95/p99 summaries, snapshot/reset
  semantics, and text + JSON exporters;
- :mod:`repro.obs.tracing` — ``span("name")`` context managers
  producing a parent-linked span tree with wall time and optional
  ``tracemalloc`` peak-memory capture, exportable as JSON or a
  flame-style text tree;
- :mod:`repro.obs.runtime` — the module-level enable flag instrumented
  call sites guard on.  **Off by default**; the disabled cost on a hot
  path is a single attribute read.

Built on those, the egress/consumption layer:

- :mod:`repro.obs.export` — Prometheus text exposition (HTTP
  ``/metrics`` via a stdlib daemon-thread server) and a rotating JSONL
  event sink with per-category sampling;
- :mod:`repro.obs.propagation` — ``TraceContext`` carried across
  process boundaries so remote spans reattach to the local tree;
- :mod:`repro.obs.slo` — windowed p95/p99 + error-rate objectives with
  burn-rate alerting, feeding ``SLOBreach`` events to the autonomic
  manager;
- :mod:`repro.obs.attribution` — per-service SLO budget tracking
  (``BudgetTracker``): burn rates against KERT-BN-derived budgets and
  ranked budget-eater attribution with posterior blame;
- :mod:`repro.obs.dashboard` — terminal + self-contained HTML
  rendering of snapshots (``repro dashboard``).

Instrumentation is wired through the inference engine
(query / batch / plan-cache), the junction tree (absorb / retract /
recalibrate), the decentralized coordinator (per-agent fit times and
the Sec.-3.4 max-over-agents round span), the model server (per-tier
answer counts, breaker transitions, deadline misses), and the
autonomic manager (phase spans, quarantines, rollbacks).  See
``docs/architecture.md`` ("Observability") for the metric-name catalog.

Quickstart
----------
>>> from repro import obs
>>> obs.enable()
>>> with obs.span("demo"):
...     obs.OBS.metrics.counter("demo.calls").inc()
>>> obs.snapshot()["metrics"]["counters"]["demo.calls"]
1
>>> obs.reset(); obs.disable()
"""

from repro.obs.attribution import (
    BUDGET_GAUGE_FAMILIES,
    BUDGET_STREAM_BUCKETS,
    BudgetTracker,
)
from repro.obs.export import (
    ExportServer,
    JsonlEventSink,
    render,
    render_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.propagation import TraceContext, current_context
from repro.obs.runtime import (
    OBS,
    attach_sink,
    detach_sink,
    disable,
    emit_event,
    enable,
    is_enabled,
    iter_spans,
    render_text,
    reset,
    snapshot,
    span,
)
from repro.obs.slo import (
    ErrorRateObjective,
    LatencyObjective,
    SLOBreach,
    SLOMonitor,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "BUDGET_GAUGE_FAMILIES",
    "BUDGET_STREAM_BUCKETS",
    "BudgetTracker",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "ErrorRateObjective",
    "ExportServer",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "LatencyObjective",
    "MetricsRegistry",
    "OBS",
    "SLOBreach",
    "SLOMonitor",
    "Span",
    "TraceContext",
    "Tracer",
    "attach_sink",
    "current_context",
    "detach_sink",
    "disable",
    "emit_event",
    "enable",
    "is_enabled",
    "iter_spans",
    "render",
    "render_prometheus",
    "render_text",
    "reset",
    "snapshot",
    "span",
]
