"""Telemetry egress: Prometheus exposition, HTTP endpoint, JSONL sink.

:mod:`repro.obs` (PR 4) keeps metrics and spans in-process; this module
gets them *out* — the monitoring stream Sec. 3.4's per-service agents
feed the management server, made concrete:

- :func:`render_prometheus` — the text exposition format (version
  0.0.4) rendered from a :meth:`MetricsRegistry.snapshot` dict, so the
  HTTP endpoint and ``repro obs snapshot --format prom`` share one
  serialization path;
- :class:`ExportServer` — a stdlib :mod:`http.server` on a daemon
  thread serving ``/metrics`` (Prometheus text), ``/healthz`` (liveness
  JSON), and ``/snapshot`` (the full metrics + trace JSON a
  ``repro dashboard --url`` pulls);
- :class:`JsonlEventSink` — a rotating JSONL file of structured events
  (finished trace trees, SLO breaches) with deterministic per-category
  sampling so a long-running deployment bounds its disk footprint.

Everything here is read-side: the exporter never mutates instruments,
and a scrape is itself metered (``obs.export.scrapes`` /
``obs.export.scrape_seconds``) so export overhead is visible in the
very stream it exports.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional

from repro.obs import runtime
from repro.obs.runtime import OBS

__all__ = [
    "render_prometheus",
    "render",
    "escape_label_value",
    "ExportServer",
    "JsonlEventSink",
]

#: Prometheus text-exposition content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted instrument name onto the Prometheus grammar.

    ``serving.tier.compiled-einsum`` → ``repro_serving_tier_compiled_einsum``.
    The mapping is lossy (``.`` and ``-`` both become ``_``); the original
    dotted name is preserved verbatim in the ``# HELP`` line.
    """
    out = prefix + "".join(c if c in _NAME_OK else "_" for c in str(name))
    if out and out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double-quote, and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Render a sample value: integers stay integral, floats use repr
    (shortest round-trippable form)."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labels(const_labels: "Mapping[str, str] | None", extra: str = "") -> str:
    parts = [
        f'{k}="{escape_label_value(v)}"'
        for k, v in sorted((const_labels or {}).items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


#: Dotted-gauge families re-grouped into one labeled series each:
#: ``slo.budget.<family>.<service>`` →
#: ``repro_slo_budget_<family>{service="..."}``.  The registry has no
#: label concept, so the service rides in the dotted name until export.
_BUDGET_GAUGE_PREFIX = "slo.budget."
_BUDGET_GAUGE_FAMILIES = (
    "allocated",
    "consumed",
    "burn_rate",
    "blame",
    "breached",
)


def _budget_gauge_service(name: str) -> "tuple[str, str] | None":
    """``slo.budget.<family>.<service>`` → ``(family, service)``."""
    if not name.startswith(_BUDGET_GAUGE_PREFIX):
        return None
    family, _, service = name[len(_BUDGET_GAUGE_PREFIX):].partition(".")
    if family in _BUDGET_GAUGE_FAMILIES and service:
        return family, service
    return None


def render_prometheus(
    metrics_snapshot: dict,
    const_labels: "Mapping[str, str] | None" = None,
    prefix: str = "repro_",
) -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le=...}`` series (terminated by ``le="+Inf"``)
    plus ``_sum`` and ``_count``.  ``const_labels`` are attached to
    every sample — label values are escaped, so instance identifiers
    may contain quotes, backslashes, or newlines.  The per-service
    budget gauges (``slo.budget.<family>.<service>``) are regrouped
    into one series per family with a ``service`` label, the shape a
    Grafana budget panel expects.
    """
    lines: list = []
    for name, value in metrics_snapshot.get("counters", {}).items():
        prom = sanitize_metric_name(name, prefix) + "_total"
        lines.append(f"# HELP {prom} repro counter {_escape_help(name)}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}{_labels(const_labels)} {_fmt(value)}")
    budget_series: "dict[str, list[tuple[str, float]]]" = {}
    for name, value in metrics_snapshot.get("gauges", {}).items():
        grouped = _budget_gauge_service(name)
        if grouped is not None:
            budget_series.setdefault(grouped[0], []).append(
                (grouped[1], value)
            )
            continue
        prom = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {prom} repro gauge {_escape_help(name)}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom}{_labels(const_labels)} {_fmt(value)}")
    for family in _BUDGET_GAUGE_FAMILIES:
        if family not in budget_series:
            continue
        prom = sanitize_metric_name(_BUDGET_GAUGE_PREFIX + family, prefix)
        lines.append(
            f"# HELP {prom} repro gauge "
            f"{_escape_help(_BUDGET_GAUGE_PREFIX + family)} per service"
        )
        lines.append(f"# TYPE {prom} gauge")
        for service, value in sorted(budget_series[family]):
            labels = _labels(
                const_labels, f'service="{escape_label_value(service)}"'
            )
            lines.append(f"{prom}{labels} {_fmt(value)}")
    for name, summary in metrics_snapshot.get("histograms", {}).items():
        prom = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {prom} repro histogram {_escape_help(name)}")
        lines.append(f"# TYPE {prom} histogram")
        bounds = summary.get("bucket_bounds") or []
        counts = summary.get("bucket_counts") or []
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += int(count)
            le = _labels(const_labels, f'le="{_fmt(bound)}"')
            lines.append(f"{prom}_bucket{le} {cumulative}")
        inf = _labels(const_labels, 'le="+Inf"')
        lines.append(f"{prom}_bucket{inf} {int(summary.get('count', 0))}")
        lines.append(
            f"{prom}_sum{_labels(const_labels)} {_fmt(summary.get('sum', 0.0))}"
        )
        lines.append(
            f"{prom}_count{_labels(const_labels)} {int(summary.get('count', 0))}"
        )
    return "\n".join(lines) + "\n" if lines else "# (no metrics recorded)\n"


def render(fmt: str = "text", const_labels: "Mapping[str, str] | None" = None) -> str:
    """One serialization path for the CLI and the HTTP endpoint.

    ``prom`` renders the live metrics registry as exposition text;
    ``json`` the full observability snapshot; ``text`` the
    human-readable metric listing + span tree.
    """
    if fmt == "prom":
        return render_prometheus(OBS.metrics.snapshot(), const_labels)
    if fmt == "json":
        return json.dumps(runtime.snapshot(), indent=2, default=str)
    if fmt == "text":
        return runtime.render_text()
    raise ValueError(f"unknown obs format {fmt!r} (expected prom|json|text)")


# --------------------------------------------------------------------- #
# HTTP endpoint
# --------------------------------------------------------------------- #


class ExportServer:
    """``/metrics`` + ``/healthz`` + ``/snapshot`` on a daemon thread.

    Zero dependencies (stdlib ``http.server``), port 0 picks a free
    port.  Usable as a context manager::

        with ExportServer() as srv:
            urllib.request.urlopen(srv.url + "/metrics")
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        const_labels: "Mapping[str, str] | None" = None,
        slo_monitor=None,
    ):
        self.host = host
        self._requested_port = int(port)
        self.const_labels = dict(const_labels or {})
        self.slo_monitor = slo_monitor
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> "ExportServer":
        if self._httpd is not None:
            return self
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-export",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ExportServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- addressing ----------------------------------------------------- #

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("export server is not running")
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- payloads (also used directly by tests) ------------------------- #

    def metrics_body(self) -> str:
        t0 = OBS.clock()
        if self.slo_monitor is not None:
            # A scrape sees fresh SLO gauges even between manager cycles.
            self.slo_monitor.publish_gauges()
        body = render_prometheus(OBS.metrics.snapshot(), self.const_labels)
        OBS.metrics.counter("obs.export.scrapes").inc()
        OBS.metrics.histogram("obs.export.scrape_seconds").observe(
            OBS.clock() - t0
        )
        return body

    def health_body(self) -> str:
        payload = {
            "status": "ok",
            "obs_enabled": OBS.enabled,
            "scrapes": OBS.metrics.counter("obs.export.scrapes").value,
        }
        if self.slo_monitor is not None:
            payload["slo"] = self.slo_monitor.status()
        return json.dumps(payload)

    def snapshot_body(self) -> str:
        snap = runtime.snapshot()
        if self.slo_monitor is not None:
            snap["slo"] = self.slo_monitor.status()
        return json.dumps(snap, indent=2, default=str)


def _make_handler(server: ExportServer):
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            try:
                if path == "/metrics":
                    body = server.metrics_body()
                    ctype = PROMETHEUS_CONTENT_TYPE
                elif path == "/healthz":
                    body = server.health_body()
                    ctype = "application/json"
                elif path == "/snapshot":
                    body = server.snapshot_body()
                    ctype = "application/json"
                else:
                    self.send_error(404, "unknown path")
                    return
            except Exception as exc:  # defensive: a scrape must not kill
                self.send_error(500, f"{type(exc).__name__}: {exc}")
                return
            raw = body.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def log_message(self, *args: object) -> None:
            pass  # scrapes are metered, not logged

    return Handler


# --------------------------------------------------------------------- #
# JSONL event sink
# --------------------------------------------------------------------- #


class JsonlEventSink:
    """Rotating JSONL file of structured observability events.

    Events are ``{"category", "seq", ...payload}`` objects, one per
    line.  ``sample`` maps a category to *keep one in N* (deterministic
    counter-based sampling — the first of every N is kept, so a short
    run still records its first trace).  Rotation renames ``path`` →
    ``path.1`` → … keeping at most ``max_files`` rotated files.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 1_000_000,
        max_files: int = 3,
        sample: "Mapping[str, int] | None" = None,
    ):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.max_files = int(max_files)
        self.sample = {str(k): int(v) for k, v in (sample or {}).items()}
        for category, n in self.sample.items():
            if n < 1:
                raise ValueError(
                    f"sample rate for {category!r} must be >= 1, got {n}"
                )
        self._lock = threading.Lock()
        self._seen: Dict[str, int] = {}
        self._emitted = 0
        self._sampled_out = 0
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- write side ----------------------------------------------------- #

    def emit(self, category: str, payload: "Mapping[str, object]") -> bool:
        """Write one event (unless sampled out); returns whether it was
        written.  Never raises on a closed sink — egress is best-effort."""
        category = str(category)
        with self._lock:
            if self._fh.closed:
                return False
            seen = self._seen.get(category, 0)
            self._seen[category] = seen + 1
            rate = self.sample.get(category, 1)
            if seen % rate:
                self._sampled_out += 1
                return False
            event = {"category": category, "seq": seen}
            event.update(payload)
            self._fh.write(json.dumps(event, default=str) + "\n")
            self._fh.flush()
            self._emitted += 1
            if self._fh.tell() >= self.max_bytes:
                self._rotate()
            return True

    def _rotate(self) -> None:
        self._fh.close()
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for i in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- read side ------------------------------------------------------ #

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "emitted": self._emitted,
                "sampled_out": self._sampled_out,
                "per_category": dict(self._seen),
            }
