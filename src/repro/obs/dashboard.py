"""Snapshot rendering: terminal summary + self-contained HTML report.

The consumption end of the telemetry pipe.  A *snapshot* here is the
JSON produced by :func:`repro.obs.runtime.snapshot` (optionally with the
``slo`` status block the :class:`~repro.obs.export.ExportServer`'s
``/snapshot`` endpoint adds) — the dashboard renders it, it never
computes new statistics.  Sources, in the order ``repro dashboard``
accepts them: the live in-process state, a snapshot file from
``--trace-out`` / ``repro obs snapshot --out``, or a running export
endpoint's ``/snapshot`` URL.

The HTML report is a single file with inline CSS and zero external
assets, so it can be attached to a CI run or mailed around as-is.
"""

from __future__ import annotations

import html
import json
from typing import List
from urllib.error import URLError
from urllib.request import urlopen

from repro.exceptions import ReproError
from repro.obs import runtime

__all__ = ["load_snapshot", "render_terminal", "render_html"]


def load_snapshot(source: "str | None" = None, timeout: float = 5.0) -> dict:
    """Resolve a snapshot dict from a file path, a ``/snapshot`` URL, or
    (``None``) the live in-process observability state.

    Exporter trouble surfaces as a one-line :class:`ReproError` (the CLI
    prints it and exits 1) rather than a urllib/json traceback.
    """
    if source is None:
        return runtime.snapshot()
    if source.startswith(("http://", "https://")):
        url = source.rstrip("/")
        if not url.endswith("/snapshot"):
            url += "/snapshot"
        try:
            with urlopen(url, timeout=timeout) as resp:  # noqa: S310 - operator URL
                body = resp.read().decode("utf-8", errors="replace")
        except (URLError, OSError) as exc:
            reason = getattr(exc, "reason", None) or exc
            raise ReproError(
                f"cannot reach exporter at {url}: {reason}"
            ) from exc
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            head = body.strip().splitlines()[0][:80] if body.strip() else ""
            raise ReproError(
                f"exporter at {url} returned a non-JSON body"
                + (f" (starts with {head!r})" if head else " (empty)")
            ) from exc
    with open(source, encoding="utf-8") as fh:
        return json.load(fh)


# --------------------------------------------------------------------- #
# Terminal rendering
# --------------------------------------------------------------------- #


def _fmt_num(value: "float | None", unit: str = "") -> str:
    if value is None:
        return "-"
    return f"{value:.6g}{unit}"


_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _sparkline(history: "list | tuple") -> str:
    """Unicode burn-rate sparkline, scaled so the burn=1.0 budget line
    stays comparable across services (taller history wins the scale)."""
    values = [max(float(v), 0.0) for v in history]
    if not values:
        return ""
    top = max(max(values), 1.0)
    return "".join(
        _SPARK_GLYPHS[min(int(v / top * len(_SPARK_GLYPHS)), 7)]
        for v in values
    )


def _budget_head(budgets: dict) -> str:
    head = (
        f"sla={_fmt_num(budgets.get('sla'))} "
        f"target={_fmt_num(budgets.get('target'))} "
        f"slack={_fmt_num(budgets.get('slack'))}"
    )
    if not budgets.get("feasible", True):
        head += " INFEASIBLE"
    return head


def _span_lines(spans: list, lines: List[str], lead: str = "") -> None:
    for i, sp in enumerate(spans):
        last = i == len(spans) - 1
        branch = ("`- " if last else "|- ") if lead or len(spans) > 1 else ""
        label = lead + branch + str(sp.get("name", "?"))
        ms = float(sp.get("duration_seconds", 0.0)) * 1e3
        mark = ""
        if sp.get("status", "ok") != "ok":
            mark = f"  [!{sp['status']}]"
        lines.append(f"{label:<48} {ms:10.3f}ms{mark}")
        _span_lines(
            sp.get("children") or [], lines, lead + ("   " if last else "|  ")
        )


def render_terminal(snap: dict, max_rows: int = 25) -> str:
    """A fixed-width operator summary of one snapshot."""
    metrics = snap.get("metrics", {})
    lines: List[str] = []
    lines.append("== repro observability dashboard ==")
    lines.append(f"obs enabled: {snap.get('enabled', '?')}")
    slo = snap.get("slo")
    if slo:
        lines.append("")
        lines.append(
            f"-- SLO status (window={slo.get('window')}, "
            f"{slo.get('evaluations', 0)} evaluation(s)) --"
        )
        for obj in slo.get("objectives", ()):
            state = "BREACHED" if obj.get("breached") else "ok"
            lines.append(
                f"  {obj.get('objective', '?'):<20} {state:<9} "
                f"observed={_fmt_num(obj.get('observed'))} "
                f"threshold={_fmt_num(obj.get('threshold'))} "
                f"burn_rate={_fmt_num(obj.get('burn_rate'))}"
            )
        budgets = slo.get("budgets")
        if budgets:
            lines.append("")
            lines.append(
                f"-- per-service budgets ({_budget_head(budgets)}) --"
            )
            for row in budgets.get("services", ()):
                state = "OVER" if row.get("breached") else "ok"
                lines.append(
                    f"  {row.get('service', '?'):<8} {state:<5} "
                    f"allocated={_fmt_num(row.get('allocated'))} "
                    f"consumed={_fmt_num(row.get('consumed'))} "
                    f"burn={_fmt_num(row.get('burn_rate'))} "
                    f"blame={_fmt_num(row.get('blame'))} "
                    f"{_sparkline(row.get('history') or [])}"
                )
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"-- counters ({len(counters)}) --")
        width = max(len(n) for n in counters)
        shown = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, value in shown[:max_rows]:
            lines.append(f"  {name:<{width}}  {value}")
        if len(shown) > max_rows:
            lines.append(f"  ... {len(shown) - max_rows} more")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"-- gauges ({len(gauges)}) --")
        width = max(len(n) for n in gauges)
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<{width}}  {_fmt_num(value)}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(f"-- histograms ({len(histograms)}) --")
        for name, s in sorted(histograms.items()):
            if not s.get("count"):
                lines.append(f"  {name}  count=0")
                continue
            lines.append(
                f"  {name}  count={s['count']} mean={_fmt_num(s.get('mean'))} "
                f"p50={_fmt_num(s.get('p50'))} p95={_fmt_num(s.get('p95'))} "
                f"p99={_fmt_num(s.get('p99'))} max={_fmt_num(s.get('max'))}"
            )
    trace = snap.get("trace") or []
    lines.append("")
    lines.append(f"-- trace ({len(trace)} root span(s)) --")
    if trace:
        _span_lines(trace, lines)
    else:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# HTML rendering
# --------------------------------------------------------------------- #

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #e2e2ef; }
th { background: #f4f4fb; } td.num { text-align: right;
     font-variant-numeric: tabular-nums; }
.ok { color: #1b7f4d; font-weight: 600; }
.breach { color: #b3261e; font-weight: 600; }
.badge { display: inline-block; padding: 0.1rem 0.5rem;
         border-radius: 0.6rem; background: #eef; font-size: 0.8rem; }
pre.trace { background: #f8f8fc; padding: 1rem; overflow-x: auto;
            font-size: 0.8rem; line-height: 1.35; }
.bar { background: #dcdcf5; height: 0.6rem; display: inline-block; }
td.spark { font-family: monospace; letter-spacing: 0.05em; }
"""


def _h(value: object) -> str:
    return html.escape(str(value))


def _hist_rows(histograms: dict) -> str:
    rows = []
    max_p95 = max(
        (s.get("p95") or 0.0 for s in histograms.values() if s.get("count")),
        default=0.0,
    )
    for name, s in sorted(histograms.items()):
        if not s.get("count"):
            continue
        p95 = s.get("p95") or 0.0
        bar = int(round(120 * p95 / max_p95)) if max_p95 else 0
        rows.append(
            "<tr><td>{}</td><td class=num>{}</td><td class=num>{}</td>"
            "<td class=num>{}</td><td class=num>{}</td><td class=num>{}</td>"
            '<td><span class=bar style="width:{}px"></span></td></tr>'.format(
                _h(name),
                s.get("count"),
                _fmt_num(s.get("mean")),
                _fmt_num(s.get("p50")),
                _fmt_num(s.get("p95")),
                _fmt_num(s.get("p99")),
                bar,
            )
        )
    return "\n".join(rows)


def render_html(snap: dict, title: str = "repro observability report") -> str:
    """One self-contained HTML page (inline CSS, no external assets)."""
    metrics = snap.get("metrics", {})
    parts: List[str] = [
        "<!doctype html>",
        '<html><head><meta charset="utf-8">',
        f"<title>{_h(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_h(title)}</h1>",
        f'<p><span class=badge>obs enabled: {_h(snap.get("enabled", "?"))}'
        "</span></p>",
    ]
    slo = snap.get("slo")
    if slo:
        parts.append("<h2>SLO status</h2><table>")
        parts.append(
            "<tr><th>objective</th><th>state</th><th>observed</th>"
            "<th>threshold</th><th>burn rate</th><th>window</th></tr>"
        )
        for obj in slo.get("objectives", ()):
            breached = bool(obj.get("breached"))
            parts.append(
                "<tr><td>{}</td><td class={}>{}</td><td class=num>{}</td>"
                "<td class=num>{}</td><td class=num>{}</td>"
                "<td class=num>{}</td></tr>".format(
                    _h(obj.get("objective", "?")),
                    "breach" if breached else "ok",
                    "BREACHED" if breached else "ok",
                    _fmt_num(obj.get("observed")),
                    _fmt_num(obj.get("threshold")),
                    _fmt_num(obj.get("burn_rate")),
                    _h(obj.get("window_intervals", "-")),
                )
            )
        parts.append("</table>")
        budgets = slo.get("budgets")
        if budgets:
            parts.append(
                f"<h2>Per-service budgets ({_h(_budget_head(budgets))})"
                "</h2><table>"
            )
            parts.append(
                "<tr><th>service</th><th>state</th><th>allocated</th>"
                "<th>consumed</th><th>burn rate</th><th>blame</th>"
                "<th>burn history</th></tr>"
            )
            for row in budgets.get("services", ()):
                breached = bool(row.get("breached"))
                parts.append(
                    "<tr><td>{}</td><td class={}>{}</td>"
                    "<td class=num>{}</td><td class=num>{}</td>"
                    "<td class=num>{}</td><td class=num>{}</td>"
                    "<td class=spark>{}</td></tr>".format(
                        _h(row.get("service", "?")),
                        "breach" if breached else "ok",
                        "OVER" if breached else "ok",
                        _fmt_num(row.get("allocated")),
                        _fmt_num(row.get("consumed")),
                        _fmt_num(row.get("burn_rate")),
                        _fmt_num(row.get("blame")),
                        _h(_sparkline(row.get("history") or [])),
                    )
                )
            parts.append("</table>")
    counters = metrics.get("counters", {})
    if counters:
        parts.append(f"<h2>Counters ({len(counters)})</h2><table>")
        parts.append("<tr><th>name</th><th>value</th></tr>")
        for name, value in sorted(
            counters.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            parts.append(
                f"<tr><td>{_h(name)}</td><td class=num>{_h(value)}</td></tr>"
            )
        parts.append("</table>")
    gauges = metrics.get("gauges", {})
    if gauges:
        parts.append(f"<h2>Gauges ({len(gauges)})</h2><table>")
        parts.append("<tr><th>name</th><th>value</th></tr>")
        for name, value in sorted(gauges.items()):
            parts.append(
                f"<tr><td>{_h(name)}</td>"
                f"<td class=num>{_fmt_num(value)}</td></tr>"
            )
        parts.append("</table>")
    histograms = metrics.get("histograms", {})
    if histograms:
        parts.append(f"<h2>Histograms ({len(histograms)})</h2><table>")
        parts.append(
            "<tr><th>name</th><th>count</th><th>mean</th><th>p50</th>"
            "<th>p95</th><th>p99</th><th>p95 (relative)</th></tr>"
        )
        parts.append(_hist_rows(histograms))
        parts.append("</table>")
    trace = snap.get("trace") or []
    parts.append(f"<h2>Trace ({len(trace)} root span(s))</h2>")
    if trace:
        span_lines: List[str] = []
        _span_lines(trace, span_lines)
        parts.append(f'<pre class=trace>{_h(chr(10).join(span_lines))}</pre>')
    else:
        parts.append("<p>(no spans recorded)</p>")
    parts.append("</body></html>")
    return "\n".join(parts)
