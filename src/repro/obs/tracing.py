"""Lightweight tracing: parent-linked span trees with wall time.

The tracing half of :mod:`repro.obs`.  A :class:`Tracer` maintains a
per-thread stack of open :class:`Span` objects; ``with tracer.span(...)``
nests automatically, exceptions unwind cleanly (the span is marked
``error`` and still closed), and finished trees export as JSON or as a
flame-style indented text tree.

Two features exist specifically for this codebase:

- :meth:`Span.override_duration` — the decentralized coordinator's
  agents run *conceptually* concurrently but are simulated in-process,
  so their spans carry the paper's accounted per-agent cost (fit +
  delivery wait) and the round span carries the Sec.-3.4
  ``max``-over-agents time rather than the sequential wall clock;
- optional ``memory=True`` spans sample :mod:`tracemalloc`'s peak so a
  trace can show where allocation spikes happen (best effort: the peak
  is process-wide between reset points, so nested memory spans share
  attribution).

Clocks are injectable (``Tracer(clock=...)``) so tests are
deterministic.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]

#: Process-unique span-id sequence.  ``itertools.count`` steps atomically
#: under the GIL and the pid prefix keeps ids distinct across the
#: multiprocessing workers that ship spans back to the coordinator.
_ID_SEQ = itertools.count(1)


def _next_id() -> str:
    return f"{os.getpid():x}-{next(_ID_SEQ):x}"


class Span:
    """One timed operation, linked to its parent and children."""

    __slots__ = (
        "name",
        "parent",
        "children",
        "start",
        "end",
        "status",
        "error",
        "peak_memory_bytes",
        "extra",
        "span_id",
        "trace_id",
        "_duration_override",
    )

    def __init__(
        self,
        name: str,
        parent: Optional["Span"],
        start: float,
        span_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ):
        self.name = name
        self.parent = parent
        self.children: List[Span] = []
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.peak_memory_bytes: Optional[int] = None
        self.extra: Dict[str, Any] = {}
        self.span_id = span_id if span_id is not None else _next_id()
        if trace_id is not None:
            self.trace_id = trace_id
        elif parent is not None:
            self.trace_id = parent.trace_id
        else:
            self.trace_id = self.span_id
        self._duration_override: Optional[float] = None
        if parent is not None:
            parent.children.append(self)

    @property
    def duration(self) -> float:
        """Elapsed seconds (overridden > measured > 0 while open)."""
        if self._duration_override is not None:
            return self._duration_override
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None or self._duration_override is not None

    def override_duration(self, seconds: float) -> None:
        """Carry an *accounted* duration instead of the measured one
        (used for simulated concurrency — see the module docstring)."""
        if seconds < 0:
            raise ValueError(f"span duration cannot be negative: {seconds}")
        self._duration_override = float(seconds)

    def annotate(self, **fields: Any) -> "Span":
        """Attach key→value context to the span; returns ``self``."""
        self.extra.update(fields)
        return self

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_seconds": self.duration,
            "status": self.status,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.peak_memory_bytes is not None:
            out["peak_memory_bytes"] = self.peak_memory_bytes
        if self.extra:
            out["extra"] = dict(self.extra)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def to_wire(self) -> dict:
        """Pickle/JSON-safe payload for cross-process reattachment.

        Unlike :meth:`to_dict` (a human-facing export), the wire form
        carries the span/trace ids so :meth:`Tracer.adopt` on the
        receiving side can graft the subtree under the exact span that
        was open when the :class:`~repro.obs.propagation.TraceContext`
        crossed the process boundary.
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "duration_seconds": self.duration,
            "status": self.status,
        }
        if self.parent is not None:
            out["parent_span_id"] = self.parent.span_id
        if self.error is not None:
            out["error"] = self.error
        if self.extra:
            out["extra"] = dict(self.extra)
        if self.children:
            out["children"] = [c.to_wire() for c in self.children]
        return out


class Tracer:
    """Collects span trees; one open-span stack per thread."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self._roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Called with each *root* span as it closes (whole tree
        #: finished) — the event-sink hook.  Must never raise into the
        #: traced code; failures are swallowed.
        self.on_close: Optional[Callable[[Span], None]] = None

    # -- span lifecycle ------------------------------------------------ #

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, memory: bool = False) -> Iterator[Span]:
        """Open a child of the current span (or a new root)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(str(name), parent, self.clock())
        if parent is None:
            with self._lock:
                self._roots.append(sp)
        stack.append(sp)
        started_tracing = False
        if memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracing = True
            tracemalloc.reset_peak()
        try:
            yield sp
        except BaseException as exc:
            sp.status = "error"
            sp.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            if memory:
                sp.peak_memory_bytes = tracemalloc.get_traced_memory()[1]
                if started_tracing:
                    tracemalloc.stop()
            sp.end = self.clock()
            if stack and stack[-1] is sp:
                stack.pop()
            if sp.parent is None and self.on_close is not None:
                try:
                    self.on_close(sp)
                except Exception:
                    pass  # sinks are best-effort; never break traced code

    def record_span(
        self,
        name: str,
        seconds: float,
        status: str = "ok",
        **extra: Any,
    ) -> Span:
        """Append an already-finished span (child of the current one).

        This is how accounted — rather than measured — costs enter the
        tree: per-agent fit times, simulated channel waits.
        """
        now = self.clock()
        sp = Span(str(name), self.current, now)
        sp.end = now
        sp.override_duration(seconds)
        sp.status = str(status)
        sp.extra.update(extra)
        if sp.parent is None:
            with self._lock:
                self._roots.append(sp)
        return sp

    # -- read side ------------------------------------------------------ #

    @property
    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def find(self, name: str) -> Optional[Span]:
        """Depth-first search for the first span with ``name``."""
        pending = self.roots
        while pending:
            sp = pending.pop(0)
            if sp.name == name:
                return sp
            pending = sp.children + pending
        return None

    def find_by_id(self, span_id: str) -> Optional[Span]:
        """Depth-first search by span id (open spans included)."""
        pending = self.roots
        while pending:
            sp = pending.pop(0)
            if sp.span_id == span_id:
                return sp
            pending = sp.children + pending
        return None

    def adopt(
        self,
        payload: dict,
        parent: Optional[Span] = None,
    ) -> Span:
        """Graft a finished remote span subtree into this tracer.

        ``payload`` is a :meth:`Span.to_wire` dict produced in another
        process (a multiprocessing fit worker, a remote agent).  The
        parent is resolved in order: the explicit ``parent`` argument,
        the local span whose id matches the payload's
        ``parent_span_id`` (the context that crossed the boundary),
        else the current open span.  Remote ids are preserved so a
        second hop reattaches consistently.
        """
        if parent is None:
            parent_id = payload.get("parent_span_id")
            if parent_id is not None:
                parent = self.find_by_id(str(parent_id))
            if parent is None:
                parent = self.current
        return self._adopt_one(payload, parent)

    def _adopt_one(self, payload: dict, parent: Optional[Span]) -> Span:
        now = self.clock()
        sp = Span(
            str(payload.get("name", "remote")),
            parent,
            now,
            span_id=payload.get("span_id"),
            trace_id=payload.get("trace_id")
            or (parent.trace_id if parent is not None else None),
        )
        sp.end = now
        sp.override_duration(float(payload.get("duration_seconds", 0.0)))
        sp.status = str(payload.get("status", "ok"))
        if payload.get("error") is not None:
            sp.error = str(payload["error"])
        sp.extra.update(payload.get("extra") or {})
        for child in payload.get("children") or ():
            self._adopt_one(child, sp)
        if parent is None:
            with self._lock:
                self._roots.append(sp)
        return sp

    def clear(self) -> None:
        with self._lock:
            self._roots = []
        self._local = threading.local()

    # -- exporters ------------------------------------------------------ #

    def to_dict(self) -> list:
        return [sp.to_dict() for sp in self.roots]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        """Flame-style text tree, durations right-aligned.

        ::

            decentralized.round                      1.20ms
            |- agent:X1                              0.40ms
            |- agent:X2                              1.20ms  [stale]
            `- response-cpd                          0.00ms
        """
        lines: List[str] = []
        for root in self.roots:
            self._render(root, "", "", lines)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def _render(self, sp: Span, lead: str, child_lead: str, lines: List[str]) -> None:
        label = lead + sp.name
        mark = ""
        if sp.status != "ok":
            mark = f"  [!{sp.status}: {sp.error}]"
        elif "status" in sp.extra and sp.extra["status"] != "fresh":
            mark = f"  [{sp.extra['status']}]"
        if sp.peak_memory_bytes is not None:
            mark += f"  [peak {sp.peak_memory_bytes / 1024.0:.1f} KiB]"
        lines.append(f"{label:<44} {sp.duration * 1e3:10.3f}ms{mark}")
        for i, child in enumerate(sp.children):
            last = i == len(sp.children) - 1
            branch = "`- " if last else "|- "
            cont = "   " if last else "|  "
            self._render(child, child_lead + branch, child_lead + cont, lines)
