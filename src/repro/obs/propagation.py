"""Cross-process trace propagation.

A span tree normally dies with its process: the coordinator's
``decentralized.round`` span lives in the management server, while the
per-service fits of :func:`repro.decentralized.parallel.
parallel_parameter_learning` run in pool workers whose tracers are
invisible to the parent.  The paper's Sec.-3.4 accounting (round time =
max over concurrently running agents) only renders as *one* tree if the
worker-side spans can reattach under the coordinator's round span.

The mechanism is the usual distributed-tracing one, minimized:

- :class:`TraceContext` — the (trace id, open span id) pair captured on
  the sending side with :func:`current_context`;
- the context rides the payload (a pickled worker argument, an extra
  field on a :class:`~repro.decentralized.messaging.Message` — the
  paper's "extra SOAP segment");
- the receiving side builds finished spans whose ``parent_span_id`` is
  the context's span id and ships them back as
  :meth:`~repro.obs.tracing.Span.to_wire` dicts;
- :meth:`~repro.obs.tracing.Tracer.adopt` grafts them under the span
  that was open when the context was captured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.runtime import OBS

__all__ = ["TraceContext", "current_context", "remote_span_payload"]


@dataclass(frozen=True)
class TraceContext:
    """The minimal baggage a trace needs to cross a process boundary."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload: "dict | None") -> "Optional[TraceContext]":
        if not payload:
            return None
        try:
            return cls(
                trace_id=str(payload["trace_id"]),
                span_id=str(payload["span_id"]),
            )
        except (KeyError, TypeError):
            return None


def current_context() -> Optional[TraceContext]:
    """The context of the currently open span, or ``None`` when
    observability is off / no span is open."""
    if not OBS.enabled:
        return None
    current = OBS.tracer.current
    if current is None:
        return None
    return TraceContext(trace_id=current.trace_id, span_id=current.span_id)


def remote_span_payload(
    name: str,
    seconds: float,
    context: "TraceContext | dict | None",
    status: str = "ok",
    **extra: object,
) -> dict:
    """Build a finished-span wire dict on the *remote* side of a hop.

    Workers that only time one operation (a CPD fit) need no tracer of
    their own — this helper produces the :meth:`Span.to_wire`-shaped
    payload directly, parented on the propagated context when one was
    carried across.
    """
    from repro.obs.tracing import _next_id

    if isinstance(context, dict):
        context = TraceContext.from_wire(context)
    out: dict = {
        "name": str(name),
        "span_id": _next_id(),
        "duration_seconds": float(seconds),
        "status": str(status),
    }
    if context is not None:
        out["trace_id"] = context.trace_id
        out["parent_span_id"] = context.span_id
    if extra:
        out["extra"] = dict(extra)
    return out
