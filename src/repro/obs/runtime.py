"""The process-global observability switchboard.

Instrumented call sites throughout the codebase guard on
``OBS.enabled`` — a single attribute read — so the disabled cost on a
hot path is one branch (asserted < 5% of a ``query_batch`` call in
``tests/perf/test_obs_overhead.py``).  Everything heavier (counter
lookups, clock reads, span allocation) happens only when enabled.

Enable programmatically (:func:`enable` / :func:`disable`), or set the
``REPRO_OBS`` environment variable to a non-empty value other than
``0`` to come up enabled — that is how CI captures trace snapshots from
the chaos suites without touching test code.

Clocks are injectable for deterministic tests: ``enable(clock=fake)``
points both the metrics timestamps and the tracer at ``fake``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer

__all__ = [
    "OBS",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "snapshot",
    "span",
    "render_text",
    "attach_sink",
    "detach_sink",
    "emit_event",
]


class ObsState:
    """Singleton bundle: enable flag + registry + tracer + clock + sink."""

    __slots__ = ("enabled", "clock", "metrics", "tracer", "sink")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.enabled = False
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock)
        #: Optional :class:`repro.obs.export.JsonlEventSink` — attach
        #: via :func:`attach_sink`, never written directly by hot paths.
        self.sink = None

    def configure(self, clock: Optional[Callable[[], float]] = None) -> None:
        """Swap the clock (tests); metric values are preserved."""
        if clock is not None:
            self.clock = clock
            self.tracer.clock = clock


#: The process-wide observability state.  Hot paths read
#: ``OBS.enabled`` directly; everything else should go through the
#: module-level helpers below.
OBS = ObsState()

if os.environ.get("REPRO_OBS", "0") not in ("", "0"):
    OBS.enabled = True


def enable(clock: Optional[Callable[[], float]] = None) -> None:
    """Turn instrumentation on (optionally with an injected clock)."""
    OBS.configure(clock=clock)
    OBS.enabled = True


def disable() -> None:
    """Turn instrumentation off; recorded state is kept until reset."""
    OBS.enabled = False


def is_enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    """Zero all metrics and drop all spans (enable flag unchanged)."""
    OBS.metrics.reset()
    OBS.tracer.clear()


def snapshot() -> dict:
    """One JSON-ready dict: enable state, metrics, and span trees."""
    return {
        "enabled": OBS.enabled,
        "metrics": OBS.metrics.snapshot(),
        "trace": OBS.tracer.to_dict(),
    }


def render_text() -> str:
    """Text export: the metric listing followed by the span tree."""
    return OBS.metrics.render_text() + "\n\n" + OBS.tracer.render_text()


def attach_sink(sink) -> None:
    """Stream structured events to a :class:`repro.obs.export.
    JsonlEventSink`: every finished root span tree is emitted under the
    ``trace`` category, and subsystems (SLO monitor, manager) emit their
    own categories via :func:`emit_event`."""
    OBS.sink = sink
    OBS.tracer.on_close = lambda sp: sink.emit("trace", sp.to_wire())


def detach_sink() -> None:
    """Stop streaming (the sink itself is left open for the caller)."""
    OBS.sink = None
    OBS.tracer.on_close = None


def emit_event(category: str, payload: dict) -> bool:
    """Best-effort structured-event emission to the attached sink."""
    sink = OBS.sink
    if sink is None:
        return False
    try:
        return sink.emit(category, payload)
    except Exception:
        return False  # egress must never take down the instrumented path


class _NullSpan:
    """Inert span handed out while observability is disabled."""

    __slots__ = ()

    def annotate(self, **fields: object) -> "_NullSpan":
        return self

    def override_duration(self, seconds: float) -> None:
        return None


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


def span(name: str, memory: bool = False):
    """``with span("..."):`` — a real tracer span when enabled, a
    shared no-op context otherwise (no allocation on the disabled
    path)."""
    if not OBS.enabled:
        return _NULL_CONTEXT
    return OBS.tracer.span(name, memory=memory)


def iter_spans() -> Iterator[Span]:
    """Depth-first iteration over all recorded spans."""
    pending = OBS.tracer.roots
    while pending:
        sp = pending.pop(0)
        yield sp
        pending = sp.children + pending
