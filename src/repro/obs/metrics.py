"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The paper's efficiency story is quantitative — decentralized learning
time is the *max* over per-CPD times (Sec. 3.4), the workflow-derived
CPD removes the most expensive learning step (Sec. 3.3) — so the
runtime needs numbers, not logs.  This module is the zero-dependency
metrics half of :mod:`repro.obs`: a :class:`MetricsRegistry` holding
named :class:`Counter` / :class:`Gauge` / :class:`Histogram`
instruments with snapshot/reset semantics and text + JSON exporters.

Design constraints, in order:

- **cheap** — an increment is a dict lookup, a lock, and an integer
  add; the histogram is fixed-bucket so ``observe`` never allocates;
- **thread-safe** — :func:`repro.decentralized.parallel.
  parallel_parameter_learning` reports fits from whatever thread drains
  the pool, and the chaos suites hammer the serving counters;
- **reset-in-place** — call sites may cache instrument handles, so
  :meth:`MetricsRegistry.reset` zeroes values without invalidating the
  objects.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: Log-spaced latency buckets (seconds): 1µs .. 50s plus an overflow
#: bucket.  Wide enough for einsum kernels and whole MAPE cycles alike.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 2) for m in (1.0, 2.5, 5.0)
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        with self._lock:
            self._value += int(n)

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time float metric (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` are increasing finite upper bounds; observations above
    the last bound land in an implicit overflow bucket.  Percentiles
    interpolate linearly inside the winning bucket and are clamped to
    the observed ``[min, max]`` range, so the degenerate cases (empty,
    single sample, everything in overflow) stay well-defined.
    """

    __slots__ = ("name", "buckets", "_counts", "_lock", "_n", "_sum", "_min", "_max")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None):
        bounds = tuple(float(b) for b in (buckets or DEFAULT_TIME_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing buckets, got {bounds}"
            )
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._lock = threading.Lock()
        self._n = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # bisect: first bucket whose bound >= value
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._n += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- read side ----------------------------------------------------- #

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._n if self._n else None

    @property
    def min(self) -> Optional[float]:
        return self._min if self._n else None

    @property
    def max(self) -> Optional[float]:
        return self._max if self._n else None

    @property
    def overflow_count(self) -> int:
        """Observations above the last finite bucket bound."""
        return self._counts[-1]

    def bucket_counts(self) -> Tuple[int, ...]:
        return tuple(self._counts)

    def percentile(self, q: float) -> Optional[float]:
        """Approximate q-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._n == 0:
            return None
        if self._n == 1:
            return self._min
        rank = q / 100.0 * self._n
        cumulative = 0
        for i, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank and count:
                if i >= len(self.buckets):  # overflow: no finite upper bound
                    return self._max
                upper = self.buckets[i]
                lower = self.buckets[i - 1] if i else min(0.0, self._min)
                fraction = (rank - (cumulative - count)) / count
                estimate = lower + fraction * (upper - lower)
                return max(self._min, min(self._max, estimate))
        return self._max

    def summary(self) -> dict:
        with self._lock:
            return {
                "count": self._n,
                "sum": self._sum,
                "mean": self.mean,
                "min": self.min,
                "max": self.max,
                "p50": self.percentile(50.0),
                "p95": self.percentile(95.0),
                "p99": self.percentile(99.0),
                "overflow": self._counts[-1],
                # Raw bucket data (bounds + per-bucket counts, overflow
                # last) so exporters can render exposition-format
                # histograms without re-reading the live instrument.
                "bucket_bounds": list(self.buckets),
                "bucket_counts": list(self._counts),
            }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._n = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


class MetricsRegistry:
    """Named instruments with get-or-create access and atomic snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create ------------------------------------------------- #

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def remove_gauge(self, name: str) -> None:
        """Drop a gauge so it stops appearing in snapshots/exports.

        Needed for label-style dotted series (``slo.budget.*.<service>``)
        whose subject can disappear — a plain ``reset`` keeps instrument
        names alive, which would leave stale series on ``/metrics``.
        Cached handles to the removed gauge keep working but are
        orphaned; a later :meth:`gauge` call creates a fresh instrument.
        """
        with self._lock:
            self._gauges.pop(name, None)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, buckets)
            return instrument

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            names = sorted((*self._counters, *self._gauges, *self._histograms))
        return iter(names)

    # -- snapshot / reset ---------------------------------------------- #

    def snapshot(self) -> dict:
        """A point-in-time, JSON-ready view of every instrument."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Zero every instrument in place (cached handles stay valid).

        The whole sweep happens under the registry lock — the same lock
        :meth:`snapshot` holds — so a snapshot taken concurrently with a
        reset sees either every instrument's pre-reset value or every
        instrument zeroed, never a mix (instrument locks alone cannot
        give that cross-instrument atomicity).
        """
        with self._lock:
            for instrument in (
                *self._counters.values(),
                *self._gauges.values(),
                *self._histograms.values(),
            ):
                instrument.reset()

    # -- exporters ------------------------------------------------------ #

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def render_text(self) -> str:
        """Human-readable export, one instrument per line."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            lines.append("# counters")
            width = max(len(n) for n in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"{name:<{width}}  {value}")
        if snap["gauges"]:
            lines.append("# gauges")
            width = max(len(n) for n in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"{name:<{width}}  {value:.6g}")
        if snap["histograms"]:
            lines.append("# histograms")
            for name, s in snap["histograms"].items():
                if s["count"] == 0:
                    lines.append(f"{name}  count=0")
                    continue
                lines.append(
                    f"{name}  count={s['count']} mean={s['mean']:.6g} "
                    f"p50={s['p50']:.6g} p95={s['p95']:.6g} "
                    f"p99={s['p99']:.6g} max={s['max']:.6g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
