"""Per-service budget tracking and budget-eater attribution.

:mod:`repro.bn.budgets` inverts the KERT-BN composition into per-service
budgets; this module is the obs-side consumer.  :class:`BudgetTracker`
holds the current allocation (duck-typed — anything with ``sla``,
``target``, ``slack``, ``feasible``, ``expression`` and a ``budgets``
sequence of ``service``/``budget`` records, so the obs layer stays
import-free of the model stack), watches one *measured* latency
histogram per service with the same cumulative-delta windowing
:class:`~repro.obs.slo.SLOMonitor` applies to its objectives, and keeps
the model-side posterior blame ``P(X_i > b_i | D > sla)`` the analyze
phase pushes in.

The product is a ranked attribution: for each service the *allocated*
budget, the *consumed* windowed percentile, the SRE ``burn_rate =
consumed / allocated``, and the blame share — sorted so the service
eating the end-to-end SLO comes first.  :class:`~repro.obs.slo.
SLOMonitor` folds the tracker into its evaluate cycle (budget breaches
ride the normal breach pipeline with ``kind="budget"``), the exporter
renders the ``slo.budget.*`` gauge families with a ``service`` label,
and the manager uses the top-ranked breach to aim its action.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["BudgetTracker", "BUDGET_GAUGE_FAMILIES", "BUDGET_STREAM_BUCKETS"]

#: Gauge families the tracker publishes under ``slo.budget.<family>.
#: <service>`` — the exporter re-groups them into labeled series.
BUDGET_GAUGE_FAMILIES = (
    "allocated",
    "consumed",
    "burn_rate",
    "blame",
    "breached",
)

#: Buckets for per-service budget streams: 12 per decade over
#: 100 µs … 100 s.  The registry default (1/2.5/5 per decade) is built
#: for order-of-magnitude overviews; budget burn compares a windowed
#: percentile against a bound that may sit ~20 % over the healthy
#: level, so interpolation error must stay well under that gap.
BUDGET_STREAM_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (exponent + step / 12.0)
    for exponent in range(-4, 2)
    for step in range(12)
)

#: Burn-history depth per service (feeds the dashboard sparkline).
_HISTORY = 32


@dataclass
class _ServiceState:
    """Rolling window + burn history for one service's stream."""

    window: Deque[Tuple[int, ...]] = field(default_factory=deque)
    last: Optional[Tuple[int, ...]] = None
    consumed: Optional[float] = None
    burn_rate: float = 0.0
    breached: bool = False
    points: int = 0
    history: Deque[float] = field(
        default_factory=lambda: deque(maxlen=_HISTORY)
    )


def _percentile_from_buckets(
    bounds: Tuple[float, ...], counts: List[int], q: float
) -> Optional[float]:
    from repro.obs.slo import _percentile_from_buckets as impl

    return impl(bounds, counts, q)


class BudgetTracker:
    """Track measured per-service streams against an allocation.

    ``stream_pattern`` names the registry histogram carrying each
    service's measured latencies (``{service}`` is substituted); the
    manager publishes them per monitoring window.  ``observe`` ingests
    one interval per call — :class:`~repro.obs.slo.SLOMonitor` calls it
    from ``evaluate`` so budget windows advance in lockstep with the
    end-to-end objectives.
    """

    def __init__(
        self,
        allocation: Any = None,
        stream_pattern: str = "manager.window.service_seconds.{service}",
        percentile: float = 95.0,
        window: int = 5,
        burn_rate_threshold: float = 1.0,
        min_points: int = 1,
    ):
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if burn_rate_threshold <= 0:
            raise ValueError(
                f"burn_rate_threshold must be > 0, got {burn_rate_threshold}"
            )
        if "{service}" not in stream_pattern:
            raise ValueError(
                "stream_pattern must contain a {service} placeholder, "
                f"got {stream_pattern!r}"
            )
        self.stream_pattern = stream_pattern
        self.percentile = float(percentile)
        self.window = int(window)
        self.burn_rate_threshold = float(burn_rate_threshold)
        self.min_points = int(min_points)
        self.allocation: Any = None
        self.allocations_seen = 0
        self._budgets: Dict[str, float] = {}
        self._blame: Dict[str, float] = {}
        self._states: Dict[str, _ServiceState] = {}
        self._retired: set = set()
        if allocation is not None:
            self.update_allocation(allocation)

    # -- model-side inputs ---------------------------------------------- #

    def update_allocation(self, allocation: Any) -> None:
        """Install a (re)derived allocation; measurement windows and
        burn histories survive so a re-publish does not blind the
        tracker, but budgets for dropped services are retired."""
        budgets = {
            str(sb.service): float(sb.budget) for sb in allocation.budgets
        }
        if not budgets:
            raise ValueError("allocation carries no per-service budgets")
        self.allocation = allocation
        self.allocations_seen += 1
        self._budgets = budgets
        for service in budgets:
            self._states.setdefault(service, _ServiceState())
            self._retired.discard(service)
        for service in list(self._states):
            if service not in budgets:
                del self._states[service]
                self._retired.add(service)
        self._blame = {s: b for s, b in self._blame.items() if s in budgets}

    def update_blame(self, blame: Any) -> None:
        """Install fresh posterior blame ``P(X_i > b_i | D > sla)``."""
        self._blame = {
            str(s): float(v) for s, v in dict(blame).items()
            if str(s) in self._budgets
        }

    @property
    def services(self) -> Tuple[str, ...]:
        return tuple(sorted(self._budgets))

    def stream_name(self, service: str) -> str:
        return self.stream_pattern.format(service=service)

    # -- measurement ingestion ------------------------------------------ #

    def observe(self, registry: Any) -> List[dict]:
        """Ingest one interval per service; return breach records.

        Each record is dict-shaped for :class:`~repro.obs.slo.SLOBreach`
        (``objective=budget.<service>``, ``kind="budget"``) — the
        monitor turns them into real breach events on its pipeline.
        """
        breaches: List[dict] = []
        for service in self.services:
            state = self._states[service]
            summary = registry.histogram(
                self.stream_name(service), buckets=BUDGET_STREAM_BUCKETS
            ).summary()
            counts = tuple(int(c) for c in summary["bucket_counts"])
            bounds = tuple(float(b) for b in summary["bucket_bounds"])
            last = state.last
            if last is None or len(last) != len(counts) or any(
                c < p for c, p in zip(counts, last)
            ):
                delta = counts  # first interval, or the registry was reset
            else:
                delta = tuple(c - p for c, p in zip(counts, last))
            state.last = counts
            if len(state.window) and len(state.window[0]) != len(counts):
                state.window.clear()  # bucket layout changed underneath us
            if state.window.maxlen != self.window:
                state.window = deque(state.window, maxlen=self.window)
            state.window.append(delta)
            aggregated = [
                sum(interval[i] for interval in state.window)
                for i in range(len(counts))
            ]
            consumed = _percentile_from_buckets(
                bounds, aggregated, self.percentile
            )
            points = sum(aggregated)
            state.points = points
            budget = self._budgets[service]
            if consumed is None or points < self.min_points:
                state.consumed = None
                state.burn_rate = 0.0
                state.breached = False
                state.history.append(0.0)
                continue
            burn = consumed / budget if budget > 0 else float("inf")
            state.consumed = float(consumed)
            state.burn_rate = float(burn)
            state.breached = burn >= self.burn_rate_threshold
            state.history.append(float(burn))
            if state.breached:
                breaches.append(
                    {
                        "objective": f"budget.{service}",
                        "kind": "budget",
                        "observed": float(consumed),
                        "threshold": float(budget),
                        "burn_rate": float(burn),
                        "window_intervals": len(state.window),
                        "service": service,
                        "detail": (
                            f"p{self.percentile:g}"
                            f"({self.stream_name(service)}) over "
                            f"{len(state.window)} interval(s), "
                            f"{points} point(s); blame "
                            f"{self._blame.get(service, 0.0):.3f}"
                        ),
                    }
                )
        return breaches

    # -- outputs -------------------------------------------------------- #

    def ranking(self) -> List[dict]:
        """Budget-eater attribution, worst first: breached budgets
        lead, then burn rate, then posterior blame."""
        rows = [
            {
                "service": service,
                "allocated": self._budgets[service],
                "consumed": state.consumed,
                "burn_rate": state.burn_rate,
                "blame": self._blame.get(service, 0.0),
                "breached": state.breached,
                "points": state.points,
                "history": [round(b, 4) for b in state.history],
            }
            for service, state in (
                (s, self._states[s]) for s in self.services
            )
        ]
        rows.sort(
            key=lambda r: (
                not r["breached"],
                -float(r["burn_rate"]),
                -float(r["blame"]),
                r["service"],
            )
        )
        return rows

    def publish_gauges(self, registry: Any) -> None:
        """(Re)write the ``slo.budget.<family>.<service>`` gauges."""
        remove = getattr(registry, "remove_gauge", None)
        if remove is not None and self._retired:
            # A reallocation dropped these services; without removal
            # their last-written values would sit on /metrics forever.
            for service in tuple(self._retired):
                for family in BUDGET_GAUGE_FAMILIES:
                    remove(f"slo.budget.{family}.{service}")
            self._retired.clear()
        for service in self.services:
            state = self._states[service]
            registry.gauge(f"slo.budget.allocated.{service}").set(
                self._budgets[service]
            )
            if state.consumed is not None:
                registry.gauge(f"slo.budget.consumed.{service}").set(
                    state.consumed
                )
            registry.gauge(f"slo.budget.burn_rate.{service}").set(
                state.burn_rate
            )
            registry.gauge(f"slo.budget.blame.{service}").set(
                self._blame.get(service, 0.0)
            )
            registry.gauge(f"slo.budget.breached.{service}").set(
                1.0 if state.breached else 0.0
            )

    def status(self) -> dict:
        """JSON-ready view for ``/snapshot`` and the dashboards."""
        alloc = self.allocation
        head: dict = {
            "allocations_seen": self.allocations_seen,
            "percentile": self.percentile,
            "window": self.window,
            "burn_rate_threshold": self.burn_rate_threshold,
        }
        if alloc is not None:
            head.update(
                sla=float(alloc.sla),
                target=float(alloc.target),
                slack=float(alloc.slack),
                feasible=bool(alloc.feasible),
                expression=str(alloc.expression),
            )
        head["services"] = self.ranking()
        return head
