"""Directed acyclic graphs with the queries Bayesian networks need.

The implementation keeps its own adjacency maps (insertion-ordered dicts)
rather than delegating to :mod:`networkx`, because structure learning
mutates candidate graphs in a tight loop and benefits from the slimmer
bookkeeping; :meth:`DAG.to_networkx` exists for interoperability and for
cross-checking in tests.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.exceptions import GraphError

Node = Hashable


class DAG:
    """A directed acyclic graph over hashable node labels.

    Edges point parent → child; :meth:`add_edge` refuses edges that would
    close a cycle, so instances are acyclic by construction.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, Node]] = (),
    ):
        self._parents: dict[Node, dict[Node, None]] = {}
        self._children: dict[Node, dict[Node, None]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_node(self, node: Node) -> None:
        """Add an isolated node; adding an existing node is a no-op."""
        if node not in self._parents:
            self._parents[node] = {}
            self._children[node] = {}

    def add_edge(self, u: Node, v: Node) -> None:
        """Add edge ``u -> v``, creating endpoints as needed.

        Raises
        ------
        GraphError
            If the edge is a self-loop or would create a directed cycle.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} not allowed")
        self.add_node(u)
        self.add_node(v)
        if v in self._children[u]:
            return
        if self.has_path(v, u):
            raise GraphError(f"edge {u!r} -> {v!r} would create a cycle")
        self._children[u][v] = None
        self._parents[v][u] = None

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``u -> v``; missing edges raise :class:`GraphError`."""
        if u not in self._children or v not in self._children[u]:
            raise GraphError(f"edge {u!r} -> {v!r} not in graph")
        del self._children[u][v]
        del self._parents[v][u]

    def remove_node(self, node: Node) -> None:
        """Remove a node and all incident edges."""
        if node not in self._parents:
            raise GraphError(f"node {node!r} not in graph")
        for p in list(self._parents[node]):
            self.remove_edge(p, node)
        for c in list(self._children[node]):
            self.remove_edge(node, c)
        del self._parents[node]
        del self._children[node]

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._parents)

    @property
    def edges(self) -> tuple[tuple[Node, Node], ...]:
        return tuple((u, v) for u, cs in self._children.items() for v in cs)

    @property
    def n_nodes(self) -> int:
        return len(self._parents)

    @property
    def n_edges(self) -> int:
        return sum(len(cs) for cs in self._children.values())

    def __contains__(self, node: Node) -> bool:
        return node in self._parents

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._children and v in self._children[u]

    def parents(self, node: Node) -> tuple[Node, ...]:
        """Parent set Φ(node), in insertion order."""
        self._check(node)
        return tuple(self._parents[node])

    def children(self, node: Node) -> tuple[Node, ...]:
        self._check(node)
        return tuple(self._children[node])

    def in_degree(self, node: Node) -> int:
        self._check(node)
        return len(self._parents[node])

    def out_degree(self, node: Node) -> int:
        self._check(node)
        return len(self._children[node])

    def roots(self) -> tuple[Node, ...]:
        """Nodes with no parents — learned with local data only (Sec 3.4)."""
        return tuple(n for n in self._parents if not self._parents[n])

    def leaves(self) -> tuple[Node, ...]:
        return tuple(n for n in self._children if not self._children[n])

    def _check(self, node: Node) -> None:
        if node not in self._parents:
            raise GraphError(f"node {node!r} not in graph")

    # ------------------------------------------------------------------ #
    # Reachability / ordering
    # ------------------------------------------------------------------ #

    def has_path(self, u: Node, v: Node) -> bool:
        """True if a directed path ``u -> ... -> v`` exists (u == v counts)."""
        if u not in self._parents or v not in self._parents:
            return False
        if u == v:
            return True
        seen = {u}
        stack = [u]
        while stack:
            cur = stack.pop()
            for nxt in self._children[cur]:
                if nxt == v:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def ancestors(self, node: Node) -> set[Node]:
        """All nodes with a directed path to ``node`` (excluding itself)."""
        self._check(node)
        out: set[Node] = set()
        stack = list(self._parents[node])
        while stack:
            cur = stack.pop()
            if cur not in out:
                out.add(cur)
                stack.extend(self._parents[cur])
        return out

    def descendants(self, node: Node) -> set[Node]:
        """All nodes reachable from ``node`` (excluding itself)."""
        self._check(node)
        out: set[Node] = set()
        stack = list(self._children[node])
        while stack:
            cur = stack.pop()
            if cur not in out:
                out.add(cur)
                stack.extend(self._children[cur])
        return out

    def topological_order(self) -> list[Node]:
        """Kahn's algorithm; deterministic given insertion order."""
        in_deg = {n: len(ps) for n, ps in self._parents.items()}
        queue = deque(n for n, d in in_deg.items() if d == 0)
        order: list[Node] = []
        while queue:
            n = queue.popleft()
            order.append(n)
            for c in self._children[n]:
                in_deg[c] -= 1
                if in_deg[c] == 0:
                    queue.append(c)
        if len(order) != self.n_nodes:  # pragma: no cover - unreachable by construction
            raise GraphError("graph contains a cycle")
        return order

    # ------------------------------------------------------------------ #
    # Probabilistic-graphical-model queries
    # ------------------------------------------------------------------ #

    def moral_neighbors(self) -> dict[Node, set[Node]]:
        """Adjacency of the moral graph: undirected edges plus married parents."""
        adj: dict[Node, set[Node]] = {n: set() for n in self._parents}
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        for node in self._parents:
            ps = list(self._parents[node])
            for i in range(len(ps)):
                for j in range(i + 1, len(ps)):
                    adj[ps[i]].add(ps[j])
                    adj[ps[j]].add(ps[i])
        return adj

    def d_separated(
        self,
        x: "Node | Iterable[Node]",
        y: "Node | Iterable[Node]",
        given: Iterable[Node] = (),
    ) -> bool:
        """Test d-separation of node sets ``x`` and ``y`` given ``given``.

        Uses the linear-time reachability ("Bayes-ball") algorithm: traverse
        (node, direction) states from ``x``; ``x`` and ``y`` are d-separated
        iff no node of ``y`` is reached through an active trail.
        """
        xs = {x} if x in self._parents else set(x)
        ys = {y} if y in self._parents else set(y)
        zs = set(given)
        for s in xs | ys | zs:
            self._check(s)
        if xs & ys:
            return False

        # Ancestors of the evidence set, used to decide collider activation.
        z_anc = set(zs)
        for z in zs:
            z_anc |= self.ancestors(z)

        # States: (node, 'up') entered from a child; (node, 'down') from a parent.
        start = [(n, "up") for n in xs]
        visited: set[tuple[Node, str]] = set()
        while start:
            node, direction = start.pop()
            if (node, direction) in visited:
                continue
            visited.add((node, direction))
            if node not in zs and node in ys:
                return False
            if direction == "up" and node not in zs:
                for p in self._parents[node]:
                    start.append((p, "up"))
                for c in self._children[node]:
                    start.append((c, "down"))
            elif direction == "down":
                if node not in zs:
                    for c in self._children[node]:
                        start.append((c, "down"))
                if node in z_anc:  # collider with observed descendant: trail opens upward
                    for p in self._parents[node]:
                        start.append((p, "up"))
        return True

    # ------------------------------------------------------------------ #
    # Copies / conversions / comparisons
    # ------------------------------------------------------------------ #

    def copy(self) -> "DAG":
        return DAG(nodes=self.nodes, edges=self.edges)

    def subgraph(self, nodes: Iterable[Node]) -> "DAG":
        """Induced subgraph on ``nodes``."""
        keep = set(nodes)
        for n in keep:
            self._check(n)
        return DAG(
            nodes=[n for n in self.nodes if n in keep],
            edges=[(u, v) for u, v in self.edges if u in keep and v in keep],
        )

    def to_networkx(self):
        """Return an equivalent :class:`networkx.DiGraph`."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self.nodes)
        g.add_edges_from(self.edges)
        return g

    def adjacency_matrix(self, order: "Iterable[Node] | None" = None) -> np.ndarray:
        """0/1 matrix with ``A[i, j] == 1`` iff ``order[i] -> order[j]``."""
        names = list(order) if order is not None else list(self.nodes)
        index = {n: i for i, n in enumerate(names)}
        mat = np.zeros((len(names), len(names)), dtype=int)
        for u, v in self.edges:
            if u in index and v in index:
                mat[index[u], index[v]] = 1
        return mat

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAG):
            return NotImplemented
        return set(self.nodes) == set(other.nodes) and set(self.edges) == set(other.edges)

    def __repr__(self) -> str:
        return f"DAG(n_nodes={self.n_nodes}, n_edges={self.n_edges})"

    def __iter__(self) -> Iterator[Node]:
        return iter(self._parents)

    # ------------------------------------------------------------------ #
    # Random generation (used by Fig. 5's "randomly generated KERT-BNs")
    # ------------------------------------------------------------------ #

    @classmethod
    def random(
        cls,
        nodes: Iterable[Node],
        edge_prob: float,
        rng: np.random.Generator,
        max_parents: "int | None" = None,
    ) -> "DAG":
        """Sample a random DAG by orienting edges along a random order.

        Each pair (earlier, later) in a random permutation receives an edge
        with probability ``edge_prob``, optionally capped at ``max_parents``
        incoming edges per node.
        """
        names = list(nodes)
        if not 0.0 <= edge_prob <= 1.0:
            raise GraphError(f"edge_prob must be in [0, 1], got {edge_prob}")
        perm = [names[i] for i in rng.permutation(len(names))]
        dag = cls(nodes=names)
        for j in range(1, len(perm)):
            candidates = perm[:j]
            mask = rng.random(len(candidates)) < edge_prob
            chosen = [c for c, m in zip(candidates, mask) if m]
            if max_parents is not None and len(chosen) > max_parents:
                idx = rng.choice(len(chosen), size=max_parents, replace=False)
                chosen = [chosen[i] for i in sorted(idx)]
            for c in chosen:
                dag.add_edge(c, perm[j])
        return dag
