"""SLO budget decomposition: invert ``D = f(X)`` into per-service budgets.

The KERT-BN composes per-service time distributions into the end-to-end
delay ``D = f(X)`` (Eq. 4); the SLO monitor judges the *end-to-end*
objective ``P(D > sla) <= target``.  This module runs the composition
backwards (Andre et al., "Automated synthesis of local time requirement
for service composition"): it synthesizes per-service budgets ``b_i``
such that

1. **composition invariant** — ``f`` is monotone nondecreasing in every
   coordinate (sums, maxes, nonnegative scales/weights), so whenever
   every service honors its budget (``X_i <= b_i``) the recomposed bound
   ``g(b) <= sla`` guarantees ``D <= sla`` deterministically; and
2. **probability budget** — the per-service tail masses
   ``eps_i = P(X_i > b_i)`` (under the model's marginals) union-bound
   the end-to-end breach: ``P(D > sla) <= sum_i eps_i <= target``.

Budgets are *maximal* subject to (1): every service gets the same slack
multiplier ``lambda`` over its marginal (``b_i = mu_i + lambda *
sigma_i``) and ``lambda`` is pushed up until the recomposition pins the
SLA — the weakest local requirements that still guarantee the global
one, which is exactly what makes a budget overrun diagnostic: a service
only burns its budget when it is eating into the end-to-end allocation.
The allocation is *feasible* when the maximal slack still satisfies (2).

For choice constructs the workflow-aware composition
(:func:`budget_composition`) is tighter than ``f`` itself: measurement
mode reduces a choice to the sum over branches (untaken branches
measure zero), but a budget only ever covers the one branch that runs,
so the recomposition takes the max over branch bounds instead.  Loaded
bundles that carry only the bare expression fall back to ``g = f``,
which stays sound by monotonicity.

Posterior blame — the share of breach probability attributable to each
service, ``P(X_i > b_i | D > sla)`` — comes from the compiled discrete
engine's joint tables (:func:`discrete_blame`) or from the Gaussian
moment propagation's covariances (:func:`normal_blame`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np
from scipy.stats import multivariate_normal, norm

from repro.exceptions import ReproError
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    WorkflowNode,
)
from repro.workflow.expressions import Expression, Max, Sum, Var, simplify

__all__ = [
    "ServiceBudget",
    "BudgetAllocation",
    "budget_composition",
    "allocate_budgets",
    "derive_budgets",
    "model_marginals",
    "discrete_blame",
    "normal_blame",
]

#: Bisection iterations for the maximal slack multiplier; 60 halvings
#: of the bracketing interval put lambda within ~1e-15 relative.
_BISECT_ITERS = 60
#: Doubling cap while bracketing lambda_max — 2**60 slack units means
#: the SLA is unreachably far above the workflow's scale (e.g. a parked
#: 1e6-second policy); budgets are then effectively unbounded.
_MAX_DOUBLINGS = 60


@dataclass(frozen=True)
class ServiceBudget:
    """One service's local time requirement."""

    service: str
    budget: float       # b_i: local bound (seconds)
    mean: float         # marginal mean under the reference model
    std: float          # marginal std under the reference model
    tail_mass: float    # eps_i = P(X_i > b_i) under the reference marginal

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "budget": self.budget,
            "mean": self.mean,
            "std": self.std,
            "tail_mass": self.tail_mass,
        }


@dataclass(frozen=True)
class BudgetAllocation:
    """A synthesized per-service budget vector plus its audit trail.

    ``composed`` is the recomposition ``g(b)`` — the worst-case
    end-to-end delay when every budget holds; ``tail_total`` the
    union-bound breach mass ``sum_i P(X_i > b_i)``.  ``feasible`` means
    both invariants hold: ``composed <= sla`` and ``tail_total <=
    target``.
    """

    sla: float
    target: float
    slack: float          # shared z-multiplier lambda
    composed: float       # g(b): recomposed end-to-end bound
    tail_total: float     # union-bound P(D > sla) given the budgets
    feasible: bool
    expression: str       # printable form of the composition g
    budgets: tuple[ServiceBudget, ...]

    def budget_for(self, service: str) -> ServiceBudget:
        for sb in self.budgets:
            if sb.service == service:
                return sb
        raise ReproError(f"no budget allocated for service {service!r}")

    def as_mapping(self) -> dict[str, float]:
        return {sb.service: sb.budget for sb in self.budgets}

    def to_dict(self) -> dict:
        return {
            "sla": self.sla,
            "target": self.target,
            "slack": self.slack,
            "composed": self.composed,
            "tail_total": self.tail_total,
            "feasible": self.feasible,
            "expression": self.expression,
            "budgets": [sb.to_dict() for sb in self.budgets],
        }

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "BudgetAllocation":
        return cls(
            sla=float(spec["sla"]),
            target=float(spec["target"]),
            slack=float(spec["slack"]),
            composed=float(spec["composed"]),
            tail_total=float(spec["tail_total"]),
            feasible=bool(spec["feasible"]),
            expression=str(spec["expression"]),
            budgets=tuple(
                ServiceBudget(
                    service=str(b["service"]),
                    budget=float(b["budget"]),
                    mean=float(b["mean"]),
                    std=float(b["std"]),
                    tail_mass=float(b["tail_mass"]),
                )
                for b in spec["budgets"]
            ),
        )


# --------------------------------------------------------------------- #
# Composition (the structural inverse of the Cardoso reduction)
# --------------------------------------------------------------------- #


def budget_composition(workflow: WorkflowNode) -> Expression:
    """The budget-recomposition bound ``g`` over the workflow structure.

    Mirrors the measurement-mode Cardoso reduction except for choice:
    sequence -> sum, parallel -> max, loop -> body (measured totals
    already accumulate the iterations), but **choice -> max** over the
    branch bounds — exactly one branch runs per transaction, so a
    transaction's contribution is covered by the largest branch budget,
    not the sum the measurement-mode ``f`` uses over its all-but-one-
    zero columns.  For any totals vector with ``x_i <= b_i`` (and at
    most one live choice branch), ``f(x) <= g(b)``.
    """
    if isinstance(workflow, Activity):
        return Var(workflow.name)
    if isinstance(workflow, Sequence):
        terms = [budget_composition(s) for s in workflow.steps]
        return terms[0] if len(terms) == 1 else Sum(terms)
    if isinstance(workflow, Parallel):
        branches = [budget_composition(b) for b in workflow.branches]
        return branches[0] if len(branches) == 1 else Max(branches)
    if isinstance(workflow, Choice):
        branches = [budget_composition(b) for b in workflow.branches]
        return branches[0] if len(branches) == 1 else Max(branches)
    if isinstance(workflow, Loop):
        return budget_composition(workflow.body)
    raise ReproError(f"cannot derive a budget bound for {type(workflow)!r}")


def _compose(g: Expression, values: Mapping[str, float]) -> float:
    arrays = {name: np.asarray([float(v)]) for name, v in values.items()}
    return float(np.asarray(g(arrays))[0])


# --------------------------------------------------------------------- #
# Allocation (bisection on the shared slack multiplier)
# --------------------------------------------------------------------- #


def allocate_budgets(
    composition: Expression,
    marginals: Mapping[str, tuple[float, float]],
    sla: float,
    target: float,
    min_sigma_fraction: float = 0.01,
) -> BudgetAllocation:
    """Synthesize maximal per-service budgets under ``composition``.

    ``marginals`` maps each service to its reference ``(mean, std)``.
    ``min_sigma_fraction`` floors each std at that fraction of the mean
    so near-deterministic services still receive nonzero headroom.
    """
    if not sla > 0:
        raise ReproError(f"sla must be > 0, got {sla}")
    if not 0.0 < target < 1.0:
        raise ReproError(f"target must be in (0, 1), got {target}")
    services = tuple(sorted(composition.inputs))
    if not services:
        raise ReproError("composition has no service inputs")
    missing = [s for s in services if s not in marginals]
    if missing:
        raise ReproError(f"no marginals for services {missing}")
    mu = {s: float(marginals[s][0]) for s in services}
    sigma = {
        s: max(
            float(marginals[s][1]),
            min_sigma_fraction * abs(mu[s]),
            1e-12,
        )
        for s in services
    }

    def compose(lam: float) -> float:
        return _compose(
            composition, {s: mu[s] + lam * sigma[s] for s in services}
        )

    base = compose(0.0)
    if base > sla:
        # Even zero-slack budgets (b_i = mu_i) recompose above the SLA:
        # the objective is structurally unreachable for this model.
        lam = 0.0
        feasible = False
    else:
        lo, hi = 0.0, 1.0
        for _ in range(_MAX_DOUBLINGS):
            if compose(hi) > sla:
                break
            lo, hi = hi, hi * 2.0
        if compose(hi) <= sla:
            lam = hi  # SLA unreachably far above the workflow's scale
        else:
            for _ in range(_BISECT_ITERS):
                mid = 0.5 * (lo + hi)
                if compose(mid) <= sla:
                    lo = mid
                else:
                    hi = mid
            lam = lo
        feasible = True
    tails = {
        s: (float(norm.sf(lam)) if marginals[s][1] > 0 or mu[s] > 0 else 0.0)
        for s in services
    }
    tail_total = float(sum(tails.values()))
    composed = compose(lam)
    feasible = (
        feasible
        and composed <= sla * (1 + 1e-9)
        and tail_total <= target + 1e-12
    )
    budgets = tuple(
        ServiceBudget(
            service=s,
            budget=mu[s] + lam * sigma[s],
            mean=mu[s],
            std=float(marginals[s][1]),
            tail_mass=tails[s],
        )
        for s in services
    )
    return BudgetAllocation(
        sla=float(sla),
        target=float(target),
        slack=float(lam),
        composed=float(composed),
        tail_total=tail_total,
        feasible=bool(feasible),
        expression=simplify(composition).to_string(),
        budgets=budgets,
    )


# --------------------------------------------------------------------- #
# Model-facing helpers (duck-typed over KERTBN to keep layering flat)
# --------------------------------------------------------------------- #


def model_marginals(model: Any) -> dict[str, tuple[float, float]]:
    """Per-service ``(mean, std)`` marginals from a built KERT-BN.

    Continuous models use the exact service-layer joint Gaussian;
    discrete models take moments of each compiled-engine prior over the
    discretizer's bin centers.
    """
    network = model.network
    if hasattr(network, "service_subnetwork"):
        from repro.bn.inference.gaussian import joint_gaussian

        names, mean, cov = joint_gaussian(network.service_subnetwork())
        return {
            str(n): (
                float(mean[i]),
                math.sqrt(max(float(cov[i, i]), 0.0)),
            )
            for i, n in enumerate(names)
        }
    if model.discretizer is None:
        raise ReproError(
            "discrete model carries no discretizer; cannot recover "
            "service marginals in original units"
        )
    engine = network.compiled()
    out: dict[str, tuple[float, float]] = {}
    for name in sorted(model.f.expression.inputs):
        pmf = np.asarray(engine.prior(name).values, dtype=float)
        centers = np.asarray(model.discretizer.centers(name), dtype=float)
        m = float(pmf @ centers)
        var = float(pmf @ (centers - m) ** 2)
        out[name] = (m, math.sqrt(max(var, 0.0)))
    return out


def derive_budgets(model: Any, sla: float, target: float) -> BudgetAllocation:
    """Invert a built KERT-BN into a :class:`BudgetAllocation`.

    Uses the workflow-aware composition when the model still carries its
    AST (freshly built), or the bare expression (loaded bundles) — both
    sound, the former tighter for choice constructs.
    """
    f = getattr(model, "f", None)
    if f is None or getattr(f, "expression", None) is None:
        raise ReproError(
            "budget derivation needs a KERT-BN (a model with the "
            "workflow response function f); NRT-BN models have no "
            "structure to invert"
        )
    composition = (
        budget_composition(f.workflow)
        if f.workflow is not None
        else f.expression
    )
    return allocate_budgets(
        composition, model_marginals(model), sla=sla, target=target
    )


# --------------------------------------------------------------------- #
# Posterior blame: P(X_i > b_i | D > sla)
# --------------------------------------------------------------------- #


def _exceedance_weights(edges: np.ndarray, threshold: float) -> np.ndarray:
    """Per-bin fraction of bin width above ``threshold`` (uniform-in-bin).

    Center classification would round ``P(X > t)`` to whole bins — with
    a handful of quantile bins that rounds budget-scale thresholds
    (which sit deep in the top bin) straight to zero.  The linear
    within-bin fraction keeps the exceedance mass smooth in ``t``.
    """
    lo, hi = edges[:-1], edges[1:]
    width = np.maximum(hi - lo, 1e-300)
    return np.clip((hi - float(threshold)) / width, 0.0, 1.0)


def discrete_blame(
    engine: Any,
    discretizer: Any,
    response: str,
    budgets: Mapping[str, float],
    sla: float,
) -> dict[str, float]:
    """Per-service blame from the compiled engine's joint tables.

    For each service the engine answers the evidence-free joint
    ``P(X_i, D)`` (one cached plan per service); exceedance masses are
    taken uniform-within-bin over the discretizer's edges, and the
    blame is the conditional mass ``P(X_i > b_i | D > sla)``.
    """
    d_w = _exceedance_weights(
        np.asarray(discretizer.edges(response), dtype=float), sla
    )
    blame: dict[str, float] = {}
    for service, bound in budgets.items():
        factor = engine.query([service, response])
        values = np.asarray(factor.values, dtype=float)
        axes = tuple(factor.variables)
        if axes != (service, response):
            values = np.transpose(
                values, (axes.index(service), axes.index(response))
            )
        s_w = _exceedance_weights(
            np.asarray(discretizer.edges(service), dtype=float), bound
        )
        p_breach = float((values @ d_w).sum())
        if p_breach <= 0.0:
            blame[service] = 0.0
            continue
        joint = float(s_w @ values @ d_w)
        blame[service] = min(max(joint / p_breach, 0.0), 1.0)
    return blame


def normal_blame(
    moments: Mapping[str, tuple[float, float, float]],
    d_mean: float,
    d_var: float,
    budgets: Mapping[str, float],
    sla: float,
) -> dict[str, float]:
    """Per-service blame under the Gaussian moment summary.

    ``moments`` maps each service to ``(mean, var, cov(X_i, D))`` as
    produced by :meth:`repro.apps.assessment.RapidAssessor.
    response_moments`; the joint of ``(X_i, D)`` is approximated as
    bivariate normal (D's moments already carry the Clark max
    propagation), giving a closed-form orthant probability per service.
    """
    d_std = math.sqrt(max(float(d_var), 1e-18))
    p_breach = float(norm.sf(sla, loc=d_mean, scale=d_std))
    blame: dict[str, float] = {}
    for service, bound in budgets.items():
        if service not in moments:
            blame[service] = 0.0
            continue
        m, v, c = moments[service]
        if p_breach <= 1e-300 or v <= 0.0:
            blame[service] = 0.0
            continue
        s_std = math.sqrt(v)
        rho = max(min(c / (s_std * d_std), 0.999999), -0.999999)
        zb = (float(bound) - m) / s_std
        zt = (float(sla) - d_mean) / d_std
        # P(X > zb, D > zt) = F_{(-X,-D)}(-zb, -zt), same correlation.
        joint = float(
            multivariate_normal(
                mean=[0.0, 0.0], cov=[[1.0, rho], [rho, 1.0]]
            ).cdf([-zb, -zt])
        )
        blame[service] = min(max(joint / p_breach, 0.0), 1.0)
    return blame
