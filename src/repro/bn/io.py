"""Model persistence.

The paper stresses that the implementation "can be integrated into
autonomic solutions with minimal effort"; an autonomic manager needs to
hand models between the management server and its decision components,
and to archive the model each reconstruction produced.  This module
serializes networks (and the workflow expressions inside Eq.-4 CPDs) to
plain JSON-compatible dicts.

Deterministic CPDs embed their workflow *expression tree*, which is
reconstructed on load — so a round-tripped KERT-BN keeps its ``f`` and
stays fully functional.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bn.cpd import (
    DeterministicCPD,
    LinearGaussianCPD,
    NoisyDeterministicCPD,
    TabularCPD,
)
from repro.bn.dag import DAG
from repro.bn.network import (
    BayesianNetwork,
    DiscreteBayesianNetwork,
    GaussianBayesianNetwork,
    HybridResponseNetwork,
)
from repro.exceptions import DataError
from repro.workflow.expressions import (
    Const,
    Expression,
    Max,
    Scale,
    Sum,
    Var,
    WeightedSum,
)


# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #


def expression_to_dict(expr) -> dict:
    # Unwrap ResponseTimeFunction-style wrappers onto their expression.
    if not isinstance(expr, Expression) and hasattr(expr, "expression"):
        expr = expr.expression
    if isinstance(expr, Var):
        return {"var": expr.name}
    if isinstance(expr, Const):
        return {"const": expr.value}
    if isinstance(expr, Sum):
        return {"sum": [expression_to_dict(t) for t in expr.terms]}
    if isinstance(expr, Max):
        return {"max": [expression_to_dict(t) for t in expr.terms]}
    if isinstance(expr, Scale):
        return {"scale": expr.factor, "term": expression_to_dict(expr.term)}
    if isinstance(expr, WeightedSum):
        return {
            "weighted_sum": [
                {"weight": w, "term": expression_to_dict(t)}
                for w, t in expr.weighted_terms
            ]
        }
    raise DataError(f"cannot serialize expression {type(expr)!r}")


def expression_from_dict(spec: dict) -> Expression:
    if "var" in spec:
        return Var(spec["var"])
    if "const" in spec:
        return Const(spec["const"])
    if "sum" in spec:
        return Sum([expression_from_dict(t) for t in spec["sum"]])
    if "max" in spec:
        return Max([expression_from_dict(t) for t in spec["max"]])
    if "scale" in spec:
        return Scale(spec["scale"], expression_from_dict(spec["term"]))
    if "weighted_sum" in spec:
        return WeightedSum(
            [(e["weight"], expression_from_dict(e["term"]))
             for e in spec["weighted_sum"]]
        )
    raise DataError(f"unknown expression spec keys {sorted(spec)}")


# --------------------------------------------------------------------- #
# CPDs
# --------------------------------------------------------------------- #


def cpd_to_dict(cpd) -> dict:
    if isinstance(cpd, TabularCPD):
        return {
            "kind": "tabular",
            "variable": cpd.variable,
            "cardinality": cpd.cardinality,
            "parents": list(cpd.parents),
            "parent_cardinalities": list(cpd.parent_cardinalities),
            "values": cpd.values.tolist(),
        }
    if isinstance(cpd, LinearGaussianCPD):
        return {
            "kind": "linear_gaussian",
            "variable": cpd.variable,
            "intercept": cpd.intercept,
            "coefficients": cpd.coefficients.tolist(),
            "variance": cpd.variance,
            "parents": list(cpd.parents),
        }
    if isinstance(cpd, DeterministicCPD):
        return {
            "kind": "deterministic",
            "variable": cpd.variable,
            "parents": list(cpd.parents),
            "expression": expression_to_dict(cpd.function),
            "parent_centers": {p: c.tolist() for p, c in cpd.parent_centers.items()},
            "child_edges": cpd.child_edges.tolist(),
            "leak": cpd.leak,
            "leak_decay": cpd.leak_decay,
            "transition": cpd._transition.tolist(),
        }
    if isinstance(cpd, NoisyDeterministicCPD):
        return {
            "kind": "noisy_deterministic",
            "variable": cpd.variable,
            "parents": list(cpd.parents),
            "expression": expression_to_dict(cpd.function),
            "variance": cpd.variance,
        }
    raise DataError(f"cannot serialize CPD {type(cpd)!r}")


def cpd_from_dict(spec: dict):
    kind = spec.get("kind")
    if kind == "tabular":
        return TabularCPD(
            spec["variable"],
            spec["cardinality"],
            np.asarray(spec["values"]),
            tuple(spec["parents"]),
            tuple(spec["parent_cardinalities"]),
        )
    if kind == "linear_gaussian":
        return LinearGaussianCPD(
            spec["variable"],
            spec["intercept"],
            spec["coefficients"],
            spec["variance"],
            tuple(spec["parents"]),
        )
    if kind == "deterministic":
        return DeterministicCPD(
            spec["variable"],
            expression_from_dict(spec["expression"]),
            tuple(spec["parents"]),
            {p: np.asarray(c) for p, c in spec["parent_centers"].items()},
            np.asarray(spec["child_edges"]),
            leak=spec["leak"],
            leak_decay=spec["leak_decay"],
            transition=np.asarray(spec["transition"]),
        )
    if kind == "noisy_deterministic":
        return NoisyDeterministicCPD(
            spec["variable"],
            expression_from_dict(spec["expression"]),
            tuple(spec["parents"]),
            variance=spec["variance"],
        )
    raise DataError(f"unknown CPD kind {kind!r}")


# --------------------------------------------------------------------- #
# Networks
# --------------------------------------------------------------------- #

_NETWORK_KINDS = {
    "discrete": DiscreteBayesianNetwork,
    "gaussian": GaussianBayesianNetwork,
    "hybrid": HybridResponseNetwork,
    "generic": BayesianNetwork,
}


def network_to_dict(network: BayesianNetwork) -> dict:
    if isinstance(network, HybridResponseNetwork):
        kind = "hybrid"
    elif isinstance(network, DiscreteBayesianNetwork):
        kind = "discrete"
    elif isinstance(network, GaussianBayesianNetwork):
        kind = "gaussian"
    else:
        kind = "generic"
    out: dict[str, Any] = {
        "kind": kind,
        "nodes": [str(n) for n in network.dag.nodes],
        "edges": [[str(u), str(v)] for u, v in network.dag.edges],
        "cpds": [cpd_to_dict(network.cpd(str(n))) for n in network.dag.nodes],
    }
    if kind == "hybrid":
        out["response"] = network.response
    return out


def network_from_dict(spec: dict) -> BayesianNetwork:
    kind = spec.get("kind", "generic")
    if kind not in _NETWORK_KINDS:
        raise DataError(f"unknown network kind {kind!r}")
    dag = DAG(nodes=spec["nodes"], edges=[tuple(e) for e in spec["edges"]])
    cpds = [cpd_from_dict(c) for c in spec["cpds"]]
    cls = _NETWORK_KINDS[kind]
    if kind == "hybrid":
        return HybridResponseNetwork(dag, cpds, response=spec["response"])
    return cls(dag, cpds)
