"""Linear-Gaussian conditional probability distributions.

``X | parents = u  ~  N(intercept + coeffs · u, variance)`` — the CPD
family of the paper's *continuous* KERT-BN / NRT-BN simulation study
(Section 4.1).  Few parameters mean fast convergence with small training
sets, which is exactly the property the paper exploits for frequently
rebuilt models.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np

from repro.bn.cpd.base import CPD
from repro.exceptions import CPDError

_LOG_2PI = math.log(2.0 * math.pi)


class LinearGaussianCPD(CPD):
    """Gaussian child with mean linear in its parents."""

    def __init__(
        self,
        variable: str,
        intercept: float,
        coefficients: Iterable[float] = (),
        variance: float = 1.0,
        parents: Iterable[str] = (),
    ):
        super().__init__(variable, tuple(parents))
        self.intercept = float(intercept)
        self.coefficients = np.asarray(list(coefficients), dtype=float)
        if self.coefficients.shape != (len(self.parents),):
            raise CPDError(
                f"{variable!r}: {len(self.parents)} parents but "
                f"{self.coefficients.size} coefficients"
            )
        if not variance > 0:
            raise CPDError(f"{variable!r}: variance must be > 0, got {variance}")
        self.variance = float(variance)

    # ------------------------------------------------------------------ #

    @property
    def n_parameters(self) -> int:
        # intercept + one coefficient per parent + variance
        return 2 + len(self.parents)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def mean_given(self, parent_values: Mapping[str, float]) -> float:
        """Conditional mean at a single parent assignment."""
        mu = self.intercept
        for p, w in zip(self.parents, self.coefficients):
            if p not in parent_values:
                raise CPDError(f"missing parent value for {p!r}")
            mu += w * float(parent_values[p])
        return mu

    def _means(self, data) -> np.ndarray:
        """Vectorized conditional means for a whole dataset."""
        n = data.n_rows
        mu = np.full(n, self.intercept, dtype=float)
        for p, w in zip(self.parents, self.coefficients):
            mu += w * np.asarray(data[p], dtype=float)
        return mu

    def log_likelihood(self, data) -> np.ndarray:
        x = np.asarray(data[self.variable], dtype=float)
        mu = self._means(data)
        resid = x - mu
        return -0.5 * (_LOG_2PI + math.log(self.variance) + resid * resid / self.variance)

    def sample(self, parent_values, n: int, rng: np.random.Generator) -> np.ndarray:
        mu = np.full(n, self.intercept, dtype=float)
        for p, w in zip(self.parents, self.coefficients):
            mu = mu + w * np.asarray(parent_values[p], dtype=float)
        return mu + rng.normal(0.0, self.std, size=n)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearGaussianCPD):
            return NotImplemented
        return (
            self.variable == other.variable
            and self.parents == other.parents
            and math.isclose(self.intercept, other.intercept, rel_tol=1e-9, abs_tol=1e-12)
            and np.allclose(self.coefficients, other.coefficients)
            and math.isclose(self.variance, other.variance, rel_tol=1e-9, abs_tol=1e-12)
        )
