"""Abstract conditional probability distribution interface.

Every CPD knows its child variable and ordered parent tuple and supports
three operations used throughout the library:

- ``log_likelihood(dataset)`` — vectorized per-row log-density /
  log-mass of the child given its parents (the building block of the
  paper's data-fitting accuracy metric ``log10 p(TestData | BN)``);
- ``sample(parent_values, rng)`` — draw child values given parent draws
  (forward sampling);
- ``n_parameters`` — free-parameter count, used by BIC-style scores.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.bn.data import Dataset


class CPD(abc.ABC):
    """Base class for conditional probability distributions."""

    def __init__(self, variable: str, parents: tuple[str, ...]):
        self.variable = str(variable)
        self.parents = tuple(str(p) for p in parents)
        if self.variable in self.parents:
            raise ValueError(f"{self.variable!r} cannot be its own parent")
        if len(set(self.parents)) != len(self.parents):
            raise ValueError(f"duplicate parents for {self.variable!r}")

    @property
    @abc.abstractmethod
    def n_parameters(self) -> int:
        """Number of free parameters (for model-complexity penalties)."""

    @abc.abstractmethod
    def log_likelihood(self, data: "Dataset") -> np.ndarray:
        """Per-row natural-log likelihood of the child given its parents."""

    @abc.abstractmethod
    def sample(
        self, parent_values: dict[str, np.ndarray], n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` child values; ``parent_values`` maps each parent to
        an ``(n,)`` array of already-sampled values."""

    def __repr__(self) -> str:
        pa = ", ".join(self.parents) if self.parents else "∅"
        return f"{type(self).__name__}({self.variable} | {pa})"
