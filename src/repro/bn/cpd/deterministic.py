"""Workflow-given (noisy-)deterministic CPDs — the paper's Eq. 4.

The heavyweight CPD ``P(D | X_1..X_n)`` need not be learned when precise
workflow knowledge supplies a deterministic link ``D = f(X)`` (Section
3.3).  Two realizations:

- :class:`DeterministicCPD` — discrete: probability mass ``1 - l`` on the
  bin containing ``f(x)`` and leak ``l`` spread over the other bins, for
  a leak probability ``l`` capturing measurement noise.
- :class:`NoisyDeterministicCPD` — continuous: ``D = f(X) + N(0, σ²)``.
  Matlab BNT could not express nonlinear deterministic CPDs (paper,
  Section 5), which is why the paper fell back to discrete models there;
  this class removes that restriction while keeping D's "learning" to a
  single O(N) residual-variance pass.

The ``function`` argument is any callable mapping a
``{name: (n,) ndarray}`` dict to an ``(n,)`` ndarray — in practice a
:class:`repro.workflow.response_time.ResponseTimeFunction`.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.bn.cpd.base import CPD
from repro.bn.factors import DiscreteFactor
from repro.exceptions import CPDError

_LOG_2PI = math.log(2.0 * math.pi)

ArrayFunction = Callable[[Mapping[str, np.ndarray]], np.ndarray]


class DeterministicCPD(CPD):
    """Discrete Eq.-4 CPD: ``P(D = f(X) | X) = 1 - l``, leak ``l``.

    Parents and child are bin indices; ``parent_centers`` maps each
    parent's state index to a representative (bin-center) value so that
    ``f`` can be evaluated in the original continuous units, and
    ``child_edges`` re-bins the result.
    """

    def __init__(
        self,
        variable: str,
        function: ArrayFunction,
        parents: Iterable[str],
        parent_centers: Mapping[str, np.ndarray],
        child_edges: np.ndarray,
        leak: float = 0.0,
        leak_decay: float = 0.5,
        transition: "np.ndarray | None" = None,
    ):
        super().__init__(variable, tuple(parents))
        if not self.parents:
            raise CPDError("a deterministic CPD needs at least one parent")
        if not 0.0 <= leak < 1.0:
            raise CPDError(f"leak must be in [0, 1), got {leak}")
        if not 0.0 < leak_decay <= 1.0:
            raise CPDError(f"leak_decay must be in (0, 1], got {leak_decay}")
        self.function = function
        self.leak = float(leak)
        self.leak_decay = float(leak_decay)
        self.child_edges = np.asarray(child_edges, dtype=float)
        if self.child_edges.ndim != 1 or self.child_edges.size < 2:
            raise CPDError("child_edges must be a 1-D array of >= 2 edges")
        if np.any(np.diff(self.child_edges) <= 0):
            raise CPDError("child_edges must be strictly increasing")
        self.cardinality = self.child_edges.size - 1
        self.parent_centers = {}
        for p in self.parents:
            if p not in parent_centers:
                raise CPDError(f"missing parent_centers for {p!r}")
            centers = np.asarray(parent_centers[p], dtype=float)
            if centers.ndim != 1 or centers.size < 1:
                raise CPDError(f"parent_centers[{p!r}] must be a 1-D array")
            self.parent_centers[p] = centers
        if transition is not None:
            t = np.asarray(transition, dtype=float)
            if t.shape != (self.cardinality, self.cardinality):
                raise CPDError(
                    f"transition must be {(self.cardinality,) * 2}, got {t.shape}"
                )
            if np.any(t < 0) or not np.allclose(t.sum(axis=1), 1.0, atol=1e-8):
                raise CPDError("transition rows must be pmfs")
            self._transition = t
        else:
            self._transition = self._build_transition()

    def _build_transition(self) -> np.ndarray:
        """``T[k, j] = P(D = j | predicted bin k)``.

        The hit bin keeps mass ``1 - l``; the leak ``l`` spreads over the
        other bins with geometric decay in bin distance (``leak_decay=1``
        recovers the uniform spread).  Monitoring noise perturbs ``f``
        slightly, so real misses land next door far more often than far
        away — the decayed spread encodes that without learning anything.
        """
        m = self.cardinality
        if m == 1:
            return np.ones((1, 1))
        k = np.arange(m)
        dist = np.abs(k[:, None] - k[None, :]).astype(float)
        weights = np.where(dist > 0, self.leak_decay ** (dist - 1.0), 0.0)
        z = weights.sum(axis=1, keepdims=True)
        table = self.leak * weights / z
        table[k, k] = 1.0 - self.leak
        return table

    @property
    def parent_cardinalities(self) -> tuple[int, ...]:
        return tuple(self.parent_centers[p].size for p in self.parents)

    @property
    def n_parameters(self) -> int:
        # Only the leak calibration is free; f is given by the workflow.
        # (m·(m−1) for a calibrated confusion matrix, 1 for a scalar leak
        # — both independent of the number of parents, which is the point.)
        return self.cardinality * (self.cardinality - 1)

    # ------------------------------------------------------------------ #

    def _child_bin_for_states(self, parent_states: Mapping[str, np.ndarray]) -> np.ndarray:
        """Map parent state indices to the child's bin of ``f``(centers)."""
        values = {
            p: self.parent_centers[p][np.asarray(parent_states[p], dtype=int)]
            for p in self.parents
        }
        fx = np.asarray(self.function(values), dtype=float)
        bins = np.digitize(fx, self.child_edges[1:-1])
        return np.clip(bins, 0, self.cardinality - 1)

    def prob_vector(self, parent_states: Mapping[str, int]) -> np.ndarray:
        """Full conditional pmf of the child at one parent configuration."""
        one = {p: np.asarray([parent_states[p]]) for p in self.parents}
        k = int(self._child_bin_for_states(one)[0])
        return self._transition[k].copy()

    def log_likelihood(self, data) -> np.ndarray:
        child = np.asarray(data[self.variable], dtype=int)
        k = self._child_bin_for_states({p: data[p] for p in self.parents})
        probs = self._transition[k, child]
        with np.errstate(divide="ignore"):
            return np.log(probs)

    def sample(self, parent_values, n: int, rng: np.random.Generator) -> np.ndarray:
        k = self._child_bin_for_states(parent_values)
        if self.leak == 0.0 or self.cardinality == 1:
            return k
        cond = self._transition[k]  # (n, card)
        u = rng.random(n)
        cum = np.cumsum(cond, axis=1)
        return (u[:, None] < cum).argmax(axis=1)

    def to_factor(self, max_size: int = 2_000_000) -> DiscreteFactor:
        """Materialize φ(D, parents) — only feasible for small parent sets."""
        cards = self.parent_cardinalities
        size = self.cardinality * int(np.prod(cards))
        if size > max_size:
            raise CPDError(
                f"deterministic CPD table would have {size} entries; "
                f"refusing to materialize (limit {max_size})"
            )
        grids = np.meshgrid(*[np.arange(c) for c in cards], indexing="ij")
        flat_states = {p: g.ravel() for p, g in zip(self.parents, grids)}
        k = self._child_bin_for_states(flat_states)  # (n_configs,)
        table = self._transition[k].T  # (card, n_configs)
        return DiscreteFactor(
            (self.variable, *self.parents),
            (self.cardinality, *cards),
            table.reshape((self.cardinality, *cards)),
        )


class NoisyDeterministicCPD(CPD):
    """Continuous Eq.-4 analogue: ``X = f(parents) + N(0, σ²)``."""

    def __init__(
        self,
        variable: str,
        function: ArrayFunction,
        parents: Iterable[str],
        variance: float = 1e-6,
    ):
        super().__init__(variable, tuple(parents))
        if not self.parents:
            raise CPDError("a deterministic CPD needs at least one parent")
        if not variance > 0:
            raise CPDError(f"variance must be > 0, got {variance}")
        self.function = function
        self.variance = float(variance)

    @property
    def n_parameters(self) -> int:
        # Only the residual variance is free; f comes from the workflow.
        return 1

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def predict(self, parent_values: Mapping[str, np.ndarray]) -> np.ndarray:
        """Deterministic part ``f``(parents), vectorized."""
        return np.asarray(
            self.function({p: np.asarray(parent_values[p], dtype=float)
                           for p in self.parents}),
            dtype=float,
        )

    def log_likelihood(self, data) -> np.ndarray:
        x = np.asarray(data[self.variable], dtype=float)
        mu = self.predict({p: data[p] for p in self.parents})
        resid = x - mu
        return -0.5 * (_LOG_2PI + math.log(self.variance) + resid * resid / self.variance)

    def sample(self, parent_values, n: int, rng: np.random.Generator) -> np.ndarray:
        mu = self.predict(parent_values)
        return mu + rng.normal(0.0, self.std, size=n)

    @classmethod
    def fit_variance(
        cls,
        variable: str,
        function: ArrayFunction,
        parents: Iterable[str],
        data,
        min_variance: float = 1e-9,
    ) -> "NoisyDeterministicCPD":
        """One-pass residual-variance estimate — D's entire "learning".

        This is the cheap O(N) substitute for the heavyweight
        ``P(D | X_1..X_n)`` learning that Eq. 4 eliminates.
        """
        parents = tuple(parents)
        cpd = cls(variable, function, parents, variance=1.0)
        mu = cpd.predict({p: data[p] for p in parents})
        resid = np.asarray(data[variable], dtype=float) - mu
        cpd.variance = max(float(np.mean(resid * resid)), min_variance)
        return cpd
