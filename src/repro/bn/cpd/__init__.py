"""Conditional probability distributions.

Four families cover everything the paper needs:

- :class:`TabularCPD` — discrete ``P(X | parents)`` used by the
  discrete Section-5 models and by NRT-BN's discrete variant.
- :class:`LinearGaussianCPD` — continuous Gaussian CPDs, the paper's
  choice for the simulation study (Section 4.1).
- :class:`DeterministicCPD` — Eq. 4's workflow-given discrete CPD:
  ``P(D = f(X) | X) = 1 - l`` with leak ``l``.
- :class:`NoisyDeterministicCPD` — the continuous analogue
  ``D = f(X) + N(0, σ²)``, standing in for the nonlinear deterministic
  CPDs Matlab BNT could not represent (paper, Section 5).
"""

from repro.bn.cpd.base import CPD
from repro.bn.cpd.tabular import TabularCPD
from repro.bn.cpd.linear_gaussian import LinearGaussianCPD
from repro.bn.cpd.deterministic import DeterministicCPD, NoisyDeterministicCPD

__all__ = [
    "CPD",
    "TabularCPD",
    "LinearGaussianCPD",
    "DeterministicCPD",
    "NoisyDeterministicCPD",
]
