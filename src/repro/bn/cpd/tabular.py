"""Tabular (discrete) conditional probability distributions.

``values`` has shape ``(card(X), card(P1), ..., card(Pk))``: axis 0 is the
child, the remaining axes follow ``parents`` order.  Columns over axis 0
sum to one for every parent configuration.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.bn.cpd.base import CPD
from repro.bn.factors import DiscreteFactor
from repro.exceptions import CPDError


class TabularCPD(CPD):
    """Discrete ``P(X | parents)`` stored as a normalized table."""

    def __init__(
        self,
        variable: str,
        cardinality: int,
        values: np.ndarray,
        parents: Iterable[str] = (),
        parent_cardinalities: Iterable[int] = (),
        atol: float = 1e-8,
    ):
        super().__init__(variable, tuple(parents))
        self.cardinality = int(cardinality)
        self.parent_cardinalities = tuple(int(c) for c in parent_cardinalities)
        if len(self.parent_cardinalities) != len(self.parents):
            raise CPDError(
                f"{variable!r}: {len(self.parents)} parents but "
                f"{len(self.parent_cardinalities)} parent cardinalities"
            )
        expected = (self.cardinality, *self.parent_cardinalities)
        arr = np.asarray(values, dtype=float)
        if arr.shape != expected:
            try:
                arr = arr.reshape(expected)
            except ValueError:
                raise CPDError(
                    f"{variable!r}: values shape {arr.shape} != expected {expected}"
                ) from None
        if np.any(arr < -atol):
            raise CPDError(f"{variable!r}: negative probabilities")
        sums = arr.sum(axis=0)
        if not np.allclose(sums, 1.0, atol=atol):
            raise CPDError(
                f"{variable!r}: columns must sum to 1 (max deviation "
                f"{np.max(np.abs(sums - 1.0)):.3g})"
            )
        self.values = np.clip(arr, 0.0, None)

    # ------------------------------------------------------------------ #

    @property
    def n_parameters(self) -> int:
        n_configs = int(np.prod(self.parent_cardinalities)) if self.parents else 1
        return (self.cardinality - 1) * n_configs

    def prob(self, x: int, parent_states: Mapping[str, int] = ()) -> float:
        """``P(X = x | parents = parent_states)``."""
        idx: list[int] = [int(x)]
        parent_states = dict(parent_states) if parent_states else {}
        for p, c in zip(self.parents, self.parent_cardinalities):
            if p not in parent_states:
                raise CPDError(f"missing parent state for {p!r}")
            s = int(parent_states[p])
            if not 0 <= s < c:
                raise CPDError(f"state {s} out of range for parent {p!r}")
            idx.append(s)
        if not 0 <= idx[0] < self.cardinality:
            raise CPDError(f"state {x} out of range for {self.variable!r}")
        return float(self.values[tuple(idx)])

    def log_likelihood(self, data) -> np.ndarray:
        child = np.asarray(data[self.variable], dtype=int)
        idx = (child,) + tuple(
            np.asarray(data[p], dtype=int) for p in self.parents
        )
        probs = self.values[idx]
        with np.errstate(divide="ignore"):
            return np.log(probs)

    def sample(self, parent_values, n: int, rng: np.random.Generator) -> np.ndarray:
        if not self.parents:
            return rng.choice(self.cardinality, size=n, p=self.values)
        idx = tuple(np.asarray(parent_values[p], dtype=int) for p in self.parents)
        # (n, card) matrix of conditional distributions, one row per sample.
        cond = np.moveaxis(self.values, 0, -1)[idx]
        u = rng.random(n)
        cum = np.cumsum(cond, axis=1)
        return (u[:, None] < cum).argmax(axis=1)

    def to_factor(self) -> DiscreteFactor:
        """View the CPD as a factor φ(X, parents...)."""
        return DiscreteFactor(
            (self.variable, *self.parents),
            (self.cardinality, *self.parent_cardinalities),
            self.values,
        )

    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(
        cls,
        variable: str,
        cardinality: int,
        parents: Iterable[str] = (),
        parent_cardinalities: Iterable[int] = (),
    ) -> "TabularCPD":
        parents = tuple(parents)
        parent_cards = tuple(int(c) for c in parent_cardinalities)
        shape = (int(cardinality), *parent_cards)
        return cls(
            variable,
            cardinality,
            np.full(shape, 1.0 / cardinality),
            parents,
            parent_cards,
        )

    @classmethod
    def random(
        cls,
        variable: str,
        cardinality: int,
        rng: np.random.Generator,
        parents: Iterable[str] = (),
        parent_cardinalities: Iterable[int] = (),
        concentration: float = 1.0,
    ) -> "TabularCPD":
        """Dirichlet-random CPD (used to build synthetic discrete nets)."""
        parents = tuple(parents)
        parent_cards = tuple(int(c) for c in parent_cardinalities)
        n_configs = int(np.prod(parent_cards)) if parents else 1
        table = rng.dirichlet(
            np.full(int(cardinality), concentration), size=n_configs
        ).T  # (card, n_configs)
        return cls(
            variable,
            cardinality,
            table.reshape((int(cardinality), *parent_cards)),
            parents,
            parent_cards,
        )
