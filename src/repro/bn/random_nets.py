"""Random discrete-network generation for property tests and benchmarks.

The paper's Fig. 5 evaluates inference over *randomly generated*
KERT-BNs of varying width, not just the canned eDiaMoND workflow.  The
perf matrix in ``benchmarks/test_inference_matrix.py`` and the engine
property tests need the same thing: seeded, reproducible networks
sweeping **width** (node count) and **n_bins** (per-variable
cardinality), with strictly positive CPDs by default so exact-inference
cross-checks never trip the zero-probability guard rails by accident.
"""

from __future__ import annotations

import numpy as np

from repro.bn.cpd import TabularCPD
from repro.bn.dag import DAG
from repro.bn.network import DiscreteBayesianNetwork


def random_discrete_network(
    rng: np.random.Generator,
    *,
    width: int = 8,
    n_bins: int = 4,
    edge_prob: float = 0.35,
    max_parents: int = 2,
    concentration: float = 1.0,
    min_prob: float = 1e-6,
) -> DiscreteBayesianNetwork:
    """Sample a discrete BN of ``width`` nodes, each with ``n_bins`` states.

    ``max_parents`` bounds the treewidth (and hence cross-check cost) of
    the sampled nets; ``min_prob > 0`` floors every CPD column so the
    joint is strictly positive — pass ``0.0`` to allow raw Dirichlet
    draws.  Deterministic for a fixed ``rng`` state.
    """
    nodes = [f"v{i}" for i in range(int(width))]
    dag = DAG.random(nodes, edge_prob, rng, max_parents=max_parents)
    cpds = []
    for n in dag.nodes:
        parents = dag.parents(n)
        cpd = TabularCPD.random(
            n,
            int(n_bins),
            rng,
            parents,
            tuple(int(n_bins) for _ in parents),
            concentration=concentration,
        )
        if min_prob > 0.0:
            table = np.maximum(cpd.values, min_prob)
            table = table / table.sum(axis=0, keepdims=True)
            cpd = TabularCPD(
                n,
                int(n_bins),
                table,
                parents,
                tuple(int(n_bins) for _ in parents),
            )
        cpds.append(cpd)
    return DiscreteBayesianNetwork(dag, cpds)
