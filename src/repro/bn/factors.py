"""Discrete factor algebra for exact inference.

A factor is a nonnegative table over a set of discrete variables.  Variable
elimination (used by the discrete Section-5 models for dComp / pAccel
posteriors) is expressed entirely through the product / marginalize /
reduce operations defined here.

Values are stored as an ``ndarray`` whose axes correspond to
``self.variables`` in order; all operations are vectorized through
broadcasting and ``einsum``-free axis manipulation.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import InferenceError


class DiscreteFactor:
    """A factor φ(V₁, …, V_k) over named discrete variables."""

    def __init__(
        self,
        variables: Iterable[str],
        cardinalities: Iterable[int],
        values: np.ndarray,
    ):
        self.variables: tuple[str, ...] = tuple(variables)
        self.cardinalities: tuple[int, ...] = tuple(int(c) for c in cardinalities)
        if len(set(self.variables)) != len(self.variables):
            raise InferenceError(f"duplicate variables in factor: {self.variables}")
        if len(self.variables) != len(self.cardinalities):
            raise InferenceError("variables and cardinalities length mismatch")
        if any(c < 1 for c in self.cardinalities):
            raise InferenceError("cardinalities must be >= 1")
        arr = np.asarray(values, dtype=float)
        if arr.shape != self.cardinalities:
            arr = arr.reshape(self.cardinalities)
        if np.any(arr < 0):
            raise InferenceError("factor values must be nonnegative")
        self.values: np.ndarray = arr

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def cardinality(self, variable: str) -> int:
        try:
            return self.cardinalities[self.variables.index(variable)]
        except ValueError:
            raise InferenceError(f"variable {variable!r} not in factor") from None

    def scope(self) -> frozenset[str]:
        return frozenset(self.variables)

    def __repr__(self) -> str:
        return f"DiscreteFactor(variables={self.variables}, cards={self.cardinalities})"

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #

    def product(self, other: "DiscreteFactor") -> "DiscreteFactor":
        """Pointwise product aligned over the union of scopes."""
        merged: list[str] = list(self.variables)
        cards: list[int] = list(self.cardinalities)
        for v, c in zip(other.variables, other.cardinalities):
            if v in merged:
                if cards[merged.index(v)] != c:
                    raise InferenceError(
                        f"variable {v!r} has conflicting cardinalities"
                    )
            else:
                merged.append(v)
                cards.append(c)

        def aligned(factor: "DiscreteFactor") -> np.ndarray:
            # Expand to the merged scope: transpose the factor's axes into
            # their merged-scope order, then insert length-1 axes for the
            # variables it lacks so broadcasting lines everything up.
            dst = [merged.index(v) for v in factor.variables]
            arr = np.transpose(factor.values, axes=np.argsort(dst))
            shape = [1] * len(merged)
            for i, v in enumerate(factor.variables):
                shape[dst[i]] = factor.cardinalities[i]
            return arr.reshape(shape)

        values = aligned(self) * aligned(other)
        return DiscreteFactor(merged, cards, values)

    __mul__ = product

    def marginalize(self, variables: Iterable[str]) -> "DiscreteFactor":
        """Sum out ``variables``; the remaining scope keeps its order."""
        drop = set(variables)
        unknown = drop - set(self.variables)
        if unknown:
            raise InferenceError(f"cannot marginalize unknown variables {unknown}")
        if drop == set(self.variables):
            raise InferenceError("cannot marginalize the entire scope")
        axes = tuple(i for i, v in enumerate(self.variables) if v in drop)
        keep = [(v, c) for v, c in zip(self.variables, self.cardinalities) if v not in drop]
        values = self.values.sum(axis=axes)
        return DiscreteFactor([v for v, _ in keep], [c for _, c in keep], values)

    def reduce(self, evidence: Mapping[str, int]) -> "DiscreteFactor":
        """Slice the factor at the observed states; evidence leaves the scope."""
        relevant = {v: s for v, s in evidence.items() if v in self.variables}
        if not relevant:
            return self
        if set(relevant) == set(self.variables):
            raise InferenceError(
                "reducing every variable yields a scalar; use value_at instead"
            )
        slicer: list = []
        keep: list[tuple[str, int]] = []
        for v, c in zip(self.variables, self.cardinalities):
            if v in relevant:
                state = int(relevant[v])
                if not 0 <= state < c:
                    raise InferenceError(
                        f"state {state} out of range for {v!r} (card {c})"
                    )
                slicer.append(state)
            else:
                slicer.append(slice(None))
                keep.append((v, c))
        values = self.values[tuple(slicer)]
        return DiscreteFactor([v for v, _ in keep], [c for _, c in keep], values)

    def value_at(self, assignment: Mapping[str, int]) -> float:
        """The factor value at a full assignment of its scope."""
        idx = []
        for v, c in zip(self.variables, self.cardinalities):
            if v not in assignment:
                raise InferenceError(f"assignment missing {v!r}")
            state = int(assignment[v])
            if not 0 <= state < c:
                raise InferenceError(f"state {state} out of range for {v!r}")
            idx.append(state)
        return float(self.values[tuple(idx)])

    def normalize(self) -> "DiscreteFactor":
        """Rescale so values sum to one."""
        total = self.values.sum()
        if total <= 0:
            raise InferenceError("cannot normalize a zero factor")
        return DiscreteFactor(self.variables, self.cardinalities, self.values / total)

    def permute(self, order: Iterable[str]) -> "DiscreteFactor":
        """Reorder the scope (useful for canonical comparisons in tests)."""
        order = list(order)
        if set(order) != set(self.variables) or len(order) != len(self.variables):
            raise InferenceError("permute order must be a permutation of the scope")
        axes = [self.variables.index(v) for v in order]
        return DiscreteFactor(
            order,
            [self.cardinalities[a] for a in axes],
            np.transpose(self.values, axes),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteFactor):
            return NotImplemented
        if set(self.variables) != set(other.variables):
            return False
        return np.allclose(other.permute(self.variables).values, self.values)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(cls, variables: Iterable[str], cardinalities: Iterable[int]) -> "DiscreteFactor":
        cards = [int(c) for c in cardinalities]
        size = int(np.prod(cards))
        return cls(variables, cards, np.full(cards, 1.0 / size))
