"""Column-oriented dataset container.

One row is one monitored transaction: the elapsed time measured at each
service (``X_i`` columns) plus the end-to-end response time (``D``).
Learning, scoring and the sliding-window selection of Section 2 all
operate on this type.

The container is deliberately thin — a dict of equal-length NumPy arrays
with ordered column names — so that per-node learning can slice out just
``{X_i} ∪ Φ(X_i)`` (the data-locality property that enables decentralized
learning, Section 3.4) without copying unrelated columns.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.exceptions import DataError


class Dataset:
    """Immutable-by-convention table of named, equal-length columns."""

    def __init__(self, columns: Mapping[str, np.ndarray]):
        if not columns:
            raise DataError("Dataset needs at least one column")
        self._columns: dict[str, np.ndarray] = {}
        n = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise DataError(f"column {name!r} must be 1-D, got shape {arr.shape}")
            if n is None:
                n = arr.shape[0]
            elif arr.shape[0] != n:
                raise DataError(
                    f"column {name!r} has length {arr.shape[0]}, expected {n}"
                )
            self._columns[str(name)] = arr
        self._n = int(n)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_array(cls, array: np.ndarray, columns: Iterable[str]) -> "Dataset":
        """Build from a 2-D array whose columns are named by ``columns``."""
        array = np.asarray(array)
        names = list(columns)
        if array.ndim != 2 or array.shape[1] != len(names):
            raise DataError(
                f"array shape {array.shape} incompatible with {len(names)} columns"
            )
        return cls({name: array[:, j] for j, name in enumerate(names)})

    @classmethod
    def concat(cls, datasets: Iterable["Dataset"]) -> "Dataset":
        """Stack datasets with identical column sets row-wise."""
        parts = list(datasets)
        if not parts:
            raise DataError("cannot concat zero datasets")
        cols = parts[0].columns
        for d in parts[1:]:
            if d.columns != cols:
                raise DataError("datasets have mismatched columns")
        return cls({c: np.concatenate([d[c] for d in parts]) for c in cols})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._columns)

    @property
    def n_rows(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise DataError(f"no column {name!r}; have {list(self._columns)}") from None

    def to_array(self, order: "Iterable[str] | None" = None) -> np.ndarray:
        """Return a ``(n_rows, n_cols)`` float array in the given column order."""
        names = list(order) if order is not None else list(self._columns)
        missing = [c for c in names if c not in self._columns]
        if missing:
            raise DataError(f"missing columns {missing}")
        if not names:
            return np.empty((self._n, 0), dtype=float)
        return np.column_stack([self._columns[c].astype(float, copy=False) for c in names])

    # ------------------------------------------------------------------ #
    # Subsetting
    # ------------------------------------------------------------------ #

    def select(self, names: Iterable[str]) -> "Dataset":
        """Project onto a subset of columns (views, not copies)."""
        names = list(names)
        return Dataset({c: self[c] for c in names})

    def rows(self, index: np.ndarray) -> "Dataset":
        """Select rows by boolean mask or integer index array."""
        return Dataset({c: v[index] for c, v in self._columns.items()})

    def head(self, k: int) -> "Dataset":
        """First ``k`` rows."""
        return self.rows(np.arange(min(k, self._n)))

    def tail(self, k: int) -> "Dataset":
        """Last ``k`` rows (the sliding-window selection of Eq. 1 uses this)."""
        k = min(k, self._n)
        return self.rows(np.arange(self._n - k, self._n))

    def split(self, n_train: int) -> tuple["Dataset", "Dataset"]:
        """Split into ``(first n_train rows, remainder)``."""
        if not 0 < n_train < self._n:
            raise DataError(
                f"n_train must be in (0, {self._n}), got {n_train}"
            )
        idx = np.arange(self._n)
        return self.rows(idx[:n_train]), self.rows(idx[n_train:])

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """Row-shuffled copy (used before train/test splits)."""
        perm = rng.permutation(self._n)
        return self.rows(perm)

    # ------------------------------------------------------------------ #
    # Dunder conveniences
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return f"Dataset(n_rows={self._n}, columns={list(self._columns)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        if self.columns != other.columns or self._n != other._n:
            return False
        return all(np.array_equal(self[c], other[c]) for c in self.columns)
