"""Pairwise tensor-contraction planning for the compiled engine.

``np.einsum`` with a single subscripts string hands the contraction
order to NumPy's generic path optimizer on every plan compile, caps the
network at 52 variables (one label per variable), and re-derives the
path from the operand shapes.  The compiled engine instead plans its
contractions *here*, once per query signature, with everything known
statically: factor scopes, cardinalities, and the output scope.

The planner emits an explicit pairwise **schedule**: a sequence of
two-operand ``einsum`` steps, each with its subscripts prebuilt from a
*local* label alphabet (only the union of the two operand scopes needs
labels, so the 52-variable network cap disappears — only per-step
contraction width is bounded).  A variable is summed out at the last
step in which it appears, unless it belongs to the output scope.

Two search strategies, à la ``opt_einsum`` but stdlib+numpy only:

- ``"greedy"`` — repeatedly contract the pair whose step cost (size of
  the joint index space of the pair) is smallest, tie-broken on result
  size then operand order, so schedules are deterministic;
- ``"optimal"`` — exact dynamic programming over contraction trees
  (memoized over leaf subsets), affordable for small factor counts;
- ``"auto"`` — optimal up to :data:`OPTIMAL_MAX_FACTORS` factors,
  greedy beyond.

Schedules are pure data (:class:`Schedule`), safe to cache inside query
plans and replay against fresh operand arrays — including operands that
carry a leading batch axis: the batch axis is planned as an ordinary
variable, so the schedule automatically keeps it alive through to the
output.
"""

from __future__ import annotations

import itertools
import string
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import InferenceError

#: ``"auto"`` switches from exact DP to greedy above this many factors.
OPTIMAL_MAX_FACTORS = 7

#: Hard bound on distinct variables inside one pairwise step (the local
#: einsum alphabet).  Exceeding it means the contraction width is far
#: past anything the dense tables could hold anyway.
_MAX_STEP_VARS = len(string.ascii_letters)


@dataclass(frozen=True)
class Step:
    """One pairwise contraction: ``work[i], work[j] -> append result``."""

    i: int
    j: int
    subscripts: str
    scope: tuple[str, ...]


@dataclass(frozen=True)
class Schedule:
    """A replayable contraction schedule for fixed scopes/output."""

    scopes: tuple[tuple[str, ...], ...]   # input operand scopes, in order
    output: tuple[str, ...]               # requested output scope order
    steps: tuple[Step, ...]               # pairwise contractions
    final_subscripts: "str | None"        # unary fixup (sum/reorder) or None
    cost: float                           # summed per-step index-space sizes
    max_intermediate: int                 # largest intermediate table size


def _result_scope(
    union: "tuple[str, ...]",
    live_counts: Mapping[str, int],
    consumed: Mapping[str, int],
    keep: frozenset,
) -> tuple[str, ...]:
    """Scope surviving a contraction: output vars plus vars still used
    by operands outside the contracted pair."""
    return tuple(
        v for v in union if v in keep or live_counts[v] - consumed[v] > 0
    )


def _pair_subscripts(
    a: Sequence[str], b: Sequence[str], out: Sequence[str]
) -> str:
    labels: dict[str, str] = {}
    for v in itertools.chain(a, b):
        if v not in labels:
            if len(labels) >= _MAX_STEP_VARS:
                raise InferenceError(
                    "contraction step exceeds the einsum label alphabet "
                    f"({_MAX_STEP_VARS} distinct variables)"
                )
            labels[v] = string.ascii_letters[len(labels)]
    lhs_a = "".join(labels[v] for v in a)
    lhs_b = "".join(labels[v] for v in b)
    rhs = "".join(labels[v] for v in out)
    return f"{lhs_a},{lhs_b}->{rhs}"


def _size(scope: Sequence[str], cards: Mapping[str, int]) -> int:
    size = 1
    for v in scope:
        size *= cards[v]
    return size


# --------------------------------------------------------------------- #
# Greedy search
# --------------------------------------------------------------------- #


def _greedy_order(
    scopes: "list[tuple[str, ...]]",
    cards: Mapping[str, int],
    keep: frozenset,
) -> "list[tuple[int, int, tuple[str, ...]]]":
    """Pairs to contract, as ``(i, j, result_scope)`` over a working list
    that appends each result (opt_einsum's greedy, sized by step cost)."""
    work: dict[int, tuple[str, ...]] = dict(enumerate(scopes))
    live_counts: dict[str, int] = {}
    for scope in scopes:
        for v in scope:
            live_counts[v] = live_counts.get(v, 0) + 1
    order: list[tuple[int, int, tuple[str, ...]]] = []
    next_id = len(scopes)
    while len(work) > 1:
        best = None
        for i, j in itertools.combinations(sorted(work), 2):
            si, sj = work[i], work[j]
            union = si + tuple(v for v in sj if v not in si)
            consumed = {v: 0 for v in union}
            for v in si:
                consumed[v] += 1
            for v in sj:
                consumed[v] += 1
            scope = _result_scope(union, live_counts, consumed, keep)
            step_cost = _size(union, cards)
            key = (step_cost, _size(scope, cards), i, j)
            if best is None or key < best[0]:
                best = (key, i, j, scope)
        _, i, j, scope = best
        for v in set(work[i]) | set(work[j]):
            live_counts[v] -= 1
        for v in set(work[i]) & set(work[j]):
            live_counts[v] -= 1
        for v in set(scope):
            live_counts[v] += 1
        del work[i], work[j]
        work[next_id] = scope
        order.append((i, j, scope))
        next_id += 1
    return order


# --------------------------------------------------------------------- #
# Optimal (exact DP over contraction trees)
# --------------------------------------------------------------------- #


def _optimal_order(
    scopes: "list[tuple[str, ...]]",
    cards: Mapping[str, int],
    keep: frozenset,
) -> "list[tuple[int, int, tuple[str, ...]]]":
    """Exact best contraction tree by memoized search over leaf subsets."""
    n = len(scopes)
    var_leaves: dict[str, frozenset] = {}
    for idx, scope in enumerate(scopes):
        for v in scope:
            var_leaves.setdefault(v, frozenset())
            var_leaves[v] = var_leaves[v] | {idx}
    all_leaves = frozenset(range(n))

    def subset_scope(leaves: frozenset) -> tuple[str, ...]:
        # Deterministic order: first appearance across member scopes.
        seen: list[str] = []
        for idx in sorted(leaves):
            for v in scopes[idx]:
                if v not in seen and (
                    v in keep or var_leaves[v] - leaves
                ):
                    seen.append(v)
        return tuple(seen)

    memo: dict[frozenset, tuple[float, tuple[str, ...], tuple]] = {}

    def best(leaves: frozenset):
        cached = memo.get(leaves)
        if cached is not None:
            return cached
        if len(leaves) == 1:
            (idx,) = leaves
            result = (0.0, scopes[idx], idx)
            memo[leaves] = result
            return result
        members = sorted(leaves)
        best_entry = None
        for r in range(1, len(members)):
            for combo in itertools.combinations(members[1:], r):
                # The anchor always stays left, so each unordered
                # partition is enumerated exactly once.
                left = leaves - frozenset(combo)
                right = frozenset(combo)
                cost_l, scope_l, tree_l = best(left)
                cost_r, scope_r, tree_r = best(right)
                union = scope_l + tuple(
                    v for v in scope_r if v not in scope_l
                )
                step_cost = float(_size(union, cards))
                total = cost_l + cost_r + step_cost
                if best_entry is None or total < best_entry[0]:
                    scope = subset_scope(leaves)
                    best_entry = (total, scope, (tree_l, tree_r))
        memo[leaves] = best_entry
        return best_entry

    _, _, tree = best(all_leaves)

    order: list[tuple[int, int, tuple[str, ...]]] = []
    next_id = [n]
    leaves_of: dict[int, frozenset] = {}

    def emit(node) -> int:
        if isinstance(node, int):
            leaves_of[node] = frozenset([node])
            return node
        left, right = node
        i = emit(left)
        j = emit(right)
        leaves = leaves_of[i] | leaves_of[j]
        scope = subset_scope(leaves)
        node_id = next_id[0]
        next_id[0] += 1
        leaves_of[node_id] = leaves
        order.append((min(i, j), max(i, j), scope))
        return node_id

    emit(tree)
    return order


# --------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------- #


def plan_contraction(
    scopes: Sequence[Sequence[str]],
    cards: Mapping[str, int],
    output: Sequence[str],
    optimize: str = "auto",
) -> Schedule:
    """Plan the contraction of ``scopes`` down to ``output``.

    Every variable not in ``output`` is summed out; ``output`` order is
    honored exactly in the final array.  The returned schedule is pure
    data and can be replayed any number of times via
    :func:`execute_schedule`.
    """
    scopes = tuple(tuple(s) for s in scopes)
    output = tuple(output)
    if not scopes:
        raise InferenceError("cannot plan a contraction of zero factors")
    known = set(itertools.chain.from_iterable(scopes))
    missing = [v for v in output if v not in known]
    if missing:
        raise InferenceError(f"output variables not in any scope: {missing}")
    keep = frozenset(output)
    if optimize == "auto":
        optimize = (
            "optimal" if len(scopes) <= OPTIMAL_MAX_FACTORS else "greedy"
        )
    if optimize == "optimal":
        order = _optimal_order(list(scopes), cards, keep)
    elif optimize == "greedy":
        order = _greedy_order(list(scopes), cards, keep)
    else:
        raise InferenceError(f"unknown optimize mode {optimize!r}")

    scope_of: dict[int, tuple[str, ...]] = dict(enumerate(scopes))
    steps: list[Step] = []
    cost = 0.0
    max_intermediate = 0
    next_id = len(scopes)
    for i, j, scope in order:
        union = scope_of[i] + tuple(
            v for v in scope_of[j] if v not in scope_of[i]
        )
        steps.append(
            Step(
                i=i,
                j=j,
                subscripts=_pair_subscripts(scope_of[i], scope_of[j], scope),
                scope=scope,
            )
        )
        cost += float(_size(union, cards))
        max_intermediate = max(max_intermediate, _size(scope, cards))
        scope_of[next_id] = scope
        next_id += 1
    last_scope = scope_of[next_id - 1] if steps else scopes[0]
    final = None
    if last_scope != output:
        # Sum leftover non-output vars (single-factor inputs) and put the
        # axes in the requested order.
        final = _pair_subscripts(last_scope, (), output).replace(",", "")
        max_intermediate = max(max_intermediate, _size(output, cards))
    return Schedule(
        scopes=scopes,
        output=output,
        steps=tuple(steps),
        final_subscripts=final,
        cost=cost,
        max_intermediate=max_intermediate,
    )


def execute_schedule(
    schedule: Schedule,
    arrays: Sequence[np.ndarray],
) -> np.ndarray:
    """Replay ``schedule`` against operand ``arrays`` (same scope order).

    Array dtypes are preserved (float32 operands contract in float32),
    which is what the engine's optional single-precision batch path
    relies on.
    """
    if len(arrays) != len(schedule.scopes):
        raise InferenceError(
            f"schedule expects {len(schedule.scopes)} operands, "
            f"got {len(arrays)}"
        )
    work: list["np.ndarray | None"] = list(arrays)
    for step in schedule.steps:
        a = work[step.i]
        b = work[step.j]
        work[step.i] = work[step.j] = None
        work.append(np.einsum(step.subscripts, a, b))
    out = work[-1]
    assert out is not None
    if schedule.final_subscripts is not None:
        out = np.einsum(schedule.final_subscripts, out)
    return out
